//! `pc` — a command-line front-end to the Prompt Cache engine.
//!
//! ```text
//! pc demo                                   # built-in end-to-end demo
//! pc layout  schema.pml                     # show position-ID layout
//! pc lint    schema.pml                     # advisory schema diagnostics
//! pc fmt     schema.pml                     # pretty-print PML to stdout
//! pc chat    schema.pml prompt.pml          # multi-turn REPL over a session
//! pc serve   schema.pml prompt.pml [-n 16] [--baseline] [--stream]
//! pc encode  schema.pml -o modules/         # precompute & persist modules
//! pc sweep   [-n 512]                       # cache-advantage sweep
//! ```
//!
//! Models use seeded random weights (the engine's guarantees are about
//! attention-state reuse); the tokenizer is a word tokenizer trained on
//! the supplied files, so layouts and cache statistics are exact.

use pc_model::{Model, ModelConfig};
use pc_pml::layout::SchemaLayout;
use pc_pml::template::ChatTemplate;
use pc_tokenizer::{Tokenizer, WordTokenizer};
use prompt_cache::{EngineConfig, PromptCache, ServeOptions};
use std::process::exit;
use prompt_cache::{ServeRequest, Served};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("demo") => demo(),
        Some("layout") => layout(&args[1..]),
        Some("lint") => lint(&args[1..]),
        Some("fmt") => fmt(&args[1..]),
        Some("chat") => chat(&args[1..]),
        Some("serve") => serve(&args[1..]),
        Some("encode") => encode(&args[1..]),
        Some("sweep") => sweep(&args[1..]),
        _ => {
            eprintln!(
                "usage: pc <demo | layout <schema> | serve <schema> <prompt> \
                 [-n N] [--baseline] [--stream] | encode <schema> -o <dir> | \
                 lint <schema> | fmt <pml> | chat <schema> <prompt> | sweep [-n N]>"
            );
            2
        }
    };
    exit(code);
}

fn read(path: &str) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        exit(1);
    })
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn build_engine(texts: &[&str], seed: u64) -> PromptCache {
    let tokenizer = WordTokenizer::train(texts);
    let vocab = tokenizer.vocab_size().max(64);
    PromptCache::new(
        Model::new(ModelConfig::llama_small(vocab), seed),
        tokenizer,
        EngineConfig::default(),
    )
}

fn demo() -> i32 {
    let schema = r#"<schema name="demo">
        <module name="context">the quick brown fox jumps over the lazy dog near the river bank</module>
      </schema>"#;
    let prompt = r#"<prompt schema="demo"><context/>what does the fox do</prompt>"#;
    let engine = build_engine(&[schema, "what does the fox do"], 42);
    engine.register_schema(schema).expect("demo schema is valid");
    let opts = ServeOptions::default().max_new_tokens(6);
    let cached = engine.serve(&ServeRequest::new(prompt).options(opts.clone())).map(Served::into_response).expect("serve");
    let baseline = engine.serve(&ServeRequest::new(prompt).options(opts.clone()).baseline(true)).map(Served::into_response).expect("baseline");
    println!("cached output:   {:?}", cached.text);
    println!("baseline output: {:?}", baseline.text);
    println!("identical: {}", cached.tokens == baseline.tokens);
    println!(
        "TTFT {:?} vs {:?} ({:.1}x), {:.0}% of prompt from cache",
        cached.timings.ttft,
        baseline.timings.ttft,
        baseline.timings.ttft.as_secs_f64() / cached.timings.ttft.as_secs_f64(),
        cached.stats.hit_ratio() * 100.0
    );
    0
}

fn layout(args: &[String]) -> i32 {
    let Some(path) = args.first() else {
        eprintln!("usage: pc layout <schema.pml>");
        return 2;
    };
    let source = read(path);
    let schema = match pc_pml::parse_schema(&source) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("parse error: {e}");
            return 1;
        }
    };
    let count = |t: &str| t.split_whitespace().count();
    let layout = SchemaLayout::build(&schema, ChatTemplate::Plain, &count);
    println!(
        "schema `{}`: {} positions, {} cacheable tokens\n",
        layout.schema_name,
        layout.total_len,
        layout.cacheable_tokens()
    );
    println!("{:<32} {:>8} {:>8} {:>7}  params", "module", "start", "end", "union");
    for span in layout.anonymous_spans() {
        println!(
            "{:<32} {:>8} {:>8} {:>7}",
            "(anonymous)",
            span.start,
            span.start + span.len,
            "-"
        );
    }
    for m in &layout.modules {
        let path = m.path.join(".");
        let union = m
            .union_group
            .map(|g| format!("#{g}"))
            .unwrap_or_else(|| "-".to_owned());
        let params: Vec<String> = m
            .params
            .iter()
            .map(|p| format!("{}@{}+{}", p.name, p.start, p.len))
            .collect();
        println!(
            "{path:<32} {:>8} {:>8} {union:>7}  {}",
            m.start,
            m.end,
            params.join(" ")
        );
    }
    0
}

fn lint(args: &[String]) -> i32 {
    let Some(path) = args.first() else {
        eprintln!("usage: pc lint <schema.pml>");
        return 2;
    };
    let source = read(path);
    let schema = match pc_pml::parse_schema(&source) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("parse error: {e}");
            return 1;
        }
    };
    let count = |t: &str| t.split_whitespace().count();
    let lints = pc_pml::lint::lint_schema(&schema, &count, &pc_pml::lint::LintConfig::default());
    if lints.is_empty() {
        println!("no findings");
        0
    } else {
        for l in &lints {
            println!("warning: {l}");
        }
        1
    }
}

fn chat(args: &[String]) -> i32 {
    let (Some(schema_path), Some(prompt_path)) = (args.first(), args.get(1)) else {
        eprintln!("usage: pc chat <schema.pml> <opening-prompt.pml>   (then type messages; EOF ends)");
        return 2;
    };
    let schema_src = read(schema_path);
    let prompt_src = read(prompt_path);
    let engine = build_engine(&[schema_src.as_str(), prompt_src.as_str()], 42);
    if let Err(e) = engine.register_schema(&schema_src) {
        eprintln!("schema error: {e}");
        return 1;
    }
    let opts = ServeOptions::default().max_new_tokens(12);
    let (mut convo, first) = match engine.conversation(&prompt_src, &opts) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("serve error: {e}");
            return 1;
        }
    };
    println!("assistant: {}   [TTFT {:?}]", first.text, first.timings.ttft);
    let stdin = std::io::stdin();
    let mut line = String::new();
    loop {
        line.clear();
        eprint!("you> ");
        match std::io::BufRead::read_line(&mut stdin.lock(), &mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
        let message = line.trim();
        if message.is_empty() || message == "/quit" {
            break;
        }
        match convo.say(message, &opts) {
            Ok(r) => println!(
                "assistant: {}   [TTFT {:?}, {} history tokens reused]",
                r.text, r.timings.ttft, r.stats.cached_tokens
            ),
            Err(e) => {
                eprintln!("turn failed: {e}");
                break;
            }
        }
    }
    eprintln!(
        "[session closed: {} turns, {} tokens held]",
        convo.turns(),
        convo.session_tokens()
    );
    0
}

fn fmt(args: &[String]) -> i32 {
    let Some(path) = args.first() else {
        eprintln!("usage: pc fmt <schema.pml or prompt.pml>");
        return 2;
    };
    let source = read(path);
    if let Ok(schema) = pc_pml::parse_schema(&source) {
        print!("{}", pc_pml::pretty::pretty_schema(&schema));
        return 0;
    }
    match pc_pml::parse_prompt(&source) {
        Ok(prompt) => {
            print!("{}", pc_pml::pretty::pretty_prompt(&prompt));
            0
        }
        Err(e) => {
            eprintln!("not a valid schema or prompt: {e}");
            1
        }
    }
}

fn serve(args: &[String]) -> i32 {
    let (Some(schema_path), Some(prompt_path)) = (args.first(), args.get(1)) else {
        eprintln!("usage: pc serve <schema.pml> <prompt.pml> [-n N] [--baseline] [--stream]");
        return 2;
    };
    let schema_src = read(schema_path);
    let prompt_src = read(prompt_path);
    let max_new: usize = flag_value(args, "-n")
        .and_then(|v| v.parse().ok())
        .unwrap_or(16);
    let baseline = args.iter().any(|a| a == "--baseline");
    let stream = args.iter().any(|a| a == "--stream");

    let engine = build_engine(&[schema_src.as_str(), prompt_src.as_str()], 42);
    if let Err(e) = engine.register_schema(&schema_src) {
        eprintln!("schema error: {e}");
        return 1;
    }
    let opts = ServeOptions::default().max_new_tokens(max_new);
    let result = if baseline {
        engine.serve(&ServeRequest::new(&prompt_src).options(opts.clone()).baseline(true)).map(Served::into_response)
    } else if stream {
        let sink = |tok, n| {
            println!("token {n}: {tok}");
        };
        engine
            .serve(
                &ServeRequest::new(&prompt_src)
                    .options(opts.clone())
                    .streaming(&sink),
            )
            .map(Served::into_response)
    } else {
        engine.serve(&ServeRequest::new(&prompt_src).options(opts.clone())).map(Served::into_response)
    };
    match result {
        Ok(r) => {
            for w in &r.warnings {
                eprintln!("warning: {w}");
            }
            println!("{}", r.text);
            eprintln!(
                "[{} | TTFT {:?} (fetch {:?}, prefill {:?}) | {} cached / {} new tokens]",
                if baseline { "baseline" } else { "prompt-cache" },
                r.timings.ttft,
                r.timings.fetch,
                r.timings.prefill,
                r.stats.cached_tokens,
                r.stats.new_tokens
            );
            0
        }
        Err(e) => {
            eprintln!("serve error: {e}");
            1
        }
    }
}

fn encode(args: &[String]) -> i32 {
    let Some(schema_path) = args.first() else {
        eprintln!("usage: pc encode <schema.pml> -o <dir>");
        return 2;
    };
    let Some(out) = flag_value(args, "-o") else {
        eprintln!("usage: pc encode <schema.pml> -o <dir>");
        return 2;
    };
    let schema_src = read(schema_path);
    let engine = build_engine(&[schema_src.as_str()], 42);
    match engine.register_schema(&schema_src) {
        Ok(info) => {
            let saved = engine
                .save_modules(std::path::Path::new(&out))
                .unwrap_or_else(|e| {
                    eprintln!("save failed: {e}");
                    exit(1);
                });
            println!(
                "encoded {} spans ({} tokens, {} bytes) → {saved} files in {out}",
                info.spans,
                info.cached_tokens,
                engine.cached_bytes()
            );
            0
        }
        Err(e) => {
            eprintln!("schema error: {e}");
            1
        }
    }
}

fn sweep(args: &[String]) -> i32 {
    let max: usize = flag_value(args, "-n")
        .and_then(|v| v.parse().ok())
        .unwrap_or(512);
    println!("{:>8} {:>14} {:>14} {:>9}", "tokens", "baseline", "prompt-cache", "speedup");
    let mut n = 64;
    while n <= max {
        let (b, p) = pc_bench::experiments::measured_fully_cached(n);
        println!(
            "{n:>8} {:>14} {:>14} {:>8.1}x",
            format!("{:.2?}", std::time::Duration::from_secs_f64(b)),
            format!("{:.2?}", std::time::Duration::from_secs_f64(p)),
            b / p
        );
        n *= 2;
    }
    0
}
