//! Facade crate: re-exports the Prompt Cache reproduction workspace so
//! examples and integration tests can reach every subsystem.
pub use pc_bench as bench;
pub use pc_rag as rag;
pub use pc_server as server;
pub use pc_cache as cache;
pub use pc_longbench as longbench;
pub use pc_model as model;
pub use pc_pml as pml;
pub use pc_simulator as simulator;
pub use pc_tensor as tensor;
pub use pc_tokenizer as tokenizer;
pub use prompt_cache as engine;

/// The unified error and outcome taxonomy, gathered under one roof.
///
/// Every failure a caller can see flows through exactly one of these
/// types, at a well-defined layer:
///
/// * [`pc::Error`] — the engine failed to parse, register, or serve
///   (this is `prompt_cache::EngineError` re-exported as the top-level
///   error type; fleet workers surface remote failures through its
///   `Remote` variant);
/// * [`pc::SubmitError`] — admission rejected a submission before it
///   ever queued (queue full, predicted deadline overrun);
/// * [`pc::ShedReason`] — a queued request was dropped before a worker
///   picked it up (cancelled in queue, deadline already passed,
///   shutdown);
/// * [`pc::ServeOutcome`] — how an accepted serve ended (complete,
///   cancelled, deadline exceeded).
///
/// The single-process [`Server`](pc_server::Server) and the sharded
/// [`Router`](pc_server::Router) share this taxonomy — there is no
/// fleet-specific error surface to learn.
pub mod pc {
    pub use pc_server::{ShedReason, SubmitError};
    pub use prompt_cache::EngineError as Error;
    pub use prompt_cache::{Result, ServeOutcome};
}
