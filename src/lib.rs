//! Facade crate: re-exports the Prompt Cache reproduction workspace so
//! examples and integration tests can reach every subsystem.
pub use pc_bench as bench;
pub use pc_rag as rag;
pub use pc_server as server;
pub use pc_cache as cache;
pub use pc_longbench as longbench;
pub use pc_model as model;
pub use pc_pml as pml;
pub use pc_simulator as simulator;
pub use pc_tensor as tensor;
pub use pc_tokenizer as tokenizer;
pub use prompt_cache as engine;
