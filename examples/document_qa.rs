//! Multi-document question answering over a LongBench-style workload —
//! the scenario behind Figures 3–4: a pool of documents becomes prompt
//! modules, and each request imports a document subset plus a fresh
//! question.
//!
//! ```text
//! cargo run --release --example document_qa
//! ```

use pc_longbench::{metrics, DatasetSpec, Workload};
use pc_model::Family;
use prompt_cache::ServeOptions;
use prompt_cache::{ServeRequest, Served};

fn main() {
    let spec = DatasetSpec::by_name("2WikiMultihopQA").expect("dataset exists");
    println!(
        "dataset: {} ({} docs/sample, metric {:?})",
        spec.name, spec.num_docs, spec.metric
    );

    let workload = Workload::new(spec, 7, 0.05);
    let sample = workload.sample(0);
    println!(
        "sample: {} context words across {} documents, {}-word question",
        sample.context_words(),
        sample.docs.len(),
        sample.question_words()
    );

    // Build an engine whose tokenizer knows the sample vocabulary and
    // register every document as a prompt module.
    let engine = pc_bench::measured::engine_for_sample(&sample, Family::Llama, 7);
    let info = engine
        .register_schema(&sample.schema_pml("wiki"))
        .expect("register");
    println!(
        "registered schema: {} spans, {} tokens encoded, {} bytes cached",
        info.spans,
        info.cached_tokens,
        engine.cached_bytes()
    );

    let opts = ServeOptions::default().max_new_tokens(10);
    let prompt = sample.prompt_pml("wiki");
    let cached = engine.serve(&ServeRequest::new(&prompt).options(opts.clone())).map(Served::into_response).expect("serve");
    let baseline = engine.serve(&ServeRequest::new(&prompt).options(opts.clone()).baseline(true)).map(Served::into_response).expect("baseline");

    println!("\nquestion: {}", &sample.question);
    println!("reference answer: {}", &sample.answer);
    println!("cached output:    {:?}", cached.text);
    println!("baseline output:  {:?}", baseline.text);
    println!(
        "score (cached vs ref):   {:.3}",
        metrics::score(spec.metric, &cached.text, &sample.answer)
    );
    println!(
        "score (baseline vs ref): {:.3}",
        metrics::score(spec.metric, &baseline.text, &sample.answer)
    );
    println!(
        "\nTTFT: cached {:?} (fetch {:?} + prefill {:?}) vs baseline {:?} — {:.1}x",
        cached.timings.ttft,
        cached.timings.fetch,
        cached.timings.prefill,
        baseline.timings.ttft,
        baseline.timings.ttft.as_secs_f64() / cached.timings.ttft.as_secs_f64(),
    );

    // A second question against the same documents reuses everything.
    let prompt2 = prompt.replace(&sample.question, "what is the secret code mentioned above");
    let again = engine.serve(&ServeRequest::new(&prompt2).options(opts.clone())).map(Served::into_response).expect("serve again");
    println!(
        "second question on same docs: TTFT {:?} ({} cached / {} new tokens)",
        again.timings.ttft, again.stats.cached_tokens, again.stats.new_tokens
    );
}
