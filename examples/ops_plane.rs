//! The ops plane end to end: an instrumented server on an ephemeral
//! port, scraped over plain TCP exactly as Prometheus or an operator's
//! `curl` would — see docs/OBSERVABILITY.md for the payload reference.
//!
//! ```text
//! cargo run --release --example ops_plane
//! ```

use pc_cache::StoreConfig;
use pc_model::{Model, ModelConfig};
use pc_server::{Server, ServerConfig, SubmitRequest};
use pc_tokenizer::{Tokenizer, WordTokenizer};
use prompt_cache::{BatchConfig, EngineConfig, PromptCache, ServeOptions, Telemetry};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// One HTTP/1.1 GET over a raw socket; returns (status line, body).
fn http_get(addr: std::net::SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect ops endpoint");
    write!(stream, "GET {path} HTTP/1.1\r\nHost: ops\r\nConnection: close\r\n\r\n").unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let (head, body) = raw.split_once("\r\n\r\n").expect("header/body split");
    let status = head.lines().next().unwrap_or_default().to_owned();
    (status, body.to_owned())
}

fn main() {
    let doc: String = (0..200).map(|i| format!("w{} ", i % 67)).collect();
    let corpus = format!("{doc} you are a helpful assistant answer briefly q0 q1 q2 q3");
    let tokenizer = WordTokenizer::train(&[corpus.as_str()]);
    let vocab = tokenizer.vocab_size().max(64);
    let engine = PromptCache::new(
        Model::new(ModelConfig::llama_tiny(vocab), 10),
        tokenizer,
        EngineConfig::default()
            .telemetry(Telemetry::new())
            .store(StoreConfig::default().module_analytics(true)),
    );
    engine
        .register_schema(&format!(
            r#"<schema name="svc">
                 you are a helpful assistant
                 <module name="doc">{doc}</module>
               </schema>"#
        ))
        .expect("register");

    // Batched serving with the full ops plane: HTTP endpoint on an
    // ephemeral port, a flight recorder, per-module analytics.
    let server = Server::start(
        engine,
        ServerConfig::default()
            .batching(BatchConfig::default().max_batch_size(4))
            .queue_capacity(64)
            .ops_addr("127.0.0.1:0".parse().unwrap())
            .flight_recorder(1024),
    );
    let addr = server.ops_local_addr().expect("ops endpoint bound");
    println!("ops plane listening on http://{addr}");

    let opts = ServeOptions::default().max_new_tokens(4);
    let handles: Vec<_> = (0..8)
        .map(|i| {
            let mut request = SubmitRequest::new(format!(
                r#"<prompt schema="svc"><doc/>answer briefly q{}</prompt>"#,
                i % 4
            ))
            .options(opts.clone())
            .blocking(true);
            if i % 4 == 0 {
                request = request.deadline(Duration::from_secs(5));
            }
            server.submit_request(&request).expect("blocking submit")
        })
        .collect();
    for handle in handles {
        handle.wait().expect("server alive").outcome.expect("served");
    }

    let (status, metrics) = http_get(addr, "/metrics");
    let series = metrics.lines().filter(|l| l.starts_with("# TYPE")).count();
    let served = metrics
        .lines()
        .find(|l| l.starts_with("pc_requests_served_total "))
        .expect("served counter");
    let module_samples = metrics.lines().filter(|l| l.starts_with("pc_module_")).count();
    println!("GET /metrics      → {status}: {series} series, {served}, {module_samples} pc_module_* lines");

    let (status, health) = http_get(addr, "/healthz");
    println!("GET /healthz      → {status}: {health}");

    let (status, cache) = http_get(addr, "/debug/cache");
    let heat_entries = cache.matches("\"hits\":").count();
    println!("GET /debug/cache  → {status}: {} bytes, {heat_entries} heat entries", cache.len());

    let (status, batch) = http_get(addr, "/debug/batch");
    println!("GET /debug/batch  → {status}: {batch}");

    let (status, flight) = http_get(addr, "/debug/flight");
    let finishes = flight.lines().filter(|l| l.contains("\"kind\":\"finish\"")).count();
    println!(
        "GET /debug/flight → {status}: {} events, {finishes} finishes",
        flight.lines().count()
    );

    server.shutdown();
    assert!(series > 10, "metrics payload must carry the full inventory");
    assert!(module_samples > 0, "per-module analytics must be populated");
    assert_eq!(finishes, 8, "every request leaves a finish event");
    println!("ops plane OK");
}
