//! Figure 7 scenario: feature-based personalization. Six trait
//! categories, five traits each; traits of one category are grouped in a
//! `<union>`, so each category costs one position span regardless of
//! which trait a user has, and any of the 5^6 persona combinations serves
//! from cache.
//!
//! ```text
//! cargo run --release --example personalization
//! ```

use pc_model::{Model, ModelConfig};
use pc_tokenizer::{Tokenizer, WordTokenizer};
use prompt_cache::{EngineConfig, PromptCache, ServeOptions};
use prompt_cache::{ServeRequest, Served};

const CATEGORIES: [(&str, &str); 6] = [
    ("grade", "the learner is in grade level"),
    ("proficiency", "the learner current proficiency is"),
    ("history", "the learner previously studied the topic"),
    ("style", "the learner prefers a learning style of"),
    ("assessment", "the learner will be assessed with format"),
    ("goal", "the learner long term goal is reaching"),
];
const TRAITS: [&str; 5] = ["alpha", "beta", "gamma", "delta", "epsilon"];

fn main() {
    let mut schema = String::from(r#"<schema name="persona">you are an education assistant "#);
    let mut corpus = String::from("you are an education assistant recommend the next lesson");
    for (cat, desc) in CATEGORIES {
        schema.push_str("<union>");
        for t in TRAITS {
            let body = format!("{desc} {t} and this shapes every recommendation");
            schema.push_str(&format!(r#"<module name="{cat}-{t}">{body}</module>"#));
            corpus.push(' ');
            corpus.push_str(&body);
        }
        schema.push_str("</union>");
    }
    schema.push_str("</schema>");

    let tokenizer = WordTokenizer::train(&[corpus.as_str()]);
    let vocab = tokenizer.vocab_size().max(64);
    let engine = PromptCache::new(
        Model::new(ModelConfig::llama_small(vocab), 11),
        tokenizer,
        EngineConfig::default(),
    );
    let info = engine.register_schema(&schema).expect("register");
    println!(
        "encoded {} trait modules covering {} tokens ({} personas expressible)",
        CATEGORIES.len() * TRAITS.len(),
        info.cached_tokens,
        TRAITS.len().pow(CATEGORIES.len() as u32),
    );

    let opts = ServeOptions::default().max_new_tokens(8);

    // Two very different personas, both fully cache-served.
    for persona in [
        ["alpha", "gamma", "beta", "delta", "alpha", "epsilon"],
        ["epsilon", "alpha", "epsilon", "alpha", "beta", "gamma"],
    ] {
        let mut prompt = String::from(r#"<prompt schema="persona">"#);
        for ((cat, _), t) in CATEGORIES.iter().zip(persona) {
            prompt.push_str(&format!("<{cat}-{t}/>"));
        }
        prompt.push_str("recommend the next lesson</prompt>");
        let r = engine.serve(&ServeRequest::new(&prompt).options(opts.clone())).map(Served::into_response).expect("serve persona");
        let b = engine.serve(&ServeRequest::new(&prompt).options(opts.clone()).baseline(true)).map(Served::into_response).expect("baseline");
        println!(
            "persona {persona:?}: {:.0}% cache hit, TTFT {:?} vs baseline {:?}, output {:?}",
            r.stats.hit_ratio() * 100.0,
            r.timings.ttft,
            b.timings.ttft,
            r.text
        );
    }

    // Union exclusivity is enforced.
    let conflict = engine.serve(&ServeRequest::new(r#"<prompt schema="persona"><grade-alpha/><grade-beta/>x</prompt>"#).options(opts.clone())).map(Served::into_response);
    println!(
        "importing two traits of one category is rejected: {}",
        conflict.is_err()
    );
}
