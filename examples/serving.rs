//! A miniature serving deployment: worker pool, mixed cached/baseline
//! load, latency percentiles, and the §5.4 batch-capacity analysis.
//!
//! ```text
//! cargo run --release --example serving
//! ```

use pc_model::{Model, ModelConfig};
use pc_server::capacity::{analyze, RequestFootprint};
use pc_server::{Server, ServerConfig, SubmitRequest};
use pc_tokenizer::{Tokenizer, WordTokenizer};
use prompt_cache::{EngineConfig, PromptCache, ServeOptions};

fn main() {
    // A shared system prompt + document pool, as a chat service would have.
    let doc: String = (0..300).map(|i| format!("w{} ", i % 89)).collect();
    let corpus = format!("{doc} you are a helpful assistant answer briefly q0 q1 q2 q3 q4");
    let tokenizer = WordTokenizer::train(&[corpus.as_str()]);
    let vocab = tokenizer.vocab_size().max(64);
    let engine = PromptCache::new(
        Model::new(ModelConfig::llama_small(vocab), 10),
        tokenizer,
        EngineConfig::default(),
    );
    engine
        .register_schema(&format!(
            r#"<schema name="svc">
                 you are a helpful assistant
                 <module name="doc">{doc}</module>
               </schema>"#
        ))
        .expect("register");

    let server = Server::start(
        engine,
        ServerConfig::default().workers(4).queue_capacity(128),
    );
    let opts = ServeOptions::default().max_new_tokens(4);

    // 40 cached requests + 8 baseline requests through the same queue.
    let started = std::time::Instant::now();
    let mut handles = Vec::new();
    for i in 0..40 {
        let request = SubmitRequest::new(format!(
            r#"<prompt schema="svc"><doc/>answer briefly q{}</prompt>"#,
            i % 5
        ))
        .options(opts.clone())
        .blocking(true);
        handles.push(server.submit_request(&request).expect("blocking submit"));
    }
    for i in 0..8 {
        let request = SubmitRequest::new(format!(
            r#"<prompt schema="svc"><doc/>answer briefly q{}</prompt>"#,
            i % 5
        ))
        .options(opts.clone())
        .baseline(true)
        .blocking(true);
        handles.push(server.submit_request(&request).expect("blocking submit"));
    }
    for handle in handles {
        handle.wait().expect("server alive").outcome.expect("served");
    }
    let wall = started.elapsed();

    let m = server.metrics();
    println!("served {} requests in {:?} ({:.0} req/s, 4 workers)",
        m.served, wall, m.served as f64 / wall.as_secs_f64());
    println!(
        "TTFT p50 {:?} | p95 {:?} | p99 {:?}   queue mean {:?}",
        m.ttft_p50.unwrap(),
        m.ttft_p95.unwrap(),
        m.ttft_p99.unwrap(),
        m.queue_mean.unwrap()
    );
    println!("store: {:?}", server.engine().store_stats());
    server.shutdown();

    // §5.4's capacity argument: 100 × 2K-token requests sharing a 1K
    // module, under a 100K-token KV budget.
    let population: Vec<RequestFootprint> = (0..100)
        .map(|_| RequestFootprint {
            modules: vec![(1, 1000)],
            private_tokens: 1000,
        })
        .collect();
    let report = analyze(100_000, &population);
    println!(
        "\ncapacity under a 100K-token budget: naive batch {} → shared batch {} \
         ({:.0}% footprint reduction, {:.1}x batch gain)",
        report.naive_batch,
        report.shared_batch,
        report.footprint_reduction() * 100.0,
        report.batch_gain()
    );
}
