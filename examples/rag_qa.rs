//! Retrieval-augmented QA over a Prompt Cache module database (the §6
//! future-work scenario: "the information retrieval system basically
//! serves as a database of prompt modules").
//!
//! ```text
//! cargo run --release --example rag_qa
//! ```

use pc_longbench::corpus::Corpus;
use pc_model::{Model, ModelConfig};
use pc_rag::{RagConfig, RagPipeline};
use pc_tokenizer::{Tokenizer, WordTokenizer};
use prompt_cache::{EngineConfig, PromptCache, ServeOptions};

fn main() {
    // A corpus of 12 synthetic articles, each with one planted fact.
    let corpus = Corpus::new(99);
    let mut docs = Vec::new();
    let mut facts = Vec::new();
    for id in 0..12 {
        let (doc, entity, answer) = corpus.document_with_fact(id, 180);
        docs.push(doc);
        facts.push((entity, answer));
    }

    let all_text = docs.join(" ") + " what is the secret code for";
    let tokenizer = WordTokenizer::train(&[all_text.as_str()]);
    let vocab = tokenizer.vocab_size().max(64);
    let engine = PromptCache::new(
        Model::new(ModelConfig::llama_small(vocab), 4),
        tokenizer,
        EngineConfig::default(),
    );

    // Build: chunk, index, and encode every chunk once.
    let build_start = std::time::Instant::now();
    let rag = RagPipeline::build(
        engine,
        &docs,
        RagConfig {
            chunk_words: 64,
            overlap_words: 8,
            ..Default::default()
        },
    )
    .expect("build pipeline");
    println!(
        "indexed {} docs into {} chunks, encoded in {:?} ({} KiB of attention states)",
        docs.len(),
        rag.num_chunks(),
        build_start.elapsed(),
        rag.engine().cached_bytes() / 1024,
    );

    // Query: retrieval picks the right chunks; context costs a memcpy.
    let opts = ServeOptions::default().max_new_tokens(4);
    for (entity, answer) in facts.iter().take(3) {
        let question = format!("what is the secret code for {entity}");
        let cached = rag.query_with(&question, 2, &opts).expect("query");
        let baseline = rag.query_baseline(&question, 2, &opts).expect("baseline");
        let hit = rag
            .chunk(cached.retrieved[0])
            .map(|c| c.contains(answer.as_str()))
            .unwrap_or(false);
        println!(
            "\nQ: {question}\n  retrieved chunks {:?} (gold fact present: {hit})\n  \
             TTFT {:?} cached vs {:?} uncached RAG ({:.1}x), {:.0}% of prompt from cache",
            cached.retrieved,
            cached.response.timings.ttft,
            baseline.response.timings.ttft,
            baseline.response.timings.ttft.as_secs_f64()
                / cached.response.timings.ttft.as_secs_f64(),
            cached.response.stats.hit_ratio() * 100.0,
        );
    }
}
