//! Multi-turn dialogue over a cached session — the "dialogue systems"
//! deployment of §6. The document modules are shared across all
//! conversations; within one conversation every turn reuses the session
//! cache, so per-turn TTFT tracks the new message, not the history.
//!
//! ```text
//! cargo run --release --example chat
//! ```

use pc_model::{Model, ModelConfig};
use pc_tokenizer::{Tokenizer, WordTokenizer};
use prompt_cache::{EngineConfig, PromptCache, ServeOptions};

fn main() {
    let doc: String = (0..250).map(|i| format!("fact{} ", i % 61)).collect();
    let corpus = format!(
        "{doc} you are a helpful guide tell me about the area what should i eat \
         and where should i stay compare the options please"
    );
    let tokenizer = WordTokenizer::train(&[corpus.as_str()]);
    let vocab = tokenizer.vocab_size().max(64);
    let engine = PromptCache::new(
        Model::new(ModelConfig::llama_small(vocab), 21),
        tokenizer,
        EngineConfig::default(),
    );
    engine
        .register_schema(&format!(
            r#"<schema name="guide">
                 you are a helpful guide
                 <module name="area">{doc}</module>
               </schema>"#
        ))
        .expect("register");

    let opts = ServeOptions::default().max_new_tokens(6);
    let (mut convo, first) = engine
        .conversation(
            r#"<prompt schema="guide"><area/>tell me about the area</prompt>"#,
            &opts,
        )
        .expect("open conversation");
    println!(
        "turn 1 (opens session, {} tokens cached from modules): TTFT {:?}\n  reply: {:?}",
        first.stats.cached_tokens, first.timings.ttft, first.text
    );

    for (i, message) in [
        "what should i eat",
        "and where should i stay",
        "compare the options please",
    ]
    .iter()
    .enumerate()
    {
        let r = convo.say(message, &opts).expect("turn");
        println!(
            "turn {} ({} history tokens reused, {} new): TTFT {:?}\n  reply: {:?}",
            i + 2,
            r.stats.cached_tokens,
            r.stats.new_tokens,
            r.timings.ttft,
            r.text
        );
    }
    println!(
        "\nsession holds {} tokens across {} turns",
        convo.session_tokens(),
        convo.turns()
    );
}
