//! Figure 8 scenario: parameterized prompts. One templated trip-plan
//! module takes a runtime `duration` argument (computed at the `<unk>`
//! placeholder positions and spliced over them), and two unions pick the
//! destination and lodging — the template reconfigures per request while
//! staying cached.
//!
//! ```text
//! cargo run --release --example trip_planner
//! ```

use pc_model::{Model, ModelConfig};
use pc_pml::program::PromptProgram;
use pc_tokenizer::{Tokenizer, WordTokenizer};
use prompt_cache::{EngineConfig, PromptCache, ServeOptions};
use prompt_cache::{ServeRequest, Served};

fn main() {
    // Build the schema as a prompt program (§3.2.4): function call →
    // module, argument → param, choose-one → union.
    let schema = PromptProgram::new("travel")
        .text("you are an experienced travel planner")
        .call("trip-plan", |m| {
            m.text("plan a trip with a duration of")
                .param("duration", 3)
                .text("including notes on budget weather and transport")
        })
        .choose(|u| {
            u.case("miami", |m| {
                m.text("miami florida offers beaches surfing nightlife and cuban food")
            })
            .case("seattle", |m| {
                m.text("seattle washington offers mountains coffee museums and rain")
            })
        })
        .choose(|u| {
            u.case("hotel", |m| m.text("the traveler stays in a downtown hotel"))
                .case("hostel", |m| m.text("the traveler stays in a social hostel"))
        })
        .build();

    let corpus = "you are an experienced travel planner plan a trip with a duration of \
        including notes on budget weather and transport miami florida offers beaches surfing \
        nightlife and cuban food seattle washington offers mountains coffee museums and rain \
        the traveler stays in a downtown hotel the traveler stays in a social hostel \
        make the itinerary now three days two weeks one month";
    let tokenizer = WordTokenizer::train(&[corpus]);
    let vocab = tokenizer.vocab_size().max(64);
    let engine = PromptCache::new(
        Model::new(ModelConfig::llama_small(vocab), 8),
        tokenizer,
        EngineConfig::default(),
    );
    engine.register_schema_ast(&schema).expect("register");
    println!("schema as PML:\n{}\n", schema);

    let opts = ServeOptions::default().max_new_tokens(8);

    // The same cached template, reconfigured three ways at runtime.
    let requests = [
        ("three days", "miami", "hostel"),
        ("two weeks", "seattle", "hotel"),
        ("one month", "miami", "hotel"),
    ];
    for (duration, city, lodging) in requests {
        let prompt = format!(
            r#"<prompt schema="travel"><trip-plan duration="{duration}"/><{city}/><{lodging}/>make the itinerary now</prompt>"#
        );
        let r = engine.serve(&ServeRequest::new(&prompt).options(opts.clone())).map(Served::into_response).expect("serve");
        println!(
            "{duration:>10} / {city:>7} / {lodging:>6}: {:.0}% cached, TTFT {:?}, output {:?}",
            r.stats.hit_ratio() * 100.0,
            r.timings.ttft,
            r.text
        );
    }

    // Overlong arguments are rejected against the declared budget.
    let overlong = engine.serve(&ServeRequest::new(r#"<prompt schema="travel"><trip-plan duration="a very long argument of many words"/><miami/><hotel/>go</prompt>"#).options(opts.clone())).map(Served::into_response);
    println!("\noverlong argument rejected: {}", overlong.is_err());
}
