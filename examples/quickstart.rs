//! Quickstart: register a schema, serve a prompt with cached attention
//! states, and compare against the baseline full prefill.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use pc_model::{Model, ModelConfig};
use pc_tokenizer::WordTokenizer;
use prompt_cache::{EngineConfig, PromptCache, ServeOptions};
use prompt_cache::{ServeRequest, Served};

fn main() {
    // 1. A model and tokenizer. The reproduction uses seeded random
    //    weights: Prompt Cache's guarantees are about attention-state
    //    reuse, which is weight-agnostic.
    let corpus = "miami florida offers warm beaches surfing and cuban food \
                  all year round what should i do there on a weekend";
    let tokenizer = WordTokenizer::train(&[corpus]);
    let model = Model::new(ModelConfig::llama_small(tokenizer_len(&tokenizer)), 42);
    let engine = PromptCache::new(model, tokenizer, EngineConfig::default());

    // 2. Register a schema. Every <module> is encoded once and cached.
    engine
        .register_schema(
            r#"<schema name="cities">
                 <module name="miami">
                   miami florida offers warm beaches surfing and cuban food all year round
                 </module>
               </schema>"#,
        )
        .expect("valid schema");

    // 3. Serve a prompt derived from the schema. The module's attention
    //    states come from the cache; only the question is computed.
    let prompt = r#"<prompt schema="cities"><miami/>what should i do there on a weekend</prompt>"#;
    let opts = ServeOptions::default().max_new_tokens(8);
    let cached = engine.serve(&ServeRequest::new(prompt).options(opts.clone())).map(Served::into_response).expect("serve");
    let baseline = engine.serve(&ServeRequest::new(prompt).options(opts.clone()).baseline(true)).map(Served::into_response).expect("serve baseline");

    println!("generated (cached):   {:?}", cached.text);
    println!("generated (baseline): {:?}", baseline.text);
    println!(
        "outputs identical: {}",
        cached.tokens == baseline.tokens
    );
    println!(
        "cache hit: {}/{} prompt tokens ({:.0}%)",
        cached.stats.cached_tokens,
        cached.stats.cached_tokens + cached.stats.new_tokens,
        cached.stats.hit_ratio() * 100.0
    );
    println!(
        "TTFT: cached {:?} vs baseline {:?} ({:.1}x)",
        cached.timings.ttft,
        baseline.timings.ttft,
        baseline.timings.ttft.as_secs_f64() / cached.timings.ttft.as_secs_f64()
    );
}

fn tokenizer_len(t: &WordTokenizer) -> usize {
    use pc_tokenizer::Tokenizer;
    t.vocab_size().max(64)
}
