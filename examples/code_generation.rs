//! Figure 6 scenario: multi-file code generation. Each source file is a
//! prompt module, so users "import" files into their prompt context with
//! minimal overhead, and a request touching four files pays prefill only
//! for its instruction.
//!
//! ```text
//! cargo run --release --example code_generation
//! ```

use pc_longbench::corpus::Corpus;
use pc_model::{Model, ModelConfig};
use pc_tokenizer::{Tokenizer, WordTokenizer};
use prompt_cache::{EngineConfig, PromptCache, ServeOptions};
use prompt_cache::{ServeRequest, Served};

fn main() {
    // Four synthetic source files — the Unit/Map/Game/Player split of the
    // paper's game-programming example.
    let corpus = Corpus::new(6);
    let files: Vec<(&str, String)> = ["unit", "map", "game", "player"]
        .iter()
        .enumerate()
        .map(|(i, name)| (*name, corpus.code_file(i as u64, 150)))
        .collect();

    let mut schema = String::from(r#"<schema name="repo">"#);
    for (name, code) in &files {
        schema.push_str(&format!(r#"<module name="{name}">{code}</module>"#));
    }
    schema.push_str("</schema>");

    let instruction = "write the next function extending the game loop";
    let mut texts: Vec<&str> = files.iter().map(|(_, c)| c.as_str()).collect();
    texts.push(instruction);
    let tokenizer = WordTokenizer::train(&texts);
    let vocab = tokenizer.vocab_size().max(64);
    let engine = PromptCache::new(
        Model::new(ModelConfig::llama_small(vocab), 6),
        tokenizer,
        EngineConfig::default(),
    );
    let info = engine.register_schema(&schema).expect("register");
    println!(
        "indexed {} source files as prompt modules ({} tokens cached)",
        files.len(),
        info.cached_tokens
    );

    let opts = ServeOptions::default().max_new_tokens(12);

    // Request 1: the full repository context.
    let full = format!(
        r#"<prompt schema="repo"><unit/><map/><game/><player/>{instruction}</prompt>"#
    );
    let cached = engine.serve(&ServeRequest::new(&full).options(opts.clone())).map(Served::into_response).expect("serve");
    let baseline = engine.serve(&ServeRequest::new(&full).options(opts.clone()).baseline(true)).map(Served::into_response).expect("baseline");
    println!(
        "\nall four files: TTFT {:?} cached vs {:?} baseline ({:.1}x), identical output: {}",
        cached.timings.ttft,
        baseline.timings.ttft,
        baseline.timings.ttft.as_secs_f64() / cached.timings.ttft.as_secs_f64(),
        cached.tokens == baseline.tokens,
    );

    // Request 2: a different file subset — modules compose freely.
    let subset = format!(r#"<prompt schema="repo"><unit/><player/>{instruction}</prompt>"#);
    let r = engine.serve(&ServeRequest::new(&subset).options(opts.clone())).map(Served::into_response).expect("serve subset");
    println!(
        "unit+player only: {} cached / {} new tokens, TTFT {:?}",
        r.stats.cached_tokens, r.stats.new_tokens, r.timings.ttft
    );
}
