//! Property-based tests for PML: serialisation round-trips and layout
//! invariants over randomly generated schemas.

use pc_pml::layout::{SchemaLayout, Segment};
use pc_pml::template::ChatTemplate;
use pc_pml::{parse_prompt, parse_schema, ModuleDef, ModuleItem, Prompt, PromptItem, Schema, SchemaItem};
use proptest::prelude::*;

fn words(text: &str) -> usize {
    text.split_whitespace().count()
}

fn arb_text() -> impl Strategy<Value = String> {
    proptest::collection::vec("[a-z]{1,6}", 1..6).prop_map(|w| w.join(" "))
}

fn arb_module(depth: u32) -> BoxedStrategy<ModuleDef> {
    let name = "[a-z][a-z0-9-]{0,6}";
    let item = if depth == 0 {
        prop_oneof![
            arb_text().prop_map(ModuleItem::Text),
            ("[a-z]{1,5}", 1usize..5).prop_map(|(n, l)| ModuleItem::Param { name: n, len: l }),
        ]
        .boxed()
    } else {
        prop_oneof![
            arb_text().prop_map(ModuleItem::Text),
            ("[a-z]{1,5}", 1usize..5).prop_map(|(n, l)| ModuleItem::Param { name: n, len: l }),
            arb_module(depth - 1).prop_map(ModuleItem::Module),
        ]
        .boxed()
    };
    (name.prop_map(String::from), proptest::collection::vec(item, 0..4))
        .prop_map(|(name, items)| sanitize_module(name, items))
        .boxed()
}

/// Makes generated modules structurally valid: unique param and child
/// names, no reserved names.
fn sanitize_module(name: String, items: Vec<ModuleItem>) -> ModuleDef {
    const RESERVED: [&str; 8] = [
        "schema", "module", "union", "param", "prompt", "system", "user", "assistant",
    ];
    let name = if RESERVED.contains(&name.as_str()) {
        format!("{name}-m")
    } else {
        name
    };
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::new();
    for (i, item) in items.into_iter().enumerate() {
        match item {
            ModuleItem::Param { name, len } => {
                let name = format!("{name}{i}");
                if seen.insert(name.clone()) {
                    out.push(ModuleItem::Param { name, len });
                }
            }
            ModuleItem::Module(m) => {
                let renamed = ModuleDef {
                    name: format!("{}{i}", m.name),
                    items: m.items,
                };
                if seen.insert(renamed.name.clone()) {
                    out.push(ModuleItem::Module(renamed));
                }
            }
            other => out.push(other),
        }
    }
    ModuleDef { name, items: out }
}

fn arb_schema() -> impl Strategy<Value = Schema> {
    let item = prop_oneof![
        arb_text().prop_map(SchemaItem::Text),
        arb_module(1).prop_map(SchemaItem::Module),
        proptest::collection::vec(arb_module(0), 1..4).prop_map(SchemaItem::Union),
    ];
    ("[a-z]{1,8}", proptest::collection::vec(item, 0..5)).prop_map(|(name, items)| {
        // Rename top-level modules/union members to be globally unique.
        let mut counter = 0usize;
        let items = items
            .into_iter()
            .map(|i| match i {
                SchemaItem::Module(m) => {
                    counter += 1;
                    SchemaItem::Module(ModuleDef {
                        name: format!("{}-{counter}", m.name),
                        items: m.items,
                    })
                }
                SchemaItem::Union(ms) => SchemaItem::Union(
                    ms.into_iter()
                        .map(|m| {
                            counter += 1;
                            ModuleDef {
                                name: format!("{}-{counter}", m.name),
                                items: m.items,
                            }
                        })
                        .collect(),
                ),
                other => other,
            })
            .collect();
        Schema { name, items }
    })
}

/// Merges adjacent text nodes the way Display-then-parse does (they
/// serialise back-to-back and re-lex as one node).
fn normalize_schema(schema: Schema) -> Schema {
    fn norm_items(items: Vec<SchemaItem>) -> Vec<SchemaItem> {
        let mut out: Vec<SchemaItem> = Vec::new();
        for item in items {
            let item = match item {
                SchemaItem::Module(m) => SchemaItem::Module(norm_module(m)),
                SchemaItem::Union(ms) => {
                    SchemaItem::Union(ms.into_iter().map(norm_module).collect())
                }
                SchemaItem::Chat { role, items } => SchemaItem::Chat {
                    role,
                    items: norm_items(items),
                },
                t => t,
            };
            match (out.last_mut(), item) {
                (Some(SchemaItem::Text(prev)), SchemaItem::Text(next)) => prev.push_str(&next),
                (_, item) => out.push(item),
            }
        }
        out
    }
    fn norm_module(m: ModuleDef) -> ModuleDef {
        let mut out: Vec<ModuleItem> = Vec::new();
        for item in m.items {
            let item = match item {
                ModuleItem::Module(inner) => ModuleItem::Module(norm_module(inner)),
                ModuleItem::Union(ms) => {
                    ModuleItem::Union(ms.into_iter().map(norm_module).collect())
                }
                t => t,
            };
            match (out.last_mut(), item) {
                (Some(ModuleItem::Text(prev)), ModuleItem::Text(next)) => prev.push_str(&next),
                (_, item) => out.push(item),
            }
        }
        ModuleDef {
            name: m.name,
            items: out,
        }
    }
    Schema {
        name: schema.name,
        items: norm_items(schema.items),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Display ∘ parse is the identity on generated schemas (up to the
    /// lexer's merging of adjacent text nodes).
    #[test]
    fn schema_serialisation_round_trips(schema in arb_schema()) {
        let reparsed = parse_schema(&schema.to_string()).unwrap();
        prop_assert_eq!(normalize_schema(schema), reparsed);
    }

    /// Layout spans owned by different non-union modules never overlap.
    #[test]
    fn non_union_spans_are_disjoint(schema in arb_schema()) {
        let layout = SchemaLayout::build(&schema, ChatTemplate::Plain, &words);
        let spans: Vec<_> = layout.spans.iter().filter(|s| s.len > 0).collect();
        for (i, a) in spans.iter().enumerate() {
            for b in spans.iter().skip(i + 1) {
                // Skip pairs where either owner sits under a union group
                // (union members legitimately share positions) or where one
                // is the ancestor of the other (parents wrap children).
                let union_involved = [&a.owner, &b.owner].iter().any(|o| {
                    (1..=o.len()).any(|k| {
                        layout
                            .module(&o[..k])
                            .is_some_and(|m| m.union_group.is_some())
                    })
                });
                if union_involved {
                    continue;
                }
                let overlap = a.start < b.start + b.len && b.start < a.start + a.len;
                prop_assert!(!overlap, "{a:?} overlaps {b:?}");
            }
        }
    }

    /// Every span's segment lengths sum to its recorded length, and every
    /// module's params lie inside the module's range.
    #[test]
    fn layout_internal_consistency(schema in arb_schema()) {
        let layout = SchemaLayout::build(&schema, ChatTemplate::Plain, &words);
        for span in &layout.spans {
            let sum: usize = span.segments.iter().map(Segment::len).sum();
            prop_assert_eq!(sum, span.len);
        }
        for m in &layout.modules {
            prop_assert!(m.start <= m.end);
            for p in &m.params {
                prop_assert!(p.start >= m.start && p.start + p.len <= m.end);
            }
        }
        // total_len bounds every span.
        for span in &layout.spans {
            prop_assert!(span.start + span.len <= layout.total_len);
        }
    }

    /// Prompt serialisation round-trips.
    #[test]
    fn prompt_serialisation_round_trips(
        schema_name in "[a-z]{1,8}",
        names in proptest::collection::vec("[a-z]{1,6}", 0..5),
        text in arb_text(),
    ) {
        let items: Vec<PromptItem> = names
            .iter()
            .map(|n| PromptItem::import(n))
            .chain([PromptItem::Text(text)])
            .collect();
        let prompt = Prompt { schema: schema_name, items };
        let reparsed = parse_prompt(&prompt.to_string()).unwrap();
        prop_assert_eq!(prompt, reparsed);
    }

    /// Parsing never panics on arbitrary input.
    #[test]
    fn parser_total_on_garbage(src in "\\PC{0,120}") {
        let _ = parse_schema(&src);
        let _ = parse_prompt(&src);
    }
}
