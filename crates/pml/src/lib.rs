//! Prompt Markup Language (PML) — schemas, prompts, layout, and resolution.
//!
//! PML is the user-facing half of Prompt Cache (paper §3.2): a small markup
//! language that makes the reusable structure of prompts explicit so the
//! engine can cache and reuse attention states safely.
//!
//! * A **schema** declares prompt modules (`<module>`), parameters
//!   (`<param>`), mutually-exclusive groups (`<union>`), nesting, and
//!   chat-role wrappers (`<system>/<user>/<assistant>`).
//! * A **prompt** derives from a schema (`<prompt schema="…">`), imports
//!   modules (`<miami/>`), supplies parameter arguments
//!   (`<trip-plan duration="3 days"/>`), and adds uncached text.
//!
//! The crate covers the full pipeline up to (but not including) tensor
//! work:
//!
//! 1. [`parse_schema`] / [`parse_prompt`] — text → AST.
//! 2. [`layout::SchemaLayout`] — assigns every module its absolute
//!    position-ID range (§3.3): sequential cursors, unions sharing a start
//!    position and advancing by their largest member, parameters reserving
//!    `len` `<unk>` slots.
//! 3. [`resolve::resolve_prompt`] — validates a prompt against its schema
//!    and produces the ordered cached-span / argument / new-text parts with
//!    concrete position IDs (§3.4) for the engine in `prompt-cache`.
//! 4. [`program::PromptProgram`] — the "prompt programs → PML" compiler of
//!    §3.2.4, as a Rust builder (if → module, choose-one → union, function
//!    call → nested module, argument → param).
//!
//! # Example
//!
//! ```
//! use pc_pml::{parse_schema, parse_prompt};
//!
//! let schema = parse_schema(r#"
//!   <schema name="travel">
//!     <module name="miami">Miami is warm.</module>
//!     <module name="trip-plan">
//!       Plan a trip of <param name="duration" len="2"/>.
//!     </module>
//!   </schema>"#).unwrap();
//! let prompt = parse_prompt(r#"
//!   <prompt schema="travel">
//!     <trip-plan duration="3 days"/><miami/>
//!     Highlight the surf spots.
//!   </prompt>"#).unwrap();
//! assert_eq!(schema.name, "travel");
//! assert_eq!(prompt.schema, "travel");
//! ```

#![warn(missing_docs)]

mod ast;
mod error;
pub mod layout;
pub mod lint;
mod lexer;
mod parser;
pub mod pretty;
pub mod program;
pub mod resolve;
pub mod template;

pub use ast::{ModuleDef, ModuleItem, Prompt, PromptItem, Role, Schema, SchemaItem};
pub use error::PmlError;
pub use parser::{parse_prompt, parse_schema};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, PmlError>;
