//! Prompt programs → PML compilation (paper §3.2.4).
//!
//! The paper ships a Python API that turns prompt programs into PML
//! schemas: `if` statements become `<module>`s, choose-one statements
//! become `<union>`s, function calls become nested modules, and decorated
//! arguments become `<param>`s. [`PromptProgram`] is the Rust equivalent —
//! a builder whose output is a [`Schema`] (and, via `Display`, PML text).
//!
//! # Example
//!
//! ```
//! use pc_pml::program::PromptProgram;
//!
//! let schema = PromptProgram::new("assistant")
//!     .text("You are a helpful assistant.")
//!     .cond("verbose", |m| m.text("Answer at length."))
//!     .choose(|u| {
//!         u.case("english", |m| m.text("Respond in English."))
//!          .case("french", |m| m.text("Respond in French."))
//!     })
//!     .call("profile", |m| {
//!         m.text("The user is named")
//!          .param("name", 4)
//!     })
//!     .build();
//! assert_eq!(schema.items.len(), 4);
//! ```

use crate::ast::{ModuleDef, ModuleItem, Role, Schema, SchemaItem};

/// Builder that compiles a prompt program into a PML schema.
#[derive(Debug, Clone)]
pub struct PromptProgram {
    name: String,
    items: Vec<SchemaItem>,
}

impl PromptProgram {
    /// Starts a program that compiles to a schema named `name`.
    pub fn new(name: &str) -> Self {
        PromptProgram {
            name: name.to_owned(),
            items: Vec::new(),
        }
    }

    /// Unconditional text — always included (an anonymous module).
    pub fn text(mut self, text: &str) -> Self {
        self.items.push(SchemaItem::Text(text.to_owned()));
        self
    }

    /// An `if`-conditional block: included only when the prompt imports
    /// the module named `name`.
    pub fn cond(mut self, name: &str, body: impl FnOnce(ModuleBuilder) -> ModuleBuilder) -> Self {
        let module = body(ModuleBuilder::new(name)).finish();
        self.items.push(SchemaItem::Module(module));
        self
    }

    /// A choose-one (`if`/`else` or `match`) block: compiles to a union.
    pub fn choose(mut self, body: impl FnOnce(UnionBuilder) -> UnionBuilder) -> Self {
        let members = body(UnionBuilder::default()).members;
        self.items.push(SchemaItem::Union(members));
        self
    }

    /// A function call: compiles to a module (callers import it like any
    /// conditional; nested calls compile to nested modules).
    pub fn call(self, name: &str, body: impl FnOnce(ModuleBuilder) -> ModuleBuilder) -> Self {
        self.cond(name, body)
    }

    /// Wraps items built by `body` in a chat-role tag.
    pub fn role(mut self, role: Role, body: impl FnOnce(PromptProgram) -> PromptProgram) -> Self {
        let inner = body(PromptProgram::new("__role__"));
        self.items.push(SchemaItem::Chat {
            role,
            items: inner.items,
        });
        self
    }

    /// Finishes the program, producing a schema AST.
    pub fn build(self) -> Schema {
        Schema {
            name: self.name,
            items: self.items,
        }
    }

    /// Finishes the program, producing PML text.
    pub fn to_pml(self) -> String {
        self.build().to_string()
    }
}

/// Builds one module's body.
#[derive(Debug, Clone)]
pub struct ModuleBuilder {
    name: String,
    items: Vec<ModuleItem>,
}

impl ModuleBuilder {
    fn new(name: &str) -> Self {
        ModuleBuilder {
            name: name.to_owned(),
            items: Vec::new(),
        }
    }

    /// Literal text inside the module.
    pub fn text(mut self, text: &str) -> Self {
        self.items.push(ModuleItem::Text(text.to_owned()));
        self
    }

    /// A parameter slot (the `@parameter(max_len)` decorator of the
    /// paper's Python API).
    pub fn param(mut self, name: &str, len: usize) -> Self {
        self.items.push(ModuleItem::Param {
            name: name.to_owned(),
            len,
        });
        self
    }

    /// A nested conditional (nested `if` → nested module).
    pub fn cond(mut self, name: &str, body: impl FnOnce(ModuleBuilder) -> ModuleBuilder) -> Self {
        let module = body(ModuleBuilder::new(name)).finish();
        self.items.push(ModuleItem::Module(module));
        self
    }

    /// A nested choose-one (nested `match` → nested union).
    pub fn choose(mut self, body: impl FnOnce(UnionBuilder) -> UnionBuilder) -> Self {
        let members = body(UnionBuilder::default()).members;
        self.items.push(ModuleItem::Union(members));
        self
    }

    fn finish(self) -> ModuleDef {
        ModuleDef {
            name: self.name,
            items: self.items,
        }
    }
}

/// Builds a union's member list.
#[derive(Debug, Clone, Default)]
pub struct UnionBuilder {
    members: Vec<ModuleDef>,
}

impl UnionBuilder {
    /// One arm of the choose-one.
    pub fn case(mut self, name: &str, body: impl FnOnce(ModuleBuilder) -> ModuleBuilder) -> Self {
        self.members.push(body(ModuleBuilder::new(name)).finish());
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::SchemaLayout;
    use crate::template::ChatTemplate;
    use crate::{parse_prompt, parse_schema, resolve::resolve_prompt};

    fn words(text: &str) -> usize {
        text.split_whitespace().count()
    }

    #[test]
    fn if_becomes_module() {
        let s = PromptProgram::new("p")
            .cond("flag", |m| m.text("conditional text"))
            .build();
        assert!(matches!(&s.items[0], SchemaItem::Module(m) if m.name == "flag"));
    }

    #[test]
    fn choose_becomes_union() {
        let s = PromptProgram::new("p")
            .choose(|u| u.case("a", |m| m.text("x")).case("b", |m| m.text("y")))
            .build();
        let SchemaItem::Union(members) = &s.items[0] else {
            panic!()
        };
        assert_eq!(members.len(), 2);
    }

    #[test]
    fn call_nests_modules() {
        let s = PromptProgram::new("p")
            .call("outer", |m| m.text("a").cond("inner", |m| m.text("b")))
            .build();
        let SchemaItem::Module(outer) = &s.items[0] else {
            panic!()
        };
        assert_eq!(outer.child_module_names(), vec!["inner"]);
    }

    #[test]
    fn param_matches_decorator_semantics() {
        let s = PromptProgram::new("p")
            .cond("greet", |m| m.text("Hello").param("name", 5))
            .build();
        let SchemaItem::Module(m) = &s.items[0] else {
            panic!()
        };
        assert_eq!(m.params(), vec![("name", 5)]);
    }

    #[test]
    fn generated_pml_parses_back_identically() {
        let schema = PromptProgram::new("round")
            .text("intro")
            .cond("a", |m| m.text("body").param("x", 2))
            .choose(|u| u.case("l", |m| m.text("left")).case("r", |m| m.text("right")))
            .role(Role::System, |p| p.text("sys text"))
            .build();
        let reparsed = parse_schema(&schema.to_string()).unwrap();
        assert_eq!(schema, reparsed);
    }

    #[test]
    fn generated_schema_is_usable_end_to_end() {
        let schema = PromptProgram::new("e2e")
            .text("base context words")
            .cond("detail", |m| m.text("extra detail text"))
            .build();
        let layout = SchemaLayout::build(&schema, ChatTemplate::Plain, &words);
        let prompt = parse_prompt(r#"<prompt schema="e2e"><detail/>go</prompt>"#).unwrap();
        let resolved = resolve_prompt(&layout, &prompt, &words).unwrap();
        assert_eq!(resolved.cached_tokens(), 3 + 3);
        assert_eq!(resolved.new_tokens(), 1);
    }

    #[test]
    fn nested_choose_inside_module() {
        let s = PromptProgram::new("p")
            .cond("profile", |m| {
                m.text("user level:").choose(|u| {
                    u.case("novice", |m| m.text("novice"))
                        .case("expert", |m| m.text("expert"))
                })
            })
            .build();
        let SchemaItem::Module(m) = &s.items[0] else {
            panic!()
        };
        assert!(m
            .items
            .iter()
            .any(|i| matches!(i, ModuleItem::Union(u) if u.len() == 2)));
    }
}
