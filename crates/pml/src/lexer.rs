//! A small XML-ish lexer for PML.
//!
//! PML needs only a fraction of XML: open tags with double-quoted
//! attributes, close tags, self-closing tags, text, and the three
//! entities `&amp; &lt; &gt;`. Comments (`<!-- -->`) are skipped.

use crate::{PmlError, Result};

/// One lexical token with its byte offset (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// `<name attr="v"…>` or `<name …/>` (self_closing distinguishes).
    Open {
        /// Tag name.
        name: String,
        /// Attributes in document order.
        attrs: Vec<(String, String)>,
        /// Whether the tag ended with `/>`.
        self_closing: bool,
        /// Byte offset of `<`.
        offset: usize,
    },
    /// `</name>`.
    Close {
        /// Tag name.
        name: String,
        /// Byte offset of `<`.
        offset: usize,
    },
    /// Text between tags, entity-decoded. Whitespace-only text between
    /// tags is dropped by the lexer; leading/trailing whitespace of mixed
    /// text is trimmed (PML is whitespace-insensitive at tag boundaries).
    Text {
        /// The decoded text.
        text: String,
        /// Byte offset where it began.
        offset: usize,
    },
}

/// Tokenises a PML document.
///
/// # Errors
///
/// Returns [`PmlError::Parse`] for malformed tags, unterminated strings,
/// or stray `<`.
pub fn lex(src: &str) -> Result<Vec<Token>> {
    let bytes = src.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'<' {
            if src[i..].starts_with("<!--") {
                let end = src[i..].find("-->").ok_or_else(|| PmlError::Parse {
                    offset: i,
                    message: "unterminated comment".into(),
                })?;
                i += end + 3;
                continue;
            }
            let (token, next) = lex_tag(src, i)?;
            tokens.push(token);
            i = next;
        } else {
            let start = i;
            while i < bytes.len() && bytes[i] != b'<' {
                i += 1;
            }
            let raw = &src[start..i];
            let trimmed = raw.trim();
            if !trimmed.is_empty() {
                tokens.push(Token::Text {
                    text: decode_entities(trimmed),
                    offset: start,
                });
            }
        }
    }
    Ok(tokens)
}

fn lex_tag(src: &str, start: usize) -> Result<(Token, usize)> {
    let err = |offset: usize, message: &str| PmlError::Parse {
        offset,
        message: message.into(),
    };
    let bytes = src.as_bytes();
    let mut i = start + 1;
    let closing = bytes.get(i) == Some(&b'/');
    if closing {
        i += 1;
    }
    let name_start = i;
    while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'-' || bytes[i] == b'_')
    {
        i += 1;
    }
    if i == name_start {
        return Err(err(start, "expected tag name after `<`"));
    }
    let name = src[name_start..i].to_owned();

    if closing {
        i = skip_ws(bytes, i);
        if bytes.get(i) != Some(&b'>') {
            return Err(err(i, "expected `>` after closing tag name"));
        }
        return Ok((Token::Close { name, offset: start }, i + 1));
    }

    let mut attrs = Vec::new();
    loop {
        i = skip_ws(bytes, i);
        match bytes.get(i) {
            Some(b'>') => {
                return Ok((
                    Token::Open {
                        name,
                        attrs,
                        self_closing: false,
                        offset: start,
                    },
                    i + 1,
                ));
            }
            Some(b'/') => {
                if bytes.get(i + 1) != Some(&b'>') {
                    return Err(err(i, "expected `>` after `/`"));
                }
                return Ok((
                    Token::Open {
                        name,
                        attrs,
                        self_closing: true,
                        offset: start,
                    },
                    i + 2,
                ));
            }
            Some(_) => {
                let key_start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'-' || bytes[i] == b'_')
                {
                    i += 1;
                }
                if i == key_start {
                    return Err(err(i, "expected attribute name"));
                }
                let key = src[key_start..i].to_owned();
                i = skip_ws(bytes, i);
                if bytes.get(i) != Some(&b'=') {
                    return Err(err(i, "expected `=` after attribute name"));
                }
                i = skip_ws(bytes, i + 1);
                if bytes.get(i) != Some(&b'"') {
                    return Err(err(i, "expected `\"` to open attribute value"));
                }
                i += 1;
                let val_start = i;
                while i < bytes.len() && bytes[i] != b'"' {
                    i += 1;
                }
                if i >= bytes.len() {
                    return Err(err(val_start, "unterminated attribute value"));
                }
                attrs.push((key, decode_entities(&src[val_start..i])));
                i += 1;
            }
            None => return Err(err(start, "unterminated tag")),
        }
    }
}

fn skip_ws(bytes: &[u8], mut i: usize) -> usize {
    while i < bytes.len() && bytes[i].is_ascii_whitespace() {
        i += 1;
    }
    i
}

fn decode_entities(text: &str) -> String {
    text.replace("&lt;", "<").replace("&gt;", ">").replace("&amp;", "&")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_open_close_text() {
        let toks = lex("<a>hello</a>").unwrap();
        assert_eq!(toks.len(), 3);
        assert!(matches!(&toks[0], Token::Open { name, self_closing: false, .. } if name == "a"));
        assert!(matches!(&toks[1], Token::Text { text, .. } if text == "hello"));
        assert!(matches!(&toks[2], Token::Close { name, .. } if name == "a"));
    }

    #[test]
    fn lexes_attributes() {
        let toks = lex(r#"<module name="doc-1" len="5"/>"#).unwrap();
        let Token::Open {
            attrs,
            self_closing,
            ..
        } = &toks[0]
        else {
            panic!("expected open tag");
        };
        assert!(*self_closing);
        assert_eq!(attrs[0], ("name".into(), "doc-1".into()));
        assert_eq!(attrs[1], ("len".into(), "5".into()));
    }

    #[test]
    fn whitespace_only_text_is_dropped() {
        let toks = lex("<a>\n   </a>").unwrap();
        assert_eq!(toks.len(), 2);
    }

    #[test]
    fn text_is_trimmed() {
        let toks = lex("<a>\n  hi there \n</a>").unwrap();
        assert!(matches!(&toks[1], Token::Text { text, .. } if text == "hi there"));
    }

    #[test]
    fn entities_decoded_in_text_and_attrs() {
        let toks = lex(r#"<a v="x &amp; y">1 &lt; 2</a>"#).unwrap();
        let Token::Open { attrs, .. } = &toks[0] else { panic!() };
        assert_eq!(attrs[0].1, "x & y");
        assert!(matches!(&toks[1], Token::Text { text, .. } if text == "1 < 2"));
    }

    #[test]
    fn comments_skipped() {
        let toks = lex("<a><!-- note -->x</a>").unwrap();
        assert_eq!(toks.len(), 3);
    }

    #[test]
    fn error_offsets_point_at_problem() {
        let err = lex("text <").unwrap_err();
        assert!(matches!(err, PmlError::Parse { offset: 5, .. }));
        assert!(lex(r#"<a v="unterminated>"#).is_err());
        assert!(lex("<a b>").is_err());
        assert!(lex("</a junk>").is_err());
        assert!(lex("<!-- unterminated").is_err());
    }

    #[test]
    fn hyphenated_and_underscored_names() {
        let toks = lex("<trip-plan/><my_mod/>").unwrap();
        assert!(matches!(&toks[0], Token::Open { name, .. } if name == "trip-plan"));
        assert!(matches!(&toks[1], Token::Open { name, .. } if name == "my_mod"));
    }
}
