//! Prompt resolution: validation against a schema layout and assignment of
//! concrete position IDs to every prompt part (paper §3.4).
//!
//! Resolution produces the exact work list the engine executes:
//!
//! * [`ResolvedPart::Cached`] — an imported module span whose attention
//!   states come from the cache (step ② in Figure 2);
//! * [`ResolvedPart::Argument`] — parameter text computed at the `<unk>`
//!   placeholder positions and spliced over them (step ③);
//! * [`ResolvedPart::NewText`] — uncached text computed at gap positions
//!   following the preceding content (step ④).

use crate::ast::{Prompt, PromptItem};
use crate::layout::{ModulePath, SchemaLayout};
use crate::{PmlError, Result};
use std::collections::HashMap;

/// One unit of engine work, in prompt order.
#[derive(Debug, Clone, PartialEq)]
pub enum ResolvedPart {
    /// Reuse the cached states of one span of an imported module.
    Cached {
        /// Owning module path.
        module: ModulePath,
        /// Index into [`SchemaLayout::spans`].
        span_index: usize,
        /// Absolute start position.
        start: usize,
        /// Token length.
        len: usize,
    },
    /// Compute a parameter argument at its placeholder positions.
    Argument {
        /// Module the parameter belongs to.
        module: ModulePath,
        /// Parameter name.
        param: String,
        /// Supplied argument text.
        text: String,
        /// Absolute position of the first placeholder slot.
        start: usize,
        /// Declared maximum length.
        max_len: usize,
        /// Actual token length of `text`.
        actual_len: usize,
    },
    /// Compute uncached new text at gap positions.
    NewText {
        /// The text.
        text: String,
        /// Absolute start position.
        start: usize,
        /// Token length.
        len: usize,
    },
}

/// The result of resolving a prompt against a schema layout.
#[derive(Debug, Clone, PartialEq)]
pub struct ResolvedPrompt {
    /// Schema name.
    pub schema: String,
    /// Work list in execution order.
    pub parts: Vec<ResolvedPart>,
    /// Non-fatal issues (e.g. new text overlapping imported positions).
    pub warnings: Vec<String>,
}

impl ResolvedPrompt {
    /// Tokens served from the cache.
    pub fn cached_tokens(&self) -> usize {
        self.parts
            .iter()
            .map(|p| match p {
                ResolvedPart::Cached { len, .. } => *len,
                _ => 0,
            })
            .sum()
    }

    /// Tokens that must be computed (arguments + new text).
    pub fn new_tokens(&self) -> usize {
        self.parts
            .iter()
            .map(|p| match p {
                ResolvedPart::Argument { actual_len, .. } => *actual_len,
                ResolvedPart::NewText { len, .. } => *len,
                _ => 0,
            })
            .sum()
    }

    /// Total prompt length in tokens (cached + computed).
    pub fn total_tokens(&self) -> usize {
        self.cached_tokens() + self.new_tokens()
    }

    /// Fraction of the prompt served from cache, in `[0, 1]`.
    pub fn cache_hit_ratio(&self) -> f64 {
        let total = self.total_tokens();
        if total == 0 {
            0.0
        } else {
            self.cached_tokens() as f64 / total as f64
        }
    }
}

/// Validates `prompt` against `layout` and assigns positions.
///
/// Anonymous schema text is always included (it precedes the imports in
/// the work list, in schema order). Imported modules contribute their
/// spans at schema-assigned positions; new text is positioned after the
/// maximum position used so far, per §3.4.
///
/// # Errors
///
/// Returns [`PmlError::SchemaMismatch`], [`PmlError::UnknownModule`],
/// [`PmlError::UnknownParameter`], [`PmlError::ArgumentTooLong`], or
/// [`PmlError::UnionConflict`].
pub fn resolve_prompt(
    layout: &SchemaLayout,
    prompt: &Prompt,
    count: &dyn Fn(&str) -> usize,
) -> Result<ResolvedPrompt> {
    resolve_with(layout, prompt, count, false)
}

/// [`resolve_prompt`] with **packed placement**: instead of reusing the
/// schema layout's absolute positions, every part is placed at a running
/// cursor in prompt order — anonymous spans first, then each imported
/// module subtree re-based at the cursor with its internal offsets (own
/// spans, parameter slots, nested children) preserved.
///
/// Packing removes the layout's structural padding: union members no
/// longer burn the group's max-member length, and modules imported out of
/// schema order (e.g. retrieval-ranked RAG chunks) land contiguously. The
/// resulting positions generally differ from the positions modules were
/// encoded at, which is exactly what the engine's deferred-RoPE read path
/// absorbs: each `Cached` part's placement shift is applied to its keys at
/// read time. Validation (unknown modules/parameters, overlong arguments,
/// union conflicts) is identical to [`resolve_prompt`].
///
/// # Errors
///
/// Same contract as [`resolve_prompt`].
pub fn resolve_prompt_packed(
    layout: &SchemaLayout,
    prompt: &Prompt,
    count: &dyn Fn(&str) -> usize,
) -> Result<ResolvedPrompt> {
    resolve_with(layout, prompt, count, true)
}

fn resolve_with(
    layout: &SchemaLayout,
    prompt: &Prompt,
    count: &dyn Fn(&str) -> usize,
    packed: bool,
) -> Result<ResolvedPrompt> {
    if prompt.schema != layout.schema_name {
        return Err(PmlError::SchemaMismatch {
            expected: prompt.schema.clone(),
            actual: layout.schema_name.clone(),
        });
    }

    let mut parts = Vec::new();
    let mut warnings = Vec::new();
    let mut cursor = 0usize;
    // union group -> first imported member (for conflict reporting)
    let mut union_seen: HashMap<usize, String> = HashMap::new();

    // Anonymous text is always included. Packed placement compacts the
    // anonymous spans end to end; the layout keeps them at their schema
    // positions (with module content between them).
    for (idx, span) in layout.spans.iter().enumerate() {
        if span.owner.is_empty() {
            let start = if packed { cursor } else { span.start };
            parts.push(ResolvedPart::Cached {
                module: Vec::new(),
                span_index: idx,
                start,
                len: span.len,
            });
            cursor = if packed {
                cursor + span.len
            } else {
                cursor.max(span.start + span.len)
            };
        }
    }

    resolve_items(
        layout,
        &prompt.items,
        &[],
        count,
        &mut parts,
        &mut warnings,
        &mut cursor,
        &mut union_seen,
        packed,
        None,
    )?;

    // Overlap audit: new text colliding with imported positions is legal
    // (relative encodings tolerate it) but worth surfacing.
    let cached_ranges: Vec<(usize, usize)> = parts
        .iter()
        .filter_map(|p| match p {
            ResolvedPart::Cached { start, len, .. } => Some((*start, start + len)),
            _ => None,
        })
        .collect();
    for p in &parts {
        if let ResolvedPart::NewText { start, len, text } = p {
            let (s, e) = (*start, start + len);
            if cached_ranges.iter().any(|&(cs, ce)| s < ce && cs < e) {
                warnings.push(format!(
                    "new text {:?} at positions {s}..{e} overlaps cached positions",
                    truncate(text)
                ));
            }
        }
    }

    Ok(ResolvedPrompt {
        schema: prompt.schema.clone(),
        parts,
        warnings,
    })
}

fn truncate(text: &str) -> String {
    if text.len() > 24 {
        format!("{}…", &text[..24])
    } else {
        text.to_owned()
    }
}

#[allow(clippy::too_many_arguments)]
fn resolve_items(
    layout: &SchemaLayout,
    items: &[PromptItem],
    parent: &[String],
    count: &dyn Fn(&str) -> usize,
    parts: &mut Vec<ResolvedPart>,
    warnings: &mut Vec<String>,
    cursor: &mut usize,
    union_seen: &mut HashMap<usize, String>,
    packed: bool,
    // Packed placement delta inherited from the enclosing imported module:
    // a nested child stays at its offset inside the parent's subtree
    // instead of being re-based, so one delta covers the whole import.
    inherited: Option<isize>,
) -> Result<()> {
    for item in items {
        match item {
            PromptItem::Text(text) => {
                let len = count(text);
                parts.push(ResolvedPart::NewText {
                    text: text.clone(),
                    start: *cursor,
                    len,
                });
                *cursor += len;
            }
            PromptItem::ModuleRef {
                name,
                args,
                children,
            } => {
                let path: ModulePath =
                    parent.iter().cloned().chain([name.clone()]).collect();
                let info = layout.module(&path).ok_or_else(|| PmlError::UnknownModule {
                    name: path.join("."),
                    schema: layout.schema_name.clone(),
                })?;

                if let Some(group) = info.union_group {
                    if let Some(prev) = union_seen.get(&group) {
                        return Err(PmlError::UnionConflict {
                            members: vec![prev.clone(), path.join(".")],
                        });
                    }
                    union_seen.insert(group, path.join("."));
                }

                // Placement delta for this subtree: 0 in layout mode
                // (parts stay at schema positions); in packed mode the
                // subtree is re-based at the cursor, or kept at the
                // enclosing import's delta for nested children.
                let delta: isize = match (packed, inherited) {
                    (false, _) => 0,
                    (true, Some(d)) => d,
                    (true, None) => *cursor as isize - info.start as isize,
                };
                let place = |layout_pos: usize| (layout_pos as isize + delta) as usize;

                // Cached spans of this module's direct content.
                for (idx, span) in layout.spans.iter().enumerate() {
                    if span.owner == path {
                        parts.push(ResolvedPart::Cached {
                            module: path.clone(),
                            span_index: idx,
                            start: place(span.start),
                            len: span.len,
                        });
                    }
                }

                // Arguments for declared parameters.
                let mut supplied: Vec<&str> = Vec::new();
                for (key, value) in args {
                    let param = info
                        .params
                        .iter()
                        .find(|p| &p.name == key)
                        .ok_or_else(|| PmlError::UnknownParameter {
                            module: path.join("."),
                            parameter: key.clone(),
                        })?;
                    let actual = count(value);
                    if actual > param.len {
                        return Err(PmlError::ArgumentTooLong {
                            module: path.join("."),
                            parameter: key.clone(),
                            max_len: param.len,
                            actual,
                        });
                    }
                    supplied.push(key);
                    parts.push(ResolvedPart::Argument {
                        module: path.clone(),
                        param: key.clone(),
                        text: value.clone(),
                        start: place(param.start),
                        max_len: param.len,
                        actual_len: actual,
                    });
                }
                for p in &info.params {
                    if !supplied.contains(&p.name.as_str()) {
                        warnings.push(format!(
                            "parameter {}.{} left unfilled ({} <unk> slots remain)",
                            path.join("."),
                            p.name,
                            p.len
                        ));
                    }
                }

                *cursor = (*cursor).max(place(info.end));

                resolve_items(
                    layout,
                    children,
                    &path,
                    count,
                    parts,
                    warnings,
                    cursor,
                    union_seen,
                    packed,
                    Some(delta),
                )?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::template::ChatTemplate;
    use crate::{parse_prompt, parse_schema};

    fn words(text: &str) -> usize {
        text.split_whitespace().count()
    }

    fn travel_layout() -> SchemaLayout {
        let schema = parse_schema(
            r#"<schema name="travel">
                 you are an assistant
                 <module name="trip-plan">
                   plan a trip of <param name="duration" len="3"/>
                 </module>
                 <union>
                   <module name="miami">miami has beaches and surf and sun</module>
                   <module name="tokyo">tokyo has temples</module>
                 </union>
               </schema>"#,
        )
        .unwrap();
        SchemaLayout::build(&schema, ChatTemplate::Plain, &words)
    }

    fn resolve(layout: &SchemaLayout, prompt_src: &str) -> Result<ResolvedPrompt> {
        resolve_prompt(layout, &parse_prompt(prompt_src).unwrap(), &words)
    }

    #[test]
    fn figure_2_style_prompt_resolves() {
        let layout = travel_layout();
        let r = resolve(
            &layout,
            r#"<prompt schema="travel">
                 <trip-plan duration="3 days"/>
                 <miami/>
                 highlight the surf spots
               </prompt>"#,
        )
        .unwrap();
        // anonymous (4 tokens) + trip-plan span (7) + miami (7) cached;
        // argument (2) + new text (4) computed.
        assert_eq!(r.cached_tokens(), 4 + 7 + 7);
        assert_eq!(r.new_tokens(), 2 + 4);
        assert!(r.warnings.is_empty());
        // New text goes after the highest used position: union end = 4+4+3=11,
        // then miami ends at 11+7=18 → text starts at 18.
        let Some(ResolvedPart::NewText { start, .. }) = r
            .parts
            .iter()
            .find(|p| matches!(p, ResolvedPart::NewText { .. }))
        else {
            panic!()
        };
        assert_eq!(*start, 18);
    }

    #[test]
    fn argument_lands_on_param_slots() {
        let layout = travel_layout();
        let r = resolve(
            &layout,
            r#"<prompt schema="travel"><trip-plan duration="two weeks"/></prompt>"#,
        )
        .unwrap();
        let arg = r
            .parts
            .iter()
            .find_map(|p| match p {
                ResolvedPart::Argument { start, actual_len, max_len, .. } => {
                    Some((*start, *actual_len, *max_len))
                }
                _ => None,
            })
            .unwrap();
        // trip-plan starts at 4 (after 4 anonymous tokens), its text "plan a
        // trip of" is 4 tokens, so the param starts at 8.
        assert_eq!(arg, (8, 2, 3));
    }

    #[test]
    fn schema_mismatch_rejected() {
        let layout = travel_layout();
        assert!(matches!(
            resolve(&layout, r#"<prompt schema="other"><miami/></prompt>"#),
            Err(PmlError::SchemaMismatch { .. })
        ));
    }

    #[test]
    fn unknown_module_rejected() {
        let layout = travel_layout();
        assert!(matches!(
            resolve(&layout, r#"<prompt schema="travel"><paris/></prompt>"#),
            Err(PmlError::UnknownModule { .. })
        ));
    }

    #[test]
    fn unknown_parameter_rejected() {
        let layout = travel_layout();
        assert!(matches!(
            resolve(
                &layout,
                r#"<prompt schema="travel"><trip-plan budget="low"/></prompt>"#
            ),
            Err(PmlError::UnknownParameter { .. })
        ));
    }

    #[test]
    fn overlong_argument_rejected() {
        let layout = travel_layout();
        assert!(matches!(
            resolve(
                &layout,
                r#"<prompt schema="travel"><trip-plan duration="three weeks and four days"/></prompt>"#
            ),
            Err(PmlError::ArgumentTooLong { max_len: 3, .. })
        ));
    }

    #[test]
    fn union_conflict_rejected() {
        let layout = travel_layout();
        assert!(matches!(
            resolve(
                &layout,
                r#"<prompt schema="travel"><miami/><tokyo/></prompt>"#
            ),
            Err(PmlError::UnionConflict { .. })
        ));
    }

    #[test]
    fn single_union_member_is_fine() {
        let layout = travel_layout();
        assert!(resolve(&layout, r#"<prompt schema="travel"><tokyo/></prompt>"#).is_ok());
    }

    #[test]
    fn unfilled_param_warns() {
        let layout = travel_layout();
        let r = resolve(&layout, r#"<prompt schema="travel"><trip-plan/></prompt>"#).unwrap();
        assert!(r.warnings.iter().any(|w| w.contains("duration")));
    }

    #[test]
    fn nested_import_resolves_inner_module() {
        let schema = parse_schema(
            r#"<schema name="n">
                 <module name="outer">
                   intro text
                   <module name="inner">inner content here</module>
                 </module>
               </schema>"#,
        )
        .unwrap();
        let layout = SchemaLayout::build(&schema, ChatTemplate::Plain, &words);
        let r = resolve(&layout, r#"<prompt schema="n"><outer><inner/></outer></prompt>"#)
            .unwrap();
        assert_eq!(r.cached_tokens(), 2 + 3);
        // Importing outer alone excludes inner's 3 tokens.
        let r2 = resolve(&layout, r#"<prompt schema="n"><outer/></prompt>"#).unwrap();
        assert_eq!(r2.cached_tokens(), 2);
    }

    #[test]
    fn inner_without_outer_context_fails() {
        let schema = parse_schema(
            r#"<schema name="n">
                 <module name="outer"><module name="inner">x</module></module>
               </schema>"#,
        )
        .unwrap();
        let layout = SchemaLayout::build(&schema, ChatTemplate::Plain, &words);
        // "inner" is not a top-level module.
        assert!(matches!(
            resolve(&layout, r#"<prompt schema="n"><inner/></prompt>"#),
            Err(PmlError::UnknownModule { .. })
        ));
    }

    #[test]
    fn cache_hit_ratio_reflects_split() {
        let layout = travel_layout();
        let r = resolve(
            &layout,
            r#"<prompt schema="travel"><miami/>extra words</prompt>"#,
        )
        .unwrap();
        let expected = (4 + 7) as f64 / (4 + 7 + 2) as f64;
        assert!((r.cache_hit_ratio() - expected).abs() < 1e-9);
    }

    fn resolve_packed(layout: &SchemaLayout, prompt_src: &str) -> Result<ResolvedPrompt> {
        resolve_prompt_packed(layout, &parse_prompt(prompt_src).unwrap(), &words)
    }

    fn cached_starts(r: &ResolvedPrompt) -> Vec<(usize, usize)> {
        r.parts
            .iter()
            .filter_map(|p| match p {
                ResolvedPart::Cached { span_index, start, .. } => Some((*span_index, *start)),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn packed_union_member_drops_max_length_padding() {
        let layout = travel_layout();
        // tokyo is the short union member (3 tokens vs miami's 7). Layout
        // placement parks it at the union start (11); packed placement
        // pulls it right behind the 4 anonymous tokens.
        let r = resolve_packed(&layout, r#"<prompt schema="travel"><tokyo/>and more words</prompt>"#)
            .unwrap();
        let starts = cached_starts(&r);
        assert!(starts.contains(&(0, 0)), "anonymous span stays at 0: {starts:?}");
        let tokyo = starts.iter().find(|(i, _)| *i != 0).unwrap();
        assert_eq!(tokyo.1, 4, "tokyo packs directly after the anonymous text");
        let Some(ResolvedPart::NewText { start, .. }) = r
            .parts
            .iter()
            .find(|p| matches!(p, ResolvedPart::NewText { .. }))
        else {
            panic!()
        };
        assert_eq!(*start, 7, "new text follows the packed member, no union padding");
        assert!(r.warnings.is_empty());
    }

    #[test]
    fn packed_imports_are_contiguous_in_prompt_order() {
        let schema = parse_schema(
            r#"<schema name="rag">
                 <module name="c0">alpha beta gamma</module>
                 <module name="c1">delta epsilon</module>
               </schema>"#,
        )
        .unwrap();
        let layout = SchemaLayout::build(&schema, ChatTemplate::Plain, &words);
        // Retrieval order reverses schema order: packed placement follows
        // the prompt, not the layout.
        let r = resolve_packed(&layout, r#"<prompt schema="rag"><c1/><c0/>question</prompt>"#)
            .unwrap();
        let starts: Vec<usize> = cached_starts(&r).iter().map(|&(_, s)| s).collect();
        assert_eq!(starts, vec![0, 2], "c1 (2 tokens) then c0, back to back");
        let Some(ResolvedPart::NewText { start, .. }) = r
            .parts
            .iter()
            .find(|p| matches!(p, ResolvedPart::NewText { .. }))
        else {
            panic!()
        };
        assert_eq!(*start, 5);
    }

    #[test]
    fn packed_param_slots_move_with_their_subtree() {
        let layout = travel_layout();
        // One leading text token shifts trip-plan's whole subtree by +1,
        // parameter slot included (layout start 8 → packed start 9).
        let r = resolve_packed(
            &layout,
            r#"<prompt schema="travel">please <trip-plan duration="two weeks"/></prompt>"#,
        )
        .unwrap();
        let arg = r
            .parts
            .iter()
            .find_map(|p| match p {
                ResolvedPart::Argument { start, .. } => Some(*start),
                _ => None,
            })
            .unwrap();
        assert_eq!(arg, 9);
    }

    #[test]
    fn packed_nested_children_keep_subtree_offsets() {
        let schema = parse_schema(
            r#"<schema name="n">
                 <module name="outer">
                   intro text
                   <module name="inner">inner content here</module>
                 </module>
               </schema>"#,
        )
        .unwrap();
        let layout = SchemaLayout::build(&schema, ChatTemplate::Plain, &words);
        let legacy = resolve(&layout, r#"<prompt schema="n"><outer><inner/></outer></prompt>"#)
            .unwrap();
        let packed = resolve_packed(
            &layout,
            r#"<prompt schema="n">x <outer><inner/></outer></prompt>"#,
        )
        .unwrap();
        // Every cached span of the subtree moves by exactly the one-token
        // lead-in: a single delta covers outer and its nested child.
        let legacy_starts = cached_starts(&legacy);
        let packed_starts = cached_starts(&packed);
        assert_eq!(legacy_starts.len(), packed_starts.len());
        for ((li, ls), (pi, ps)) in legacy_starts.iter().zip(&packed_starts) {
            assert_eq!(li, pi);
            assert_eq!(*ps, ls + 1, "span {li} shifts with the subtree");
        }
    }

    #[test]
    fn packed_equals_layout_for_schema_order_imports() {
        let layout = travel_layout();
        // Importing modules in schema order with no extra text reproduces
        // the layout placement exactly — every packed delta is zero.
        let src = r#"<prompt schema="travel"><trip-plan duration="two days"/><miami/></prompt>"#;
        let legacy = resolve(&layout, src).unwrap();
        let packed = resolve_packed(&layout, src).unwrap();
        assert_eq!(legacy, packed);
    }

    #[test]
    fn packed_validation_matches_layout_mode() {
        let layout = travel_layout();
        assert!(matches!(
            resolve_packed(&layout, r#"<prompt schema="travel"><paris/></prompt>"#),
            Err(PmlError::UnknownModule { .. })
        ));
        assert!(matches!(
            resolve_packed(&layout, r#"<prompt schema="travel"><miami/><tokyo/></prompt>"#),
            Err(PmlError::UnionConflict { .. })
        ));
        assert!(matches!(
            resolve_packed(
                &layout,
                r#"<prompt schema="travel"><trip-plan duration="three weeks and four days"/></prompt>"#
            ),
            Err(PmlError::ArgumentTooLong { max_len: 3, .. })
        ));
    }

    #[test]
    fn text_only_prompt_positions_after_anonymous() {
        let layout = travel_layout();
        let r = resolve(&layout, r#"<prompt schema="travel">just a question</prompt>"#).unwrap();
        let Some(ResolvedPart::NewText { start, .. }) = r
            .parts
            .iter()
            .find(|p| matches!(p, ResolvedPart::NewText { .. }))
        else {
            panic!()
        };
        // Anonymous text occupies 0..4.
        assert_eq!(*start, 4);
    }
}
