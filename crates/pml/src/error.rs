use std::fmt;

/// Errors from PML parsing, layout, and prompt resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PmlError {
    /// Lexer/parser failure with byte offset context.
    Parse {
        /// Byte offset in the source where the failure occurred.
        offset: usize,
        /// What went wrong.
        message: String,
    },
    /// A tag that is not valid where it appeared.
    UnexpectedTag {
        /// The tag name.
        tag: String,
        /// Where it appeared (human-readable context).
        context: String,
    },
    /// A required attribute is missing from a tag.
    MissingAttribute {
        /// The tag name.
        tag: String,
        /// The missing attribute.
        attribute: String,
    },
    /// An attribute value failed to parse (e.g. non-numeric `len`).
    InvalidAttribute {
        /// The tag name.
        tag: String,
        /// The attribute name.
        attribute: String,
        /// The offending value.
        value: String,
    },
    /// Two modules (or parameters within a module) share a name.
    DuplicateName {
        /// The duplicated name.
        name: String,
    },
    /// A prompt references a module the schema does not define (at the
    /// referenced nesting level).
    UnknownModule {
        /// The module name the prompt used.
        name: String,
        /// The schema searched.
        schema: String,
    },
    /// A prompt supplied an argument for a parameter the module does not
    /// declare.
    UnknownParameter {
        /// Module name.
        module: String,
        /// Parameter name.
        parameter: String,
    },
    /// An argument exceeds its parameter's declared token budget.
    ArgumentTooLong {
        /// Module name.
        module: String,
        /// Parameter name.
        parameter: String,
        /// Declared maximum token length.
        max_len: usize,
        /// Actual token length of the supplied argument.
        actual: usize,
    },
    /// A prompt imported more than one member of a union.
    UnionConflict {
        /// The names of the conflicting imports.
        members: Vec<String>,
    },
    /// The prompt names a different schema than the one resolved against.
    SchemaMismatch {
        /// Schema the prompt claims.
        expected: String,
        /// Schema actually provided.
        actual: String,
    },
}

impl fmt::Display for PmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PmlError::Parse { offset, message } => {
                write!(f, "parse error at byte {offset}: {message}")
            }
            PmlError::UnexpectedTag { tag, context } => {
                write!(f, "unexpected tag <{tag}> in {context}")
            }
            PmlError::MissingAttribute { tag, attribute } => {
                write!(f, "<{tag}> is missing required attribute `{attribute}`")
            }
            PmlError::InvalidAttribute {
                tag,
                attribute,
                value,
            } => write!(f, "<{tag}> attribute `{attribute}` has invalid value `{value}`"),
            PmlError::DuplicateName { name } => write!(f, "duplicate name `{name}`"),
            PmlError::UnknownModule { name, schema } => {
                write!(f, "module `{name}` not defined in schema `{schema}`")
            }
            PmlError::UnknownParameter { module, parameter } => {
                write!(f, "module `{module}` has no parameter `{parameter}`")
            }
            PmlError::ArgumentTooLong {
                module,
                parameter,
                max_len,
                actual,
            } => write!(
                f,
                "argument for {module}.{parameter} is {actual} tokens, max {max_len}"
            ),
            PmlError::UnionConflict { members } => {
                write!(f, "multiple members of one union imported: {members:?}")
            }
            PmlError::SchemaMismatch { expected, actual } => {
                write!(f, "prompt targets schema `{expected}` but got `{actual}`")
            }
        }
    }
}

impl std::error::Error for PmlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_detail() {
        let e = PmlError::ArgumentTooLong {
            module: "trip".into(),
            parameter: "duration".into(),
            max_len: 2,
            actual: 5,
        };
        let s = e.to_string();
        assert!(s.contains("trip.duration") && s.contains('5') && s.contains('2'));
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<PmlError>();
    }
}
