//! PML abstract syntax trees for schemas and prompts.

use std::fmt;

/// Chat roles recognised by the `<system>/<user>/<assistant>` tags
/// (paper §3.2.3). The template compiler maps these onto each LLM's own
/// conversation format.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Role {
    /// System-level instructions.
    System,
    /// User-generated content.
    User,
    /// Exemplar assistant responses.
    Assistant,
}

impl Role {
    /// Tag name for this role.
    pub fn tag(self) -> &'static str {
        match self {
            Role::System => "system",
            Role::User => "user",
            Role::Assistant => "assistant",
        }
    }

    /// Parses a tag name into a role.
    pub fn from_tag(tag: &str) -> Option<Role> {
        match tag {
            "system" => Some(Role::System),
            "user" => Some(Role::User),
            "assistant" => Some(Role::Assistant),
            _ => None,
        }
    }
}

/// A parsed schema: named, with an ordered list of top-level items.
#[derive(Debug, Clone, PartialEq)]
pub struct Schema {
    /// Unique schema identifier (the `name` attribute).
    pub name: String,
    /// Top-level content in document order.
    pub items: Vec<SchemaItem>,
}

/// Top-level schema content.
#[derive(Debug, Clone, PartialEq)]
pub enum SchemaItem {
    /// Anonymous text — always included in every derived prompt.
    Text(String),
    /// A named, individually cacheable prompt module.
    Module(ModuleDef),
    /// Mutually exclusive modules sharing a start position.
    Union(Vec<ModuleDef>),
    /// Chat-role wrapper around nested items.
    Chat {
        /// The role of this wrapper.
        role: Role,
        /// Wrapped items.
        items: Vec<SchemaItem>,
    },
}

/// A prompt-module definition.
#[derive(Debug, Clone, PartialEq)]
pub struct ModuleDef {
    /// Module name, unique within its nesting level.
    pub name: String,
    /// Ordered content.
    pub items: Vec<ModuleItem>,
}

/// Content inside a module definition.
#[derive(Debug, Clone, PartialEq)]
pub enum ModuleItem {
    /// Literal text.
    Text(String),
    /// A parameter placeholder (`<param name=… len=…/>`), reserving `len`
    /// `<unk>` token slots (§3.3).
    Param {
        /// Parameter name, unique within the module.
        name: String,
        /// Maximum argument length in tokens.
        len: usize,
    },
    /// A nested module.
    Module(ModuleDef),
    /// A nested union.
    Union(Vec<ModuleDef>),
}

impl ModuleDef {
    /// Direct child module names (including union members).
    pub fn child_module_names(&self) -> Vec<&str> {
        let mut names = Vec::new();
        for item in &self.items {
            match item {
                ModuleItem::Module(m) => names.push(m.name.as_str()),
                ModuleItem::Union(ms) => names.extend(ms.iter().map(|m| m.name.as_str())),
                _ => {}
            }
        }
        names
    }

    /// Declared parameters as `(name, len)` pairs, in document order.
    pub fn params(&self) -> Vec<(&str, usize)> {
        self.items
            .iter()
            .filter_map(|i| match i {
                ModuleItem::Param { name, len } => Some((name.as_str(), *len)),
                _ => None,
            })
            .collect()
    }
}

/// A parsed prompt derived from a schema.
#[derive(Debug, Clone, PartialEq)]
pub struct Prompt {
    /// Name of the schema this prompt derives from.
    pub schema: String,
    /// Ordered prompt content.
    pub items: Vec<PromptItem>,
}

/// Content inside a prompt.
#[derive(Debug, Clone, PartialEq)]
pub enum PromptItem {
    /// An imported module: `<name arg="…"…>…nested imports…</name>`.
    ModuleRef {
        /// The module's name in the schema.
        name: String,
        /// Parameter arguments, in attribute order.
        args: Vec<(String, String)>,
        /// Imports of nested modules.
        children: Vec<PromptItem>,
    },
    /// Uncached new text.
    Text(String),
}

impl PromptItem {
    /// Convenience constructor for a plain module import.
    pub fn import(name: &str) -> Self {
        PromptItem::ModuleRef {
            name: name.to_owned(),
            args: Vec::new(),
            children: Vec::new(),
        }
    }
}

fn escape(text: &str) -> String {
    text.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

fn fmt_module(m: &ModuleDef, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    write!(f, "<module name=\"{}\">", m.name)?;
    for item in &m.items {
        match item {
            ModuleItem::Text(t) => write!(f, "{}", escape(t))?,
            ModuleItem::Param { name, len } => {
                write!(f, "<param name=\"{name}\" len=\"{len}\"/>")?
            }
            ModuleItem::Module(inner) => fmt_module(inner, f)?,
            ModuleItem::Union(ms) => {
                write!(f, "<union>")?;
                for inner in ms {
                    fmt_module(inner, f)?;
                }
                write!(f, "</union>")?;
            }
        }
    }
    write!(f, "</module>")
}

impl fmt::Display for Schema {
    /// Serialises back to PML; [`crate::parse_schema`] of the output
    /// reproduces the AST (round-trip tested).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn fmt_items(items: &[SchemaItem], f: &mut fmt::Formatter<'_>) -> fmt::Result {
            for item in items {
                match item {
                    SchemaItem::Text(t) => write!(f, "{}", escape(t))?,
                    SchemaItem::Module(m) => fmt_module(m, f)?,
                    SchemaItem::Union(ms) => {
                        write!(f, "<union>")?;
                        for m in ms {
                            fmt_module(m, f)?;
                        }
                        write!(f, "</union>")?;
                    }
                    SchemaItem::Chat { role, items } => {
                        write!(f, "<{}>", role.tag())?;
                        fmt_items(items, f)?;
                        write!(f, "</{}>", role.tag())?;
                    }
                }
            }
            Ok(())
        }
        write!(f, "<schema name=\"{}\">", self.name)?;
        fmt_items(&self.items, f)?;
        write!(f, "</schema>")
    }
}

impl fmt::Display for Prompt {
    /// Serialises back to PML (round-trip tested).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn fmt_items(items: &[PromptItem], f: &mut fmt::Formatter<'_>) -> fmt::Result {
            for item in items {
                match item {
                    PromptItem::Text(t) => write!(f, "{}", escape(t))?,
                    PromptItem::ModuleRef {
                        name,
                        args,
                        children,
                    } => {
                        write!(f, "<{name}")?;
                        for (k, v) in args {
                            write!(f, " {k}=\"{v}\"")?;
                        }
                        if children.is_empty() {
                            write!(f, "/>")?;
                        } else {
                            write!(f, ">")?;
                            fmt_items(children, f)?;
                            write!(f, "</{name}>")?;
                        }
                    }
                }
            }
            Ok(())
        }
        write!(f, "<prompt schema=\"{}\">", self.schema)?;
        fmt_items(&self.items, f)?;
        write!(f, "</prompt>")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn role_tags_round_trip() {
        for role in [Role::System, Role::User, Role::Assistant] {
            assert_eq!(Role::from_tag(role.tag()), Some(role));
        }
        assert_eq!(Role::from_tag("nope"), None);
    }

    #[test]
    fn child_names_cover_unions() {
        let m = ModuleDef {
            name: "parent".into(),
            items: vec![
                ModuleItem::Module(ModuleDef {
                    name: "a".into(),
                    items: vec![],
                }),
                ModuleItem::Union(vec![
                    ModuleDef {
                        name: "b".into(),
                        items: vec![],
                    },
                    ModuleDef {
                        name: "c".into(),
                        items: vec![],
                    },
                ]),
            ],
        };
        assert_eq!(m.child_module_names(), vec!["a", "b", "c"]);
    }

    #[test]
    fn params_in_order() {
        let m = ModuleDef {
            name: "m".into(),
            items: vec![
                ModuleItem::Param {
                    name: "x".into(),
                    len: 3,
                },
                ModuleItem::Text("mid".into()),
                ModuleItem::Param {
                    name: "y".into(),
                    len: 5,
                },
            ],
        };
        assert_eq!(m.params(), vec![("x", 3), ("y", 5)]);
    }

    #[test]
    fn display_escapes_angle_brackets() {
        let s = Schema {
            name: "s".into(),
            items: vec![SchemaItem::Text("a < b".into())],
        };
        assert!(s.to_string().contains("a &lt; b"));
    }
}
