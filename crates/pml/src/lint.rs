//! Schema lints: advisory diagnostics for schemas that parse but will
//! cache poorly.
//!
//! Prompt Cache's benefit scales with module size and reuse frequency
//! (§1: advantage "becomes more pronounced as the size of cached segments
//! grows"), and its approximation quality depends on modules being
//! "self-contained and semantically independent" (§3.3). These lints
//! catch the structural anti-patterns: modules too small to pay for
//! their bookkeeping, parameters crowding out cacheable text, unions
//! whose members waste position budget, duplicated module bodies, and
//! over-deep nesting.

use crate::layout::SchemaLayout;
use crate::template::ChatTemplate;
use crate::Schema;
use std::fmt;

/// One advisory finding.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Lint {
    /// A module with no content caches nothing.
    EmptyModule {
        /// Module path (dot-joined).
        path: String,
    },
    /// A module below `min_tokens` saves less than its bookkeeping costs.
    TinyModule {
        /// Module path.
        path: String,
        /// Its token count.
        tokens: usize,
        /// The threshold used.
        min_tokens: usize,
    },
    /// Parameter slots outnumber cacheable text tokens: most of the
    /// module is recomputed per request anyway.
    ParamHeavyModule {
        /// Module path.
        path: String,
        /// Reserved parameter slots.
        param_tokens: usize,
        /// Cacheable text tokens.
        text_tokens: usize,
    },
    /// Union members differ greatly in size; the union reserves positions
    /// for its largest member, so small members waste position budget.
    UnbalancedUnion {
        /// Union group id.
        group: usize,
        /// Smallest member's subtree length.
        min_tokens: usize,
        /// Largest member's subtree length.
        max_tokens: usize,
    },
    /// Two modules have byte-identical content — they should be one
    /// module (each copy is encoded and stored separately).
    DuplicateModules {
        /// First module path.
        first: String,
        /// Second module path.
        second: String,
    },
    /// Nesting deeper than 3 levels: every level forces explicit nested
    /// imports in prompts.
    DeepNesting {
        /// Module path.
        path: String,
        /// Its depth.
        depth: usize,
    },
}

impl fmt::Display for Lint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Lint::EmptyModule { path } => write!(f, "module `{path}` is empty"),
            Lint::TinyModule {
                path,
                tokens,
                min_tokens,
            } => write!(
                f,
                "module `{path}` has only {tokens} tokens (< {min_tokens}); caching \
                 overhead may exceed the saving"
            ),
            Lint::ParamHeavyModule {
                path,
                param_tokens,
                text_tokens,
            } => write!(
                f,
                "module `{path}` reserves {param_tokens} parameter slots against \
                 {text_tokens} cacheable tokens; most of it is recomputed per request"
            ),
            Lint::UnbalancedUnion {
                group,
                min_tokens,
                max_tokens,
            } => write!(
                f,
                "union #{group} members span {min_tokens}–{max_tokens} tokens; small \
                 members waste the position budget reserved for the largest"
            ),
            Lint::DuplicateModules { first, second } => write!(
                f,
                "modules `{first}` and `{second}` have identical content; merge them \
                 to avoid duplicate encoding and storage"
            ),
            Lint::DeepNesting { path, depth } => {
                write!(f, "module `{path}` is nested {depth} levels deep")
            }
        }
    }
}

/// Configuration for [`lint_schema`].
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Modules below this token count get [`Lint::TinyModule`].
    pub min_module_tokens: usize,
    /// Union member size ratio above which [`Lint::UnbalancedUnion`]
    /// fires.
    pub union_imbalance_ratio: f64,
    /// Nesting depth above which [`Lint::DeepNesting`] fires.
    pub max_depth: usize,
}

impl Default for LintConfig {
    fn default() -> Self {
        LintConfig {
            min_module_tokens: 4,
            union_imbalance_ratio: 4.0,
            max_depth: 3,
        }
    }
}

/// Lints a schema, returning advisory findings (never errors — a linted
/// schema still serves).
pub fn lint_schema(
    schema: &Schema,
    count: &dyn Fn(&str) -> usize,
    config: &LintConfig,
) -> Vec<Lint> {
    let layout = SchemaLayout::build(schema, ChatTemplate::Plain, count);
    let mut lints = Vec::new();

    // Per-module lints from the layout.
    for m in &layout.modules {
        let path = m.path.join(".");
        let subtree = m.end - m.start;
        let param_tokens: usize = m.params.iter().map(|p| p.len).sum();
        let own_text: usize = layout
            .spans
            .iter()
            .filter(|s| s.owner == m.path)
            .map(|s| s.len)
            .sum::<usize>()
            .saturating_sub(param_tokens);
        if subtree == 0 {
            lints.push(Lint::EmptyModule { path: path.clone() });
        } else if subtree < config.min_module_tokens {
            lints.push(Lint::TinyModule {
                path: path.clone(),
                tokens: subtree,
                min_tokens: config.min_module_tokens,
            });
        }
        if param_tokens > own_text && param_tokens > 0 {
            lints.push(Lint::ParamHeavyModule {
                path: path.clone(),
                param_tokens,
                text_tokens: own_text,
            });
        }
        if m.path.len() > config.max_depth {
            lints.push(Lint::DeepNesting {
                path,
                depth: m.path.len(),
            });
        }
    }

    // Union balance.
    let mut groups: std::collections::HashMap<usize, Vec<usize>> = std::collections::HashMap::new();
    for m in &layout.modules {
        if let Some(g) = m.union_group {
            groups.entry(g).or_default().push(m.end - m.start);
        }
    }
    let mut group_ids: Vec<usize> = groups.keys().copied().collect();
    group_ids.sort_unstable();
    for g in group_ids {
        let sizes = &groups[&g];
        let (min, max) = (
            sizes.iter().copied().min().unwrap_or(0),
            sizes.iter().copied().max().unwrap_or(0),
        );
        if min > 0 && max as f64 / min as f64 > config.union_imbalance_ratio {
            lints.push(Lint::UnbalancedUnion {
                group: g,
                min_tokens: min,
                max_tokens: max,
            });
        }
    }

    // Duplicate module bodies (compare span text content per module).
    let mut bodies: Vec<(String, String)> = Vec::new();
    for m in &layout.modules {
        let body: String = layout
            .spans
            .iter()
            .filter(|s| s.owner == m.path)
            .flat_map(|s| {
                s.segments.iter().map(|seg| match seg {
                    crate::layout::Segment::Text { text, .. } => text.clone(),
                    crate::layout::Segment::Param { name, len } => {
                        format!("<param {name} {len}>")
                    }
                })
            })
            .collect::<Vec<_>>()
            .join("\u{1f}");
        if body.is_empty() {
            continue;
        }
        if let Some((first, _)) = bodies.iter().find(|(_, b)| *b == body) {
            lints.push(Lint::DuplicateModules {
                first: first.clone(),
                second: m.path.join("."),
            });
        } else {
            bodies.push((m.path.join("."), body));
        }
    }

    lints
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_schema;

    fn words(t: &str) -> usize {
        t.split_whitespace().count()
    }

    fn lint(src: &str) -> Vec<Lint> {
        lint_schema(&parse_schema(src).unwrap(), &words, &LintConfig::default())
    }

    #[test]
    fn clean_schema_has_no_lints() {
        let lints = lint(
            r#"<schema name="ok">
                 <module name="doc">one two three four five six seven eight</module>
               </schema>"#,
        );
        assert!(lints.is_empty(), "{lints:?}");
    }

    #[test]
    fn empty_and_tiny_modules_flagged() {
        let lints = lint(
            r#"<schema name="s">
                 <module name="empty"></module>
                 <module name="tiny">two words</module>
               </schema>"#,
        );
        assert!(lints.iter().any(|l| matches!(l, Lint::EmptyModule { path } if path == "empty")));
        assert!(lints
            .iter()
            .any(|l| matches!(l, Lint::TinyModule { path, tokens: 2, .. } if path == "tiny")));
    }

    #[test]
    fn param_heavy_module_flagged() {
        let lints = lint(
            r#"<schema name="s">
                 <module name="form">fill <param name="a" len="10"/></module>
               </schema>"#,
        );
        assert!(lints.iter().any(
            |l| matches!(l, Lint::ParamHeavyModule { param_tokens: 10, text_tokens: 1, .. })
        ));
    }

    #[test]
    fn unbalanced_union_flagged() {
        let long = "w ".repeat(30);
        let lints = lint(&format!(
            r#"<schema name="s">
                 <union>
                   <module name="small">just a few tokens here</module>
                   <module name="large">{long}</module>
                 </union>
               </schema>"#
        ));
        assert!(lints
            .iter()
            .any(|l| matches!(l, Lint::UnbalancedUnion { min_tokens: 5, max_tokens: 30, .. })));
    }

    #[test]
    fn balanced_union_not_flagged() {
        let lints = lint(
            r#"<schema name="s">
                 <union>
                   <module name="a">one two three four five</module>
                   <module name="b">six seven eight nine ten</module>
                 </union>
               </schema>"#,
        );
        assert!(!lints.iter().any(|l| matches!(l, Lint::UnbalancedUnion { .. })));
    }

    #[test]
    fn duplicate_modules_flagged() {
        let lints = lint(
            r#"<schema name="s">
                 <module name="a">same body of text here</module>
                 <module name="b">same body of text here</module>
               </schema>"#,
        );
        assert!(lints.iter().any(
            |l| matches!(l, Lint::DuplicateModules { first, second } if first == "a" && second == "b")
        ));
    }

    #[test]
    fn deep_nesting_flagged() {
        let lints = lint(
            r#"<schema name="s">
                 <module name="l1">one two three four
                   <module name="l2">one two three four
                     <module name="l3">one two three four
                       <module name="l4">one two three four five</module>
                     </module>
                   </module>
                 </module>
               </schema>"#,
        );
        assert!(lints
            .iter()
            .any(|l| matches!(l, Lint::DeepNesting { depth: 4, .. })));
    }

    #[test]
    fn lints_display_readably() {
        for l in lint(
            r#"<schema name="s"><module name="empty"></module></schema>"#,
        ) {
            assert!(!l.to_string().is_empty());
        }
    }
}
