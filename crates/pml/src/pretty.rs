//! Pretty-printing: indented, human-maintainable PML.
//!
//! `Display` on [`crate::Schema`]/[`crate::Prompt`] emits compact
//! single-line PML (canonical for round-trips); [`pretty_schema`] and
//! [`pretty_prompt`] emit the indented form a human would keep in a
//! `.pml` file. Pretty output re-parses to the same AST (tested), because
//! the lexer trims whitespace at tag boundaries.

use crate::ast::{ModuleDef, ModuleItem, Prompt, PromptItem, Schema, SchemaItem};

const INDENT: &str = "  ";

fn pad(depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str(INDENT);
    }
}

fn escape(text: &str) -> String {
    text.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

/// Renders a schema with two-space indentation.
pub fn pretty_schema(schema: &Schema) -> String {
    let mut out = format!("<schema name=\"{}\">\n", schema.name);
    for item in &schema.items {
        schema_item(item, 1, &mut out);
    }
    out.push_str("</schema>\n");
    out
}

fn schema_item(item: &SchemaItem, depth: usize, out: &mut String) {
    match item {
        SchemaItem::Text(t) => {
            pad(depth, out);
            out.push_str(&escape(t));
            out.push('\n');
        }
        SchemaItem::Module(m) => module(m, depth, out),
        SchemaItem::Union(ms) => {
            pad(depth, out);
            out.push_str("<union>\n");
            for m in ms {
                module(m, depth + 1, out);
            }
            pad(depth, out);
            out.push_str("</union>\n");
        }
        SchemaItem::Chat { role, items } => {
            pad(depth, out);
            out.push_str(&format!("<{}>\n", role.tag()));
            for inner in items {
                schema_item(inner, depth + 1, out);
            }
            pad(depth, out);
            out.push_str(&format!("</{}>\n", role.tag()));
        }
    }
}

fn module(m: &ModuleDef, depth: usize, out: &mut String) {
    pad(depth, out);
    if m.items.is_empty() {
        out.push_str(&format!("<module name=\"{}\"/>\n", m.name));
        return;
    }
    out.push_str(&format!("<module name=\"{}\">\n", m.name));
    for item in &m.items {
        match item {
            ModuleItem::Text(t) => {
                pad(depth + 1, out);
                out.push_str(&escape(t));
                out.push('\n');
            }
            ModuleItem::Param { name, len } => {
                pad(depth + 1, out);
                out.push_str(&format!("<param name=\"{name}\" len=\"{len}\"/>\n"));
            }
            ModuleItem::Module(inner) => module(inner, depth + 1, out),
            ModuleItem::Union(ms) => {
                pad(depth + 1, out);
                out.push_str("<union>\n");
                for inner in ms {
                    module(inner, depth + 2, out);
                }
                pad(depth + 1, out);
                out.push_str("</union>\n");
            }
        }
    }
    pad(depth, out);
    out.push_str("</module>\n");
}

/// Renders a prompt with two-space indentation.
pub fn pretty_prompt(prompt: &Prompt) -> String {
    let mut out = format!("<prompt schema=\"{}\">\n", prompt.schema);
    for item in &prompt.items {
        prompt_item(item, 1, &mut out);
    }
    out.push_str("</prompt>\n");
    out
}

fn prompt_item(item: &PromptItem, depth: usize, out: &mut String) {
    match item {
        PromptItem::Text(t) => {
            pad(depth, out);
            out.push_str(&escape(t));
            out.push('\n');
        }
        PromptItem::ModuleRef {
            name,
            args,
            children,
        } => {
            pad(depth, out);
            out.push('<');
            out.push_str(name);
            for (k, v) in args {
                out.push_str(&format!(" {k}=\"{v}\""));
            }
            if children.is_empty() {
                out.push_str("/>\n");
            } else {
                out.push_str(">\n");
                for child in children {
                    prompt_item(child, depth + 1, out);
                }
                pad(depth, out);
                out.push_str(&format!("</{name}>\n"));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse_prompt, parse_schema};

    const DENSE: &str = r#"<schema name="t">intro words<module name="plan">plan of <param name="d" len="3"/></module><union><module name="a">one</module><module name="b">two</module></union><system>be kind</system></schema>"#;

    #[test]
    fn pretty_schema_reparses_identically() {
        let schema = parse_schema(DENSE).unwrap();
        let pretty = pretty_schema(&schema);
        assert_eq!(parse_schema(&pretty).unwrap(), schema);
    }

    #[test]
    fn pretty_schema_is_indented() {
        let schema = parse_schema(DENSE).unwrap();
        let pretty = pretty_schema(&schema);
        assert!(pretty.contains("\n  <module name=\"plan\">\n"));
        assert!(pretty.contains("\n    <module name=\"a\">\n"));
        assert!(pretty.ends_with("</schema>\n"));
    }

    #[test]
    fn pretty_prompt_reparses_identically() {
        let prompt = parse_prompt(
            r#"<prompt schema="t"><plan d="three days"/><a/><outer><inner/></outer>go now</prompt>"#,
        )
        .unwrap();
        let pretty = pretty_prompt(&prompt);
        assert_eq!(parse_prompt(&pretty).unwrap(), prompt);
        assert!(pretty.contains("  <plan d=\"three days\"/>\n"));
    }

    #[test]
    fn empty_module_renders_self_closing() {
        let schema = parse_schema(r#"<schema name="e"><module name="m"/></schema>"#).unwrap();
        let pretty = pretty_schema(&schema);
        assert!(pretty.contains("<module name=\"m\"/>"));
        assert_eq!(parse_schema(&pretty).unwrap(), schema);
    }

    #[test]
    fn escapes_survive_pretty_round_trip() {
        let schema =
            parse_schema(r#"<schema name="x"><module name="m">a &lt; b &amp; c</module></schema>"#)
                .unwrap();
        let pretty = pretty_schema(&schema);
        assert_eq!(parse_schema(&pretty).unwrap(), schema);
    }
}
