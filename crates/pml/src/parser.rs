//! Recursive-descent parser: token stream → schema / prompt ASTs.

use crate::ast::{ModuleDef, ModuleItem, Prompt, PromptItem, Role, Schema, SchemaItem};
use crate::lexer::{lex, Token};
use crate::{PmlError, Result};
use std::collections::HashSet;

/// Tags with reserved meaning; anything else in a prompt is a module
/// reference.
const RESERVED: [&str; 8] = [
    "schema",
    "module",
    "union",
    "param",
    "prompt",
    "system",
    "user",
    "assistant",
];

struct Cursor {
    tokens: Vec<Token>,
    pos: usize,
}

impl Cursor {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect_close(&mut self, tag: &str) -> Result<()> {
        match self.next() {
            Some(Token::Close { name, .. }) if name == tag => Ok(()),
            Some(t) => Err(PmlError::Parse {
                offset: token_offset(&t),
                message: format!("expected </{tag}>, found {t:?}"),
            }),
            None => Err(PmlError::Parse {
                offset: usize::MAX,
                message: format!("expected </{tag}>, found end of input"),
            }),
        }
    }
}

fn token_offset(t: &Token) -> usize {
    match t {
        Token::Open { offset, .. } | Token::Close { offset, .. } | Token::Text { offset, .. } => {
            *offset
        }
    }
}

fn get_attr(attrs: &[(String, String)], key: &str) -> Option<String> {
    attrs.iter().find(|(k, _)| k == key).map(|(_, v)| v.clone())
}

fn require_attr(tag: &str, attrs: &[(String, String)], key: &str) -> Result<String> {
    get_attr(attrs, key).ok_or_else(|| PmlError::MissingAttribute {
        tag: tag.to_owned(),
        attribute: key.to_owned(),
    })
}

/// Parses a PML schema document.
///
/// # Errors
///
/// Returns the first lexical, structural, or naming error encountered;
/// see [`PmlError`] for the catalogue.
pub fn parse_schema(src: &str) -> Result<Schema> {
    let mut cur = Cursor {
        tokens: lex(src)?,
        pos: 0,
    };
    let Some(Token::Open {
        name,
        attrs,
        self_closing,
        offset,
    }) = cur.next()
    else {
        return Err(PmlError::Parse {
            offset: 0,
            message: "expected <schema> as the root element".into(),
        });
    };
    if name != "schema" || self_closing {
        return Err(PmlError::Parse {
            offset,
            message: "expected <schema> as the root element".into(),
        });
    }
    let schema_name = require_attr("schema", &attrs, "name")?;
    let items = parse_schema_items(&mut cur, "schema")?;
    if let Some(t) = cur.peek() {
        return Err(PmlError::Parse {
            offset: token_offset(t),
            message: "content after </schema>".into(),
        });
    }
    Ok(Schema {
        name: schema_name,
        items,
    })
}

/// Parses items until the matching close tag of `parent` (consumed).
fn parse_schema_items(cur: &mut Cursor, parent: &str) -> Result<Vec<SchemaItem>> {
    let mut items = Vec::new();
    let mut names = HashSet::new();
    loop {
        match cur.peek().cloned() {
            Some(Token::Close { .. }) => {
                cur.expect_close(parent)?;
                return Ok(items);
            }
            Some(Token::Text { text, .. }) => {
                cur.next();
                items.push(SchemaItem::Text(text));
            }
            Some(Token::Open { ref name, .. }) if name == "module" => {
                let m = parse_module(cur)?;
                check_unique(&mut names, &m.name)?;
                items.push(SchemaItem::Module(m));
            }
            Some(Token::Open { ref name, .. }) if name == "union" => {
                let members = parse_union(cur)?;
                for m in &members {
                    check_unique(&mut names, &m.name)?;
                }
                items.push(SchemaItem::Union(members));
            }
            Some(Token::Open {
                ref name, offset, ..
            }) => {
                if let Some(role) = Role::from_tag(name) {
                    let tag = name.clone();
                    cur.next();
                    let inner = parse_schema_items(cur, &tag)?;
                    items.push(SchemaItem::Chat { role, items: inner });
                } else {
                    return Err(PmlError::Parse {
                        offset,
                        message: format!("unexpected <{name}> inside <{parent}>"),
                    });
                }
            }
            None => {
                return Err(PmlError::Parse {
                    offset: usize::MAX,
                    message: format!("unterminated <{parent}>"),
                })
            }
        }
    }
}

fn check_unique(names: &mut HashSet<String>, name: &str) -> Result<()> {
    if !names.insert(name.to_owned()) {
        return Err(PmlError::DuplicateName {
            name: name.to_owned(),
        });
    }
    Ok(())
}

/// Parses `<module name=…>…</module>` (the open tag is still in the
/// stream).
fn parse_module(cur: &mut Cursor) -> Result<ModuleDef> {
    let Some(Token::Open {
        attrs,
        self_closing,
        ..
    }) = cur.next()
    else {
        unreachable!("caller peeked an open tag");
    };
    let name = require_attr("module", &attrs, "name")?;
    if RESERVED.contains(&name.as_str()) {
        return Err(PmlError::InvalidAttribute {
            tag: "module".into(),
            attribute: "name".into(),
            value: name,
        });
    }
    if self_closing {
        return Ok(ModuleDef {
            name,
            items: Vec::new(),
        });
    }

    let mut items = Vec::new();
    let mut child_names = HashSet::new();
    let mut param_names = HashSet::new();
    loop {
        match cur.peek().cloned() {
            Some(Token::Close { .. }) => {
                cur.expect_close("module")?;
                return Ok(ModuleDef { name, items });
            }
            Some(Token::Text { text, .. }) => {
                cur.next();
                items.push(ModuleItem::Text(text));
            }
            Some(Token::Open { ref name, .. }) if name == "param" => {
                let Some(Token::Open {
                    attrs,
                    self_closing,
                    offset,
                    ..
                }) = cur.next()
                else {
                    unreachable!();
                };
                if !self_closing {
                    return Err(PmlError::Parse {
                        offset,
                        message: "<param> must be self-closing".into(),
                    });
                }
                let pname = require_attr("param", &attrs, "name")?;
                let len_raw = require_attr("param", &attrs, "len")?;
                let len: usize =
                    len_raw
                        .parse()
                        .ok()
                        .filter(|&l| l > 0)
                        .ok_or_else(|| PmlError::InvalidAttribute {
                            tag: "param".into(),
                            attribute: "len".into(),
                            value: len_raw,
                        })?;
                check_unique(&mut param_names, &pname)?;
                items.push(ModuleItem::Param { name: pname, len });
            }
            Some(Token::Open { ref name, .. }) if name == "module" => {
                let m = parse_module(cur)?;
                check_unique(&mut child_names, &m.name)?;
                items.push(ModuleItem::Module(m));
            }
            Some(Token::Open { ref name, .. }) if name == "union" => {
                let members = parse_union(cur)?;
                for m in &members {
                    check_unique(&mut child_names, &m.name)?;
                }
                items.push(ModuleItem::Union(members));
            }
            Some(Token::Open {
                ref name, offset, ..
            }) => {
                return Err(PmlError::Parse {
                    offset,
                    message: format!("unexpected <{name}> inside <module>"),
                });
            }
            None => {
                return Err(PmlError::Parse {
                    offset: usize::MAX,
                    message: "unterminated <module>".into(),
                })
            }
        }
    }
}

/// Parses `<union>…</union>`: only whole modules are permitted inside.
fn parse_union(cur: &mut Cursor) -> Result<Vec<ModuleDef>> {
    let Some(Token::Open {
        self_closing,
        offset,
        ..
    }) = cur.next()
    else {
        unreachable!("caller peeked an open tag");
    };
    if self_closing {
        return Err(PmlError::Parse {
            offset,
            message: "<union> cannot be self-closing".into(),
        });
    }
    let mut members = Vec::new();
    loop {
        match cur.peek().cloned() {
            Some(Token::Close { .. }) => {
                cur.expect_close("union")?;
                return Ok(members);
            }
            Some(Token::Open { ref name, .. }) if name == "module" => {
                members.push(parse_module(cur)?);
            }
            Some(t) => {
                return Err(PmlError::Parse {
                    offset: token_offset(&t),
                    message: "only <module> is allowed inside <union>".into(),
                });
            }
            None => {
                return Err(PmlError::Parse {
                    offset: usize::MAX,
                    message: "unterminated <union>".into(),
                })
            }
        }
    }
}

/// Parses a PML prompt document.
///
/// # Errors
///
/// Same failure modes as [`parse_schema`]; reserved tags (other than the
/// chat roles, which are permitted and pass through) may not be used as
/// module references.
pub fn parse_prompt(src: &str) -> Result<Prompt> {
    let mut cur = Cursor {
        tokens: lex(src)?,
        pos: 0,
    };
    let Some(Token::Open {
        name,
        attrs,
        self_closing,
        offset,
    }) = cur.next()
    else {
        return Err(PmlError::Parse {
            offset: 0,
            message: "expected <prompt> as the root element".into(),
        });
    };
    if name != "prompt" || self_closing {
        return Err(PmlError::Parse {
            offset,
            message: "expected <prompt> as the root element".into(),
        });
    }
    let schema = require_attr("prompt", &attrs, "schema")?;
    let items = parse_prompt_items(&mut cur, "prompt")?;
    if let Some(t) = cur.peek() {
        return Err(PmlError::Parse {
            offset: token_offset(t),
            message: "content after </prompt>".into(),
        });
    }
    Ok(Prompt { schema, items })
}

fn parse_prompt_items(cur: &mut Cursor, parent: &str) -> Result<Vec<PromptItem>> {
    let mut items = Vec::new();
    loop {
        match cur.peek().cloned() {
            Some(Token::Close { .. }) => {
                cur.expect_close(parent)?;
                return Ok(items);
            }
            Some(Token::Text { text, .. }) => {
                cur.next();
                items.push(PromptItem::Text(text));
            }
            Some(Token::Open {
                ref name, offset, ..
            }) if RESERVED.contains(&name.as_str()) => {
                return Err(PmlError::Parse {
                    offset,
                    message: format!("reserved tag <{name}> cannot be used in a prompt"),
                });
            }
            Some(Token::Open { .. }) => {
                let Some(Token::Open {
                    name,
                    attrs,
                    self_closing,
                    ..
                }) = cur.next()
                else {
                    unreachable!();
                };
                let children = if self_closing {
                    Vec::new()
                } else {
                    parse_prompt_items(cur, &name)?
                };
                items.push(PromptItem::ModuleRef {
                    name,
                    args: attrs,
                    children,
                });
            }
            None => {
                return Err(PmlError::Parse {
                    offset: usize::MAX,
                    message: format!("unterminated <{parent}>"),
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TRAVEL: &str = r#"
        <schema name="travel">
          You are a travel assistant.
          <module name="trip-plan">
            Plan a trip of <param name="duration" len="2"/> days.
          </module>
          <union>
            <module name="miami">Miami: beaches and surf.</module>
            <module name="tokyo">Tokyo: temples and food.</module>
          </union>
        </schema>"#;

    #[test]
    fn parses_full_schema() {
        let s = parse_schema(TRAVEL).unwrap();
        assert_eq!(s.name, "travel");
        assert_eq!(s.items.len(), 3);
        assert!(matches!(&s.items[0], SchemaItem::Text(t) if t.starts_with("You are")));
        let SchemaItem::Module(m) = &s.items[1] else {
            panic!()
        };
        assert_eq!(m.name, "trip-plan");
        assert_eq!(m.params(), vec![("duration", 2)]);
        let SchemaItem::Union(u) = &s.items[2] else {
            panic!()
        };
        assert_eq!(u.len(), 2);
    }

    #[test]
    fn parses_nested_modules() {
        let s = parse_schema(
            r#"<schema name="n">
                 <module name="outer">
                   intro
                   <module name="inner">deep</module>
                   outro
                 </module>
               </schema>"#,
        )
        .unwrap();
        let SchemaItem::Module(outer) = &s.items[0] else {
            panic!()
        };
        assert_eq!(outer.child_module_names(), vec!["inner"]);
        assert_eq!(outer.items.len(), 3);
    }

    #[test]
    fn parses_chat_roles() {
        let s = parse_schema(
            r#"<schema name="c">
                 <system>Be helpful.<module name="policy">No lies.</module></system>
                 <user>Hi</user>
               </schema>"#,
        )
        .unwrap();
        let SchemaItem::Chat { role, items } = &s.items[0] else {
            panic!()
        };
        assert_eq!(*role, Role::System);
        assert_eq!(items.len(), 2);
    }

    #[test]
    fn rejects_duplicate_module_names() {
        let err = parse_schema(
            r#"<schema name="d">
                 <module name="a">x</module>
                 <module name="a">y</module>
               </schema>"#,
        )
        .unwrap_err();
        assert!(matches!(err, PmlError::DuplicateName { name } if name == "a"));
    }

    #[test]
    fn same_name_ok_at_different_levels() {
        // Nested levels are separate namespaces.
        assert!(parse_schema(
            r#"<schema name="d">
                 <module name="a"><module name="b">x</module></module>
                 <module name="c"><module name="b">y</module></module>
               </schema>"#,
        )
        .is_ok());
    }

    #[test]
    fn rejects_bad_param() {
        for src in [
            r#"<schema name="p"><module name="m"><param len="3"/></module></schema>"#,
            r#"<schema name="p"><module name="m"><param name="x"/></module></schema>"#,
            r#"<schema name="p"><module name="m"><param name="x" len="zero"/></module></schema>"#,
            r#"<schema name="p"><module name="m"><param name="x" len="0"/></module></schema>"#,
            r#"<schema name="p"><module name="m"><param name="x" len="3">t</param></module></schema>"#,
        ] {
            assert!(parse_schema(src).is_err(), "{src}");
        }
    }

    #[test]
    fn rejects_module_named_like_reserved_tag() {
        assert!(parse_schema(r#"<schema name="r"><module name="union">x</module></schema>"#)
            .is_err());
    }

    #[test]
    fn rejects_non_module_in_union() {
        assert!(parse_schema(r#"<schema name="u"><union>text</union></schema>"#).is_err());
    }

    #[test]
    fn parses_prompt_with_imports_args_and_text() {
        let p = parse_prompt(
            r#"<prompt schema="travel">
                 <trip-plan duration="3 days"/>
                 <miami/>
                 Highlight the surf spots.
               </prompt>"#,
        )
        .unwrap();
        assert_eq!(p.schema, "travel");
        assert_eq!(p.items.len(), 3);
        let PromptItem::ModuleRef { name, args, .. } = &p.items[0] else {
            panic!()
        };
        assert_eq!(name, "trip-plan");
        assert_eq!(args[0], ("duration".into(), "3 days".into()));
        assert!(matches!(&p.items[2], PromptItem::Text(t) if t == "Highlight the surf spots."));
    }

    #[test]
    fn parses_nested_imports() {
        let p = parse_prompt(r#"<prompt schema="s"><outer><inner/></outer></prompt>"#).unwrap();
        let PromptItem::ModuleRef { children, .. } = &p.items[0] else {
            panic!()
        };
        assert_eq!(children.len(), 1);
    }

    #[test]
    fn prompt_rejects_reserved_tags() {
        assert!(parse_prompt(r#"<prompt schema="s"><module name="x"/></prompt>"#).is_err());
    }

    #[test]
    fn prompt_requires_schema_attr() {
        assert!(matches!(
            parse_prompt("<prompt>x</prompt>"),
            Err(PmlError::MissingAttribute { .. })
        ));
    }

    #[test]
    fn schema_display_round_trips() {
        let s = parse_schema(TRAVEL).unwrap();
        let reparsed = parse_schema(&s.to_string()).unwrap();
        assert_eq!(s, reparsed);
    }

    #[test]
    fn prompt_display_round_trips() {
        let p = parse_prompt(
            r#"<prompt schema="travel"><trip-plan duration="3 days"/><miami/>notes</prompt>"#,
        )
        .unwrap();
        let reparsed = parse_prompt(&p.to_string()).unwrap();
        assert_eq!(p, reparsed);
    }

    #[test]
    fn unterminated_structures_error() {
        assert!(parse_schema(r#"<schema name="x"><module name="m">"#).is_err());
        assert!(parse_prompt(r#"<prompt schema="s"><a>"#).is_err());
        assert!(parse_schema(r#"<schema name="x"></schema>extra"#).is_err());
    }
}
