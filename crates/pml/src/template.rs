//! LLM-specific chat-template compilation (paper §3.2.3).
//!
//! Instruction-tuned LLMs wrap conversations in model-specific markers —
//! Llama2 uses `<s>[INST] … [/INST] … </s>`, MPT-chat uses ChatML-style
//! `<|im_start|>role … <|im_end|>`, Falcon-instruct uses plain
//! `Role: …` lines. PML's `<system>/<user>/<assistant>` tags abstract over
//! these; [`ChatTemplate::compile`] rewrites a schema's chat wrappers into
//! the target model's literal markers, inserted as anonymous text so they
//! are cached (and positioned) like any other schema text.

use crate::ast::{Role, Schema, SchemaItem};

/// The conversation formats the reproduction understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ChatTemplate {
    /// Llama2-chat: `[INST] <<SYS>>…<</SYS>> … [/INST] …`.
    Llama2,
    /// ChatML (MPT-chat): `<|im_start|>role\n…<|im_end|>`.
    ChatMl,
    /// Plain role prefixes (Falcon-instruct): `System: …`, `User: …`.
    #[default]
    Plain,
}

impl ChatTemplate {
    /// Text inserted before a role's content.
    pub fn prefix(self, role: Role) -> String {
        match self {
            ChatTemplate::Llama2 => match role {
                Role::System => "[INST] <<SYS>> ".to_owned(),
                Role::User => "[INST] ".to_owned(),
                Role::Assistant => String::new(),
            },
            ChatTemplate::ChatMl => format!("<|im_start|>{} ", role.tag()),
            ChatTemplate::Plain => match role {
                Role::System => "System: ".to_owned(),
                Role::User => "User: ".to_owned(),
                Role::Assistant => "Assistant: ".to_owned(),
            },
        }
    }

    /// Text inserted after a role's content.
    pub fn suffix(self, role: Role) -> String {
        match self {
            ChatTemplate::Llama2 => match role {
                Role::System => " <</SYS>>".to_owned(),
                Role::User => " [/INST]".to_owned(),
                Role::Assistant => String::new(),
            },
            ChatTemplate::ChatMl => " <|im_end|>".to_owned(),
            ChatTemplate::Plain => String::new(),
        }
    }

    /// Rewrites every [`SchemaItem::Chat`] wrapper into literal prefix /
    /// suffix text for this template, recursively, preserving everything
    /// else. The result contains no `Chat` items.
    pub fn compile(self, schema: &Schema) -> Schema {
        Schema {
            name: schema.name.clone(),
            items: self.compile_items(&schema.items),
        }
    }

    fn compile_items(self, items: &[SchemaItem]) -> Vec<SchemaItem> {
        let mut out = Vec::new();
        for item in items {
            match item {
                SchemaItem::Chat { role, items } => {
                    let prefix = self.prefix(*role);
                    if !prefix.is_empty() {
                        out.push(SchemaItem::Text(prefix));
                    }
                    out.extend(self.compile_items(items));
                    let suffix = self.suffix(*role);
                    if !suffix.is_empty() {
                        out.push(SchemaItem::Text(suffix));
                    }
                }
                other => out.push(other.clone()),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_schema;

    fn chat_schema() -> Schema {
        parse_schema(
            r#"<schema name="c">
                 <system>Be helpful.<module name="rules">No lies.</module></system>
                 <user>Question.</user>
               </schema>"#,
        )
        .unwrap()
    }

    #[test]
    fn compile_removes_chat_items() {
        for template in [ChatTemplate::Llama2, ChatTemplate::ChatMl, ChatTemplate::Plain] {
            let compiled = template.compile(&chat_schema());
            fn has_chat(items: &[SchemaItem]) -> bool {
                items.iter().any(|i| matches!(i, SchemaItem::Chat { .. }))
            }
            assert!(!has_chat(&compiled.items), "{template:?}");
        }
    }

    #[test]
    fn llama2_markers_present() {
        let compiled = ChatTemplate::Llama2.compile(&chat_schema());
        let flat = compiled.to_string();
        assert!(flat.contains("[INST]"));
        assert!(flat.contains("&lt;&lt;SYS&gt;&gt;")); // escaped in serialisation
        assert!(flat.contains("[/INST]"));
    }

    #[test]
    fn chatml_markers_wrap_each_role() {
        let compiled = ChatTemplate::ChatMl.compile(&chat_schema());
        let flat = compiled.to_string();
        assert!(flat.contains("im_start|&gt;system"));
        assert!(flat.contains("im_start|&gt;user"));
    }

    #[test]
    fn plain_template_uses_role_prefixes() {
        let compiled = ChatTemplate::Plain.compile(&chat_schema());
        let SchemaItem::Text(first) = &compiled.items[0] else {
            panic!()
        };
        assert_eq!(first, "System: ");
    }

    #[test]
    fn modules_survive_compilation() {
        let compiled = ChatTemplate::Llama2.compile(&chat_schema());
        let has_module = compiled
            .items
            .iter()
            .any(|i| matches!(i, SchemaItem::Module(m) if m.name == "rules"));
        assert!(has_module);
    }

    #[test]
    fn compile_without_chat_is_identity() {
        let s = parse_schema(r#"<schema name="x">plain<module name="m">t</module></schema>"#)
            .unwrap();
        assert_eq!(ChatTemplate::Llama2.compile(&s), s);
    }
}
