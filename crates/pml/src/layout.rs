//! Position-ID layout of a schema (paper §3.3, "Encoding Schema").
//!
//! Layout walks a (chat-compiled) schema with a cursor and assigns every
//! piece of cacheable content an absolute position-ID range:
//!
//! * anonymous text advances the cursor and is always included;
//! * a module's subtree starts at the cursor and advances it by the
//!   subtree's token length;
//! * union members all start at the **same** position and the cursor
//!   advances by the **largest** member ("their token sequence size is
//!   considered with the size of the largest child");
//! * parameters reserve `len` token slots inside their module's span.
//!
//! The output is a list of [`LayoutSpan`]s — contiguous cacheable runs
//! owned by a module path (or by the anonymous path `[]`) — plus a
//! [`ModuleInfo`] index used by prompt resolution.

use crate::ast::{ModuleDef, ModuleItem, Schema, SchemaItem};
use crate::template::ChatTemplate;

/// Hierarchical module identifier: `["travel-plan", "miami"]`. The empty
/// path owns anonymous schema text.
pub type ModulePath = Vec<String>;

/// A contiguous run of cacheable content at fixed positions.
#[derive(Debug, Clone, PartialEq)]
pub struct LayoutSpan {
    /// Owning module path (empty for anonymous schema text).
    pub owner: ModulePath,
    /// Absolute starting position ID.
    pub start: usize,
    /// Ordered text/parameter segments.
    pub segments: Vec<Segment>,
    /// Total token length of the span.
    pub len: usize,
}

/// One segment of a span.
#[derive(Debug, Clone, PartialEq)]
pub enum Segment {
    /// Literal schema text.
    Text {
        /// The text.
        text: String,
        /// Its token length under the layout's counter.
        len: usize,
    },
    /// A parameter placeholder reserving `len` `<unk>` slots.
    Param {
        /// Parameter name.
        name: String,
        /// Reserved token slots.
        len: usize,
    },
}

impl Segment {
    /// Token length of this segment.
    pub fn len(&self) -> usize {
        match self {
            Segment::Text { len, .. } | Segment::Param { len, .. } => *len,
        }
    }

    /// Whether the segment is zero tokens long.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Metadata for one module: its subtree range, parameters, and union
/// membership.
#[derive(Debug, Clone, PartialEq)]
pub struct ModuleInfo {
    /// Hierarchical path.
    pub path: ModulePath,
    /// Subtree start position.
    pub start: usize,
    /// Subtree end position (exclusive).
    pub end: usize,
    /// Declared parameters.
    pub params: Vec<ParamInfo>,
    /// Union group id if the module is a union member.
    pub union_group: Option<usize>,
}

/// A parameter's placement.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamInfo {
    /// Parameter name.
    pub name: String,
    /// Maximum argument token length.
    pub len: usize,
    /// Absolute position of the first reserved slot.
    pub start: usize,
}

/// The computed layout of one schema.
#[derive(Debug, Clone, PartialEq)]
pub struct SchemaLayout {
    /// Name of the schema this layout was computed from.
    pub schema_name: String,
    /// All cacheable spans in position order of creation.
    pub spans: Vec<LayoutSpan>,
    /// Module index.
    pub modules: Vec<ModuleInfo>,
    /// One position past the last assigned position.
    pub total_len: usize,
}

impl SchemaLayout {
    /// Computes the layout of `schema` after compiling chat tags with
    /// `template`, counting tokens with `count`.
    pub fn build(
        schema: &Schema,
        template: ChatTemplate,
        count: &dyn Fn(&str) -> usize,
    ) -> SchemaLayout {
        let compiled = template.compile(schema);
        let mut builder = Builder {
            count,
            spans: Vec::new(),
            modules: Vec::new(),
            next_union_group: 0,
        };
        let total_len = builder.walk_schema_items(&compiled.items, &[], 0);
        SchemaLayout {
            schema_name: schema.name.clone(),
            spans: builder.spans,
            modules: builder.modules,
            total_len,
        }
    }

    /// Spans owned exactly by `path` (a module's direct content), in
    /// position order.
    pub fn spans_of(&self, path: &[String]) -> Vec<&LayoutSpan> {
        self.spans.iter().filter(|s| s.owner == path).collect()
    }

    /// Anonymous spans (always included in any derived prompt).
    pub fn anonymous_spans(&self) -> Vec<&LayoutSpan> {
        self.spans_of(&[])
    }

    /// Metadata for the module at `path`.
    pub fn module(&self, path: &[String]) -> Option<&ModuleInfo> {
        self.modules.iter().find(|m| m.path == path)
    }

    /// Total cacheable tokens across all spans (counting every union
    /// member — the memory the encoder will populate, not the positions).
    pub fn cacheable_tokens(&self) -> usize {
        self.spans.iter().map(|s| s.len).sum()
    }
}

struct Builder<'a> {
    count: &'a dyn Fn(&str) -> usize,
    spans: Vec<LayoutSpan>,
    modules: Vec<ModuleInfo>,
    next_union_group: usize,
}

impl Builder<'_> {
    /// Walks top-level (or chat-unwrapped) schema items; returns the
    /// cursor after the last item.
    fn walk_schema_items(
        &mut self,
        items: &[SchemaItem],
        owner: &[String],
        mut cursor: usize,
    ) -> usize {
        let mut pending: Vec<Segment> = Vec::new();
        let mut pending_start = cursor;
        for item in items {
            match item {
                SchemaItem::Text(t) => {
                    let len = (self.count)(t);
                    cursor += len;
                    pending.push(Segment::Text {
                        text: t.clone(),
                        len,
                    });
                }
                SchemaItem::Module(m) => {
                    self.flush(owner, pending_start, &mut pending);
                    cursor = self.walk_module(m, owner, cursor, None);
                    pending_start = cursor;
                }
                SchemaItem::Union(ms) => {
                    self.flush(owner, pending_start, &mut pending);
                    cursor = self.walk_union(ms, owner, cursor);
                    pending_start = cursor;
                }
                SchemaItem::Chat { items, .. } => {
                    // Normally removed by template compilation; lay out the
                    // contents transparently if one slipped through.
                    self.flush(owner, pending_start, &mut pending);
                    cursor = self.walk_schema_items(items, owner, cursor);
                    pending_start = cursor;
                }
            }
        }
        self.flush(owner, pending_start, &mut pending);
        cursor
    }

    /// Lays out one module subtree starting at `cursor`; returns the
    /// position after it.
    fn walk_module(
        &mut self,
        m: &ModuleDef,
        parent: &[String],
        cursor: usize,
        union_group: Option<usize>,
    ) -> usize {
        let path: ModulePath = parent.iter().cloned().chain([m.name.clone()]).collect();
        let start = cursor;
        let mut cur = cursor;
        let mut params = Vec::new();
        let mut pending: Vec<Segment> = Vec::new();
        let mut pending_start = cur;
        for item in &m.items {
            match item {
                ModuleItem::Text(t) => {
                    let len = (self.count)(t);
                    cur += len;
                    pending.push(Segment::Text {
                        text: t.clone(),
                        len,
                    });
                }
                ModuleItem::Param { name, len } => {
                    params.push(ParamInfo {
                        name: name.clone(),
                        len: *len,
                        start: cur,
                    });
                    cur += len;
                    pending.push(Segment::Param {
                        name: name.clone(),
                        len: *len,
                    });
                }
                ModuleItem::Module(inner) => {
                    self.flush(&path, pending_start, &mut pending);
                    cur = self.walk_module(inner, &path, cur, None);
                    pending_start = cur;
                }
                ModuleItem::Union(ms) => {
                    self.flush(&path, pending_start, &mut pending);
                    cur = self.walk_union(ms, &path, cur);
                    pending_start = cur;
                }
            }
        }
        self.flush(&path, pending_start, &mut pending);
        self.modules.push(ModuleInfo {
            path,
            start,
            end: cur,
            params,
            union_group,
        });
        cur
    }

    /// Lays out union members at a shared start; returns `start + max
    /// member length`.
    fn walk_union(&mut self, members: &[ModuleDef], parent: &[String], start: usize) -> usize {
        let group = self.next_union_group;
        self.next_union_group += 1;
        let mut max_end = start;
        for m in members {
            let end = self.walk_module(m, parent, start, Some(group));
            max_end = max_end.max(end);
        }
        max_end
    }

    fn flush(&mut self, owner: &[String], start: usize, pending: &mut Vec<Segment>) {
        if pending.is_empty() || pending.iter().all(Segment::is_empty) {
            pending.clear();
            return;
        }
        let segments = std::mem::take(pending);
        let len = segments.iter().map(Segment::len).sum();
        self.spans.push(LayoutSpan {
            owner: owner.to_vec(),
            start,
            segments,
            len,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_schema;

    /// Counter: one token per whitespace-separated word.
    fn words(text: &str) -> usize {
        text.split_whitespace().count()
    }

    fn build(src: &str) -> SchemaLayout {
        SchemaLayout::build(&parse_schema(src).unwrap(), ChatTemplate::Plain, &words)
    }

    #[test]
    fn sequential_modules_get_sequential_starts() {
        // Paper's worked example: modules of 50 and 60 tokens put the third
        // module at position 110.
        let m1 = "w ".repeat(50);
        let m2 = "w ".repeat(60);
        let src = format!(
            r#"<schema name="s">
                 <module name="a">{m1}</module>
                 <module name="b">{m2}</module>
                 <module name="c">tail words here</module>
               </schema>"#
        );
        let l = build(&src);
        assert_eq!(l.module(&["a".into()]).unwrap().start, 0);
        assert_eq!(l.module(&["b".into()]).unwrap().start, 50);
        assert_eq!(l.module(&["c".into()]).unwrap().start, 110);
        assert_eq!(l.total_len, 113);
    }

    #[test]
    fn anonymous_text_advances_cursor_and_is_tracked() {
        let l = build(
            r#"<schema name="s">
                 one two three
                 <module name="m">four five</module>
               </schema>"#,
        );
        let anon = l.anonymous_spans();
        assert_eq!(anon.len(), 1);
        assert_eq!(anon[0].start, 0);
        assert_eq!(anon[0].len, 3);
        assert_eq!(l.module(&["m".into()]).unwrap().start, 3);
    }

    #[test]
    fn union_members_share_start_and_advance_by_max() {
        let l = build(
            r#"<schema name="s">
                 <union>
                   <module name="short">a b</module>
                   <module name="long">a b c d e</module>
                 </union>
                 <module name="after">x</module>
               </schema>"#,
        );
        let short = l.module(&["short".into()]).unwrap();
        let long = l.module(&["long".into()]).unwrap();
        assert_eq!(short.start, 0);
        assert_eq!(long.start, 0);
        assert_eq!(short.union_group, long.union_group);
        assert!(short.union_group.is_some());
        // Next module starts after the largest member.
        assert_eq!(l.module(&["after".into()]).unwrap().start, 5);
    }

    #[test]
    fn separate_unions_get_distinct_groups() {
        let l = build(
            r#"<schema name="s">
                 <union><module name="a">x</module></union>
                 <union><module name="b">y</module></union>
               </schema>"#,
        );
        assert_ne!(
            l.module(&["a".into()]).unwrap().union_group,
            l.module(&["b".into()]).unwrap().union_group
        );
    }

    #[test]
    fn params_reserve_slots_at_recorded_positions() {
        let l = build(
            r#"<schema name="s">
                 <module name="trip">
                   plan a trip of <param name="duration" len="3"/> starting now
                 </module>
               </schema>"#,
        );
        let m = l.module(&["trip".into()]).unwrap();
        assert_eq!(m.params.len(), 1);
        let p = &m.params[0];
        assert_eq!(p.name, "duration");
        assert_eq!(p.len, 3);
        assert_eq!(p.start, 4); // after "plan a trip of"
        assert_eq!(m.end, 4 + 3 + 2);
        // The span carries a Param segment at the right offset.
        let spans = l.spans_of(&["trip".into()]);
        assert_eq!(spans.len(), 1);
        assert!(matches!(&spans[0].segments[1], Segment::Param { name, len: 3 } if name == "duration"));
    }

    #[test]
    fn nested_module_splits_parent_spans() {
        let l = build(
            r#"<schema name="s">
                 <module name="outer">
                   intro words
                   <module name="inner">deep content here</module>
                   outro
                 </module>
               </schema>"#,
        );
        let outer_spans = l.spans_of(&["outer".into()]);
        assert_eq!(outer_spans.len(), 2);
        assert_eq!(outer_spans[0].start, 0);
        assert_eq!(outer_spans[0].len, 2);
        assert_eq!(outer_spans[1].start, 5); // after inner's 3 tokens
        let inner = l.module(&["outer".into(), "inner".into()]).unwrap();
        assert_eq!(inner.start, 2);
        assert_eq!(inner.end, 5);
        let outer = l.module(&["outer".into()]).unwrap();
        assert_eq!((outer.start, outer.end), (0, 6));
    }

    #[test]
    fn chat_template_text_is_cached_as_anonymous() {
        let l = SchemaLayout::build(
            &parse_schema(r#"<schema name="c"><system>be good</system></schema>"#).unwrap(),
            ChatTemplate::Plain,
            &words,
        );
        // "System:" prefix + "be good" — all anonymous text.
        let anon_len: usize = l.anonymous_spans().iter().map(|s| s.len).sum();
        assert_eq!(anon_len, 3);
    }

    #[test]
    fn empty_modules_yield_no_spans() {
        let l = build(r#"<schema name="s"><module name="empty"></module></schema>"#);
        assert!(l.spans_of(&["empty".into()]).is_empty());
        let m = l.module(&["empty".into()]).unwrap();
        assert_eq!(m.start, m.end);
    }

    #[test]
    fn cacheable_exceeds_positions_with_unions() {
        // Two 5-token union members occupy 5 positions but 10 cacheable
        // tokens.
        let l = build(
            r#"<schema name="s">
                 <union>
                   <module name="a">a b c d e</module>
                   <module name="b">f g h i j</module>
                 </union>
               </schema>"#,
        );
        assert_eq!(l.total_len, 5);
        assert_eq!(l.cacheable_tokens(), 10);
    }

    #[test]
    fn unknown_module_lookup_is_none() {
        let l = build(r#"<schema name="s"><module name="a">x</module></schema>"#);
        assert!(l.module(&["missing".into()]).is_none());
        assert!(l.module(&["a".into(), "missing".into()]).is_none());
    }
}
