//! 8-bit quantization of stored modules.
//!
//! §5.5 ends: "compression methods for attention states remain an avenue
//! for future research in prompt caching techniques." This module
//! implements the simplest credible member of that family — symmetric
//! per-row int8 quantization of each token's k/v rows — so the
//! `quant_ablation` bench can measure the 4× footprint reduction against
//! the output divergence it introduces.

use pc_model::KvCache;

/// An 8-bit quantized module: one scale per (layer, token, k/v) row.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedKv {
    layers: Vec<QuantLayer>,
    positions: Vec<usize>,
    kv_dim: usize,
}

#[derive(Debug, Clone, PartialEq)]
struct QuantLayer {
    k: Vec<i8>,
    v: Vec<i8>,
    k_scales: Vec<f32>,
    v_scales: Vec<f32>,
}

impl QuantizedKv {
    /// Quantizes a module's states.
    pub fn quantize(cache: &KvCache) -> Self {
        let kv_dim = cache.kv_dim();
        let layers = (0..cache.num_layers())
            .map(|l| {
                let (k, k_scales) = quantize_rows(cache.keys(l), kv_dim);
                let (v, v_scales) = quantize_rows(cache.values(l), kv_dim);
                QuantLayer {
                    k,
                    v,
                    k_scales,
                    v_scales,
                }
            })
            .collect();
        QuantizedKv {
            layers,
            positions: cache.positions().to_vec(),
            kv_dim,
        }
    }

    /// Reconstructs an f32 module (lossy). One pair of row buffers is
    /// reused across every (token, layer) row, so a whole-module
    /// dequantize does two allocations total instead of two per row.
    pub fn dequantize(&self) -> KvCache {
        let mut out = KvCache::with_shape(self.layers.len(), self.kv_dim);
        let tokens = self.positions.len();
        let mut k = vec![0.0f32; self.kv_dim];
        let mut v = vec![0.0f32; self.kv_dim];
        for t in 0..tokens {
            for (l, layer) in self.layers.iter().enumerate() {
                dequantize_row(&layer.k, &layer.k_scales, t, self.kv_dim, &mut k);
                dequantize_row(&layer.v, &layer.v_scales, t, self.kv_dim, &mut v);
                out.push_token_layer(l, &k, &v);
            }
            out.push_position(self.positions[t]);
        }
        out
    }

    /// Number of cached tokens.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Whether the module is empty.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Storage size in bytes (int8 payload + f32 scales + positions).
    pub fn size_bytes(&self) -> usize {
        let payload: usize = self
            .layers
            .iter()
            .map(|l| l.k.len() + l.v.len() + 4 * (l.k_scales.len() + l.v_scales.len()))
            .sum();
        payload + self.positions.len() * std::mem::size_of::<usize>()
    }

}

fn quantize_rows(data: &[f32], kv_dim: usize) -> (Vec<i8>, Vec<f32>) {
    let mut quantized = Vec::with_capacity(data.len());
    let mut scales = Vec::with_capacity(data.len() / kv_dim.max(1));
    for row in data.chunks_exact(kv_dim.max(1)) {
        let max_abs = row.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
        let scale = if max_abs == 0.0 { 1.0 } else { max_abs / 127.0 };
        scales.push(scale);
        for &x in row {
            quantized.push((x / scale).round().clamp(-127.0, 127.0) as i8);
        }
    }
    (quantized, scales)
}

fn dequantize_row(data: &[i8], scales: &[f32], token: usize, kv_dim: usize, out: &mut [f32]) {
    debug_assert_eq!(out.len(), kv_dim);
    let scale = scales[token];
    for (o, &q) in out.iter_mut().zip(&data[token * kv_dim..(token + 1) * kv_dim]) {
        *o = q as f32 * scale;
    }
}

/// Maximum elementwise absolute error of quantize → dequantize over all
/// layers of `cache`, as a fraction of the per-row max magnitude.
pub fn round_trip_error(cache: &KvCache) -> f32 {
    let deq = QuantizedKv::quantize(cache).dequantize();
    let mut worst: f32 = 0.0;
    for l in 0..cache.num_layers() {
        for (rows, deq_rows) in [
            (cache.keys(l), deq.keys(l)),
            (cache.values(l), deq.values(l)),
        ] {
            for (row, drow) in rows
                .chunks_exact(cache.kv_dim())
                .zip(deq_rows.chunks_exact(cache.kv_dim()))
            {
                let max_abs = row.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
                if max_abs == 0.0 {
                    continue;
                }
                for (a, b) in row.iter().zip(drow) {
                    worst = worst.max((a - b).abs() / max_abs);
                }
            }
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;

    fn module(tokens: usize, seed: f32) -> KvCache {
        let mut c = KvCache::with_shape(2, 4);
        for t in 0..tokens {
            for l in 0..2 {
                let base = seed + t as f32 * 0.37 + l as f32 * 1.1;
                let k: Vec<f32> = (0..4).map(|i| (base + i as f32).sin() * 3.0).collect();
                let v: Vec<f32> = (0..4).map(|i| (base - i as f32).cos() * 0.5).collect();
                c.push_token_layer(l, &k, &v);
            }
            c.push_position(t + 10);
        }
        c
    }

    #[test]
    fn round_trip_preserves_shape_and_positions() {
        let m = module(5, 0.3);
        let deq = QuantizedKv::quantize(&m).dequantize();
        assert_eq!(deq.len(), m.len());
        assert_eq!(deq.positions(), m.positions());
        assert_eq!(deq.num_layers(), m.num_layers());
        assert_eq!(deq.kv_dim(), m.kv_dim());
    }

    #[test]
    fn round_trip_error_is_sub_percent() {
        let m = module(16, 1.7);
        let err = round_trip_error(&m);
        assert!(err > 0.0, "quantization should be lossy");
        assert!(err < 0.01, "relative error {err} too large for int8");
    }

    #[test]
    fn quantized_is_smaller_than_f32() {
        // Use a realistic row width (64) so the one-f32-scale-per-row
        // overhead amortises as it would in a real model.
        let mut m = KvCache::with_shape(2, 64);
        for t in 0..32 {
            for l in 0..2 {
                let row: Vec<f32> = (0..64).map(|i| ((t + l + i) as f32).sin()).collect();
                m.push_token_layer(l, &row, &row);
            }
            m.push_position(t);
        }
        let q = QuantizedKv::quantize(&m);
        // int8 payload ≈ 1/4 of the f32 payload (plus small scale overhead).
        assert!(
            q.size_bytes() * 3 < m.size_bytes(),
            "q={} m={}",
            q.size_bytes(),
            m.size_bytes()
        );
    }

    #[test]
    fn zero_rows_survive() {
        let mut m = KvCache::with_shape(1, 4);
        m.push_token_layer(0, &[0.0; 4], &[0.0; 4]);
        m.push_position(0);
        let deq = QuantizedKv::quantize(&m).dequantize();
        assert_eq!(deq.keys(0), &[0.0; 4]);
    }

    #[test]
    fn empty_module() {
        let m = KvCache::with_shape(2, 4);
        let q = QuantizedKv::quantize(&m);
        assert!(q.is_empty());
        assert_eq!(q.dequantize(), m);
    }

    #[test]
    fn extreme_magnitudes_clamp_safely() {
        let mut m = KvCache::with_shape(1, 2);
        m.push_token_layer(0, &[1e20, -1e20], &[1e-20, 0.0]);
        m.push_position(0);
        let deq = QuantizedKv::quantize(&m).dequantize();
        assert!(deq.keys(0).iter().all(|x| x.is_finite()));
        assert!(deq.keys(0)[0] > 0.0 && deq.keys(0)[1] < 0.0);
    }
}
