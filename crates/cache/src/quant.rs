//! Reduced-precision encodings of stored modules.
//!
//! §5.5 ends: "compression methods for attention states remain an avenue
//! for future research in prompt caching techniques." This module
//! implements the simplest credible members of that family — symmetric
//! per-row int8 quantization of each token's k/v rows
//! ([`quantize_row`]/[`dequantize_row`], the 4× option) and IEEE 754
//! half-precision conversion ([`f32_to_f16_bits`]/[`f16_bits_to_f32`],
//! the 2× option) — so the `quant_ablation` bench can measure the
//! footprint reduction against the output divergence it introduces, and
//! so the disk tier ([`crate::disk`]) can store cold modules compactly
//! with dequantize-on-promote keeping the hot path f32.

use pc_model::KvCache;

/// An 8-bit quantized module: one scale per (layer, token, k/v) row.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedKv {
    layers: Vec<QuantLayer>,
    positions: Vec<usize>,
    kv_dim: usize,
}

#[derive(Debug, Clone, PartialEq)]
struct QuantLayer {
    k: Vec<i8>,
    v: Vec<i8>,
    k_scales: Vec<f32>,
    v_scales: Vec<f32>,
}

impl QuantizedKv {
    /// Quantizes a module's states.
    pub fn quantize(cache: &KvCache) -> Self {
        let kv_dim = cache.kv_dim();
        let layers = (0..cache.num_layers())
            .map(|l| {
                let (k, k_scales) = quantize_rows(cache.keys(l), kv_dim);
                let (v, v_scales) = quantize_rows(cache.values(l), kv_dim);
                QuantLayer {
                    k,
                    v,
                    k_scales,
                    v_scales,
                }
            })
            .collect();
        QuantizedKv {
            layers,
            positions: cache.positions().to_vec(),
            kv_dim,
        }
    }

    /// Reconstructs an f32 module (lossy). One pair of row buffers is
    /// reused across every (token, layer) row, so a whole-module
    /// dequantize does two allocations total instead of two per row.
    pub fn dequantize(&self) -> KvCache {
        let mut out = KvCache::with_shape(self.layers.len(), self.kv_dim);
        let tokens = self.positions.len();
        let mut k = vec![0.0f32; self.kv_dim];
        let mut v = vec![0.0f32; self.kv_dim];
        for t in 0..tokens {
            for (l, layer) in self.layers.iter().enumerate() {
                dequantize_row(&layer.k, &layer.k_scales, t, self.kv_dim, &mut k);
                dequantize_row(&layer.v, &layer.v_scales, t, self.kv_dim, &mut v);
                out.push_token_layer(l, &k, &v);
            }
            out.push_position(self.positions[t]);
        }
        out
    }

    /// Number of cached tokens.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Whether the module is empty.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Storage size in bytes (int8 payload + f32 scales + positions).
    pub fn size_bytes(&self) -> usize {
        let payload: usize = self
            .layers
            .iter()
            .map(|l| l.k.len() + l.v.len() + 4 * (l.k_scales.len() + l.v_scales.len()))
            .sum();
        payload + self.positions.len() * std::mem::size_of::<usize>()
    }

}

/// Quantizes one f32 row into `out` with a symmetric per-row scale
/// (`max_abs / 127`, or 1.0 for an all-zero row so the row survives the
/// round trip) and returns that scale. This is the out-param counterpart
/// of [`dequantize_row`]; the disk tier's int8 payload codec
/// ([`crate::segment`]) is built on this pair.
///
/// # Panics
///
/// Panics if `out` is shorter than `row`.
pub fn quantize_row(row: &[f32], out: &mut [i8]) -> f32 {
    let max_abs = row.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
    let scale = if max_abs == 0.0 { 1.0 } else { max_abs / 127.0 };
    for (o, &x) in out.iter_mut().zip(row) {
        *o = (x / scale).round().clamp(-127.0, 127.0) as i8;
    }
    scale
}

/// Dequantizes token row `token` of a flat `[tokens × kv_dim]` int8
/// buffer into `out`, using that row's scale from `scales`. The out-param
/// lets a whole-module dequantize reuse one row buffer.
///
/// # Panics
///
/// Panics if `token` is out of range for `data`/`scales` or `out` is
/// shorter than `kv_dim`.
pub fn dequantize_row(data: &[i8], scales: &[f32], token: usize, kv_dim: usize, out: &mut [f32]) {
    debug_assert_eq!(out.len(), kv_dim);
    let scale = scales[token];
    for (o, &q) in out.iter_mut().zip(&data[token * kv_dim..(token + 1) * kv_dim]) {
        *o = q as f32 * scale;
    }
}

fn quantize_rows(data: &[f32], kv_dim: usize) -> (Vec<i8>, Vec<f32>) {
    let kv_dim = kv_dim.max(1);
    let mut quantized = vec![0i8; data.len()];
    let mut scales = Vec::with_capacity(data.len() / kv_dim);
    for (row, out) in data.chunks_exact(kv_dim).zip(quantized.chunks_exact_mut(kv_dim)) {
        scales.push(quantize_row(row, out));
    }
    (quantized, scales)
}

/// Converts an `f32` to IEEE 754 binary16 bits with round-to-nearest-even
/// — the fp16 cold-tier encoding ([`crate::segment`]). Out-of-range
/// magnitudes become ±inf, NaN stays NaN, and magnitudes below the
/// smallest half subnormal (2⁻²⁴) flush to ±0.
pub fn f32_to_f16_bits(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xFF) as i32;
    let man = bits & 0x007F_FFFF;
    if exp == 0xFF {
        // Inf / NaN; keep NaN-ness with a quiet mantissa bit.
        return sign | 0x7C00 | if man != 0 { 0x0200 } else { 0 };
    }
    let half_exp = exp - 127 + 15;
    if half_exp >= 0x1F {
        return sign | 0x7C00; // overflow → ±inf
    }
    if half_exp <= 0 {
        // Half subnormal (or zero): make the implicit bit explicit and
        // shift it below the exponent field, rounding the dropped bits.
        if half_exp < -10 {
            return sign; // underflow → ±0
        }
        let man = man | 0x0080_0000;
        let shift = (14 - half_exp) as u32;
        let halfway = 1u32 << (shift - 1);
        let rem = man & ((1u32 << shift) - 1);
        let mut out = man >> shift;
        if rem > halfway || (rem == halfway && out & 1 == 1) {
            out += 1; // a carry into the exponent field is the smallest normal
        }
        return sign | out as u16;
    }
    // Normal: drop 13 mantissa bits with round-to-nearest-even. Exponent
    // and mantissa are packed contiguously, so a mantissa carry bumps the
    // exponent (and saturates to inf) for free.
    let mut out = ((half_exp as u32) << 10) | (man >> 13);
    let rem = man & 0x1FFF;
    if rem > 0x1000 || (rem == 0x1000 && out & 1 == 1) {
        out += 1;
    }
    sign | out as u16
}

/// Converts IEEE 754 binary16 bits back to `f32` — exact for every half
/// value (normals, subnormals as `man × 2⁻²⁴`, infinities, NaN).
pub fn f16_bits_to_f32(bits: u16) -> f32 {
    let sign = (u32::from(bits) & 0x8000) << 16;
    let exp = (u32::from(bits) >> 10) & 0x1F;
    let man = u32::from(bits) & 0x03FF;
    let magnitude = if exp == 0x1F {
        0x7F80_0000 | (man << 13) // inf / NaN
    } else if exp == 0 {
        if man == 0 {
            0 // ±0
        } else {
            // Subnormal half (man × 2⁻²⁴): renormalize so the top set bit
            // becomes the implicit one.
            let shift = man.leading_zeros() - 21;
            let man = (man << shift) & 0x03FF;
            let unbiased = 1 - shift as i32 - 15;
            (((unbiased + 127) as u32) << 23) | (man << 13)
        }
    } else {
        (((exp as i32 - 15 + 127) as u32) << 23) | (man << 13)
    };
    f32::from_bits(sign | magnitude)
}

/// Maximum elementwise absolute error of quantize → dequantize over all
/// layers of `cache`, as a fraction of the per-row max magnitude.
pub fn round_trip_error(cache: &KvCache) -> f32 {
    let deq = QuantizedKv::quantize(cache).dequantize();
    let mut worst: f32 = 0.0;
    for l in 0..cache.num_layers() {
        for (rows, deq_rows) in [
            (cache.keys(l), deq.keys(l)),
            (cache.values(l), deq.values(l)),
        ] {
            for (row, drow) in rows
                .chunks_exact(cache.kv_dim())
                .zip(deq_rows.chunks_exact(cache.kv_dim()))
            {
                let max_abs = row.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
                if max_abs == 0.0 {
                    continue;
                }
                for (a, b) in row.iter().zip(drow) {
                    worst = worst.max((a - b).abs() / max_abs);
                }
            }
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;

    fn module(tokens: usize, seed: f32) -> KvCache {
        let mut c = KvCache::with_shape(2, 4);
        for t in 0..tokens {
            for l in 0..2 {
                let base = seed + t as f32 * 0.37 + l as f32 * 1.1;
                let k: Vec<f32> = (0..4).map(|i| (base + i as f32).sin() * 3.0).collect();
                let v: Vec<f32> = (0..4).map(|i| (base - i as f32).cos() * 0.5).collect();
                c.push_token_layer(l, &k, &v);
            }
            c.push_position(t + 10);
        }
        c
    }

    #[test]
    fn round_trip_preserves_shape_and_positions() {
        let m = module(5, 0.3);
        let deq = QuantizedKv::quantize(&m).dequantize();
        assert_eq!(deq.len(), m.len());
        assert_eq!(deq.positions(), m.positions());
        assert_eq!(deq.num_layers(), m.num_layers());
        assert_eq!(deq.kv_dim(), m.kv_dim());
    }

    #[test]
    fn round_trip_error_is_sub_percent() {
        let m = module(16, 1.7);
        let err = round_trip_error(&m);
        assert!(err > 0.0, "quantization should be lossy");
        assert!(err < 0.01, "relative error {err} too large for int8");
    }

    #[test]
    fn quantized_is_smaller_than_f32() {
        // Use a realistic row width (64) so the one-f32-scale-per-row
        // overhead amortises as it would in a real model.
        let mut m = KvCache::with_shape(2, 64);
        for t in 0..32 {
            for l in 0..2 {
                let row: Vec<f32> = (0..64).map(|i| ((t + l + i) as f32).sin()).collect();
                m.push_token_layer(l, &row, &row);
            }
            m.push_position(t);
        }
        let q = QuantizedKv::quantize(&m);
        // int8 payload ≈ 1/4 of the f32 payload (plus small scale overhead).
        assert!(
            q.size_bytes() * 3 < m.size_bytes(),
            "q={} m={}",
            q.size_bytes(),
            m.size_bytes()
        );
    }

    #[test]
    fn zero_rows_survive() {
        let mut m = KvCache::with_shape(1, 4);
        m.push_token_layer(0, &[0.0; 4], &[0.0; 4]);
        m.push_position(0);
        let deq = QuantizedKv::quantize(&m).dequantize();
        assert_eq!(deq.keys(0), &[0.0; 4]);
    }

    #[test]
    fn empty_module() {
        let m = KvCache::with_shape(2, 4);
        let q = QuantizedKv::quantize(&m);
        assert!(q.is_empty());
        assert_eq!(q.dequantize(), m);
    }

    #[test]
    fn quantize_row_round_trips_through_dequantize_row() {
        let row = [1.5f32, -0.25, 0.0, 127.0];
        let mut q = [0i8; 4];
        let scale = quantize_row(&row, &mut q);
        assert_eq!(scale, 1.0, "max_abs 127 → scale 1");
        let mut back = [0.0f32; 4];
        dequantize_row(&q, &[scale], 0, 4, &mut back);
        for (a, b) in row.iter().zip(&back) {
            assert!((a - b).abs() <= scale / 2.0 + 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn quantize_row_zero_row_uses_unit_scale() {
        let mut q = [1i8; 3];
        assert_eq!(quantize_row(&[0.0; 3], &mut q), 1.0);
        assert_eq!(q, [0, 0, 0]);
    }

    #[test]
    fn f16_round_trips_every_half_value_exactly() {
        // f16 → f32 → f16 must be the identity for all 65536 bit
        // patterns (NaNs compared by NaN-ness, not bits).
        for bits in 0..=u16::MAX {
            let f = f16_bits_to_f32(bits);
            if f.is_nan() {
                assert!(f16_bits_to_f32(f32_to_f16_bits(f)).is_nan());
                continue;
            }
            assert_eq!(f32_to_f16_bits(f), bits, "bits {bits:#06x} → {f}");
        }
    }

    #[test]
    fn f16_conversion_known_values() {
        assert_eq!(f32_to_f16_bits(0.0), 0x0000);
        assert_eq!(f32_to_f16_bits(-0.0), 0x8000);
        assert_eq!(f32_to_f16_bits(1.0), 0x3C00);
        assert_eq!(f32_to_f16_bits(-2.0), 0xC000);
        assert_eq!(f32_to_f16_bits(65504.0), 0x7BFF, "half max");
        assert_eq!(f32_to_f16_bits(65536.0), 0x7C00, "overflow → inf");
        assert_eq!(f32_to_f16_bits(f32::INFINITY), 0x7C00);
        assert_eq!(f32_to_f16_bits(2.0f32.powi(-24)), 0x0001, "smallest subnormal");
        assert_eq!(f32_to_f16_bits(2.0f32.powi(-26)), 0x0000, "below subnormal → 0");
        assert_eq!(f16_bits_to_f32(0x0001), 2.0f32.powi(-24));
        assert_eq!(f16_bits_to_f32(0x3555), 1365.0 / 4096.0);
    }

    #[test]
    fn f16_rounds_to_nearest_even() {
        // 1 + 2^-11 sits exactly between 1.0 and the next half value
        // (1 + 2^-10): ties round to the even mantissa, i.e. 1.0.
        assert_eq!(f32_to_f16_bits(1.0 + 2.0f32.powi(-11)), 0x3C00);
        // The next tie up (odd mantissa) rounds away to even.
        assert_eq!(f32_to_f16_bits(1.0 + 3.0 * 2.0f32.powi(-11)), 0x3C02);
        // Anything past the tie rounds up.
        assert_eq!(f32_to_f16_bits(1.0 + 2.0f32.powi(-11) + 2.0f32.powi(-18)), 0x3C01);
    }

    #[test]
    fn f16_error_is_bounded_for_unit_range() {
        for i in 0..1000 {
            let x = (i as f32 * 0.013).sin() * 4.0;
            let y = f16_bits_to_f32(f32_to_f16_bits(x));
            assert!((x - y).abs() <= x.abs() * 0.001 + 1e-7, "{x} vs {y}");
        }
    }

    #[test]
    fn extreme_magnitudes_clamp_safely() {
        let mut m = KvCache::with_shape(1, 2);
        m.push_token_layer(0, &[1e20, -1e20], &[1e-20, 0.0]);
        m.push_position(0);
        let deq = QuantizedKv::quantize(&m).dequantize();
        assert!(deq.keys(0).iter().all(|x| x.is_finite()));
        assert!(deq.keys(0)[0] > 0.0 && deq.keys(0)[1] < 0.0);
    }
}
