//! The tiered prompt-module store (paper §4.1).
//!
//! Host memory holds encoded modules (it "can scale up to terabyte
//! levels"); the bounded device tier models GPU HBM. Reading a module for
//! device inference promotes it, charging a host-to-device copy the first
//! time and evicting colder modules when capacity runs out. Reading for
//! host inference never copies.
//!
//! Below both sits an optional persistent [`disk`](crate::disk) tier.
//! With [`StoreConfig::host_capacity_bytes`] bounded, host eviction
//! *demotes* modules to disk (optionally quantized — see
//! [`ColdEncoding`](crate::segment::ColdEncoding)) instead of dropping
//! them; a lookup that misses
//! memory falls through to disk and promotes the module back to host
//! f32, and a corrupt disk record degrades to a miss (the engine
//! re-encodes) rather than ever serving wrong bytes.
//! [`ModuleStore::persist_all`] / [`ModuleStore::restore_all`] turn the
//! disk tier into a warm-restart snapshot.

use crate::analytics::{module_label, CacheAnalytics};
use crate::disk::{DiskConfig, DiskGet, DiskTier};
use crate::eviction::{EvictionPolicy, ModuleStats};
use parking_lot::Mutex;
use pc_model::KvCache;
use pc_telemetry::flight::STORE_SCOPE;
use pc_telemetry::{Counter, FlightEvent, FlightRecorder, Gauge, Telemetry};
use std::collections::HashMap;
use std::io;
use std::sync::Arc;

/// Callback invoked (outside the store lock) whenever a module is
/// promoted from disk back into memory — the engine uses it to drop
/// cached rotated views, whose source values may differ after a
/// quantized round trip.
pub type PromotionHook = Arc<dyn Fn(&ModuleKey) + Send + Sync>;

/// Identifies one encoded module: schema name + module path. Union
/// members are distinct keys; parameterised modules are stored with their
/// `<unk>` placeholders, so one key serves all argument values.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ModuleKey {
    /// Schema the module belongs to.
    pub schema: String,
    /// Hierarchical module path; `["<anon>", index]`-style paths are used
    /// by the engine for anonymous spans.
    pub path: Vec<String>,
}

impl ModuleKey {
    /// Convenience constructor.
    pub fn new(schema: &str, path: &[String]) -> Self {
        ModuleKey {
            schema: schema.to_owned(),
            path: path.to_vec(),
        }
    }
}

/// Which memory the caller wants the module in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tier {
    /// Host DRAM (CPU inference, or GPU inference paying a h2d copy).
    Host,
    /// Device HBM (GPU inference without a copy).
    Device,
}

/// Store configuration.
///
/// Build with [`Default`] plus the chainable setters:
///
/// ```
/// use pc_cache::{EvictionPolicy, StoreConfig};
///
/// let config = StoreConfig::default()
///     .device_capacity_bytes(1 << 20)
///     .policy(EvictionPolicy::Gdsf)
///     .verify_checksums(true);
/// assert_eq!(config.device_capacity_bytes, 1 << 20);
/// ```
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct StoreConfig {
    /// Device-tier capacity in bytes (0 disables the device tier).
    pub device_capacity_bytes: usize,
    /// Eviction policy for the device tier.
    pub policy: EvictionPolicy,
    /// Verify each module's content checksum on every [`ModuleStore::get`].
    /// A mismatch (bit rot, a buggy writer, injected corruption) is
    /// **detected instead of served**: the entry is dropped, the lookup
    /// reports a miss, and `corruptions_detected` is counted — the engine
    /// then recomputes the span (graceful degradation). Off by default:
    /// verification is O(module bytes) per fetch.
    pub verify_checksums: bool,
    /// Maintain a per-module [`CacheAnalytics`] table (hits, misses,
    /// degrades, evictions, bytes shared vs copied, last-access tick,
    /// batched shared-row attribution). Off by default: a store without
    /// a table pays one `Option` check per would-be recording site.
    pub module_analytics: bool,
    /// Host-tier capacity in bytes (0 = unbounded, the default). When an
    /// insert pushes the host tier over this bound, the eviction policy
    /// picks victims among non-device-resident entries and **demotes**
    /// them to the disk tier — or drops them (counted as evictions) when
    /// no disk tier is configured.
    pub host_capacity_bytes: usize,
    /// Optional persistent tier below host memory (see
    /// [`crate::disk`]). `None` (the default) keeps the store purely
    /// in-memory.
    pub disk: Option<DiskConfig>,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            device_capacity_bytes: 0,
            policy: EvictionPolicy::Lru,
            verify_checksums: false,
            module_analytics: false,
            host_capacity_bytes: 0,
            disk: None,
        }
    }
}

impl StoreConfig {
    /// Sets the device-tier capacity in bytes (0 disables the tier).
    #[must_use]
    pub fn device_capacity_bytes(mut self, bytes: usize) -> Self {
        self.device_capacity_bytes = bytes;
        self
    }

    /// Sets the device-tier eviction policy.
    #[must_use]
    pub fn policy(mut self, policy: EvictionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Enables/disables per-fetch checksum verification.
    #[must_use]
    pub fn verify_checksums(mut self, on: bool) -> Self {
        self.verify_checksums = on;
        self
    }

    /// Enables/disables the per-module analytics table.
    #[must_use]
    pub fn module_analytics(mut self, on: bool) -> Self {
        self.module_analytics = on;
        self
    }

    /// Sets the host-tier capacity in bytes (0 = unbounded).
    #[must_use]
    pub fn host_capacity_bytes(mut self, bytes: usize) -> Self {
        self.host_capacity_bytes = bytes;
        self
    }

    /// Configures the persistent disk tier.
    #[must_use]
    pub fn disk(mut self, disk: DiskConfig) -> Self {
        self.disk = Some(disk);
        self
    }
}

/// A fault decision for one module fetch, produced by a
/// [`FetchFaultInjector`]. Used only by fault-injection harnesses (the
/// `pc-faults` crate); production stores carry no injector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FetchFault {
    /// No fault: the fetch proceeds normally.
    None,
    /// The fetch behaves as if the module was never stored (counted as a
    /// miss); the entry itself is untouched.
    Miss,
    /// The stored states are corrupted in place (one flipped bit) before
    /// the fetch proceeds. With [`StoreConfig::verify_checksums`] on, the
    /// corruption is detected and surfaces as a miss; with it off, the
    /// corrupt states are served silently — exactly the failure mode the
    /// checksum exists to catch.
    Corrupt,
}

/// Deterministic fault source consulted on every [`ModuleStore::get`].
/// Implementations must be pure functions of the key (plus their own
/// seed) so replays are reproducible across runs and thread schedules.
pub trait FetchFaultInjector: Send + Sync + std::fmt::Debug {
    /// The fault to apply to this lookup, if any.
    fn fault(&self, key: &ModuleKey) -> FetchFault;
}

/// Aggregate counters, retrievable with [`ModuleStore::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// Successful lookups.
    pub hits: u64,
    /// Failed lookups.
    pub misses: u64,
    /// Bytes copied host → device on promotions.
    pub bytes_copied_h2d: u64,
    /// Device-tier evictions performed.
    pub evictions: u64,
    /// Lookups served without a copy because the module was already
    /// resident on the device.
    pub device_hits: u64,
    /// Checksum mismatches caught by [`StoreConfig::verify_checksums`].
    /// Each one also counts as a miss (the corrupt entry is dropped and
    /// the caller recomputes).
    pub corruptions_detected: u64,
    /// Host → disk demotions (each moved one module out of memory).
    pub demotions: u64,
    /// Disk → host promotions (each moved one module back into memory,
    /// dequantizing if the cold record was fp16/int8).
    pub promotions: u64,
    /// Lookups that missed memory but were served from the disk tier.
    /// Each also counts as a hit and a promotion.
    pub disk_hits: u64,
    /// Disk records dropped because their checksum failed or their
    /// payload would not decode. Each also counts as a miss (the caller
    /// re-encodes — the degrade path).
    pub disk_corruptions: u64,
}

/// Pre-resolved telemetry handles, so the store's hot paths never take the
/// registry lock. With disabled telemetry every handle is a no-op
/// ([`Counter::default`]/[`Gauge::default`]), costing one branch per call.
#[derive(Debug, Clone, Default)]
struct StoreMetrics {
    hits: Counter,
    misses: Counter,
    device_hits: Counter,
    evictions: Counter,
    corruptions: Counter,
    bytes_copied_h2d: Counter,
    demotions: Counter,
    promotions: Counter,
    disk_hits: Counter,
    disk_corruptions: Counter,
    host_bytes: Gauge,
    device_bytes: Gauge,
    disk_bytes: Gauge,
    modules: Gauge,
}

impl StoreMetrics {
    fn resolve(telemetry: &Telemetry) -> Self {
        StoreMetrics {
            hits: telemetry.counter("pc_cache_hits_total"),
            misses: telemetry.counter("pc_cache_misses_total"),
            device_hits: telemetry.counter("pc_cache_device_hits_total"),
            evictions: telemetry.counter("pc_cache_evictions_total"),
            corruptions: telemetry.counter("pc_cache_corruptions_total"),
            bytes_copied_h2d: telemetry.counter("pc_cache_bytes_copied_h2d_total"),
            demotions: telemetry.counter("pc_demotions_total"),
            promotions: telemetry.counter("pc_promotions_total"),
            disk_hits: telemetry.counter("pc_cache_disk_hits_total"),
            disk_corruptions: telemetry.counter("pc_cache_disk_corruptions_total"),
            host_bytes: telemetry.gauge("pc_cache_host_bytes"),
            device_bytes: telemetry.gauge("pc_cache_device_bytes"),
            disk_bytes: telemetry.gauge("pc_cache_disk_bytes"),
            modules: telemetry.gauge("pc_cache_modules"),
        }
    }
}

#[derive(Debug)]
struct Entry {
    cache: Arc<KvCache>,
    stats: ModuleStats,
    on_device: bool,
    /// Content checksum taken at insert; re-verified on fetch when
    /// [`StoreConfig::verify_checksums`] is set.
    checksum: u64,
}

#[derive(Default)]
struct Inner {
    entries: HashMap<ModuleKey, Entry>,
    device_used: usize,
    /// Bytes held by in-memory entries (the host tier occupancy that
    /// [`StoreConfig::host_capacity_bytes`] bounds).
    host_used: usize,
    clock: u64,
    stats: StoreStats,
    /// Fault-injection hook (test harnesses only); `None` in production.
    faults: Option<Arc<dyn FetchFaultInjector>>,
    /// The persistent tier, present iff [`StoreConfig::disk`].
    disk: Option<DiskTier>,
    /// Called (after the lock is released) on every disk → host promote.
    promote_hook: Option<PromotionHook>,
    /// Store-scoped lifecycle events (demote/restore/disk_corrupt).
    flight: Option<Arc<FlightRecorder>>,
}

impl std::fmt::Debug for Inner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Inner")
            .field("entries", &self.entries.len())
            .field("device_used", &self.device_used)
            .field("host_used", &self.host_used)
            .field("clock", &self.clock)
            .field("stats", &self.stats)
            .field("disk", &self.disk)
            .finish_non_exhaustive()
    }
}

/// FNV-1a over the cache's key/value bit patterns and positions — cheap,
/// deterministic, and sensitive to any single flipped bit.
fn content_checksum(cache: &KvCache) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |word: u64| {
        h ^= word;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for layer in 0..cache.num_layers() {
        for v in cache.keys(layer) {
            eat(u64::from(v.to_bits()));
        }
        for v in cache.values(layer) {
            eat(u64::from(v.to_bits()));
        }
    }
    for &p in cache.positions() {
        eat(p as u64);
    }
    h
}

/// One stored entry as reported by [`ModuleStore::snapshot`] — the
/// `/debug/cache` inventory row.
#[derive(Debug, Clone, PartialEq)]
pub struct ModuleSnapshot {
    /// Canonical module id label (`schema:path/segments`).
    pub module: String,
    /// The full key.
    pub key: ModuleKey,
    /// Encoded size in bytes (for disk rows: the cold payload size,
    /// after any quantization).
    pub size_bytes: usize,
    /// Whether the entry is resident in the device tier.
    pub on_device: bool,
    /// The entry's deepest-resident tier: `"device"`, `"host"`, or
    /// `"disk"`.
    pub tier: &'static str,
    /// Lookups served since insert.
    pub access_count: u64,
    /// Store logical clock at the most recent access.
    pub last_access: u64,
    /// Recompute cost supplied at insert (eviction input).
    pub recompute_cost: f64,
}

/// Thread-safe encoded-module storage with host + bounded device tiers.
///
/// # Example
///
/// ```
/// use pc_cache::{ModuleKey, ModuleStore, StoreConfig, Tier};
/// use pc_model::KvCache;
///
/// let store = ModuleStore::new(StoreConfig::default());
/// let key = ModuleKey::new("travel", &["miami".into()]);
/// store.insert(key.clone(), KvCache::with_shape(2, 8), 1.0);
/// assert!(store.get(&key, Tier::Host).is_some());
/// ```
#[derive(Debug)]
pub struct ModuleStore {
    config: StoreConfig,
    inner: Mutex<Inner>,
    metrics: StoreMetrics,
    /// Per-module analytics, present iff [`StoreConfig::module_analytics`].
    analytics: Option<Arc<CacheAnalytics>>,
}

impl ModuleStore {
    /// Creates an empty store with telemetry disabled (the [`StoreStats`]
    /// counters are always on regardless).
    ///
    /// # Panics
    ///
    /// When [`StoreConfig::disk`] is set and the tier directory cannot be
    /// opened — use [`ModuleStore::open`] to handle that as a `Result`.
    pub fn new(config: StoreConfig) -> Self {
        Self::open(config).expect("disk tier open failed")
    }

    /// Creates an empty store, opening (and crash-recovering) the disk
    /// tier when one is configured.
    ///
    /// # Errors
    ///
    /// Filesystem errors from opening the disk tier. Corrupt or torn disk
    /// *contents* never error — they are recovered past (see
    /// [`crate::disk`]).
    pub fn open(config: StoreConfig) -> io::Result<Self> {
        Self::build(config, StoreMetrics::default())
    }

    /// Creates an empty store that mirrors its activity into `telemetry`:
    /// `pc_cache_{hits,misses,device_hits,evictions}_total`,
    /// `pc_cache_bytes_copied_h2d_total`,
    /// `pc_{demotions,promotions}_total`, and
    /// `pc_cache_disk_{hits,corruptions}_total` counters plus
    /// `pc_cache_{host,device,disk}_bytes` / `pc_cache_modules` occupancy
    /// gauges. Handles are resolved once here, so recording never takes
    /// the registry lock.
    ///
    /// # Panics
    ///
    /// When [`StoreConfig::disk`] is set and the tier directory cannot be
    /// opened — use [`ModuleStore::open_with_telemetry`] for a `Result`.
    pub fn with_telemetry(config: StoreConfig, telemetry: &Telemetry) -> Self {
        Self::open_with_telemetry(config, telemetry).expect("disk tier open failed")
    }

    /// [`ModuleStore::with_telemetry`] as a `Result` (see
    /// [`ModuleStore::open`] for the error cases).
    ///
    /// # Errors
    ///
    /// Filesystem errors from opening the disk tier.
    pub fn open_with_telemetry(config: StoreConfig, telemetry: &Telemetry) -> io::Result<Self> {
        Self::build(config, StoreMetrics::resolve(telemetry))
    }

    fn build(config: StoreConfig, metrics: StoreMetrics) -> io::Result<Self> {
        let analytics = config.module_analytics.then(CacheAnalytics::new).map(Arc::new);
        let disk = match &config.disk {
            Some(disk_config) => Some(DiskTier::open(disk_config.clone())?),
            None => None,
        };
        if let Some(disk) = &disk {
            metrics.disk_bytes.set(disk.live_bytes() as i64);
        }
        Ok(ModuleStore {
            config,
            inner: Mutex::new(Inner {
                disk,
                ..Inner::default()
            }),
            metrics,
            analytics,
        })
    }

    /// Installs (or clears) the recorder receiving store-scoped flight
    /// events: `demote`, `restore`, and `disk_corrupt`.
    pub fn set_flight_recorder(&self, flight: Option<Arc<FlightRecorder>>) {
        self.inner.lock().flight = flight;
    }

    /// Installs (or clears) the [`PromotionHook`] called after every
    /// disk → host promote. Invoked outside the store lock.
    pub fn set_promotion_hook(&self, hook: Option<PromotionHook>) {
        self.inner.lock().promote_hook = hook;
    }

    /// The per-module analytics table, if enabled via
    /// [`StoreConfig::module_analytics`]. The engine and scheduler use
    /// this to attribute zero-copy bytes, degrades, and batched
    /// shared-row reads back to modules.
    pub fn analytics(&self) -> Option<&Arc<CacheAnalytics>> {
        self.analytics.as_ref()
    }

    /// Inserts (or replaces) a module's encoded states.
    /// `recompute_cost` feeds cost-aware eviction; pass the encode time or
    /// FLOPs in any consistent unit.
    ///
    /// With [`StoreConfig::host_capacity_bytes`] bounded, an insert that
    /// pushes the host tier over capacity demotes policy-picked victims
    /// to the disk tier (or drops them when none is configured).
    pub fn insert(&self, key: ModuleKey, cache: KvCache, recompute_cost: f64) {
        let mut inner = self.inner.lock();
        inner.clock += 1;
        let size = cache.size_bytes();
        let clock = inner.clock;
        // Replacing an entry that was resident frees its device budget.
        let old = inner
            .entries
            .get(&key)
            .map(|old| (old.stats.size_bytes, old.on_device));
        if let Some((old_size, true)) = old {
            inner.device_used -= old_size;
        }
        let old_size = old.map(|(size, _)| size);
        let checksum = content_checksum(&cache);
        inner.entries.insert(
            key.clone(),
            Entry {
                cache: Arc::new(cache),
                stats: ModuleStats {
                    last_access: clock,
                    access_count: 0,
                    size_bytes: size,
                    recompute_cost,
                },
                on_device: false,
                checksum,
            },
        );
        inner.host_used += size;
        inner.host_used -= old_size.unwrap_or(0);
        self.metrics
            .host_bytes
            .add(size as i64 - old_size.unwrap_or(0) as i64);
        self.enforce_host_capacity(&mut inner, &key);
        self.metrics.modules.set(inner.entries.len() as i64);
        self.metrics.device_bytes.set(inner.device_used as i64);
    }

    /// Demotes (or, with no disk tier, drops) non-device-resident host
    /// entries until `host_used` fits the configured bound. The entry
    /// named by `keep` is never a victim.
    fn enforce_host_capacity(&self, inner: &mut Inner, keep: &ModuleKey) {
        let cap = self.config.host_capacity_bytes;
        if cap == 0 {
            return;
        }
        while inner.host_used > cap {
            let candidates: Vec<(ModuleKey, ModuleStats)> = inner
                .entries
                .iter()
                .filter(|(k, e)| !e.on_device && *k != keep)
                .map(|(k, e)| (k.clone(), e.stats))
                .collect();
            let stats: Vec<ModuleStats> = candidates.iter().map(|(_, s)| *s).collect();
            let Some(victim) = self.config.policy.victim(&stats) else {
                break; // nothing demotable (everything left is on-device)
            };
            let (victim_key, _) = &candidates[victim];
            if !self.demote(inner, victim_key) {
                break; // disk write failed: keep the entry resident
            }
        }
    }

    /// Moves one host entry down to the disk tier (or drops it when no
    /// disk tier is configured, counted as an eviction). Returns `false`
    /// when the disk write failed and the entry stays resident.
    fn demote(&self, inner: &mut Inner, key: &ModuleKey) -> bool {
        let Some(entry) = inner.entries.get(key) else {
            return false;
        };
        let size = entry.stats.size_bytes;
        let cost = entry.stats.recompute_cost;
        let cache = Arc::clone(&entry.cache);
        let to_disk = inner.disk.is_some();
        if let Some(disk) = inner.disk.as_mut() {
            if disk.put(key, &cache, cost).is_err() {
                return false;
            }
        }
        inner.entries.remove(key);
        inner.host_used -= size;
        self.metrics.host_bytes.add(-(size as i64));
        self.metrics.modules.set(inner.entries.len() as i64);
        if to_disk {
            inner.stats.demotions += 1;
            self.metrics.demotions.inc();
            self.metrics
                .disk_bytes
                .set(inner.disk.as_ref().expect("present").live_bytes() as i64);
            if let Some(flight) = &inner.flight {
                flight.record(
                    FlightEvent::new(STORE_SCOPE, "demote")
                        .field("module", module_label(key))
                        .field("bytes", size)
                        .field(
                            "encoding",
                            self.config
                                .disk
                                .as_ref()
                                .map_or("f32", |d| d.encoding.label()),
                        ),
                );
            }
        } else {
            inner.stats.evictions += 1;
            self.metrics.evictions.inc();
            if let Some(a) = &self.analytics {
                a.record_eviction(key);
            }
        }
        true
    }

    /// Whether the store holds `key` in any tier (memory or disk).
    pub fn contains(&self, key: &ModuleKey) -> bool {
        let inner = self.inner.lock();
        inner.entries.contains_key(key)
            || inner.disk.as_ref().is_some_and(|d| d.contains(key))
    }

    /// Fetches a module's states for inference in `tier`.
    ///
    /// `Tier::Device` promotes the module (evicting under the configured
    /// policy and charging a h2d copy) unless it is already resident or
    /// larger than the whole device tier, in which case the copy is
    /// charged on every access — exactly the "yellow bar" regime of
    /// Figure 3 where modules stream from CPU memory each request.
    /// A lookup that misses memory falls through to the disk tier (when
    /// configured): the record is verified, decoded, promoted back into
    /// host memory (counted as a hit, a disk hit, and a promotion), and
    /// the promotion hook fires after the lock is released. A corrupt
    /// disk record is dropped and reported as a miss — the degrade path.
    pub fn get(&self, key: &ModuleKey, tier: Tier) -> Option<Arc<KvCache>> {
        let mut guard = self.inner.lock();
        let (result, hook) = self.get_locked(&mut guard, key, tier);
        drop(guard);
        if let Some(hook) = hook {
            hook(key);
        }
        result
    }

    #[allow(clippy::too_many_lines)]
    fn get_locked(
        &self,
        inner: &mut Inner,
        key: &ModuleKey,
        tier: Tier,
    ) -> (Option<Arc<KvCache>>, Option<PromotionHook>) {
        inner.clock += 1;
        let clock = inner.clock;
        let mut hook = None;
        // Fault injection (harnesses only): an injected miss hides the
        // entry; injected corruption damages it in place so the checksum
        // verification below exercises the real detection path.
        if let Some(faults) = inner.faults.clone() {
            match faults.fault(key) {
                FetchFault::None => {}
                FetchFault::Miss => {
                    inner.stats.misses += 1;
                    self.metrics.misses.inc();
                    if let Some(a) = &self.analytics {
                        a.record_miss(key, clock);
                    }
                    return (None, None);
                }
                FetchFault::Corrupt => {
                    Self::corrupt_entry(inner, key);
                }
            }
        }
        if !inner.entries.contains_key(key) {
            // Memory miss: fall through to the persistent tier.
            let from_disk = match inner.disk.as_mut() {
                Some(disk) => disk.get(key),
                None => DiskGet::Missing,
            };
            match from_disk {
                DiskGet::Module(cache, cost) => {
                    // Promote disk → host: the disk copy is consumed (a
                    // module lives in exactly one tier) and the decoded
                    // states — f32 again after any quantized round trip —
                    // become a fresh host entry with a fresh checksum.
                    let disk = inner.disk.as_mut().expect("matched above");
                    let _ = disk.remove(key);
                    let cache = *cache;
                    let size = cache.size_bytes();
                    let checksum = content_checksum(&cache);
                    inner.entries.insert(
                        key.clone(),
                        Entry {
                            cache: Arc::new(cache),
                            stats: ModuleStats {
                                last_access: clock,
                                access_count: 0,
                                size_bytes: size,
                                recompute_cost: cost,
                            },
                            on_device: false,
                            checksum,
                        },
                    );
                    inner.host_used += size;
                    inner.stats.disk_hits += 1;
                    inner.stats.promotions += 1;
                    self.metrics.disk_hits.inc();
                    self.metrics.promotions.inc();
                    self.metrics.host_bytes.add(size as i64);
                    self.metrics.modules.set(inner.entries.len() as i64);
                    self.metrics
                        .disk_bytes
                        .set(inner.disk.as_ref().expect("present").live_bytes() as i64);
                    if let Some(flight) = &inner.flight {
                        flight.record(
                            FlightEvent::new(STORE_SCOPE, "restore")
                                .field("module", module_label(key))
                                .field("bytes", size),
                        );
                    }
                    self.enforce_host_capacity(inner, key);
                    hook = inner.promote_hook.clone();
                    // Fall through to the normal hit path below.
                }
                DiskGet::Corrupt => {
                    // Degrade: the poisoned record was dropped by the
                    // tier; report a miss so the caller re-encodes.
                    inner.stats.disk_corruptions += 1;
                    inner.stats.misses += 1;
                    self.metrics.disk_corruptions.inc();
                    self.metrics.misses.inc();
                    self.metrics
                        .disk_bytes
                        .set(inner.disk.as_ref().expect("present").live_bytes() as i64);
                    if let Some(flight) = &inner.flight {
                        flight.record(
                            FlightEvent::new(STORE_SCOPE, "disk_corrupt")
                                .field("module", module_label(key)),
                        );
                    }
                    if let Some(a) = &self.analytics {
                        a.record_miss(key, clock);
                    }
                    return (None, None);
                }
                DiskGet::Missing => {
                    inner.stats.misses += 1;
                    self.metrics.misses.inc();
                    if let Some(a) = &self.analytics {
                        a.record_miss(key, clock);
                    }
                    return (None, None);
                }
            }
        }
        if self.config.verify_checksums {
            let entry = &inner.entries[key];
            if content_checksum(&entry.cache) != entry.checksum {
                // Detected corruption: drop the poisoned entry and report
                // a miss so the caller recomputes instead of serving it.
                let size = entry.stats.size_bytes;
                let was_on_device = entry.on_device;
                inner.entries.remove(key);
                if was_on_device {
                    inner.device_used -= size;
                }
                inner.host_used -= size;
                inner.stats.corruptions_detected += 1;
                inner.stats.misses += 1;
                self.metrics.corruptions.inc();
                self.metrics.misses.inc();
                self.metrics.host_bytes.add(-(size as i64));
                self.metrics.modules.set(inner.entries.len() as i64);
                self.metrics.device_bytes.set(inner.device_used as i64);
                if let Some(a) = &self.analytics {
                    a.record_miss(key, clock);
                }
                return (None, None);
            }
        }
        inner.stats.hits += 1;
        self.metrics.hits.inc();
        if let Some(a) = &self.analytics {
            a.record_hit(key, clock);
        }
        if tier == Tier::Device {
            self.promote(inner, key, true);
        }
        let entry = inner.entries.get_mut(key).expect("checked above");
        entry.stats.last_access = clock;
        entry.stats.access_count += 1;
        (Some(Arc::clone(&entry.cache)), hook)
    }

    /// `count_device_hit` distinguishes real lookups from prefetch, which
    /// must stay invisible in the hit statistics.
    fn promote(&self, inner: &mut Inner, key: &ModuleKey, count_device_hit: bool) {
        let size = inner.entries[key].stats.size_bytes;
        if inner.entries[key].on_device {
            if count_device_hit {
                inner.stats.device_hits += 1;
                self.metrics.device_hits.inc();
            }
            return;
        }
        if size > self.config.device_capacity_bytes {
            // Cannot ever be resident: stream it (charged every access).
            inner.stats.bytes_copied_h2d += size as u64;
            self.metrics.bytes_copied_h2d.add(size as u64);
            return;
        }
        while inner.device_used + size > self.config.device_capacity_bytes {
            let candidates: Vec<(ModuleKey, ModuleStats)> = inner
                .entries
                .iter()
                .filter(|(k, e)| e.on_device && *k != key)
                .map(|(k, e)| (k.clone(), e.stats))
                .collect();
            let stats: Vec<ModuleStats> = candidates.iter().map(|(_, s)| *s).collect();
            let Some(victim) = self.config.policy.victim(&stats) else {
                break; // nothing evictable
            };
            let (vk, vs) = &candidates[victim];
            inner.entries.get_mut(vk).expect("victim exists").on_device = false;
            inner.device_used -= vs.size_bytes;
            inner.stats.evictions += 1;
            self.metrics.evictions.inc();
            if let Some(a) = &self.analytics {
                a.record_eviction(vk);
            }
        }
        if inner.device_used + size <= self.config.device_capacity_bytes {
            inner.entries.get_mut(key).expect("present").on_device = true;
            inner.device_used += size;
            inner.stats.bytes_copied_h2d += size as u64;
            self.metrics.bytes_copied_h2d.add(size as u64);
        }
        self.metrics.device_bytes.set(inner.device_used as i64);
    }

    /// Prefetches modules into the device tier without counting a hit —
    /// the union-sibling optimisation §3.2.3 sketches ("the system can
    /// utilize this structure for optimizations, such as prefetching").
    /// Unknown keys are skipped. Returns how many modules were promoted
    /// by this call (already-resident ones don't count).
    pub fn prefetch(&self, keys: &[ModuleKey]) -> usize {
        let mut inner = self.inner.lock();
        let mut promoted = 0;
        for key in keys {
            if !inner.entries.contains_key(key) {
                continue;
            }
            let before = inner.stats.bytes_copied_h2d;
            let was_resident = inner.entries[key].on_device;
            self.promote(&mut inner, key, false);
            if !was_resident
                && inner.stats.bytes_copied_h2d > before
                && inner.entries[key].on_device
            {
                promoted += 1;
            }
        }
        promoted
    }

    /// Installs a [`FetchFaultInjector`] consulted on every `get` (or
    /// removes it with `None`). Fault injection is for resilience
    /// harnesses and tests; a store without an injector pays one `Option`
    /// check per fetch.
    pub fn set_fault_injector(&self, injector: Option<Arc<dyn FetchFaultInjector>>) {
        self.inner.lock().faults = injector;
    }

    /// Flips one bit in a stored module's states **without updating its
    /// checksum** — the deterministic corruption primitive behind fault
    /// injection. Returns `false` for unknown keys and empty modules.
    /// With [`StoreConfig::verify_checksums`] on, the next fetch detects
    /// the damage; with it off, the corrupt states are served as-is.
    pub fn corrupt_module(&self, key: &ModuleKey) -> bool {
        let mut inner = self.inner.lock();
        Self::corrupt_entry(&mut inner, key)
    }

    fn corrupt_entry(inner: &mut Inner, key: &ModuleKey) -> bool {
        let Some(entry) = inner.entries.get_mut(key) else {
            return false;
        };
        let src = &entry.cache;
        if src.is_empty() || src.num_layers() == 0 || src.kv_dim() == 0 {
            return false;
        }
        // Rebuild the cache with the first key value's low bit flipped —
        // `KvCache` exposes no interior mutability, which is exactly why
        // real code can't do this by accident.
        let d = src.kv_dim();
        let mut bad = KvCache::with_shape(src.num_layers(), d);
        for row in 0..src.len() {
            for layer in 0..src.num_layers() {
                let mut k = src.keys(layer)[row * d..(row + 1) * d].to_vec();
                let v = &src.values(layer)[row * d..(row + 1) * d];
                if row == 0 && layer == 0 {
                    k[0] = f32::from_bits(k[0].to_bits() ^ 1);
                }
                bad.push_token_layer(layer, &k, v);
            }
            bad.push_position(src.positions()[row]);
        }
        entry.cache = Arc::new(bad);
        true
    }

    /// Whether a module is currently resident in the device tier.
    pub fn is_resident(&self, key: &ModuleKey) -> bool {
        self.inner
            .lock()
            .entries
            .get(key)
            .is_some_and(|e| e.on_device)
    }

    /// Removes a module from every tier; returns whether it was present.
    pub fn remove(&self, key: &ModuleKey) -> bool {
        let mut inner = self.inner.lock();
        let mut removed = false;
        if let Some(e) = inner.entries.remove(key) {
            if e.on_device {
                inner.device_used -= e.stats.size_bytes;
            }
            inner.host_used -= e.stats.size_bytes;
            self.metrics.host_bytes.add(-(e.stats.size_bytes as i64));
            self.metrics.modules.set(inner.entries.len() as i64);
            self.metrics.device_bytes.set(inner.device_used as i64);
            removed = true;
        }
        if let Some(disk) = inner.disk.as_mut() {
            removed |= disk.remove(key).unwrap_or(false);
            self.metrics.disk_bytes.set(disk.live_bytes() as i64);
        }
        removed
    }

    /// Drops every module belonging to `schema`, from every tier.
    pub fn remove_schema(&self, schema: &str) {
        let mut inner = self.inner.lock();
        let removed: Vec<ModuleKey> = inner
            .entries
            .keys()
            .filter(|k| k.schema == schema)
            .cloned()
            .collect();
        for k in removed {
            if let Some(e) = inner.entries.remove(&k) {
                if e.on_device {
                    inner.device_used -= e.stats.size_bytes;
                }
                inner.host_used -= e.stats.size_bytes;
                self.metrics.host_bytes.add(-(e.stats.size_bytes as i64));
            }
        }
        if let Some(disk) = inner.disk.as_mut() {
            for k in disk.keys() {
                if k.schema == schema {
                    let _ = disk.remove(&k);
                }
            }
            self.metrics.disk_bytes.set(disk.live_bytes() as i64);
        }
        self.metrics.modules.set(inner.entries.len() as i64);
        self.metrics.device_bytes.set(inner.device_used as i64);
    }

    /// Number of distinct stored modules across all tiers.
    pub fn len(&self) -> usize {
        let inner = self.inner.lock();
        let disk_only = inner.disk.as_ref().map_or(0, |d| {
            d.keys()
                .iter()
                .filter(|k| !inner.entries.contains_key(k))
                .count()
        });
        inner.entries.len() + disk_only
    }

    /// Whether the store is empty (all tiers).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total host bytes held by in-memory entries.
    pub fn host_bytes(&self) -> usize {
        self.inner.lock().host_used
    }

    /// Bytes currently resident on the device tier.
    pub fn device_bytes(&self) -> usize {
        self.inner.lock().device_used
    }

    /// Live bytes held by the disk tier (0 without one). Counts encoded
    /// payloads after any quantization, so with int8 cold storage this is
    /// roughly a quarter of the f32 bytes the same modules occupy in
    /// memory.
    pub fn disk_bytes(&self) -> usize {
        self.inner.lock().disk.as_ref().map_or(0, DiskTier::live_bytes)
    }

    /// Number of live disk-tier entries (0 without a disk tier).
    pub fn disk_len(&self) -> usize {
        self.inner.lock().disk.as_ref().map_or(0, DiskTier::len)
    }

    /// Writes every in-memory module down to the disk tier (keeping it in
    /// memory) and flushes the tier's index — the snapshot half of warm
    /// restart. Returns how many modules were written.
    ///
    /// # Errors
    ///
    /// `InvalidInput` when no disk tier is configured; otherwise
    /// filesystem errors from the writes.
    pub fn persist_all(&self) -> io::Result<usize> {
        let mut guard = self.inner.lock();
        let inner = &mut *guard;
        let Some(disk) = inner.disk.as_mut() else {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "no disk tier configured",
            ));
        };
        let mut written = 0;
        for (key, entry) in &inner.entries {
            disk.put(key, &entry.cache, entry.stats.recompute_cost)?;
            written += 1;
        }
        disk.flush()?;
        self.metrics.disk_bytes.set(disk.live_bytes() as i64);
        Ok(written)
    }

    /// Promotes every disk-only module back into host memory (the
    /// restore half of warm restart), stopping early if the host
    /// capacity bound would be exceeded. Corrupt records are dropped and
    /// skipped. Returns how many modules were promoted; the promotion
    /// hook fires for each after the lock is released.
    ///
    /// # Errors
    ///
    /// `InvalidInput` when no disk tier is configured.
    pub fn restore_all(&self) -> io::Result<usize> {
        let mut promoted = Vec::new();
        let hook;
        {
            let mut guard = self.inner.lock();
            let inner = &mut *guard;
            let Some(disk) = inner.disk.as_mut() else {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "no disk tier configured",
                ));
            };
            inner.clock += 1;
            let clock = inner.clock;
            let cap = self.config.host_capacity_bytes;
            let mut keys: Vec<ModuleKey> = disk
                .keys()
                .into_iter()
                .filter(|k| !inner.entries.contains_key(k))
                .collect();
            keys.sort_by(|a, b| (&a.schema, &a.path).cmp(&(&b.schema, &b.path)));
            for key in keys {
                let DiskGet::Module(cache, cost) = disk.get(&key) else {
                    // Missing (raced) or corrupt (dropped by the tier):
                    // skip; a later lookup degrades to re-encode.
                    inner.stats.disk_corruptions += 1;
                    self.metrics.disk_corruptions.inc();
                    continue;
                };
                let cache = *cache;
                let size = cache.size_bytes();
                if cap > 0 && inner.host_used + size > cap {
                    break; // warm what fits; leave the rest on disk
                }
                let _ = disk.remove(&key);
                let checksum = content_checksum(&cache);
                inner.entries.insert(
                    key.clone(),
                    Entry {
                        cache: Arc::new(cache),
                        stats: ModuleStats {
                            last_access: clock,
                            access_count: 0,
                            size_bytes: size,
                            recompute_cost: cost,
                        },
                        on_device: false,
                        checksum,
                    },
                );
                inner.host_used += size;
                inner.stats.promotions += 1;
                self.metrics.promotions.inc();
                self.metrics.host_bytes.add(size as i64);
                if let Some(flight) = &inner.flight {
                    flight.record(
                        FlightEvent::new(STORE_SCOPE, "restore")
                            .field("module", module_label(&key))
                            .field("bytes", size),
                    );
                }
                promoted.push(key);
            }
            self.metrics.modules.set(inner.entries.len() as i64);
            self.metrics
                .disk_bytes
                .set(inner.disk.as_ref().expect("present").live_bytes() as i64);
            hook = inner.promote_hook.clone();
        }
        if let Some(hook) = hook {
            for key in &promoted {
                hook(key);
            }
        }
        Ok(promoted.len())
    }

    /// Flushes the disk tier's index, if one is configured (no-op
    /// otherwise).
    ///
    /// # Errors
    ///
    /// Filesystem errors from the index write.
    pub fn flush_disk(&self) -> io::Result<()> {
        match self.inner.lock().disk.as_mut() {
            Some(disk) => disk.flush(),
            None => Ok(()),
        }
    }

    /// Flips one bit of `key`'s **on-disk** payload without updating the
    /// record checksum — the disk-tier corruption primitive behind fault
    /// injection (`pc-faults`). Returns `false` for keys with no disk
    /// record or when no disk tier is configured. The next disk read
    /// detects the damage, drops the record, and degrades to a miss.
    pub fn corrupt_disk_entry(&self, key: &ModuleKey) -> bool {
        self.inner
            .lock()
            .disk
            .as_mut()
            .is_some_and(|d| d.corrupt_record(key).unwrap_or(false))
    }

    /// Snapshot of the aggregate counters.
    pub fn stats(&self) -> StoreStats {
        self.inner.lock().stats
    }

    /// Point-in-time snapshot of every stored entry across all tiers,
    /// sorted by module label — the `/debug/cache` inventory. Cheap
    /// relative to the entries it describes (clones keys, not KV states).
    /// Disk-only entries report their cold payload size and a zero
    /// access count.
    pub fn snapshot(&self) -> Vec<ModuleSnapshot> {
        let inner = self.inner.lock();
        let mut rows: Vec<ModuleSnapshot> = inner
            .entries
            .iter()
            .map(|(key, e)| ModuleSnapshot {
                module: module_label(key),
                key: key.clone(),
                size_bytes: e.stats.size_bytes,
                on_device: e.on_device,
                tier: if e.on_device { "device" } else { "host" },
                access_count: e.stats.access_count,
                last_access: e.stats.last_access,
                recompute_cost: e.stats.recompute_cost,
            })
            .collect();
        if let Some(disk) = &inner.disk {
            rows.extend(
                disk.entries()
                    .into_iter()
                    .filter(|info| !inner.entries.contains_key(&info.key))
                    .map(|info| ModuleSnapshot {
                        module: module_label(&info.key),
                        key: info.key,
                        size_bytes: info.payload_bytes,
                        on_device: false,
                        tier: "disk",
                        access_count: 0,
                        last_access: 0,
                        recompute_cost: info.cost,
                    }),
            );
        }
        rows.sort_by(|a, b| a.module.cmp(&b.module));
        rows
    }

    /// All stored keys across all tiers (used by persistence and
    /// diagnostics).
    pub fn keys(&self) -> Vec<ModuleKey> {
        let inner = self.inner.lock();
        let mut keys: Vec<ModuleKey> = inner.entries.keys().cloned().collect();
        if let Some(disk) = &inner.disk {
            keys.extend(
                disk.keys()
                    .into_iter()
                    .filter(|k| !inner.entries.contains_key(k)),
            );
        }
        keys
    }

    /// Serialises every stored module into `dir`: one numbered `.pckv`
    /// payload per module plus a `MANIFEST` mapping files back to keys
    /// (schema and path segments are stored verbatim, so keys containing
    /// any characters round-trip). Returns the module count.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save_dir(&self, dir: &std::path::Path) -> std::io::Result<usize> {
        std::fs::create_dir_all(dir)?;
        let inner = self.inner.lock();
        let mut manifest = String::new();
        for (i, (key, entry)) in inner.entries.iter().enumerate() {
            let file = format!("m{i}.pckv");
            std::fs::write(dir.join(&file), crate::codec::encode(&entry.cache))?;
            manifest.push_str(&file);
            manifest.push('\t');
            manifest.push_str(&key.schema);
            for seg in &key.path {
                manifest.push('\t');
                manifest.push_str(seg);
            }
            manifest.push('\n');
        }
        std::fs::write(dir.join("MANIFEST"), manifest)?;
        Ok(inner.entries.len())
    }

    /// Loads a directory written by [`ModuleStore::save_dir`] back into
    /// the store (host tier). Returns how many modules were loaded.
    ///
    /// # Errors
    ///
    /// Filesystem errors, `InvalidData` for undecodable payloads or a
    /// malformed manifest.
    pub fn load_dir(&self, dir: &std::path::Path) -> std::io::Result<usize> {
        let manifest = std::fs::read_to_string(dir.join("MANIFEST"))?;
        let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_owned());
        let mut loaded = 0;
        for line in manifest.lines().filter(|l| !l.is_empty()) {
            let mut parts = line.split('\t');
            let file = parts.next().ok_or_else(|| bad("missing filename"))?;
            let schema = parts.next().ok_or_else(|| bad("missing schema"))?;
            let path: Vec<String> = parts.map(str::to_owned).collect();
            let bytes = std::fs::read(dir.join(file))?;
            let cache = crate::codec::decode(&bytes)
                .map_err(|e| bad(&e.to_string()))?;
            let cost = cache.len() as f64;
            self.insert(
                ModuleKey {
                    schema: schema.to_owned(),
                    path,
                },
                cache,
                cost,
            );
            loaded += 1;
        }
        Ok(loaded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::ColdEncoding;

    fn module(tokens: usize) -> KvCache {
        // 2 layers, kv_dim 4 → size = 2*2*tokens*4*4 bytes = 64·tokens.
        let mut c = KvCache::with_shape(2, 4);
        for t in 0..tokens {
            for l in 0..2 {
                c.push_token_layer(l, &[t as f32; 4], &[t as f32; 4]);
            }
            c.push_position(t);
        }
        c
    }

    fn key(name: &str) -> ModuleKey {
        ModuleKey::new("s", &[name.to_owned()])
    }

    #[test]
    fn insert_get_round_trip() {
        let store = ModuleStore::new(StoreConfig::default());
        store.insert(key("a"), module(3), 1.0);
        let got = store.get(&key("a"), Tier::Host).unwrap();
        assert_eq!(got.len(), 3);
        assert!(store.get(&key("b"), Tier::Host).is_none());
        let s = store.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn host_reads_never_copy() {
        let store = ModuleStore::new(StoreConfig {
            device_capacity_bytes: 1 << 20,
            ..Default::default()
        });
        store.insert(key("a"), module(3), 1.0);
        store.get(&key("a"), Tier::Host);
        assert_eq!(store.stats().bytes_copied_h2d, 0);
        assert_eq!(store.device_bytes(), 0);
    }

    #[test]
    fn device_read_promotes_once() {
        let store = ModuleStore::new(StoreConfig {
            device_capacity_bytes: 1 << 20,
            ..Default::default()
        });
        store.insert(key("a"), module(3), 1.0);
        let size = module(3).size_bytes() as u64;
        store.get(&key("a"), Tier::Device);
        store.get(&key("a"), Tier::Device);
        let s = store.stats();
        assert_eq!(s.bytes_copied_h2d, size, "copied exactly once");
        assert_eq!(s.device_hits, 1);
        assert_eq!(store.device_bytes(), size as usize);
    }

    #[test]
    fn capacity_forces_eviction_lru() {
        let one = module(4).size_bytes();
        let store = ModuleStore::new(StoreConfig {
            device_capacity_bytes: 2 * one,
            policy: EvictionPolicy::Lru,
            ..Default::default()
        });
        for name in ["a", "b", "c"] {
            store.insert(key(name), module(4), 1.0);
        }
        store.get(&key("a"), Tier::Device);
        store.get(&key("b"), Tier::Device);
        // Touch a to make b the LRU, then bring in c.
        store.get(&key("a"), Tier::Device);
        store.get(&key("c"), Tier::Device);
        assert_eq!(store.stats().evictions, 1);
        // b was evicted: re-reading it copies again.
        let before = store.stats().bytes_copied_h2d;
        store.get(&key("b"), Tier::Device);
        assert!(store.stats().bytes_copied_h2d > before);
    }

    #[test]
    fn oversized_module_streams_every_access() {
        let store = ModuleStore::new(StoreConfig {
            device_capacity_bytes: 8, // smaller than any module
            ..Default::default()
        });
        store.insert(key("big"), module(16), 1.0);
        let size = module(16).size_bytes() as u64;
        store.get(&key("big"), Tier::Device);
        store.get(&key("big"), Tier::Device);
        assert_eq!(store.stats().bytes_copied_h2d, 2 * size);
        assert_eq!(store.device_bytes(), 0);
    }

    #[test]
    fn zero_capacity_behaves_like_pure_host_store_with_streaming() {
        let store = ModuleStore::new(StoreConfig::default());
        store.insert(key("a"), module(2), 1.0);
        assert!(store.get(&key("a"), Tier::Device).is_some());
        assert!(store.stats().bytes_copied_h2d > 0);
    }

    #[test]
    fn replace_updates_device_accounting() {
        let store = ModuleStore::new(StoreConfig {
            device_capacity_bytes: 1 << 20,
            ..Default::default()
        });
        store.insert(key("a"), module(4), 1.0);
        store.get(&key("a"), Tier::Device);
        let used = store.device_bytes();
        assert!(used > 0);
        store.insert(key("a"), module(8), 1.0); // replacement lands on host
        assert_eq!(store.device_bytes(), 0);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn remove_and_remove_schema() {
        let store = ModuleStore::new(StoreConfig::default());
        store.insert(key("a"), module(1), 1.0);
        store.insert(ModuleKey::new("other", &["x".into()]), module(1), 1.0);
        assert!(store.remove(&key("a")));
        assert!(!store.remove(&key("a")));
        store.remove_schema("other");
        assert!(store.is_empty());
    }

    #[test]
    fn host_bytes_tracks_inserts() {
        let store = ModuleStore::new(StoreConfig::default());
        store.insert(key("a"), module(2), 1.0);
        store.insert(key("b"), module(3), 1.0);
        assert_eq!(
            store.host_bytes(),
            module(2).size_bytes() + module(3).size_bytes()
        );
    }

    #[test]
    fn prefetch_promotes_without_counting_hits() {
        let store = ModuleStore::new(StoreConfig {
            device_capacity_bytes: 1 << 20,
            ..Default::default()
        });
        store.insert(key("a"), module(4), 1.0);
        store.insert(key("b"), module(4), 1.0);
        let promoted = store.prefetch(&[key("a"), key("b"), key("missing")]);
        assert_eq!(promoted, 2);
        assert!(store.is_resident(&key("a")) && store.is_resident(&key("b")));
        let s = store.stats();
        assert_eq!(s.hits, 0, "prefetch is not a lookup");
        assert_eq!(s.device_hits, 0);
        assert!(s.bytes_copied_h2d > 0);
        // A later real access is served without another copy.
        let before = store.stats().bytes_copied_h2d;
        store.get(&key("a"), Tier::Device);
        assert_eq!(store.stats().bytes_copied_h2d, before);
        assert_eq!(store.stats().device_hits, 1);
    }

    #[test]
    fn prefetch_is_idempotent() {
        let store = ModuleStore::new(StoreConfig {
            device_capacity_bytes: 1 << 20,
            ..Default::default()
        });
        store.insert(key("a"), module(4), 1.0);
        assert_eq!(store.prefetch(&[key("a")]), 1);
        assert_eq!(store.prefetch(&[key("a")]), 0);
        assert_eq!(store.stats().device_hits, 0);
    }

    #[test]
    fn telemetry_mirrors_store_activity() {
        let telemetry = Telemetry::new();
        let store = ModuleStore::with_telemetry(
            StoreConfig {
                device_capacity_bytes: 1 << 20,
                ..Default::default()
            },
            &telemetry,
        );
        let size = module(3).size_bytes();
        store.insert(key("a"), module(3), 1.0);
        store.get(&key("a"), Tier::Device); // promote (copy)
        store.get(&key("a"), Tier::Device); // device hit
        store.get(&key("missing"), Tier::Host); // miss

        let snap = telemetry.snapshot();
        let counter = |n: &str| {
            snap.counters
                .iter()
                .find(|(name, _)| name == n)
                .map_or(0, |(_, v)| *v)
        };
        let gauge = |n: &str| {
            snap.gauges
                .iter()
                .find(|(name, _)| name == n)
                .map_or(0, |(_, v)| *v)
        };
        assert_eq!(counter("pc_cache_hits_total"), 2);
        assert_eq!(counter("pc_cache_misses_total"), 1);
        assert_eq!(counter("pc_cache_device_hits_total"), 1);
        assert_eq!(counter("pc_cache_bytes_copied_h2d_total"), size as u64);
        assert_eq!(gauge("pc_cache_modules"), 1);
        assert_eq!(gauge("pc_cache_host_bytes"), size as i64);
        assert_eq!(gauge("pc_cache_device_bytes"), size as i64);

        store.remove(&key("a"));
        let snap = telemetry.snapshot();
        let gauge = |n: &str| {
            snap.gauges
                .iter()
                .find(|(name, _)| name == n)
                .map_or(0, |(_, v)| *v)
        };
        assert_eq!(gauge("pc_cache_modules"), 0);
        assert_eq!(gauge("pc_cache_host_bytes"), 0);
        assert_eq!(gauge("pc_cache_device_bytes"), 0);
    }

    #[test]
    fn corruption_is_detected_and_dropped_when_verifying() {
        let store = ModuleStore::new(StoreConfig {
            verify_checksums: true,
            ..Default::default()
        });
        store.insert(key("a"), module(3), 1.0);
        assert!(store.corrupt_module(&key("a")));
        assert!(store.get(&key("a"), Tier::Host).is_none(), "corrupt entry must not serve");
        let s = store.stats();
        assert_eq!(s.corruptions_detected, 1);
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 0);
        assert!(store.is_empty(), "poisoned entry dropped");
        assert_eq!(store.host_bytes(), 0);
    }

    #[test]
    fn corruption_serves_silently_without_verification() {
        // Documents the failure mode verify_checksums exists to prevent.
        let store = ModuleStore::new(StoreConfig::default());
        store.insert(key("a"), module(3), 1.0);
        let clean = store.get(&key("a"), Tier::Host).unwrap();
        store.corrupt_module(&key("a"));
        let dirty = store.get(&key("a"), Tier::Host).unwrap();
        assert_ne!(clean.keys(0), dirty.keys(0));
        assert_eq!(store.stats().corruptions_detected, 0);
    }

    #[test]
    fn corrupt_unknown_or_empty_module_is_noop() {
        let store = ModuleStore::new(StoreConfig::default());
        assert!(!store.corrupt_module(&key("missing")));
        store.insert(key("empty"), KvCache::with_shape(2, 4), 1.0);
        assert!(!store.corrupt_module(&key("empty")));
    }

    #[test]
    fn verified_clean_reads_still_hit() {
        let store = ModuleStore::new(StoreConfig {
            verify_checksums: true,
            device_capacity_bytes: 1 << 20,
            ..Default::default()
        });
        store.insert(key("a"), module(4), 1.0);
        assert!(store.get(&key("a"), Tier::Host).is_some());
        assert!(store.get(&key("a"), Tier::Device).is_some());
        let s = store.stats();
        assert_eq!((s.hits, s.misses, s.corruptions_detected), (2, 0, 0));
    }

    #[derive(Debug)]
    struct AlwaysFault(FetchFault);
    impl FetchFaultInjector for AlwaysFault {
        fn fault(&self, _key: &ModuleKey) -> FetchFault {
            self.0
        }
    }

    #[test]
    fn injected_miss_hides_entry_without_damage() {
        let store = ModuleStore::new(StoreConfig::default());
        store.insert(key("a"), module(2), 1.0);
        store.set_fault_injector(Some(Arc::new(AlwaysFault(FetchFault::Miss))));
        assert!(store.get(&key("a"), Tier::Host).is_none());
        assert_eq!(store.stats().misses, 1);
        store.set_fault_injector(None);
        assert!(store.get(&key("a"), Tier::Host).is_some(), "entry intact");
    }

    #[test]
    fn injected_corruption_is_caught_by_verification() {
        let store = ModuleStore::new(StoreConfig {
            verify_checksums: true,
            ..Default::default()
        });
        store.insert(key("a"), module(2), 1.0);
        store.set_fault_injector(Some(Arc::new(AlwaysFault(FetchFault::Corrupt))));
        assert!(store.get(&key("a"), Tier::Host).is_none());
        assert_eq!(store.stats().corruptions_detected, 1);
    }

    #[test]
    fn save_and_load_round_trip_with_odd_keys() {
        let dir = std::env::temp_dir().join(format!("pckv-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = ModuleStore::new(StoreConfig::default());
        // Keys with angle brackets and separators — the engine's internal
        // span and scaffold keys look like this.
        let odd = ModuleKey::new("my schema", &["<span>".into(), "3".into()]);
        store.insert(odd.clone(), module(5), 1.0);
        store.insert(key("plain"), module(2), 1.0);
        assert_eq!(store.save_dir(&dir).unwrap(), 2);

        let restored = ModuleStore::new(StoreConfig::default());
        assert_eq!(restored.load_dir(&dir).unwrap(), 2);
        let got = restored.get(&odd, Tier::Host).unwrap();
        assert_eq!(got.len(), 5);
        assert!(restored.get(&key("plain"), Tier::Host).is_some());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_missing_dir_errors() {
        let store = ModuleStore::new(StoreConfig::default());
        assert!(store
            .load_dir(std::path::Path::new("/nonexistent-pckv-dir"))
            .is_err());
    }

    #[test]
    fn keys_lists_all() {
        let store = ModuleStore::new(StoreConfig::default());
        store.insert(key("a"), module(1), 1.0);
        store.insert(key("b"), module(1), 1.0);
        let mut names: Vec<String> = store.keys().iter().map(|k| k.path[0].clone()).collect();
        names.sort();
        assert_eq!(names, vec!["a", "b"]);
    }

    #[test]
    fn analytics_table_tracks_per_module_activity() {
        let one = module(4).size_bytes();
        let store = ModuleStore::new(
            StoreConfig::default()
                .device_capacity_bytes(2 * one)
                .module_analytics(true),
        );
        for name in ["a", "b", "c"] {
            store.insert(key(name), module(4), 1.0);
        }
        store.get(&key("a"), Tier::Device);
        store.get(&key("b"), Tier::Device);
        store.get(&key("a"), Tier::Device); // a is MRU, b is LRU
        store.get(&key("c"), Tier::Device); // evicts b
        store.get(&key("missing"), Tier::Host);

        let analytics = store.analytics().expect("enabled");
        let snap = analytics.snapshot();
        let row = |m: &str| snap.iter().find(|r| r.module == m).unwrap();
        assert_eq!(row("s:a").hits, 2);
        assert_eq!(row("s:b").evictions, 1);
        assert_eq!(row("s:missing").misses, 1);
        assert_eq!(snap[0].module, "s:a", "heat ranking leads with hottest");
        assert!(row("s:a").last_access_tick > 0);
        let text = analytics.prometheus_text();
        assert!(text.contains("pc_module_hits_total{module=\"s:a\"} 2"), "{text}");
        assert!(
            text.contains("pc_module_evictions_total{module=\"s:b\"} 1"),
            "{text}"
        );
    }

    #[test]
    fn analytics_disabled_by_default() {
        let store = ModuleStore::new(StoreConfig::default());
        assert!(store.analytics().is_none());
    }

    #[test]
    fn snapshot_lists_entries_sorted() {
        let store = ModuleStore::new(StoreConfig::default().device_capacity_bytes(1 << 20));
        store.insert(key("b"), module(2), 3.0);
        store.insert(key("a"), module(4), 1.0);
        store.get(&key("a"), Tier::Device);
        let snap = store.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].module, "s:a");
        assert!(snap[0].on_device);
        assert_eq!(snap[0].access_count, 1);
        assert_eq!(snap[0].size_bytes, module(4).size_bytes());
        assert_eq!(snap[1].module, "s:b");
        assert!(!snap[1].on_device);
        assert_eq!(snap[1].recompute_cost, 3.0);
    }

    fn temp_disk(tag: &str) -> DiskConfig {
        let dir = std::env::temp_dir().join(format!(
            "pc-store-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        DiskConfig::new(dir)
    }

    #[test]
    fn host_capacity_demotes_to_disk_and_promotes_back() {
        let one = module(4).size_bytes();
        let disk = temp_disk("demote");
        let dir = disk.dir.clone();
        let store = ModuleStore::new(
            StoreConfig::default()
                .policy(EvictionPolicy::Lru)
                .host_capacity_bytes(2 * one)
                .disk(disk),
        );
        for name in ["a", "b", "c"] {
            store.insert(key(name), module(4), 1.0);
        }
        // a was LRU: demoted to disk, still visible through the store.
        assert_eq!(store.stats().demotions, 1);
        assert_eq!(store.disk_len(), 1);
        assert_eq!(store.len(), 3);
        assert!(store.contains(&key("a")));
        assert!(store.disk_bytes() > 0);
        // Reading the demoted module falls through and promotes it back
        // (evicting another victim to stay under the host bound).
        let got = store.get(&key("a"), Tier::Host).expect("served from disk");
        assert_eq!(got.len(), 4);
        let s = store.stats();
        assert_eq!((s.disk_hits, s.promotions, s.hits), (1, 1, 1));
        assert_eq!(s.demotions, 2, "promoting a pushed out another victim");
        assert_eq!(store.host_bytes(), 2 * one);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn host_capacity_without_disk_drops_victims_as_evictions() {
        let one = module(4).size_bytes();
        let store = ModuleStore::new(StoreConfig::default().host_capacity_bytes(2 * one));
        for name in ["a", "b", "c"] {
            store.insert(key(name), module(4), 1.0);
        }
        let s = store.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.demotions, 0);
        assert_eq!(store.len(), 2);
        assert!(!store.contains(&key("a")));
    }

    #[test]
    fn corrupt_disk_record_degrades_to_miss_and_self_heals() {
        let one = module(4).size_bytes();
        let disk = temp_disk("corrupt");
        let dir = disk.dir.clone();
        let store = ModuleStore::new(
            StoreConfig::default().host_capacity_bytes(one).disk(disk),
        );
        store.insert(key("a"), module(4), 1.0);
        store.insert(key("b"), module(4), 1.0); // demotes a
        assert!(store.corrupt_disk_entry(&key("a")));
        assert!(
            store.get(&key("a"), Tier::Host).is_none(),
            "corrupt disk record must not serve"
        );
        let s = store.stats();
        assert_eq!((s.disk_corruptions, s.misses, s.disk_hits), (1, 1, 0));
        assert!(!store.contains(&key("a")), "poisoned record dropped");
        // Self-heal: the caller re-encodes and re-inserts.
        store.insert(key("a"), module(4), 1.0);
        assert!(store.get(&key("a"), Tier::Host).is_some());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn persist_and_restore_round_trip_preserves_content() {
        let disk = temp_disk("persist");
        let dir = disk.dir.clone();
        let checksum_before;
        {
            let store = ModuleStore::new(StoreConfig::default().disk(disk.clone()));
            store.insert(key("a"), module(5), 2.0);
            store.insert(key("b"), module(3), 1.0);
            assert_eq!(store.persist_all().unwrap(), 2);
            checksum_before = content_checksum(&store.get(&key("a"), Tier::Host).unwrap());
        }
        // "Restart": a fresh store over the same directory.
        let store = ModuleStore::new(StoreConfig::default().disk(disk));
        assert_eq!(store.disk_len(), 2);
        assert_eq!(store.restore_all().unwrap(), 2);
        assert_eq!(store.stats().promotions, 2);
        let restored = store.get(&key("a"), Tier::Host).unwrap();
        assert_eq!(
            content_checksum(&restored),
            checksum_before,
            "f32 round trip is byte-identical"
        );
        assert_eq!(store.get(&key("b"), Tier::Host).unwrap().len(), 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn persist_without_disk_tier_errors() {
        let store = ModuleStore::new(StoreConfig::default());
        assert_eq!(
            store.persist_all().unwrap_err().kind(),
            std::io::ErrorKind::InvalidInput
        );
        assert_eq!(
            store.restore_all().unwrap_err().kind(),
            std::io::ErrorKind::InvalidInput
        );
        store.flush_disk().unwrap(); // no-op without a tier
    }

    #[test]
    fn snapshot_reports_disk_tier_rows() {
        let one = module(4).size_bytes();
        let disk = temp_disk("snaprows").encoding(ColdEncoding::Int8);
        let dir = disk.dir.clone();
        let store = ModuleStore::new(
            StoreConfig::default().host_capacity_bytes(one).disk(disk),
        );
        store.insert(key("a"), module(4), 1.0);
        store.insert(key("b"), module(4), 1.0); // demotes a
        let snap = store.snapshot();
        assert_eq!(snap.len(), 2);
        let row = |m: &str| snap.iter().find(|r| r.module == m).unwrap();
        assert_eq!(row("s:a").tier, "disk");
        assert_eq!(row("s:b").tier, "host");
        assert!(
            row("s:a").size_bytes < one,
            "disk row reports the quantized payload size"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn promotion_hook_fires_on_disk_promote() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let one = module(4).size_bytes();
        let disk = temp_disk("hook");
        let dir = disk.dir.clone();
        let store = ModuleStore::new(
            StoreConfig::default().host_capacity_bytes(one).disk(disk),
        );
        let fired = Arc::new(AtomicUsize::new(0));
        let fired2 = Arc::clone(&fired);
        store.set_promotion_hook(Some(Arc::new(move |_k: &ModuleKey| {
            fired2.fetch_add(1, Ordering::SeqCst);
        })));
        store.insert(key("a"), module(4), 1.0);
        store.insert(key("b"), module(4), 1.0); // demotes a
        assert_eq!(fired.load(Ordering::SeqCst), 0);
        store.get(&key("a"), Tier::Host); // disk promote
        assert_eq!(fired.load(Ordering::SeqCst), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn store_flight_events_cover_demote_restore_corrupt() {
        let one = module(4).size_bytes();
        let disk = temp_disk("flight");
        let dir = disk.dir.clone();
        let store = ModuleStore::new(
            StoreConfig::default().host_capacity_bytes(one).disk(disk),
        );
        let flight = Arc::new(FlightRecorder::new(16));
        store.set_flight_recorder(Some(Arc::clone(&flight)));
        store.insert(key("a"), module(4), 1.0);
        store.insert(key("b"), module(4), 1.0); // demote a
        store.get(&key("a"), Tier::Host); // restore a (demotes b)
        store.corrupt_disk_entry(&key("b"));
        store.get(&key("b"), Tier::Host); // disk_corrupt
        let kinds: Vec<&str> = flight.events().iter().map(|e| e.kind).collect();
        assert_eq!(kinds, vec!["demote", "restore", "demote", "disk_corrupt"]);
        assert!(flight.jsonl().contains("\"request\":\"store\""));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn quantized_disk_tier_stays_within_fidelity_bound() {
        let one = module(8).size_bytes();
        let disk = temp_disk("fidelity").encoding(ColdEncoding::Int8);
        let dir = disk.dir.clone();
        let store = ModuleStore::new(
            StoreConfig::default().host_capacity_bytes(one).disk(disk),
        );
        let original = module(8);
        store.insert(key("a"), original.clone(), 1.0);
        store.insert(key("b"), module(8), 1.0); // demotes a (int8)
        let back = store.get(&key("a"), Tier::Host).unwrap();
        assert_eq!(back.positions(), original.positions(), "positions exact");
        for layer in 0..original.num_layers() {
            for (x, y) in original.keys(layer).iter().zip(back.keys(layer)) {
                assert!((x - y).abs() <= 8.0 / 127.0, "{x} vs {y}");
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn concurrent_access_is_safe() {
        let store = std::sync::Arc::new(ModuleStore::new(StoreConfig {
            device_capacity_bytes: 4096,
            ..Default::default()
        }));
        for i in 0..8 {
            store.insert(key(&format!("m{i}")), module(4), 1.0);
        }
        std::thread::scope(|s| {
            for t in 0..4 {
                let store = std::sync::Arc::clone(&store);
                s.spawn(move || {
                    for i in 0..100 {
                        let k = key(&format!("m{}", (i + t) % 8));
                        let _ = store.get(&k, if i % 2 == 0 { Tier::Host } else { Tier::Device });
                    }
                });
            }
        });
        assert_eq!(store.stats().hits, 400);
    }
}
