//! The two-tier prompt-module store (paper §4.1).
//!
//! Host memory holds every encoded module (it "can scale up to terabyte
//! levels"); the bounded device tier models GPU HBM. Reading a module for
//! device inference promotes it, charging a host-to-device copy the first
//! time and evicting colder modules when capacity runs out. Reading for
//! host inference never copies.

use crate::analytics::{module_label, CacheAnalytics};
use crate::eviction::{EvictionPolicy, ModuleStats};
use parking_lot::Mutex;
use pc_model::KvCache;
use pc_telemetry::{Counter, Gauge, Telemetry};
use std::collections::HashMap;
use std::sync::Arc;

/// Identifies one encoded module: schema name + module path. Union
/// members are distinct keys; parameterised modules are stored with their
/// `<unk>` placeholders, so one key serves all argument values.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ModuleKey {
    /// Schema the module belongs to.
    pub schema: String,
    /// Hierarchical module path; `["<anon>", index]`-style paths are used
    /// by the engine for anonymous spans.
    pub path: Vec<String>,
}

impl ModuleKey {
    /// Convenience constructor.
    pub fn new(schema: &str, path: &[String]) -> Self {
        ModuleKey {
            schema: schema.to_owned(),
            path: path.to_vec(),
        }
    }
}

/// Which memory the caller wants the module in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tier {
    /// Host DRAM (CPU inference, or GPU inference paying a h2d copy).
    Host,
    /// Device HBM (GPU inference without a copy).
    Device,
}

/// Store configuration.
///
/// Build with [`Default`] plus the chainable setters:
///
/// ```
/// use pc_cache::{EvictionPolicy, StoreConfig};
///
/// let config = StoreConfig::default()
///     .device_capacity_bytes(1 << 20)
///     .policy(EvictionPolicy::Gdsf)
///     .verify_checksums(true);
/// assert_eq!(config.device_capacity_bytes, 1 << 20);
/// ```
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct StoreConfig {
    /// Device-tier capacity in bytes (0 disables the device tier).
    pub device_capacity_bytes: usize,
    /// Eviction policy for the device tier.
    pub policy: EvictionPolicy,
    /// Verify each module's content checksum on every [`ModuleStore::get`].
    /// A mismatch (bit rot, a buggy writer, injected corruption) is
    /// **detected instead of served**: the entry is dropped, the lookup
    /// reports a miss, and `corruptions_detected` is counted — the engine
    /// then recomputes the span (graceful degradation). Off by default:
    /// verification is O(module bytes) per fetch.
    pub verify_checksums: bool,
    /// Maintain a per-module [`CacheAnalytics`] table (hits, misses,
    /// degrades, evictions, bytes shared vs copied, last-access tick,
    /// batched shared-row attribution). Off by default: a store without
    /// a table pays one `Option` check per would-be recording site.
    pub module_analytics: bool,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            device_capacity_bytes: 0,
            policy: EvictionPolicy::Lru,
            verify_checksums: false,
            module_analytics: false,
        }
    }
}

impl StoreConfig {
    /// Sets the device-tier capacity in bytes (0 disables the tier).
    #[must_use]
    pub fn device_capacity_bytes(mut self, bytes: usize) -> Self {
        self.device_capacity_bytes = bytes;
        self
    }

    /// Sets the device-tier eviction policy.
    #[must_use]
    pub fn policy(mut self, policy: EvictionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Enables/disables per-fetch checksum verification.
    #[must_use]
    pub fn verify_checksums(mut self, on: bool) -> Self {
        self.verify_checksums = on;
        self
    }

    /// Enables/disables the per-module analytics table.
    #[must_use]
    pub fn module_analytics(mut self, on: bool) -> Self {
        self.module_analytics = on;
        self
    }
}

/// A fault decision for one module fetch, produced by a
/// [`FetchFaultInjector`]. Used only by fault-injection harnesses (the
/// `pc-faults` crate); production stores carry no injector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FetchFault {
    /// No fault: the fetch proceeds normally.
    None,
    /// The fetch behaves as if the module was never stored (counted as a
    /// miss); the entry itself is untouched.
    Miss,
    /// The stored states are corrupted in place (one flipped bit) before
    /// the fetch proceeds. With [`StoreConfig::verify_checksums`] on, the
    /// corruption is detected and surfaces as a miss; with it off, the
    /// corrupt states are served silently — exactly the failure mode the
    /// checksum exists to catch.
    Corrupt,
}

/// Deterministic fault source consulted on every [`ModuleStore::get`].
/// Implementations must be pure functions of the key (plus their own
/// seed) so replays are reproducible across runs and thread schedules.
pub trait FetchFaultInjector: Send + Sync + std::fmt::Debug {
    /// The fault to apply to this lookup, if any.
    fn fault(&self, key: &ModuleKey) -> FetchFault;
}

/// Aggregate counters, retrievable with [`ModuleStore::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// Successful lookups.
    pub hits: u64,
    /// Failed lookups.
    pub misses: u64,
    /// Bytes copied host → device on promotions.
    pub bytes_copied_h2d: u64,
    /// Device-tier evictions performed.
    pub evictions: u64,
    /// Lookups served without a copy because the module was already
    /// resident on the device.
    pub device_hits: u64,
    /// Checksum mismatches caught by [`StoreConfig::verify_checksums`].
    /// Each one also counts as a miss (the corrupt entry is dropped and
    /// the caller recomputes).
    pub corruptions_detected: u64,
}

/// Pre-resolved telemetry handles, so the store's hot paths never take the
/// registry lock. With disabled telemetry every handle is a no-op
/// ([`Counter::default`]/[`Gauge::default`]), costing one branch per call.
#[derive(Debug, Clone, Default)]
struct StoreMetrics {
    hits: Counter,
    misses: Counter,
    device_hits: Counter,
    evictions: Counter,
    corruptions: Counter,
    bytes_copied_h2d: Counter,
    host_bytes: Gauge,
    device_bytes: Gauge,
    modules: Gauge,
}

impl StoreMetrics {
    fn resolve(telemetry: &Telemetry) -> Self {
        StoreMetrics {
            hits: telemetry.counter("pc_cache_hits_total"),
            misses: telemetry.counter("pc_cache_misses_total"),
            device_hits: telemetry.counter("pc_cache_device_hits_total"),
            evictions: telemetry.counter("pc_cache_evictions_total"),
            corruptions: telemetry.counter("pc_cache_corruptions_total"),
            bytes_copied_h2d: telemetry.counter("pc_cache_bytes_copied_h2d_total"),
            host_bytes: telemetry.gauge("pc_cache_host_bytes"),
            device_bytes: telemetry.gauge("pc_cache_device_bytes"),
            modules: telemetry.gauge("pc_cache_modules"),
        }
    }
}

#[derive(Debug)]
struct Entry {
    cache: Arc<KvCache>,
    stats: ModuleStats,
    on_device: bool,
    /// Content checksum taken at insert; re-verified on fetch when
    /// [`StoreConfig::verify_checksums`] is set.
    checksum: u64,
}

#[derive(Debug, Default)]
struct Inner {
    entries: HashMap<ModuleKey, Entry>,
    device_used: usize,
    clock: u64,
    stats: StoreStats,
    /// Fault-injection hook (test harnesses only); `None` in production.
    faults: Option<Arc<dyn FetchFaultInjector>>,
}

/// FNV-1a over the cache's key/value bit patterns and positions — cheap,
/// deterministic, and sensitive to any single flipped bit.
fn content_checksum(cache: &KvCache) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |word: u64| {
        h ^= word;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for layer in 0..cache.num_layers() {
        for v in cache.keys(layer) {
            eat(u64::from(v.to_bits()));
        }
        for v in cache.values(layer) {
            eat(u64::from(v.to_bits()));
        }
    }
    for &p in cache.positions() {
        eat(p as u64);
    }
    h
}

/// One stored entry as reported by [`ModuleStore::snapshot`] — the
/// `/debug/cache` inventory row.
#[derive(Debug, Clone, PartialEq)]
pub struct ModuleSnapshot {
    /// Canonical module id label (`schema:path/segments`).
    pub module: String,
    /// The full key.
    pub key: ModuleKey,
    /// Encoded size in bytes.
    pub size_bytes: usize,
    /// Whether the entry is resident in the device tier.
    pub on_device: bool,
    /// Lookups served since insert.
    pub access_count: u64,
    /// Store logical clock at the most recent access.
    pub last_access: u64,
    /// Recompute cost supplied at insert (eviction input).
    pub recompute_cost: f64,
}

/// Thread-safe encoded-module storage with host + bounded device tiers.
///
/// # Example
///
/// ```
/// use pc_cache::{ModuleKey, ModuleStore, StoreConfig, Tier};
/// use pc_model::KvCache;
///
/// let store = ModuleStore::new(StoreConfig::default());
/// let key = ModuleKey::new("travel", &["miami".into()]);
/// store.insert(key.clone(), KvCache::with_shape(2, 8), 1.0);
/// assert!(store.get(&key, Tier::Host).is_some());
/// ```
#[derive(Debug)]
pub struct ModuleStore {
    config: StoreConfig,
    inner: Mutex<Inner>,
    metrics: StoreMetrics,
    /// Per-module analytics, present iff [`StoreConfig::module_analytics`].
    analytics: Option<Arc<CacheAnalytics>>,
}

impl ModuleStore {
    /// Creates an empty store with telemetry disabled (the [`StoreStats`]
    /// counters are always on regardless).
    pub fn new(config: StoreConfig) -> Self {
        let analytics = config.module_analytics.then(CacheAnalytics::new).map(Arc::new);
        ModuleStore {
            config,
            inner: Mutex::new(Inner::default()),
            metrics: StoreMetrics::default(),
            analytics,
        }
    }

    /// Creates an empty store that mirrors its activity into `telemetry`:
    /// `pc_cache_{hits,misses,device_hits,evictions}_total` and
    /// `pc_cache_bytes_copied_h2d_total` counters plus
    /// `pc_cache_{host,device}_bytes` / `pc_cache_modules` occupancy
    /// gauges. Handles are resolved once here, so recording never takes
    /// the registry lock.
    pub fn with_telemetry(config: StoreConfig, telemetry: &Telemetry) -> Self {
        let analytics = config.module_analytics.then(CacheAnalytics::new).map(Arc::new);
        ModuleStore {
            config,
            inner: Mutex::new(Inner::default()),
            metrics: StoreMetrics::resolve(telemetry),
            analytics,
        }
    }

    /// The per-module analytics table, if enabled via
    /// [`StoreConfig::module_analytics`]. The engine and scheduler use
    /// this to attribute zero-copy bytes, degrades, and batched
    /// shared-row reads back to modules.
    pub fn analytics(&self) -> Option<&Arc<CacheAnalytics>> {
        self.analytics.as_ref()
    }

    /// Inserts (or replaces) a module's encoded states.
    /// `recompute_cost` feeds cost-aware eviction; pass the encode time or
    /// FLOPs in any consistent unit.
    pub fn insert(&self, key: ModuleKey, cache: KvCache, recompute_cost: f64) {
        let mut inner = self.inner.lock();
        inner.clock += 1;
        let size = cache.size_bytes();
        let clock = inner.clock;
        // Replacing an entry that was resident frees its device budget.
        let old = inner
            .entries
            .get(&key)
            .map(|old| (old.stats.size_bytes, old.on_device));
        if let Some((old_size, true)) = old {
            inner.device_used -= old_size;
        }
        let old_size = old.map(|(size, _)| size);
        let checksum = content_checksum(&cache);
        inner.entries.insert(
            key,
            Entry {
                cache: Arc::new(cache),
                stats: ModuleStats {
                    last_access: clock,
                    access_count: 0,
                    size_bytes: size,
                    recompute_cost,
                },
                on_device: false,
                checksum,
            },
        );
        self.metrics
            .host_bytes
            .add(size as i64 - old_size.unwrap_or(0) as i64);
        self.metrics.modules.set(inner.entries.len() as i64);
        self.metrics.device_bytes.set(inner.device_used as i64);
    }

    /// Whether the store holds `key`.
    pub fn contains(&self, key: &ModuleKey) -> bool {
        self.inner.lock().entries.contains_key(key)
    }

    /// Fetches a module's states for inference in `tier`.
    ///
    /// `Tier::Device` promotes the module (evicting under the configured
    /// policy and charging a h2d copy) unless it is already resident or
    /// larger than the whole device tier, in which case the copy is
    /// charged on every access — exactly the "yellow bar" regime of
    /// Figure 3 where modules stream from CPU memory each request.
    pub fn get(&self, key: &ModuleKey, tier: Tier) -> Option<Arc<KvCache>> {
        let mut inner = self.inner.lock();
        inner.clock += 1;
        let clock = inner.clock;
        // Fault injection (harnesses only): an injected miss hides the
        // entry; injected corruption damages it in place so the checksum
        // verification below exercises the real detection path.
        if let Some(faults) = inner.faults.clone() {
            match faults.fault(key) {
                FetchFault::None => {}
                FetchFault::Miss => {
                    inner.stats.misses += 1;
                    self.metrics.misses.inc();
                    if let Some(a) = &self.analytics {
                        a.record_miss(key, clock);
                    }
                    return None;
                }
                FetchFault::Corrupt => {
                    Self::corrupt_entry(&mut inner, key);
                }
            }
        }
        if !inner.entries.contains_key(key) {
            inner.stats.misses += 1;
            self.metrics.misses.inc();
            if let Some(a) = &self.analytics {
                a.record_miss(key, clock);
            }
            return None;
        }
        if self.config.verify_checksums {
            let entry = &inner.entries[key];
            if content_checksum(&entry.cache) != entry.checksum {
                // Detected corruption: drop the poisoned entry and report
                // a miss so the caller recomputes instead of serving it.
                let size = entry.stats.size_bytes;
                let was_on_device = entry.on_device;
                inner.entries.remove(key);
                if was_on_device {
                    inner.device_used -= size;
                }
                inner.stats.corruptions_detected += 1;
                inner.stats.misses += 1;
                self.metrics.corruptions.inc();
                self.metrics.misses.inc();
                self.metrics.host_bytes.add(-(size as i64));
                self.metrics.modules.set(inner.entries.len() as i64);
                self.metrics.device_bytes.set(inner.device_used as i64);
                if let Some(a) = &self.analytics {
                    a.record_miss(key, clock);
                }
                return None;
            }
        }
        inner.stats.hits += 1;
        self.metrics.hits.inc();
        if let Some(a) = &self.analytics {
            a.record_hit(key, clock);
        }
        if tier == Tier::Device {
            self.promote(&mut inner, key, true);
        }
        let entry = inner.entries.get_mut(key).expect("checked above");
        entry.stats.last_access = clock;
        entry.stats.access_count += 1;
        Some(Arc::clone(&entry.cache))
    }

    /// `count_device_hit` distinguishes real lookups from prefetch, which
    /// must stay invisible in the hit statistics.
    fn promote(&self, inner: &mut Inner, key: &ModuleKey, count_device_hit: bool) {
        let size = inner.entries[key].stats.size_bytes;
        if inner.entries[key].on_device {
            if count_device_hit {
                inner.stats.device_hits += 1;
                self.metrics.device_hits.inc();
            }
            return;
        }
        if size > self.config.device_capacity_bytes {
            // Cannot ever be resident: stream it (charged every access).
            inner.stats.bytes_copied_h2d += size as u64;
            self.metrics.bytes_copied_h2d.add(size as u64);
            return;
        }
        while inner.device_used + size > self.config.device_capacity_bytes {
            let candidates: Vec<(ModuleKey, ModuleStats)> = inner
                .entries
                .iter()
                .filter(|(k, e)| e.on_device && *k != key)
                .map(|(k, e)| (k.clone(), e.stats))
                .collect();
            let stats: Vec<ModuleStats> = candidates.iter().map(|(_, s)| *s).collect();
            let Some(victim) = self.config.policy.victim(&stats) else {
                break; // nothing evictable
            };
            let (vk, vs) = &candidates[victim];
            inner.entries.get_mut(vk).expect("victim exists").on_device = false;
            inner.device_used -= vs.size_bytes;
            inner.stats.evictions += 1;
            self.metrics.evictions.inc();
            if let Some(a) = &self.analytics {
                a.record_eviction(vk);
            }
        }
        if inner.device_used + size <= self.config.device_capacity_bytes {
            inner.entries.get_mut(key).expect("present").on_device = true;
            inner.device_used += size;
            inner.stats.bytes_copied_h2d += size as u64;
            self.metrics.bytes_copied_h2d.add(size as u64);
        }
        self.metrics.device_bytes.set(inner.device_used as i64);
    }

    /// Prefetches modules into the device tier without counting a hit —
    /// the union-sibling optimisation §3.2.3 sketches ("the system can
    /// utilize this structure for optimizations, such as prefetching").
    /// Unknown keys are skipped. Returns how many modules were promoted
    /// by this call (already-resident ones don't count).
    pub fn prefetch(&self, keys: &[ModuleKey]) -> usize {
        let mut inner = self.inner.lock();
        let mut promoted = 0;
        for key in keys {
            if !inner.entries.contains_key(key) {
                continue;
            }
            let before = inner.stats.bytes_copied_h2d;
            let was_resident = inner.entries[key].on_device;
            self.promote(&mut inner, key, false);
            if !was_resident
                && inner.stats.bytes_copied_h2d > before
                && inner.entries[key].on_device
            {
                promoted += 1;
            }
        }
        promoted
    }

    /// Installs a [`FetchFaultInjector`] consulted on every `get` (or
    /// removes it with `None`). Fault injection is for resilience
    /// harnesses and tests; a store without an injector pays one `Option`
    /// check per fetch.
    pub fn set_fault_injector(&self, injector: Option<Arc<dyn FetchFaultInjector>>) {
        self.inner.lock().faults = injector;
    }

    /// Flips one bit in a stored module's states **without updating its
    /// checksum** — the deterministic corruption primitive behind fault
    /// injection. Returns `false` for unknown keys and empty modules.
    /// With [`StoreConfig::verify_checksums`] on, the next fetch detects
    /// the damage; with it off, the corrupt states are served as-is.
    pub fn corrupt_module(&self, key: &ModuleKey) -> bool {
        let mut inner = self.inner.lock();
        Self::corrupt_entry(&mut inner, key)
    }

    fn corrupt_entry(inner: &mut Inner, key: &ModuleKey) -> bool {
        let Some(entry) = inner.entries.get_mut(key) else {
            return false;
        };
        let src = &entry.cache;
        if src.is_empty() || src.num_layers() == 0 || src.kv_dim() == 0 {
            return false;
        }
        // Rebuild the cache with the first key value's low bit flipped —
        // `KvCache` exposes no interior mutability, which is exactly why
        // real code can't do this by accident.
        let d = src.kv_dim();
        let mut bad = KvCache::with_shape(src.num_layers(), d);
        for row in 0..src.len() {
            for layer in 0..src.num_layers() {
                let mut k = src.keys(layer)[row * d..(row + 1) * d].to_vec();
                let v = &src.values(layer)[row * d..(row + 1) * d];
                if row == 0 && layer == 0 {
                    k[0] = f32::from_bits(k[0].to_bits() ^ 1);
                }
                bad.push_token_layer(layer, &k, v);
            }
            bad.push_position(src.positions()[row]);
        }
        entry.cache = Arc::new(bad);
        true
    }

    /// Whether a module is currently resident in the device tier.
    pub fn is_resident(&self, key: &ModuleKey) -> bool {
        self.inner
            .lock()
            .entries
            .get(key)
            .is_some_and(|e| e.on_device)
    }

    /// Removes a module; returns whether it was present.
    pub fn remove(&self, key: &ModuleKey) -> bool {
        let mut inner = self.inner.lock();
        if let Some(e) = inner.entries.remove(key) {
            if e.on_device {
                inner.device_used -= e.stats.size_bytes;
            }
            self.metrics.host_bytes.add(-(e.stats.size_bytes as i64));
            self.metrics.modules.set(inner.entries.len() as i64);
            self.metrics.device_bytes.set(inner.device_used as i64);
            true
        } else {
            false
        }
    }

    /// Drops every module belonging to `schema`.
    pub fn remove_schema(&self, schema: &str) {
        let mut inner = self.inner.lock();
        let removed: Vec<ModuleKey> = inner
            .entries
            .keys()
            .filter(|k| k.schema == schema)
            .cloned()
            .collect();
        for k in removed {
            if let Some(e) = inner.entries.remove(&k) {
                if e.on_device {
                    inner.device_used -= e.stats.size_bytes;
                }
                self.metrics.host_bytes.add(-(e.stats.size_bytes as i64));
            }
        }
        self.metrics.modules.set(inner.entries.len() as i64);
        self.metrics.device_bytes.set(inner.device_used as i64);
    }

    /// Number of stored modules.
    pub fn len(&self) -> usize {
        self.inner.lock().entries.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total host bytes held.
    pub fn host_bytes(&self) -> usize {
        self.inner
            .lock()
            .entries
            .values()
            .map(|e| e.stats.size_bytes)
            .sum()
    }

    /// Bytes currently resident on the device tier.
    pub fn device_bytes(&self) -> usize {
        self.inner.lock().device_used
    }

    /// Snapshot of the aggregate counters.
    pub fn stats(&self) -> StoreStats {
        self.inner.lock().stats
    }

    /// Point-in-time snapshot of every stored entry, sorted by module
    /// label — the `/debug/cache` inventory. Cheap relative to the
    /// entries it describes (clones keys, not KV states).
    pub fn snapshot(&self) -> Vec<ModuleSnapshot> {
        let inner = self.inner.lock();
        let mut rows: Vec<ModuleSnapshot> = inner
            .entries
            .iter()
            .map(|(key, e)| ModuleSnapshot {
                module: module_label(key),
                key: key.clone(),
                size_bytes: e.stats.size_bytes,
                on_device: e.on_device,
                access_count: e.stats.access_count,
                last_access: e.stats.last_access,
                recompute_cost: e.stats.recompute_cost,
            })
            .collect();
        rows.sort_by(|a, b| a.module.cmp(&b.module));
        rows
    }

    /// All stored keys (used by persistence and diagnostics).
    pub fn keys(&self) -> Vec<ModuleKey> {
        self.inner.lock().entries.keys().cloned().collect()
    }

    /// Serialises every stored module into `dir`: one numbered `.pckv`
    /// payload per module plus a `MANIFEST` mapping files back to keys
    /// (schema and path segments are stored verbatim, so keys containing
    /// any characters round-trip). Returns the module count.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save_dir(&self, dir: &std::path::Path) -> std::io::Result<usize> {
        std::fs::create_dir_all(dir)?;
        let inner = self.inner.lock();
        let mut manifest = String::new();
        for (i, (key, entry)) in inner.entries.iter().enumerate() {
            let file = format!("m{i}.pckv");
            std::fs::write(dir.join(&file), crate::codec::encode(&entry.cache))?;
            manifest.push_str(&file);
            manifest.push('\t');
            manifest.push_str(&key.schema);
            for seg in &key.path {
                manifest.push('\t');
                manifest.push_str(seg);
            }
            manifest.push('\n');
        }
        std::fs::write(dir.join("MANIFEST"), manifest)?;
        Ok(inner.entries.len())
    }

    /// Loads a directory written by [`ModuleStore::save_dir`] back into
    /// the store (host tier). Returns how many modules were loaded.
    ///
    /// # Errors
    ///
    /// Filesystem errors, `InvalidData` for undecodable payloads or a
    /// malformed manifest.
    pub fn load_dir(&self, dir: &std::path::Path) -> std::io::Result<usize> {
        let manifest = std::fs::read_to_string(dir.join("MANIFEST"))?;
        let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_owned());
        let mut loaded = 0;
        for line in manifest.lines().filter(|l| !l.is_empty()) {
            let mut parts = line.split('\t');
            let file = parts.next().ok_or_else(|| bad("missing filename"))?;
            let schema = parts.next().ok_or_else(|| bad("missing schema"))?;
            let path: Vec<String> = parts.map(str::to_owned).collect();
            let bytes = std::fs::read(dir.join(file))?;
            let cache = crate::codec::decode(&bytes)
                .map_err(|e| bad(&e.to_string()))?;
            let cost = cache.len() as f64;
            self.insert(
                ModuleKey {
                    schema: schema.to_owned(),
                    path,
                },
                cache,
                cost,
            );
            loaded += 1;
        }
        Ok(loaded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn module(tokens: usize) -> KvCache {
        // 2 layers, kv_dim 4 → size = 2*2*tokens*4*4 bytes = 64·tokens.
        let mut c = KvCache::with_shape(2, 4);
        for t in 0..tokens {
            for l in 0..2 {
                c.push_token_layer(l, &[t as f32; 4], &[t as f32; 4]);
            }
            c.push_position(t);
        }
        c
    }

    fn key(name: &str) -> ModuleKey {
        ModuleKey::new("s", &[name.to_owned()])
    }

    #[test]
    fn insert_get_round_trip() {
        let store = ModuleStore::new(StoreConfig::default());
        store.insert(key("a"), module(3), 1.0);
        let got = store.get(&key("a"), Tier::Host).unwrap();
        assert_eq!(got.len(), 3);
        assert!(store.get(&key("b"), Tier::Host).is_none());
        let s = store.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn host_reads_never_copy() {
        let store = ModuleStore::new(StoreConfig {
            device_capacity_bytes: 1 << 20,
            ..Default::default()
        });
        store.insert(key("a"), module(3), 1.0);
        store.get(&key("a"), Tier::Host);
        assert_eq!(store.stats().bytes_copied_h2d, 0);
        assert_eq!(store.device_bytes(), 0);
    }

    #[test]
    fn device_read_promotes_once() {
        let store = ModuleStore::new(StoreConfig {
            device_capacity_bytes: 1 << 20,
            ..Default::default()
        });
        store.insert(key("a"), module(3), 1.0);
        let size = module(3).size_bytes() as u64;
        store.get(&key("a"), Tier::Device);
        store.get(&key("a"), Tier::Device);
        let s = store.stats();
        assert_eq!(s.bytes_copied_h2d, size, "copied exactly once");
        assert_eq!(s.device_hits, 1);
        assert_eq!(store.device_bytes(), size as usize);
    }

    #[test]
    fn capacity_forces_eviction_lru() {
        let one = module(4).size_bytes();
        let store = ModuleStore::new(StoreConfig {
            device_capacity_bytes: 2 * one,
            policy: EvictionPolicy::Lru,
            ..Default::default()
        });
        for name in ["a", "b", "c"] {
            store.insert(key(name), module(4), 1.0);
        }
        store.get(&key("a"), Tier::Device);
        store.get(&key("b"), Tier::Device);
        // Touch a to make b the LRU, then bring in c.
        store.get(&key("a"), Tier::Device);
        store.get(&key("c"), Tier::Device);
        assert_eq!(store.stats().evictions, 1);
        // b was evicted: re-reading it copies again.
        let before = store.stats().bytes_copied_h2d;
        store.get(&key("b"), Tier::Device);
        assert!(store.stats().bytes_copied_h2d > before);
    }

    #[test]
    fn oversized_module_streams_every_access() {
        let store = ModuleStore::new(StoreConfig {
            device_capacity_bytes: 8, // smaller than any module
            ..Default::default()
        });
        store.insert(key("big"), module(16), 1.0);
        let size = module(16).size_bytes() as u64;
        store.get(&key("big"), Tier::Device);
        store.get(&key("big"), Tier::Device);
        assert_eq!(store.stats().bytes_copied_h2d, 2 * size);
        assert_eq!(store.device_bytes(), 0);
    }

    #[test]
    fn zero_capacity_behaves_like_pure_host_store_with_streaming() {
        let store = ModuleStore::new(StoreConfig::default());
        store.insert(key("a"), module(2), 1.0);
        assert!(store.get(&key("a"), Tier::Device).is_some());
        assert!(store.stats().bytes_copied_h2d > 0);
    }

    #[test]
    fn replace_updates_device_accounting() {
        let store = ModuleStore::new(StoreConfig {
            device_capacity_bytes: 1 << 20,
            ..Default::default()
        });
        store.insert(key("a"), module(4), 1.0);
        store.get(&key("a"), Tier::Device);
        let used = store.device_bytes();
        assert!(used > 0);
        store.insert(key("a"), module(8), 1.0); // replacement lands on host
        assert_eq!(store.device_bytes(), 0);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn remove_and_remove_schema() {
        let store = ModuleStore::new(StoreConfig::default());
        store.insert(key("a"), module(1), 1.0);
        store.insert(ModuleKey::new("other", &["x".into()]), module(1), 1.0);
        assert!(store.remove(&key("a")));
        assert!(!store.remove(&key("a")));
        store.remove_schema("other");
        assert!(store.is_empty());
    }

    #[test]
    fn host_bytes_tracks_inserts() {
        let store = ModuleStore::new(StoreConfig::default());
        store.insert(key("a"), module(2), 1.0);
        store.insert(key("b"), module(3), 1.0);
        assert_eq!(
            store.host_bytes(),
            module(2).size_bytes() + module(3).size_bytes()
        );
    }

    #[test]
    fn prefetch_promotes_without_counting_hits() {
        let store = ModuleStore::new(StoreConfig {
            device_capacity_bytes: 1 << 20,
            ..Default::default()
        });
        store.insert(key("a"), module(4), 1.0);
        store.insert(key("b"), module(4), 1.0);
        let promoted = store.prefetch(&[key("a"), key("b"), key("missing")]);
        assert_eq!(promoted, 2);
        assert!(store.is_resident(&key("a")) && store.is_resident(&key("b")));
        let s = store.stats();
        assert_eq!(s.hits, 0, "prefetch is not a lookup");
        assert_eq!(s.device_hits, 0);
        assert!(s.bytes_copied_h2d > 0);
        // A later real access is served without another copy.
        let before = store.stats().bytes_copied_h2d;
        store.get(&key("a"), Tier::Device);
        assert_eq!(store.stats().bytes_copied_h2d, before);
        assert_eq!(store.stats().device_hits, 1);
    }

    #[test]
    fn prefetch_is_idempotent() {
        let store = ModuleStore::new(StoreConfig {
            device_capacity_bytes: 1 << 20,
            ..Default::default()
        });
        store.insert(key("a"), module(4), 1.0);
        assert_eq!(store.prefetch(&[key("a")]), 1);
        assert_eq!(store.prefetch(&[key("a")]), 0);
        assert_eq!(store.stats().device_hits, 0);
    }

    #[test]
    fn telemetry_mirrors_store_activity() {
        let telemetry = Telemetry::new();
        let store = ModuleStore::with_telemetry(
            StoreConfig {
                device_capacity_bytes: 1 << 20,
                ..Default::default()
            },
            &telemetry,
        );
        let size = module(3).size_bytes();
        store.insert(key("a"), module(3), 1.0);
        store.get(&key("a"), Tier::Device); // promote (copy)
        store.get(&key("a"), Tier::Device); // device hit
        store.get(&key("missing"), Tier::Host); // miss

        let snap = telemetry.snapshot();
        let counter = |n: &str| {
            snap.counters
                .iter()
                .find(|(name, _)| name == n)
                .map_or(0, |(_, v)| *v)
        };
        let gauge = |n: &str| {
            snap.gauges
                .iter()
                .find(|(name, _)| name == n)
                .map_or(0, |(_, v)| *v)
        };
        assert_eq!(counter("pc_cache_hits_total"), 2);
        assert_eq!(counter("pc_cache_misses_total"), 1);
        assert_eq!(counter("pc_cache_device_hits_total"), 1);
        assert_eq!(counter("pc_cache_bytes_copied_h2d_total"), size as u64);
        assert_eq!(gauge("pc_cache_modules"), 1);
        assert_eq!(gauge("pc_cache_host_bytes"), size as i64);
        assert_eq!(gauge("pc_cache_device_bytes"), size as i64);

        store.remove(&key("a"));
        let snap = telemetry.snapshot();
        let gauge = |n: &str| {
            snap.gauges
                .iter()
                .find(|(name, _)| name == n)
                .map_or(0, |(_, v)| *v)
        };
        assert_eq!(gauge("pc_cache_modules"), 0);
        assert_eq!(gauge("pc_cache_host_bytes"), 0);
        assert_eq!(gauge("pc_cache_device_bytes"), 0);
    }

    #[test]
    fn corruption_is_detected_and_dropped_when_verifying() {
        let store = ModuleStore::new(StoreConfig {
            verify_checksums: true,
            ..Default::default()
        });
        store.insert(key("a"), module(3), 1.0);
        assert!(store.corrupt_module(&key("a")));
        assert!(store.get(&key("a"), Tier::Host).is_none(), "corrupt entry must not serve");
        let s = store.stats();
        assert_eq!(s.corruptions_detected, 1);
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 0);
        assert!(store.is_empty(), "poisoned entry dropped");
        assert_eq!(store.host_bytes(), 0);
    }

    #[test]
    fn corruption_serves_silently_without_verification() {
        // Documents the failure mode verify_checksums exists to prevent.
        let store = ModuleStore::new(StoreConfig::default());
        store.insert(key("a"), module(3), 1.0);
        let clean = store.get(&key("a"), Tier::Host).unwrap();
        store.corrupt_module(&key("a"));
        let dirty = store.get(&key("a"), Tier::Host).unwrap();
        assert_ne!(clean.keys(0), dirty.keys(0));
        assert_eq!(store.stats().corruptions_detected, 0);
    }

    #[test]
    fn corrupt_unknown_or_empty_module_is_noop() {
        let store = ModuleStore::new(StoreConfig::default());
        assert!(!store.corrupt_module(&key("missing")));
        store.insert(key("empty"), KvCache::with_shape(2, 4), 1.0);
        assert!(!store.corrupt_module(&key("empty")));
    }

    #[test]
    fn verified_clean_reads_still_hit() {
        let store = ModuleStore::new(StoreConfig {
            verify_checksums: true,
            device_capacity_bytes: 1 << 20,
            ..Default::default()
        });
        store.insert(key("a"), module(4), 1.0);
        assert!(store.get(&key("a"), Tier::Host).is_some());
        assert!(store.get(&key("a"), Tier::Device).is_some());
        let s = store.stats();
        assert_eq!((s.hits, s.misses, s.corruptions_detected), (2, 0, 0));
    }

    #[derive(Debug)]
    struct AlwaysFault(FetchFault);
    impl FetchFaultInjector for AlwaysFault {
        fn fault(&self, _key: &ModuleKey) -> FetchFault {
            self.0
        }
    }

    #[test]
    fn injected_miss_hides_entry_without_damage() {
        let store = ModuleStore::new(StoreConfig::default());
        store.insert(key("a"), module(2), 1.0);
        store.set_fault_injector(Some(Arc::new(AlwaysFault(FetchFault::Miss))));
        assert!(store.get(&key("a"), Tier::Host).is_none());
        assert_eq!(store.stats().misses, 1);
        store.set_fault_injector(None);
        assert!(store.get(&key("a"), Tier::Host).is_some(), "entry intact");
    }

    #[test]
    fn injected_corruption_is_caught_by_verification() {
        let store = ModuleStore::new(StoreConfig {
            verify_checksums: true,
            ..Default::default()
        });
        store.insert(key("a"), module(2), 1.0);
        store.set_fault_injector(Some(Arc::new(AlwaysFault(FetchFault::Corrupt))));
        assert!(store.get(&key("a"), Tier::Host).is_none());
        assert_eq!(store.stats().corruptions_detected, 1);
    }

    #[test]
    fn save_and_load_round_trip_with_odd_keys() {
        let dir = std::env::temp_dir().join(format!("pckv-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = ModuleStore::new(StoreConfig::default());
        // Keys with angle brackets and separators — the engine's internal
        // span and scaffold keys look like this.
        let odd = ModuleKey::new("my schema", &["<span>".into(), "3".into()]);
        store.insert(odd.clone(), module(5), 1.0);
        store.insert(key("plain"), module(2), 1.0);
        assert_eq!(store.save_dir(&dir).unwrap(), 2);

        let restored = ModuleStore::new(StoreConfig::default());
        assert_eq!(restored.load_dir(&dir).unwrap(), 2);
        let got = restored.get(&odd, Tier::Host).unwrap();
        assert_eq!(got.len(), 5);
        assert!(restored.get(&key("plain"), Tier::Host).is_some());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_missing_dir_errors() {
        let store = ModuleStore::new(StoreConfig::default());
        assert!(store
            .load_dir(std::path::Path::new("/nonexistent-pckv-dir"))
            .is_err());
    }

    #[test]
    fn keys_lists_all() {
        let store = ModuleStore::new(StoreConfig::default());
        store.insert(key("a"), module(1), 1.0);
        store.insert(key("b"), module(1), 1.0);
        let mut names: Vec<String> = store.keys().iter().map(|k| k.path[0].clone()).collect();
        names.sort();
        assert_eq!(names, vec!["a", "b"]);
    }

    #[test]
    fn analytics_table_tracks_per_module_activity() {
        let one = module(4).size_bytes();
        let store = ModuleStore::new(
            StoreConfig::default()
                .device_capacity_bytes(2 * one)
                .module_analytics(true),
        );
        for name in ["a", "b", "c"] {
            store.insert(key(name), module(4), 1.0);
        }
        store.get(&key("a"), Tier::Device);
        store.get(&key("b"), Tier::Device);
        store.get(&key("a"), Tier::Device); // a is MRU, b is LRU
        store.get(&key("c"), Tier::Device); // evicts b
        store.get(&key("missing"), Tier::Host);

        let analytics = store.analytics().expect("enabled");
        let snap = analytics.snapshot();
        let row = |m: &str| snap.iter().find(|r| r.module == m).unwrap();
        assert_eq!(row("s:a").hits, 2);
        assert_eq!(row("s:b").evictions, 1);
        assert_eq!(row("s:missing").misses, 1);
        assert_eq!(snap[0].module, "s:a", "heat ranking leads with hottest");
        assert!(row("s:a").last_access_tick > 0);
        let text = analytics.prometheus_text();
        assert!(text.contains("pc_module_hits_total{module=\"s:a\"} 2"), "{text}");
        assert!(
            text.contains("pc_module_evictions_total{module=\"s:b\"} 1"),
            "{text}"
        );
    }

    #[test]
    fn analytics_disabled_by_default() {
        let store = ModuleStore::new(StoreConfig::default());
        assert!(store.analytics().is_none());
    }

    #[test]
    fn snapshot_lists_entries_sorted() {
        let store = ModuleStore::new(StoreConfig::default().device_capacity_bytes(1 << 20));
        store.insert(key("b"), module(2), 3.0);
        store.insert(key("a"), module(4), 1.0);
        store.get(&key("a"), Tier::Device);
        let snap = store.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].module, "s:a");
        assert!(snap[0].on_device);
        assert_eq!(snap[0].access_count, 1);
        assert_eq!(snap[0].size_bytes, module(4).size_bytes());
        assert_eq!(snap[1].module, "s:b");
        assert!(!snap[1].on_device);
        assert_eq!(snap[1].recompute_cost, 3.0);
    }

    #[test]
    fn concurrent_access_is_safe() {
        let store = std::sync::Arc::new(ModuleStore::new(StoreConfig {
            device_capacity_bytes: 4096,
            ..Default::default()
        }));
        for i in 0..8 {
            store.insert(key(&format!("m{i}")), module(4), 1.0);
        }
        std::thread::scope(|s| {
            for t in 0..4 {
                let store = std::sync::Arc::clone(&store);
                s.spawn(move || {
                    for i in 0..100 {
                        let k = key(&format!("m{}", (i + t) % 8));
                        let _ = store.get(&k, if i % 2 == 0 { Tier::Host } else { Tier::Device });
                    }
                });
            }
        });
        assert_eq!(store.stats().hits, 400);
    }
}
