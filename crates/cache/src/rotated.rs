//! Bounded cache of materialised rotated module views.
//!
//! With deferred RoPE, the store holds one canonical entry per module
//! (keys rotated for canonical positions starting at 0) and the attention
//! kernels rotate each key row on the fly at read time. The fused
//! rotation is cheap, but a *hot placement* — the same module served at
//! the same shift tick after tick — pays it on every score pass. This
//! cache trades bounded memory for that recurring work: once a
//! `(module, range, shift)` placement proves hot, the engine materialises
//! the rotated keys once and serves the copy at shift 0 from then on.
//!
//! Because `pc_tensor::ops::dot_rotated` is bit-identical to
//! "materialise with `RopeTable::apply_shift`, then `dot_seq`" by
//! construction, serving the materialised copy produces exactly the same
//! output bits as the fused rotate-on-read path — the cache is purely a
//! time/space trade, never a fidelity one.

use crate::store::ModuleKey;
use parking_lot::Mutex;
use pc_model::{KvCache, RopeTable};
use std::collections::HashMap;
use std::sync::Arc;

/// Identity of one rotated placement: a module's canonical entry, the
/// row range served, and the placement shift applied to it.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RotatedKey {
    /// The canonical store entry the placement aliases.
    pub module: ModuleKey,
    /// First canonical row of the served range.
    pub start: usize,
    /// One past the last canonical row.
    pub end: usize,
    /// Placement shift (never 0 — shift-0 placements are the canonical
    /// entry itself).
    pub shift: isize,
}

#[derive(Debug)]
struct RotatedEntry {
    cache: Arc<KvCache>,
    last_use: u64,
}

#[derive(Debug, Default)]
struct Inner {
    entries: HashMap<RotatedKey, RotatedEntry>,
    /// Access counts for placements not yet materialised; a placement is
    /// promoted once it crosses the hot threshold.
    pending: HashMap<RotatedKey, u32>,
    tick: u64,
}

/// Bounded LRU of rotated module views. See the [module docs](self).
#[derive(Debug)]
pub struct RotatedViewCache {
    max_entries: usize,
    hot_after: u32,
    inner: Mutex<Inner>,
}

impl RotatedViewCache {
    /// A cache holding at most `max_entries` rotated views, promoting a
    /// placement after `hot_after` uses (0 and 1 both mean "materialise
    /// on first use").
    pub fn new(max_entries: usize, hot_after: u32) -> Self {
        RotatedViewCache {
            max_entries,
            hot_after: hot_after.max(1),
            inner: Mutex::new(Inner::default()),
        }
    }

    /// Fetches the materialised view for a placement, if present.
    pub fn get(&self, key: &RotatedKey) -> Option<Arc<KvCache>> {
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        inner.entries.get_mut(key).map(|e| {
            e.last_use = tick;
            Arc::clone(&e.cache)
        })
    }

    /// Records one fused-path use of a not-yet-materialised placement.
    /// Returns `true` when the placement just crossed the hot threshold —
    /// the caller should materialise and [`RotatedViewCache::insert`] it.
    pub fn note_use(&self, key: &RotatedKey) -> bool {
        let mut inner = self.inner.lock();
        if inner.entries.contains_key(key) {
            return false;
        }
        // The pending map is pruned with the same bound as the entries so
        // a stream of unique placements cannot grow it without limit.
        if inner.pending.len() >= self.max_entries.max(64) * 4
            && !inner.pending.contains_key(key)
        {
            inner.pending.clear();
        }
        let count = inner.pending.entry(key.clone()).or_insert(0);
        *count += 1;
        *count == self.hot_after
    }

    /// Inserts a materialised rotated view, evicting the least recently
    /// used entry if the cache is full.
    pub fn insert(&self, key: RotatedKey, cache: Arc<KvCache>) {
        if self.max_entries == 0 {
            return;
        }
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        inner.pending.remove(&key);
        inner.entries.insert(
            key,
            RotatedEntry {
                cache,
                last_use: tick,
            },
        );
        while inner.entries.len() > self.max_entries {
            let coldest = inner
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_use)
                .map(|(k, _)| k.clone());
            match coldest {
                Some(k) => inner.entries.remove(&k),
                None => break,
            };
        }
    }

    /// Drops every entry and pending count whose module matches `key` —
    /// called when the canonical entry is replaced (re-encode, schema
    /// swap) so stale rotations can never be served.
    pub fn invalidate_module(&self, key: &ModuleKey) {
        let mut inner = self.inner.lock();
        inner.entries.retain(|k, _| &k.module != key);
        inner.pending.retain(|k, _| &k.module != key);
    }

    /// Number of materialised views currently held.
    pub fn len(&self) -> usize {
        self.inner.lock().entries.len()
    }

    /// Whether no views are materialised.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Materialises rows `start..end` of a canonical module at shift `shift`:
/// every key head is rotated by `R(shift)` via [`RopeTable::apply_shift`]
/// and every position is moved to its placed value. Values are copied
/// untouched (position-free). The result is exactly what the fused
/// rotate-on-read path computes per score — same expressions, same order
/// — so serving it at shift 0 is bit-identical to the fused path.
pub fn rotate_range(
    cache: &KvCache,
    start: usize,
    end: usize,
    shift: isize,
    rope: &RopeTable,
) -> KvCache {
    let kv_dim = cache.kv_dim();
    let head_dim = rope.head_dim();
    let mut out = KvCache::with_shape(cache.num_layers(), kv_dim);
    let mut k_row = vec![0.0f32; kv_dim];
    for row in start..end {
        for layer in 0..cache.num_layers() {
            k_row.copy_from_slice(&cache.keys(layer)[row * kv_dim..(row + 1) * kv_dim]);
            for head in k_row.chunks_exact_mut(head_dim) {
                rope.apply_shift(head, shift);
            }
            out.push_token_layer(
                layer,
                &k_row,
                &cache.values(layer)[row * kv_dim..(row + 1) * kv_dim],
            );
        }
        let placed = (cache.positions()[row] as isize + shift) as usize;
        out.push_position(placed);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn module(tokens: usize, kv_dim: usize) -> KvCache {
        let mut c = KvCache::with_shape(2, kv_dim);
        for t in 0..tokens {
            for l in 0..2 {
                let base = t as f32 * 0.37 + l as f32 * 1.1;
                let k: Vec<f32> =
                    (0..kv_dim).map(|i| (base + i as f32).sin() * 3.0).collect();
                let v: Vec<f32> =
                    (0..kv_dim).map(|i| (base - i as f32).cos() * 0.5).collect();
                c.push_token_layer(l, &k, &v);
            }
            c.push_position(t);
        }
        c
    }

    fn rkey(name: &str, shift: isize) -> RotatedKey {
        RotatedKey {
            module: ModuleKey::new("s", &[name.to_owned()]),
            start: 0,
            end: 4,
            shift,
        }
    }

    #[test]
    fn promotes_after_threshold_and_serves_hits() {
        let cache = RotatedViewCache::new(4, 2);
        let key = rkey("a", 7);
        assert!(cache.get(&key).is_none());
        assert!(!cache.note_use(&key), "first use stays fused");
        assert!(cache.note_use(&key), "second use crosses the threshold");
        assert!(!cache.note_use(&key), "threshold fires once");
        let view = Arc::new(module(4, 4));
        cache.insert(key.clone(), Arc::clone(&view));
        assert!(Arc::ptr_eq(&cache.get(&key).unwrap(), &view));
    }

    #[test]
    fn lru_evicts_coldest_at_capacity() {
        let cache = RotatedViewCache::new(2, 1);
        let (a, b, c) = (rkey("a", 1), rkey("b", 2), rkey("c", 3));
        cache.insert(a.clone(), Arc::new(module(1, 4)));
        cache.insert(b.clone(), Arc::new(module(1, 4)));
        cache.get(&a); // b is now coldest
        cache.insert(c.clone(), Arc::new(module(1, 4)));
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&a).is_some());
        assert!(cache.get(&b).is_none(), "coldest entry evicted");
        assert!(cache.get(&c).is_some());
    }

    #[test]
    fn invalidate_drops_all_shifts_of_a_module() {
        let cache = RotatedViewCache::new(8, 1);
        cache.insert(rkey("a", 1), Arc::new(module(1, 4)));
        cache.insert(rkey("a", 2), Arc::new(module(1, 4)));
        cache.insert(rkey("b", 1), Arc::new(module(1, 4)));
        cache.invalidate_module(&ModuleKey::new("s", &["a".to_owned()]));
        assert_eq!(cache.len(), 1);
        assert!(cache.get(&rkey("b", 1)).is_some());
    }

    #[test]
    fn rotate_range_matches_apply_shift_bitwise() {
        let rope = RopeTable::new(4, 64, 10_000.0);
        let m = module(5, 8); // 2 heads of dim 4 per row
        let shift = 9isize;
        let rotated = rotate_range(&m, 1, 4, shift, &rope);
        assert_eq!(rotated.len(), 3);
        assert_eq!(rotated.positions(), &[10, 11, 12]);
        for l in 0..2 {
            // Values untouched.
            assert_eq!(rotated.values(l), &m.values(l)[8..32]);
            // Keys: every head rotated by R(shift).
            let mut expect = m.keys(l)[8..32].to_vec();
            for head in expect.chunks_exact_mut(4) {
                rope.apply_shift(head, shift);
            }
            assert_eq!(rotated.keys(l), &expect[..]);
        }
    }

    #[test]
    fn zero_capacity_never_stores() {
        let cache = RotatedViewCache::new(0, 1);
        cache.insert(rkey("a", 1), Arc::new(module(1, 4)));
        assert!(cache.is_empty());
    }
}
