//! Attention-state storage for Prompt Cache (paper §4.1 and §4.2).
//!
//! This crate owns everything about *keeping* encoded prompt modules:
//!
//! * [`ModuleStore`] — a thread-safe, two-tier store. Every encoded module
//!   lives in host memory ("CPU memory (host DRAM)"); a bounded device
//!   tier models GPU HBM. Fetching a module for device inference promotes
//!   it, evicting colder modules under a configurable [`EvictionPolicy`] —
//!   the cache-replacement strategy the paper names as future work.
//! * [`ConcatArena`] — the paper's buffered concatenation operator:
//!   "PyTorch only supports contiguous tensors, and therefore concatenation
//!   … always results in a new memory allocation. We implement a buffered
//!   concatenation operator that reuses memory." The arena reuses one
//!   session cache's capacity across requests.
//! * [`quant`] — 8-bit KV quantization, the compression direction the
//!   paper points at for shrinking module storage (§5.5).
//! * [`paged`] — paged-attention-style storage: module states split into
//!   immutable blocks shared by pointer across sessions (§3.4's batch
//!   memory optimisation), with physical-vs-logical accounting.
//! * [`codec`] — a compact binary serialisation of encoded modules, so
//!   precomputed attention states can be shipped between processes.
//! * [`memory`] — Table 2's per-token memory accounting.
//! * [`analytics`] — opt-in per-module heat analytics
//!   ([`CacheAnalytics`]): hits, misses, degrades, evictions,
//!   relocations, bytes served zero-copy vs copied, and batched
//!   shared-row attribution, exported as labeled Prometheus series and a
//!   heat ranking.
//! * [`rotated`] — a bounded LRU of materialised rotated module views
//!   ([`RotatedViewCache`]), serving hot deferred-RoPE placements without
//!   re-rotating keys on every read.

#![warn(missing_docs)]

pub mod analytics;
pub mod arena;
pub mod codec;
mod eviction;
pub mod memory;
pub mod paged;
pub mod quant;
pub mod rotated;
mod store;

pub use analytics::{CacheAnalytics, ModuleHeat};
pub use arena::ConcatArena;
pub use eviction::{EvictionPolicy, ModuleStats};
pub use rotated::{rotate_range, RotatedKey, RotatedViewCache};
pub use store::{
    FetchFault, FetchFaultInjector, ModuleKey, ModuleSnapshot, ModuleStore, StoreConfig,
    StoreStats, Tier,
};
