//! Attention-state storage for Prompt Cache (paper §4.1 and §4.2).
//!
//! This crate owns everything about *keeping* encoded prompt modules:
//!
//! * [`ModuleStore`] — a thread-safe, three-tier store. Every encoded
//!   module lives in host memory ("CPU memory (host DRAM)") under an
//!   optional host-capacity bound; a bounded device tier models GPU HBM;
//!   an optional persistent [`disk`] tier catches demotions so modules
//!   survive restarts. Fetching a module for device inference promotes
//!   it, evicting colder modules under a configurable [`EvictionPolicy`]
//!   — the cache-replacement strategy the paper names as future work —
//!   and eviction *demotes* (device→host→disk) rather than dropping
//!   whenever a lower tier exists.
//! * [`ConcatArena`] — the paper's buffered concatenation operator:
//!   "PyTorch only supports contiguous tensors, and therefore concatenation
//!   … always results in a new memory allocation. We implement a buffered
//!   concatenation operator that reuses memory." The arena reuses one
//!   session cache's capacity across requests.
//! * [`quant`] — reduced-precision KV codecs (symmetric per-row int8 and
//!   IEEE 754 binary16), the compression direction the paper points at
//!   for shrinking module storage (§5.5); the cold tiers use them so
//!   cached capacity grows 2–4× per byte while the hot path stays f32.
//! * [`segment`] — the on-disk record framing and cold-payload codecs
//!   (f32 / fp16 / int8), byte-for-byte specified in
//!   `docs/PERSISTENCE.md`.
//! * [`disk`] — the persistent tier itself ([`DiskTier`]): append-only
//!   segment files, a checksummed `INDEX`, scan-rebuild crash recovery,
//!   and corrupt-entry degradation.
//! * [`paged`] — paged-attention-style storage: module states split into
//!   immutable blocks shared by pointer across sessions (§3.4's batch
//!   memory optimisation), with physical-vs-logical accounting.
//! * [`codec`] — a compact binary serialisation of encoded modules, so
//!   precomputed attention states can be shipped between processes.
//! * [`memory`] — Table 2's per-token memory accounting.
//! * [`analytics`] — opt-in per-module heat analytics
//!   ([`CacheAnalytics`]): hits, misses, degrades, evictions,
//!   relocations, bytes served zero-copy vs copied, and batched
//!   shared-row attribution, exported as labeled Prometheus series and a
//!   heat ranking.
//! * [`rotated`] — a bounded LRU of materialised rotated module views
//!   ([`RotatedViewCache`]), serving hot deferred-RoPE placements without
//!   re-rotating keys on every read.
//! * [`shard`] — consistent-hash schema→worker ownership ([`ShardMap`],
//!   rendezvous hashing) for the sharded serving fleet: deterministic,
//!   balanced, and stable under worker loss.

#![warn(missing_docs)]

pub mod analytics;
pub mod arena;
pub mod codec;
pub mod disk;
mod eviction;
pub mod memory;
pub mod paged;
pub mod quant;
pub mod rotated;
pub mod segment;
pub mod shard;
mod store;

pub use analytics::{CacheAnalytics, ModuleHeat};
pub use arena::ConcatArena;
pub use disk::{DiskConfig, DiskEntryInfo, DiskGet, DiskTier};
pub use eviction::{EvictionPolicy, ModuleStats};
pub use rotated::{rotate_range, RotatedKey, RotatedViewCache};
pub use segment::ColdEncoding;
pub use shard::ShardMap;
pub use store::{
    FetchFault, FetchFaultInjector, ModuleKey, ModuleSnapshot, ModuleStore, PromotionHook,
    StoreConfig, StoreStats, Tier,
};
