//! Consistent-hash shard ownership for a fleet of engine workers.
//!
//! The sharded serving fleet (see `pc-server`) places each *schema* —
//! and therefore every module encoded under it — on a small set of
//! owner workers. Ownership must be:
//!
//! * **deterministic** — router and workers agree without coordination;
//! * **balanced** — schemas spread evenly across workers;
//! * **stable under loss** — when a worker dies, only the schemas it
//!   owned move; everything else keeps its placement (the classic
//!   consistent-hashing property).
//!
//! [`ShardMap`] uses rendezvous (highest-random-weight) hashing: every
//! `(schema, worker)` pair gets a pseudo-random score, and the owners of
//! a schema are the `replication` highest-scoring workers. Removing a
//! worker never reorders the surviving scores, so placements only change
//! for schemas the dead worker owned.

use std::collections::BTreeMap;

/// Deterministic schema→worker ownership via rendezvous hashing.
///
/// Cheap to construct and copy; holds no per-schema state. The same
/// `(workers, replication)` pair yields the same placement everywhere,
/// which is what lets the router and each worker agree on ownership
/// without a coordination protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardMap {
    workers: usize,
    replication: usize,
}

impl ShardMap {
    /// Builds a map over `workers` shards with `replication` owners per
    /// schema. `workers` is clamped to at least 1; `replication` is
    /// clamped to `1..=workers`.
    #[must_use]
    pub fn new(workers: usize, replication: usize) -> Self {
        let workers = workers.max(1);
        let replication = replication.clamp(1, workers);
        Self {
            workers,
            replication,
        }
    }

    /// Number of shards (workers) in the map.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Number of owner workers per schema.
    #[must_use]
    pub fn replication(&self) -> usize {
        self.replication
    }

    /// The rendezvous score of `schema` on `worker`. Higher wins.
    fn score(schema: &str, worker: usize) -> u64 {
        splitmix64(fnv1a(schema.as_bytes()) ^ splitmix64(worker as u64 + 1))
    }

    /// All workers ranked by descending preference for `schema`. The
    /// first `replication` entries are the owners; the rest form the
    /// deterministic failover order.
    #[must_use]
    pub fn ranked(&self, schema: &str) -> Vec<usize> {
        let mut scored: Vec<(u64, usize)> = (0..self.workers)
            .map(|w| (Self::score(schema, w), w))
            .collect();
        // Sort by descending score; the worker index tie-break keeps the
        // order total (scores are 64-bit so ties are effectively absent).
        scored.sort_by(|a, b| b.cmp(a));
        scored.into_iter().map(|(_, w)| w).collect()
    }

    /// The owner workers of `schema`: the top `replication` entries of
    /// [`ranked`](Self::ranked).
    #[must_use]
    pub fn owners(&self, schema: &str) -> Vec<usize> {
        let mut r = self.ranked(schema);
        r.truncate(self.replication);
        r
    }

    /// The owners of `schema` restricted to workers still alive
    /// (`alive[w] == true`). Dead workers are skipped and replaced by
    /// the next-ranked survivors, so a worker loss moves only the
    /// schemas it owned. Returns fewer than `replication` entries (or
    /// none) when not enough workers survive.
    #[must_use]
    pub fn owners_alive(&self, schema: &str, alive: &[bool]) -> Vec<usize> {
        self.ranked(schema)
            .into_iter()
            .filter(|&w| alive.get(w).copied().unwrap_or(false))
            .take(self.replication)
            .collect()
    }

    /// Whether `worker` is one of the owners of `schema`.
    #[must_use]
    pub fn is_owner(&self, schema: &str, worker: usize) -> bool {
        self.owners(schema).contains(&worker)
    }

    /// Placement summary for a set of schemas: schema → owner list.
    /// Used by the ops plane (`/debug/fleet`) to render the shard table.
    #[must_use]
    pub fn placement<'a, I>(&self, schemas: I) -> BTreeMap<String, Vec<usize>>
    where
        I: IntoIterator<Item = &'a str>,
    {
        schemas
            .into_iter()
            .map(|s| (s.to_string(), self.owners(s)))
            .collect()
    }
}

/// FNV-1a over bytes; stable, fast, and good enough as a pre-mix for
/// splitmix64 (which does the real avalanche work).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// splitmix64 finaliser — the same mixer pc-faults uses for its
/// deterministic fault sampling.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamps_degenerate_configs() {
        let m = ShardMap::new(0, 0);
        assert_eq!(m.workers(), 1);
        assert_eq!(m.replication(), 1);
        let m = ShardMap::new(3, 9);
        assert_eq!(m.replication(), 3);
    }

    #[test]
    fn deterministic_and_total() {
        let m = ShardMap::new(5, 2);
        for schema in ["chat", "rag", "code", "x"] {
            let a = m.ranked(schema);
            let b = m.ranked(schema);
            assert_eq!(a, b);
            let mut sorted = a.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..5).collect::<Vec<_>>(), "ranked is a permutation");
            assert_eq!(m.owners(schema), a[..2].to_vec());
        }
    }

    #[test]
    fn owners_respect_replication() {
        let m = ShardMap::new(4, 2);
        let owners = m.owners("docs");
        assert_eq!(owners.len(), 2);
        assert!(m.is_owner("docs", owners[0]));
        assert!(m.is_owner("docs", owners[1]));
        let non_owner = (0..4).find(|w| !owners.contains(w)).unwrap();
        assert!(!m.is_owner("docs", non_owner));
    }

    #[test]
    fn reasonably_balanced() {
        let m = ShardMap::new(4, 1);
        let mut counts = [0usize; 4];
        for i in 0..400 {
            let schema = format!("schema-{i}");
            counts[m.owners(&schema)[0]] += 1;
        }
        for (w, &c) in counts.iter().enumerate() {
            // Expected 100 per worker; allow a generous band.
            assert!((40..=180).contains(&c), "worker {w} got {c} of 400");
        }
    }

    #[test]
    fn worker_loss_moves_only_its_schemas() {
        let m = ShardMap::new(4, 1);
        let dead = 2usize;
        let alive: Vec<bool> = (0..4).map(|w| w != dead).collect();
        for i in 0..200 {
            let schema = format!("schema-{i}");
            let before = m.owners(&schema)[0];
            let after = m.owners_alive(&schema, &alive);
            assert_eq!(after.len(), 1);
            if before != dead {
                assert_eq!(after[0], before, "{schema}: surviving placement moved");
            } else {
                assert_ne!(after[0], dead);
                // The replacement is the next-ranked worker.
                let ranked = m.ranked(&schema);
                let next = *ranked.iter().find(|&&w| w != dead).unwrap();
                assert_eq!(after[0], next);
            }
        }
    }

    #[test]
    fn replicated_owner_survives_single_loss() {
        let m = ShardMap::new(4, 2);
        for i in 0..100 {
            let schema = format!("s{i}");
            let owners = m.owners(&schema);
            // Kill the primary: the secondary must remain an owner.
            let alive: Vec<bool> = (0..4).map(|w| w != owners[0]).collect();
            let after = m.owners_alive(&schema, &alive);
            assert!(after.contains(&owners[1]));
        }
    }

    #[test]
    fn no_survivors_yields_empty() {
        let m = ShardMap::new(2, 1);
        assert!(m.owners_alive("s", &[false, false]).is_empty());
    }

    #[test]
    fn placement_lists_every_schema() {
        let m = ShardMap::new(3, 2);
        let p = m.placement(["a", "b"]);
        assert_eq!(p.len(), 2);
        assert_eq!(p["a"], m.owners("a"));
        assert_eq!(p["b"], m.owners("b"));
    }
}
