//! Buffered concatenation of module KV states (paper §4.2).
//!
//! Cached inference concatenates the KV tensors of every imported module
//! into one session cache. A naive implementation allocates a fresh
//! buffer per request; the paper overrides the concatenation operator to
//! reuse memory. [`ConcatArena`] is that operator: it owns one session
//! cache whose `Vec` capacity persists across rebuilds, so steady-state
//! request handling performs zero allocations for the concatenation step.
//! The `concat_ablation` bench quantifies the win against naive concat.

use pc_model::{KvCache, ModelError};
use pc_telemetry::Telemetry;

/// A reusable concatenation buffer for session caches.
#[derive(Debug)]
pub struct ConcatArena {
    cache: KvCache,
    rebuilds: u64,
}

impl ConcatArena {
    /// Creates an arena shaped like `template` (layer count and kv width
    /// are taken from it; its contents are ignored).
    pub fn new(template: &KvCache) -> Self {
        ConcatArena {
            cache: KvCache::with_shape(template.num_layers(), template.kv_dim()),
            rebuilds: 0,
        }
    }

    /// Creates an arena with explicit shape.
    pub fn with_shape(num_layers: usize, kv_dim: usize) -> Self {
        ConcatArena {
            cache: KvCache::with_shape(num_layers, kv_dim),
            rebuilds: 0,
        }
    }

    /// Clears the session cache (keeping capacity) and concatenates
    /// `segments` into it, in order.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::CacheShapeMismatch`] if any segment's shape
    /// differs from the arena's.
    pub fn rebuild(&mut self, segments: &[&KvCache]) -> Result<&mut KvCache, ModelError> {
        self.cache.truncate(0);
        for seg in segments {
            self.cache.append(seg)?;
        }
        self.rebuilds += 1;
        Ok(&mut self.cache)
    }

    /// The current session cache.
    pub fn cache(&self) -> &KvCache {
        &self.cache
    }

    /// Mutable access (the engine appends computed states after rebuild).
    pub fn cache_mut(&mut self) -> &mut KvCache {
        &mut self.cache
    }

    /// How many times the arena has been rebuilt.
    pub fn rebuilds(&self) -> u64 {
        self.rebuilds
    }

    /// Consumes the arena, yielding the session cache (used when a
    /// session outlives the request, e.g. multi-turn conversations).
    pub fn into_cache(self) -> KvCache {
        self.cache
    }

    /// Records current occupancy into `telemetry` as the
    /// `pc_arena_rows` / `pc_arena_bytes` gauges (no-op when disabled).
    pub fn record_occupancy(&self, telemetry: &Telemetry) {
        telemetry.gauge("pc_arena_rows").set(self.cache.len() as i64);
        telemetry
            .gauge("pc_arena_bytes")
            .set(self.cache.size_bytes() as i64);
    }
}

/// Naive concatenation: a fresh allocation per call. Exists as the
/// baseline for the `concat_ablation` bench.
pub fn naive_concat(segments: &[&KvCache]) -> Result<KvCache, ModelError> {
    let (layers, kv_dim) = segments
        .first()
        .map(|s| (s.num_layers(), s.kv_dim()))
        .unwrap_or((0, 0));
    let mut out = KvCache::with_shape(layers, kv_dim);
    for seg in segments {
        out.append(seg)?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(tokens: usize, marker: f32) -> KvCache {
        let mut c = KvCache::with_shape(2, 4);
        for t in 0..tokens {
            for l in 0..2 {
                c.push_token_layer(l, &[marker; 4], &[-marker; 4]);
            }
            c.push_position(t);
        }
        c
    }

    #[test]
    fn rebuild_concatenates_in_order() {
        let a = seg(2, 1.0);
        let b = seg(3, 2.0);
        let mut arena = ConcatArena::new(&a);
        let cache = arena.rebuild(&[&a, &b]).unwrap();
        assert_eq!(cache.len(), 5);
        assert_eq!(cache.keys(0)[0], 1.0);
        assert_eq!(cache.keys(0)[2 * 4], 2.0);
    }

    #[test]
    fn rebuild_matches_naive_concat() {
        let a = seg(2, 1.0);
        let b = seg(4, 3.0);
        let mut arena = ConcatArena::new(&a);
        let buffered = arena.rebuild(&[&a, &b]).unwrap().clone();
        let naive = naive_concat(&[&a, &b]).unwrap();
        assert_eq!(buffered, naive);
    }

    #[test]
    fn rebuild_clears_previous_contents() {
        let a = seg(5, 1.0);
        let b = seg(1, 9.0);
        let mut arena = ConcatArena::new(&a);
        arena.rebuild(&[&a]).unwrap();
        let cache = arena.rebuild(&[&b]).unwrap();
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.keys(0)[0], 9.0);
        assert_eq!(arena.rebuilds(), 2);
    }

    #[test]
    fn rebuild_rejects_shape_mismatch() {
        let a = seg(2, 1.0);
        let bad = KvCache::with_shape(3, 4);
        let mut arena = ConcatArena::new(&a);
        assert!(arena.rebuild(&[&a, &bad]).is_err());
    }

    #[test]
    fn empty_rebuild_yields_empty_cache() {
        let mut arena = ConcatArena::with_shape(2, 4);
        let cache = arena.rebuild(&[]).unwrap();
        assert!(cache.is_empty());
    }

    #[test]
    fn record_occupancy_sets_gauges() {
        let telemetry = Telemetry::new();
        let a = seg(3, 1.0);
        let mut arena = ConcatArena::new(&a);
        arena.rebuild(&[&a]).unwrap();
        arena.record_occupancy(&telemetry);
        let snap = telemetry.snapshot();
        let gauge = |n: &str| {
            snap.gauges
                .iter()
                .find(|(name, _)| name == n)
                .map_or(0, |(_, v)| *v)
        };
        assert_eq!(gauge("pc_arena_rows"), 3);
        assert_eq!(gauge("pc_arena_bytes"), arena.cache().size_bytes() as i64);
        // Disabled telemetry: a no-op, not a panic.
        arena.record_occupancy(&Telemetry::disabled());
    }

    #[test]
    fn capacity_is_reused_across_rebuilds() {
        // After a large rebuild, a same-size rebuild must not grow the
        // underlying buffers — observable via stable data pointers.
        let a = seg(64, 1.0);
        let mut arena = ConcatArena::new(&a);
        arena.rebuild(&[&a]).unwrap();
        let ptr_before = arena.cache().keys(0).as_ptr();
        arena.rebuild(&[&a]).unwrap();
        let ptr_after = arena.cache().keys(0).as_ptr();
        assert_eq!(ptr_before, ptr_after, "buffer was reallocated");
    }
}
