//! Paged KV storage with pointer-shared module blocks (paper §3.4).
//!
//! "Paged attention can resolve this issue by sharing the *pointer* to
//! the same prompt module across different prompts, instead of
//! duplicating the attention states." This module is that storage layout:
//! module states are split into fixed-size immutable [`SharedBlock`]s
//! held by `Arc`; every session referencing a module holds pointers, not
//! copies, and appends its own decoded tokens into a private tail.
//!
//! The attention kernel consumes segmented caches in place
//! ([`pc_model::KvView`]), so the hot serve path assembles a view over
//! the shared blocks with [`PagedKv::view`] — pure pointer arithmetic,
//! zero module bytes moved. [`PagedKv::materialize`] remains the escape
//! hatch for consumers that genuinely need one flat owned buffer
//! (persistence, codecs, compaction) and is tested to be exactly the
//! concatenation of blocks + tail. Physical-vs-logical accounting — the
//! quantity behind the paper's 50%-footprint example — comes from
//! [`physical_bytes`], which counts each distinct block once across any
//! session set via pointer identity.

use pc_model::{KvCache, KvView, ModelError};
use std::collections::HashSet;
use std::sync::Arc;

/// An immutable block of cached states for up to `block_tokens` tokens.
/// The states themselves sit behind an `Arc` so a [`KvView`] can alias
/// them without holding the whole `SharedBlock`.
#[derive(Debug, PartialEq)]
pub struct SharedBlock {
    states: Arc<KvCache>,
}

impl SharedBlock {
    /// Tokens held.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Whether the block is empty (never produced by [`split_into_blocks`]).
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// Bytes held.
    pub fn size_bytes(&self) -> usize {
        self.states.size_bytes()
    }

    /// The shared states — cloning the `Arc` shares, never copies.
    pub fn states(&self) -> &Arc<KvCache> {
        &self.states
    }
}

/// Splits a module's states into immutable shared blocks of at most
/// `block_tokens` tokens.
///
/// # Panics
///
/// Panics if `block_tokens == 0`.
pub fn split_into_blocks(states: &KvCache, block_tokens: usize) -> Vec<Arc<SharedBlock>> {
    assert!(block_tokens > 0, "block size must be positive");
    let mut blocks = Vec::new();
    let mut start = 0;
    while start < states.len() {
        let end = (start + block_tokens).min(states.len());
        let slice = states.slice(start, end).expect("in-range slice");
        blocks.push(Arc::new(SharedBlock {
            states: Arc::new(slice),
        }));
        start = end;
    }
    blocks
}

/// One session's KV view: shared module blocks + a private tail for the
/// tokens this session computes (its uncached prompt text and decoded
/// output).
#[derive(Debug, Clone)]
pub struct PagedKv {
    blocks: Vec<Arc<SharedBlock>>,
    tail: KvCache,
}

impl PagedKv {
    /// An empty paged view shaped like `template`.
    pub fn new(num_layers: usize, kv_dim: usize) -> Self {
        PagedKv {
            blocks: Vec::new(),
            tail: KvCache::with_shape(num_layers, kv_dim),
        }
    }

    /// References a module's blocks — a pointer copy, no state copy.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::CacheShapeMismatch`] when a block's shape
    /// differs, or when blocks are appended after private tail tokens
    /// (the tail must stay the suffix).
    pub fn append_blocks(&mut self, blocks: &[Arc<SharedBlock>]) -> Result<(), ModelError> {
        if !self.tail.is_empty() {
            return Err(ModelError::CacheShapeMismatch {
                detail: "cannot append shared blocks after private tail tokens".into(),
            });
        }
        for block in blocks {
            if block.states.num_layers() != self.tail.num_layers()
                || block.states.kv_dim() != self.tail.kv_dim()
            {
                return Err(ModelError::CacheShapeMismatch {
                    detail: "block shape differs from session shape".into(),
                });
            }
            self.blocks.push(Arc::clone(block));
        }
        Ok(())
    }

    /// The private tail (computed tokens are appended here by the model's
    /// forward pass over a materialised view, then re-attached with
    /// [`PagedKv::set_tail`]).
    pub fn tail(&self) -> &KvCache {
        &self.tail
    }

    /// Replaces the private tail.
    ///
    /// # Errors
    ///
    /// Shape mismatches.
    pub fn set_tail(&mut self, tail: KvCache) -> Result<(), ModelError> {
        if tail.num_layers() != self.tail.num_layers() || tail.kv_dim() != self.tail.kv_dim() {
            return Err(ModelError::CacheShapeMismatch {
                detail: "tail shape differs from session shape".into(),
            });
        }
        self.tail = tail;
        Ok(())
    }

    /// Logical tokens visible to attention (blocks + tail).
    pub fn logical_tokens(&self) -> usize {
        self.blocks.iter().map(|b| b.len()).sum::<usize>() + self.tail.len()
    }

    /// Logical bytes (what a duplicating layout would store for this
    /// session alone).
    pub fn logical_bytes(&self) -> usize {
        self.blocks.iter().map(|b| b.size_bytes()).sum::<usize>() + self.tail.size_bytes()
    }

    /// Assembles a segmented [`KvView`] over the shared blocks — the
    /// zero-copy path the attention kernel consumes directly. Only the
    /// private tail is copied (O(tail) bytes); every module block is
    /// aliased by `Arc`.
    pub fn view(&self) -> KvView {
        let mut view = KvView::with_shape(self.tail.num_layers(), self.tail.kv_dim());
        for block in &self.blocks {
            view.push_cache(Arc::clone(&block.states))
                .expect("block shape was validated at append");
        }
        view.append_range_copy(&self.tail, 0, self.tail.len())
            .expect("tail shares the session shape");
        view
    }

    /// Materialises a contiguous cache (block states concatenated, tail
    /// appended) — the escape hatch for persistence/codec consumers that
    /// need one flat owned buffer. The serving hot path uses
    /// [`PagedKv::view`] instead.
    ///
    /// # Errors
    ///
    /// Shape mismatches (impossible for views built through this API).
    pub fn materialize(&self) -> Result<KvCache, ModelError> {
        let mut out = KvCache::with_shape(self.tail.num_layers(), self.tail.kv_dim());
        for block in &self.blocks {
            out.append(&block.states)?;
        }
        out.append(&self.tail)?;
        Ok(out)
    }
}

/// Physical bytes across a set of sessions: each distinct shared block
/// counts once (pointer identity), every private tail counts fully —
/// the §3.4 memory-footprint quantity.
pub fn physical_bytes(sessions: &[&PagedKv]) -> usize {
    let mut seen: HashSet<*const SharedBlock> = HashSet::new();
    let mut total = 0usize;
    for session in sessions {
        for block in &session.blocks {
            if seen.insert(Arc::as_ptr(block)) {
                total += block.size_bytes();
            }
        }
        total += session.tail.size_bytes();
    }
    total
}

/// Logical bytes across a set of sessions (the duplicating baseline).
pub fn logical_bytes(sessions: &[&PagedKv]) -> usize {
    sessions.iter().map(|s| s.logical_bytes()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn module(tokens: usize, marker: f32) -> KvCache {
        let mut c = KvCache::with_shape(2, 4);
        for t in 0..tokens {
            for l in 0..2 {
                c.push_token_layer(l, &[marker + t as f32; 4], &[-marker; 4]);
            }
            c.push_position(t);
        }
        c
    }

    #[test]
    fn split_preserves_content_and_sizes() {
        let m = module(10, 1.0);
        let blocks = split_into_blocks(&m, 4);
        assert_eq!(blocks.len(), 3);
        assert_eq!(blocks[0].len(), 4);
        assert_eq!(blocks[2].len(), 2);
        // Concatenation reproduces the module exactly.
        let mut view = PagedKv::new(2, 4);
        view.append_blocks(&blocks).unwrap();
        assert_eq!(view.materialize().unwrap(), m);
    }

    #[test]
    fn sharing_is_by_pointer() {
        let m = module(8, 2.0);
        let blocks = split_into_blocks(&m, 4);
        let mut a = PagedKv::new(2, 4);
        let mut b = PagedKv::new(2, 4);
        a.append_blocks(&blocks).unwrap();
        b.append_blocks(&blocks).unwrap();
        // Two sessions, one physical copy.
        assert_eq!(physical_bytes(&[&a, &b]), m.size_bytes());
        assert_eq!(logical_bytes(&[&a, &b]), 2 * m.size_bytes());
    }

    #[test]
    fn paper_example_50_percent_with_real_blocks() {
        // §5.4: 100 sessions, each 2K logical tokens, sharing a 1K module
        // → ~50% physical reduction. Scaled ÷100 here: 20-token sessions
        // sharing a 10-token module.
        let shared = split_into_blocks(&module(10, 0.0), 4);
        let sessions: Vec<PagedKv> = (0..100)
            .map(|i| {
                let mut s = PagedKv::new(2, 4);
                s.append_blocks(&shared).unwrap();
                s.set_tail(module(10, i as f32)).unwrap();
                s
            })
            .collect();
        let refs: Vec<&PagedKv> = sessions.iter().collect();
        let reduction = 1.0 - physical_bytes(&refs) as f64 / logical_bytes(&refs) as f64;
        assert!((reduction - 0.495).abs() < 0.01, "{reduction}");
    }

    #[test]
    fn tail_is_private() {
        let shared = split_into_blocks(&module(4, 0.0), 4);
        let mut a = PagedKv::new(2, 4);
        a.append_blocks(&shared).unwrap();
        a.set_tail(module(3, 9.0)).unwrap();
        assert_eq!(a.logical_tokens(), 7);
        let m = a.materialize().unwrap();
        assert_eq!(m.len(), 7);
        assert_eq!(m.keys(0)[4 * 4], 9.0); // tail content after blocks
    }

    #[test]
    fn blocks_after_tail_rejected() {
        let shared = split_into_blocks(&module(4, 0.0), 4);
        let mut a = PagedKv::new(2, 4);
        a.set_tail(module(1, 1.0)).unwrap();
        assert!(a.append_blocks(&shared).is_err());
    }

    #[test]
    fn shape_mismatches_rejected() {
        let shared = split_into_blocks(&module(4, 0.0), 4);
        let mut wrong = PagedKv::new(3, 4);
        assert!(wrong.append_blocks(&shared).is_err());
        let mut right = PagedKv::new(2, 4);
        assert!(right.set_tail(KvCache::with_shape(2, 8)).is_err());
    }

    #[test]
    #[should_panic(expected = "block size must be positive")]
    fn zero_block_size_panics() {
        split_into_blocks(&module(4, 0.0), 0);
    }

    #[test]
    fn view_matches_materialize_and_aliases_blocks() {
        let shared = split_into_blocks(&module(10, 3.0), 4);
        let mut s = PagedKv::new(2, 4);
        s.append_blocks(&shared).unwrap();
        s.set_tail(module(3, 9.0)).unwrap();
        let view = s.view();
        // Same logical content, but block bytes are aliased, not copied.
        assert_eq!(view.materialize(), s.materialize().unwrap());
        assert_eq!(view.shared_rows(), 10);
        assert_eq!(view.tail().len(), 3);
        for (seg, block) in view.segments().iter().zip(&shared) {
            assert!(Arc::ptr_eq(seg.cache(), block.states()));
        }
    }

    #[test]
    fn distinct_modules_do_not_alias() {
        let a_blocks = split_into_blocks(&module(4, 1.0), 4);
        let b_blocks = split_into_blocks(&module(4, 2.0), 4);
        let mut a = PagedKv::new(2, 4);
        let mut b = PagedKv::new(2, 4);
        a.append_blocks(&a_blocks).unwrap();
        b.append_blocks(&b_blocks).unwrap();
        assert_eq!(
            physical_bytes(&[&a, &b]),
            a_blocks[0].size_bytes() + b_blocks[0].size_bytes()
        );
    }

    #[test]
    fn views_over_shared_blocks_form_a_batchable_prefix() {
        use pc_model::{group_adjacent_prefixes, shared_prefix, KvSeq};
        // Two sessions paging the same 10-token module (3 blocks) with
        // different private tails: their views must expose the blocks as
        // a pointer-shared prefix the batched kernel can stream once.
        let blocks = split_into_blocks(&module(10, 3.0), 4);
        let mut a = PagedKv::new(2, 4);
        let mut b = PagedKv::new(2, 4);
        a.append_blocks(&blocks).unwrap();
        b.append_blocks(&blocks).unwrap();
        a.set_tail(module(2, 7.0)).unwrap();
        b.set_tail(module(5, 8.0)).unwrap();
        let (va, vb) = (a.view(), b.view());
        assert_eq!(shared_prefix(&[&va, &vb]), (3, 10));

        let views = [&va, &vb];
        let mut groups = Vec::new();
        group_adjacent_prefixes(2, |s, i| views[s].shared_segment_id(i), &mut groups);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].prefix_segments, 3);
        assert_eq!(groups[0].prefix_rows, 10);
        assert!(groups[0].is_shared());

        // A session over a *different* module never groups with them.
        let other = split_into_blocks(&module(10, 4.0), 4);
        let mut c = PagedKv::new(2, 4);
        c.append_blocks(&other).unwrap();
        let vc = c.view();
        assert_eq!(shared_prefix(&[&va, &vb, &vc]), (0, 0));
    }
}
