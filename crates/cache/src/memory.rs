//! Per-token memory accounting (paper Table 2).
//!
//! Table 2 reports MB/token for eight LLMs under 16-bit floats, assuming
//! full multi-head attention: each cached token stores one key and one
//! value of width `hidden` per layer, so
//! `bytes/token = 2 × layers × hidden × 2`.
//! The `pc-simulator` model catalog feeds real architecture dimensions in;
//! the `table2` bench target prints the reproduced column.

use pc_model::ModelConfig;

/// Bytes to cache one token for a `(layers, hidden)` architecture at
/// `bytes_per_element` precision, assuming multi-head attention (the
/// paper's Table 2 assumption).
pub fn kv_bytes_per_token(layers: usize, hidden: usize, bytes_per_element: usize) -> usize {
    2 * layers * hidden * bytes_per_element
}

/// MB/token at fp16 — the exact quantity in Table 2.
pub fn mb_per_token_fp16(layers: usize, hidden: usize) -> f64 {
    kv_bytes_per_token(layers, hidden, 2) as f64 / 1e6
}

/// Bytes to cache one token for an engine [`ModelConfig`] (honouring
/// grouped-/multi-query attention, unlike the Table 2 MHA assumption).
pub fn config_kv_bytes_per_token(cfg: &ModelConfig, bytes_per_element: usize) -> usize {
    cfg.kv_bytes_per_token(bytes_per_element)
}

/// Total bytes to cache a module of `tokens` tokens for `cfg` at fp32
/// (the engine's in-memory precision).
pub fn module_bytes(cfg: &ModelConfig, tokens: usize) -> usize {
    tokens * config_kv_bytes_per_token(cfg, 4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn llama_7b_matches_table_2() {
        // Llama 7B: 32 layers × 4096 hidden → 0.50 MB/token.
        let mb = mb_per_token_fp16(32, 4096);
        assert!((mb - 0.524).abs() < 0.01, "{mb}");
    }

    #[test]
    fn llama_13b_matches_table_2() {
        // Llama 13B: 40 × 5120 → 0.78 MB/token (paper: 0.78).
        let mb = mb_per_token_fp16(40, 5120);
        assert!((mb - 0.819).abs() < 0.05, "{mb}");
    }

    #[test]
    fn bert_matches_table_2() {
        // BERT-base: 12 × 768 → 0.03 MB/token.
        let mb = mb_per_token_fp16(12, 768);
        assert!((mb - 0.037).abs() < 0.01, "{mb}");
    }

    #[test]
    fn mqa_configs_cache_less_than_mha() {
        let mha = pc_model::ModelConfig::llama_tiny(16);
        let mqa = pc_model::ModelConfig::falcon_tiny(16);
        assert!(
            config_kv_bytes_per_token(&mqa, 2) < config_kv_bytes_per_token(&mha, 2),
            "multi-query caches fewer kv heads"
        );
    }

    #[test]
    fn module_bytes_matches_kvcache_size() {
        use pc_model::{KvCache, Model};
        let cfg = pc_model::ModelConfig::llama_tiny(32);
        let model = Model::new(cfg.clone(), 0);
        let mut cache = KvCache::new(&cfg);
        model.encode(&[1, 2, 3, 4, 5], &[0, 1, 2, 3, 4], &mut cache).unwrap();
        assert_eq!(module_bytes(&cfg, 5), cache.size_bytes());
    }
}
