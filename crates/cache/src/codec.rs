//! Binary serialisation of encoded modules.
//!
//! Encoding a large module is expensive (that's the whole point of caching
//! it); this codec lets precomputed attention states be written out and
//! shipped between processes or machines — the "inference server
//! precomputes and stores" deployment the paper's introduction sketches.
//!
//! Format (little-endian): magic `PCKV`, version u32, num_layers u32,
//! kv_dim u32, num_tokens u32, positions as u64s, then per layer the k
//! rows and v rows as f32s.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use pc_model::KvCache;
use std::fmt;

const MAGIC: &[u8; 4] = b"PCKV";
const VERSION: u32 = 1;

/// Errors from decoding a serialised module.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CodecError {
    /// The buffer does not start with the `PCKV` magic.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u32),
    /// The buffer ended before the declared payload.
    Truncated,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::BadMagic => write!(f, "not a PCKV module (bad magic)"),
            CodecError::BadVersion(v) => write!(f, "unsupported PCKV version {v}"),
            CodecError::Truncated => write!(f, "truncated PCKV payload"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Serialises a module's attention states.
pub fn encode(cache: &KvCache) -> Bytes {
    let tokens = cache.len();
    let per_layer = 2 * tokens * cache.kv_dim() * 4;
    let mut buf =
        BytesMut::with_capacity(20 + tokens * 8 + cache.num_layers() * per_layer);
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u32_le(cache.num_layers() as u32);
    buf.put_u32_le(cache.kv_dim() as u32);
    buf.put_u32_le(tokens as u32);
    for &p in cache.positions() {
        buf.put_u64_le(p as u64);
    }
    for l in 0..cache.num_layers() {
        for &x in cache.keys(l) {
            buf.put_f32_le(x);
        }
        for &x in cache.values(l) {
            buf.put_f32_le(x);
        }
    }
    buf.freeze()
}

/// Deserialises a module.
///
/// # Errors
///
/// Returns a [`CodecError`] for foreign, newer-versioned, or truncated
/// buffers.
pub fn decode(mut buf: &[u8]) -> Result<KvCache, CodecError> {
    if buf.remaining() < 20 {
        return Err(CodecError::Truncated);
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(CodecError::BadMagic);
    }
    let version = buf.get_u32_le();
    if version != VERSION {
        return Err(CodecError::BadVersion(version));
    }
    let num_layers = buf.get_u32_le() as usize;
    let kv_dim = buf.get_u32_le() as usize;
    let tokens = buf.get_u32_le() as usize;

    let need = tokens * 8 + num_layers * 2 * tokens * kv_dim * 4;
    if buf.remaining() < need {
        return Err(CodecError::Truncated);
    }

    let positions: Vec<usize> = (0..tokens).map(|_| buf.get_u64_le() as usize).collect();
    let mut cache = KvCache::with_shape(num_layers, kv_dim);
    let mut layer_k = vec![vec![0.0f32; tokens * kv_dim]; num_layers];
    let mut layer_v = vec![vec![0.0f32; tokens * kv_dim]; num_layers];
    for l in 0..num_layers {
        for x in layer_k[l].iter_mut() {
            *x = buf.get_f32_le();
        }
        for x in layer_v[l].iter_mut() {
            *x = buf.get_f32_le();
        }
    }
    for (t, &pos) in positions.iter().enumerate() {
        for l in 0..num_layers {
            cache.push_token_layer(
                l,
                &layer_k[l][t * kv_dim..(t + 1) * kv_dim],
                &layer_v[l][t * kv_dim..(t + 1) * kv_dim],
            );
        }
        cache.push_position(pos);
    }
    Ok(cache)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn module(tokens: usize) -> KvCache {
        let mut c = KvCache::with_shape(3, 4);
        for t in 0..tokens {
            for l in 0..3 {
                let k: Vec<f32> = (0..4).map(|i| (t * 17 + l * 5 + i) as f32 * 0.25).collect();
                let v: Vec<f32> = (0..4).map(|i| -((t + l + i) as f32)).collect();
                c.push_token_layer(l, &k, &v);
            }
            c.push_position(t * 3 + 7);
        }
        c
    }

    #[test]
    fn round_trip_is_exact() {
        let m = module(9);
        let decoded = decode(&encode(&m)).unwrap();
        assert_eq!(decoded, m);
    }

    #[test]
    fn empty_module_round_trips() {
        let m = KvCache::with_shape(2, 8);
        assert_eq!(decode(&encode(&m)).unwrap(), m);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = encode(&module(1)).to_vec();
        bytes[0] = b'X';
        assert_eq!(decode(&bytes), Err(CodecError::BadMagic));
    }

    #[test]
    fn future_version_rejected() {
        let mut bytes = encode(&module(1)).to_vec();
        bytes[4] = 99;
        assert_eq!(decode(&bytes), Err(CodecError::BadVersion(99)));
    }

    #[test]
    fn truncation_rejected_everywhere() {
        let bytes = encode(&module(4));
        for cut in [0, 3, 10, 19, bytes.len() - 1] {
            assert_eq!(
                decode(&bytes[..cut]),
                Err(CodecError::Truncated),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn encoded_size_is_predictable() {
        let m = module(4);
        let bytes = encode(&m);
        // header 20 + positions 4*8 + payload 3 layers × 2 × 4 tok × 4 dim × 4 B
        assert_eq!(bytes.len(), 20 + 32 + 3 * 2 * 4 * 4 * 4);
    }
}
