//! On-disk record framing and cold-payload codecs for the disk tier.
//!
//! This module defines the byte-level format of the persistent store's
//! segment files — the format specified normatively in
//! `docs/PERSISTENCE.md` (read that first; this rustdoc is the
//! implementation-side summary). A segment file is an 8-byte header
//! followed by appended records:
//!
//! ```text
//! segment  := magic "PCSG" | version u32 LE (=1) | record*
//! record   := magic "PCRD" (u32 LE)
//!           | key_len u32 LE | payload_len u32 LE
//!           | encoding u8 | reserved [u8; 3]
//!           | cost f64 LE
//!           | checksum u64 LE        (FNV-1a over key bytes ++ payload)
//!           | key bytes | payload bytes
//! key      := schema_len u16 LE | schema utf-8
//!           | path_count u16 LE | (seg_len u16 LE | seg utf-8)*
//! ```
//!
//! The record checksum covers the serialized key and payload, so any
//! flipped bit in either is detected at read time — the entry is then
//! dropped and the lookup reports a miss, and the engine's graceful
//! degradation re-encodes the span (`docs/PERSISTENCE.md` "Failure
//! modes"). Records are append-only; a later record for the same key
//! supersedes earlier ones, and a record with encoding byte `0xFF` and an
//! empty payload is a **tombstone** (the key is deleted).
//!
//! Three payload encodings trade bytes for fidelity ([`ColdEncoding`]):
//!
//! * `F32` (0) — the exact [`crate::codec`] PCKV bytes; promote is
//!   bit-identical.
//! * `Fp16` (1) — every k/v element as IEEE 754 binary16
//!   ([`crate::quant::f32_to_f16_bits`]), 2× smaller.
//! * `Int8` (2) — symmetric per-row int8
//!   ([`crate::quant::quantize_row`]) with one f32 scale per (layer,
//!   token, k/v) row, ≈4× smaller.
//!
//! Positions are stored exactly (u64) under every encoding, which is what
//! lets a warm restart pass the engine's registration-reuse validation
//! even for quantized payloads.

use crate::codec::{self, CodecError};
use crate::quant::{dequantize_row, f16_bits_to_f32, f32_to_f16_bits, quantize_row};
use crate::store::ModuleKey;
use bytes::{Buf, BufMut, BytesMut};
use pc_model::KvCache;

/// Magic bytes opening every segment file.
pub const SEGMENT_MAGIC: &[u8; 4] = b"PCSG";
/// Segment format version (bumped on any incompatible layout change).
pub const SEGMENT_VERSION: u32 = 1;
/// Magic opening every record, as a little-endian u32 (`b"PCRD"`).
pub const RECORD_MAGIC: u32 = u32::from_le_bytes(*b"PCRD");
/// Fixed record header size in bytes (magic through checksum).
pub const RECORD_HEADER_LEN: usize = 4 + 4 + 4 + 4 + 8 + 8;
/// Encoding byte marking a tombstone record (key deleted, empty payload).
pub const TOMBSTONE: u8 = 0xFF;

/// How cold payloads are encoded on disk. See the [module docs](self)
/// for the layout of each variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ColdEncoding {
    /// Exact f32 PCKV bytes — byte-identical on promote.
    #[default]
    F32,
    /// IEEE 754 binary16 elements — 2× smaller, near-exact.
    Fp16,
    /// Symmetric per-row int8 with f32 scales — ≈4× smaller.
    Int8,
}

impl ColdEncoding {
    /// The encoding byte written into record headers.
    pub fn byte(self) -> u8 {
        match self {
            ColdEncoding::F32 => 0,
            ColdEncoding::Fp16 => 1,
            ColdEncoding::Int8 => 2,
        }
    }

    /// Parses a record encoding byte ([`TOMBSTONE`] and unknown values
    /// return `None`).
    pub fn from_byte(b: u8) -> Option<Self> {
        match b {
            0 => Some(ColdEncoding::F32),
            1 => Some(ColdEncoding::Fp16),
            2 => Some(ColdEncoding::Int8),
            _ => None,
        }
    }

    /// Human-readable label (`"f32"`, `"fp16"`, `"int8"`) used by
    /// flight-recorder events and `/debug/cache`.
    pub fn label(self) -> &'static str {
        match self {
            ColdEncoding::F32 => "f32",
            ColdEncoding::Fp16 => "fp16",
            ColdEncoding::Int8 => "int8",
        }
    }
}

/// FNV-1a over a sequence of byte slices — the record and index checksum.
/// (Distinct from the store's in-memory f32 content checksum: this one
/// covers serialized bytes, so it detects disk bit rot and torn writes.)
pub fn checksum_bytes(parts: &[&[u8]]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for part in parts {
        for &b in *part {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Serialises a module key (schema + path segments, length-prefixed).
pub fn encode_key(key: &ModuleKey) -> Vec<u8> {
    let mut out = BytesMut::new();
    out.put_u16_le(key.schema.len() as u16);
    out.put_slice(key.schema.as_bytes());
    out.put_u16_le(key.path.len() as u16);
    for seg in &key.path {
        out.put_u16_le(seg.len() as u16);
        out.put_slice(seg.as_bytes());
    }
    out.to_vec()
}

/// Deserialises a module key written by [`encode_key`]. Returns `None`
/// for truncated or non-UTF-8 bytes (a corrupt record).
pub fn decode_key(mut buf: &[u8]) -> Option<ModuleKey> {
    let take_str = |buf: &mut &[u8]| -> Option<String> {
        if buf.remaining() < 2 {
            return None;
        }
        let len = buf.get_u16_le() as usize;
        if buf.remaining() < len {
            return None;
        }
        let s = String::from_utf8(buf[..len].to_vec()).ok()?;
        buf.advance(len);
        Some(s)
    };
    let schema = take_str(&mut buf)?;
    if buf.remaining() < 2 {
        return None;
    }
    let count = buf.get_u16_le() as usize;
    let mut path = Vec::with_capacity(count);
    for _ in 0..count {
        path.push(take_str(&mut buf)?);
    }
    buf.is_empty().then_some(ModuleKey { schema, path })
}

/// Encodes a module's attention states under `encoding`. `F32` is the
/// exact [`crate::codec`] bytes; `Fp16`/`Int8` share a dims + exact
/// positions header followed by the reduced-precision elements.
pub fn encode_payload(cache: &KvCache, encoding: ColdEncoding) -> Vec<u8> {
    match encoding {
        ColdEncoding::F32 => codec::encode(cache).to_vec(),
        ColdEncoding::Fp16 => {
            let mut buf = quant_header(cache);
            for l in 0..cache.num_layers() {
                for &x in cache.keys(l) {
                    buf.put_u16_le(f32_to_f16_bits(x));
                }
                for &x in cache.values(l) {
                    buf.put_u16_le(f32_to_f16_bits(x));
                }
            }
            buf.to_vec()
        }
        ColdEncoding::Int8 => {
            let kv_dim = cache.kv_dim().max(1);
            let tokens = cache.len();
            let mut buf = quant_header(cache);
            let mut row = vec![0i8; kv_dim];
            for l in 0..cache.num_layers() {
                for rows in [cache.keys(l), cache.values(l)] {
                    // Scales first (f32 × tokens), then the int8 rows.
                    let mut scales = Vec::with_capacity(tokens);
                    let mut payload = Vec::with_capacity(tokens * kv_dim);
                    for src in rows.chunks_exact(kv_dim) {
                        scales.push(quantize_row(src, &mut row));
                        payload.extend(row.iter().map(|&q| q as u8));
                    }
                    for s in scales {
                        buf.put_f32_le(s);
                    }
                    buf.put_slice(&payload);
                }
            }
            buf.to_vec()
        }
    }
}

fn quant_header(cache: &KvCache) -> BytesMut {
    let mut buf = BytesMut::new();
    buf.put_u32_le(cache.num_layers() as u32);
    buf.put_u32_le(cache.kv_dim() as u32);
    buf.put_u32_le(cache.len() as u32);
    for &p in cache.positions() {
        buf.put_u64_le(p as u64);
    }
    buf
}

/// Decodes a payload written by [`encode_payload`] with the same
/// `encoding` (recorded in the record header).
///
/// # Errors
///
/// [`CodecError::Truncated`] when the buffer is shorter than its declared
/// shape; `F32` payloads additionally surface [`crate::codec::decode`]'s
/// magic/version errors.
pub fn decode_payload(bytes: &[u8], encoding: ColdEncoding) -> Result<KvCache, CodecError> {
    if encoding == ColdEncoding::F32 {
        return codec::decode(bytes);
    }
    let mut buf = bytes;
    if buf.remaining() < 12 {
        return Err(CodecError::Truncated);
    }
    let num_layers = buf.get_u32_le() as usize;
    let kv_dim = buf.get_u32_le() as usize;
    let tokens = buf.get_u32_le() as usize;
    if buf.remaining() < tokens * 8 {
        return Err(CodecError::Truncated);
    }
    let positions: Vec<usize> = (0..tokens).map(|_| buf.get_u64_le() as usize).collect();
    let row_elems = tokens * kv_dim;
    let mut cache = KvCache::with_shape(num_layers, kv_dim);
    let mut layer_k = vec![vec![0.0f32; row_elems]; num_layers];
    let mut layer_v = vec![vec![0.0f32; row_elems]; num_layers];
    match encoding {
        ColdEncoding::F32 => unreachable!("handled above"),
        ColdEncoding::Fp16 => {
            if buf.remaining() < num_layers * 2 * row_elems * 2 {
                return Err(CodecError::Truncated);
            }
            for l in 0..num_layers {
                for x in layer_k[l].iter_mut() {
                    *x = f16_bits_to_f32(buf.get_u16_le());
                }
                for x in layer_v[l].iter_mut() {
                    *x = f16_bits_to_f32(buf.get_u16_le());
                }
            }
        }
        ColdEncoding::Int8 => {
            if buf.remaining() < num_layers * 2 * (tokens * 4 + row_elems) {
                return Err(CodecError::Truncated);
            }
            let mut data = vec![0i8; row_elems];
            let mut scales = vec![0.0f32; tokens];
            for l in 0..num_layers {
                for half in [&mut layer_k[l], &mut layer_v[l]] {
                    for s in scales.iter_mut() {
                        *s = buf.get_f32_le();
                    }
                    for q in data.iter_mut() {
                        *q = buf.get_u8() as i8;
                    }
                    for t in 0..tokens {
                        dequantize_row(
                            &data,
                            &scales,
                            t,
                            kv_dim,
                            &mut half[t * kv_dim..(t + 1) * kv_dim],
                        );
                    }
                }
            }
        }
    }
    for (t, &pos) in positions.iter().enumerate() {
        for l in 0..num_layers {
            cache.push_token_layer(
                l,
                &layer_k[l][t * kv_dim..(t + 1) * kv_dim],
                &layer_v[l][t * kv_dim..(t + 1) * kv_dim],
            );
        }
        cache.push_position(pos);
    }
    Ok(cache)
}

/// Appends one framed record (header + key + payload) to `out`. A
/// tombstone is written by passing [`TOMBSTONE`] and an empty payload.
pub fn write_record(out: &mut Vec<u8>, key_bytes: &[u8], payload: &[u8], encoding: u8, cost: f64) {
    let mut buf = BytesMut::with_capacity(RECORD_HEADER_LEN + key_bytes.len() + payload.len());
    buf.put_u32_le(RECORD_MAGIC);
    buf.put_u32_le(key_bytes.len() as u32);
    buf.put_u32_le(payload.len() as u32);
    buf.put_u8(encoding);
    buf.put_slice(&[0u8; 3]);
    buf.put_f64_le(cost);
    buf.put_u64_le(checksum_bytes(&[key_bytes, payload]));
    buf.put_slice(key_bytes);
    buf.put_slice(payload);
    out.extend_from_slice(&buf);
}

/// One record parsed out of a segment by [`parse_record`]. Byte ranges
/// index into the scanned buffer.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedRecord {
    /// The record's module key.
    pub key: ModuleKey,
    /// Encoding byte as written ([`TOMBSTONE`] for deletions).
    pub encoding: u8,
    /// Recompute cost carried alongside the payload (eviction input).
    pub cost: f64,
    /// Declared key ++ payload checksum.
    pub checksum: u64,
    /// Byte offset of the payload within the scanned buffer.
    pub payload_offset: usize,
    /// Payload length in bytes.
    pub payload_len: usize,
    /// Offset one past the record's final byte (where the next starts).
    pub next_offset: usize,
}

/// Outcome of parsing one record at an offset during a recovery scan.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseOutcome {
    /// A complete, structurally valid record.
    Record(ParsedRecord),
    /// The bytes from this offset on are not a complete record — a torn
    /// append. Recovery truncates the segment here.
    Torn,
    /// `at` is exactly the end of the buffer: a clean tail.
    End,
}

/// Parses the record starting at `at` in a segment's bytes (past the
/// segment header). Structural damage — bad magic, lengths running past
/// the end, an undecodable key — reports [`ParseOutcome::Torn`];
/// *payload* corruption is deliberately not checked here (checksums are
/// verified at read time so recovery stays O(records), not O(bytes)).
pub fn parse_record(buf: &[u8], at: usize) -> ParseOutcome {
    if at == buf.len() {
        return ParseOutcome::End;
    }
    if at + RECORD_HEADER_LEN > buf.len() {
        return ParseOutcome::Torn;
    }
    let mut header = &buf[at..at + RECORD_HEADER_LEN];
    if header.get_u32_le() != RECORD_MAGIC {
        return ParseOutcome::Torn;
    }
    let key_len = header.get_u32_le() as usize;
    let payload_len = header.get_u32_le() as usize;
    let encoding = header.get_u8();
    header.advance(3);
    let cost = header.get_f64_le();
    let checksum = header.get_u64_le();
    let key_at = at + RECORD_HEADER_LEN;
    let payload_at = key_at + key_len;
    let next = payload_at + payload_len;
    if next > buf.len() {
        return ParseOutcome::Torn;
    }
    let Some(key) = decode_key(&buf[key_at..payload_at]) else {
        return ParseOutcome::Torn;
    };
    ParseOutcome::Record(ParsedRecord {
        key,
        encoding,
        cost,
        checksum,
        payload_offset: payload_at,
        payload_len,
        next_offset: next,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn module(tokens: usize) -> KvCache {
        let mut c = KvCache::with_shape(2, 4);
        for t in 0..tokens {
            for l in 0..2 {
                let base = t as f32 * 0.37 + l as f32 * 1.1;
                let k: Vec<f32> = (0..4).map(|i| (base + i as f32).sin() * 3.0).collect();
                let v: Vec<f32> = (0..4).map(|i| (base - i as f32).cos() * 0.5).collect();
                c.push_token_layer(l, &k, &v);
            }
            c.push_position(t + 5);
        }
        c
    }

    #[test]
    fn key_round_trips_with_odd_characters() {
        let key = ModuleKey::new("my schema\t2", &["<span>".into(), "0".into(), "".into()]);
        assert_eq!(decode_key(&encode_key(&key)), Some(key));
    }

    #[test]
    fn key_rejects_truncation_and_trailing_garbage() {
        let key = ModuleKey::new("s", &["a".into()]);
        let bytes = encode_key(&key);
        for cut in 0..bytes.len() {
            assert_eq!(decode_key(&bytes[..cut]), None, "cut {cut}");
        }
        let mut padded = bytes;
        padded.push(0);
        assert_eq!(decode_key(&padded), None);
    }

    #[test]
    fn f32_payload_round_trips_bit_exactly() {
        let m = module(6);
        let bytes = encode_payload(&m, ColdEncoding::F32);
        assert_eq!(decode_payload(&bytes, ColdEncoding::F32).unwrap(), m);
    }

    #[test]
    fn fp16_payload_preserves_shape_positions_and_near_values() {
        let m = module(6);
        let bytes = encode_payload(&m, ColdEncoding::Fp16);
        let back = decode_payload(&bytes, ColdEncoding::Fp16).unwrap();
        assert_eq!(back.positions(), m.positions(), "positions are exact");
        assert_eq!((back.num_layers(), back.kv_dim()), (2, 4));
        for l in 0..2 {
            for (a, b) in m.keys(l).iter().zip(back.keys(l)) {
                assert!((a - b).abs() <= a.abs() * 0.001 + 1e-6);
            }
        }
        // Half the f32 payload (same 12 + positions header, u16 elements).
        let f32_bytes = encode_payload(&m, ColdEncoding::F32).len();
        assert!(bytes.len() < f32_bytes * 3 / 4, "{} vs {f32_bytes}", bytes.len());
    }

    #[test]
    fn int8_payload_preserves_shape_positions_within_row_scale() {
        let m = module(8);
        let bytes = encode_payload(&m, ColdEncoding::Int8);
        let back = decode_payload(&bytes, ColdEncoding::Int8).unwrap();
        assert_eq!(back.positions(), m.positions(), "positions are exact");
        for l in 0..2 {
            for (row, brow) in m
                .keys(l)
                .chunks_exact(4)
                .zip(back.keys(l).chunks_exact(4))
            {
                let max_abs = row.iter().fold(0.0f32, |a, &x| a.max(x.abs()));
                for (a, b) in row.iter().zip(brow) {
                    assert!((a - b).abs() <= max_abs / 127.0, "{a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn quantized_encodings_shrink_the_payload() {
        // Realistic row width so per-row scale overhead amortises.
        let mut m = KvCache::with_shape(2, 64);
        for t in 0..32 {
            for l in 0..2 {
                let row: Vec<f32> = (0..64).map(|i| ((t + l + i) as f32).sin()).collect();
                m.push_token_layer(l, &row, &row);
            }
            m.push_position(t);
        }
        let f32_len = encode_payload(&m, ColdEncoding::F32).len();
        let fp16_len = encode_payload(&m, ColdEncoding::Fp16).len();
        let int8_len = encode_payload(&m, ColdEncoding::Int8).len();
        assert!(fp16_len * 3 < f32_len * 2, "fp16 ≈ 2×: {fp16_len} vs {f32_len}");
        assert!(int8_len * 3 < f32_len, "int8 ≈ 4×: {int8_len} vs {f32_len}");
    }

    #[test]
    fn truncated_payloads_are_rejected_everywhere() {
        let m = module(4);
        for encoding in [ColdEncoding::F32, ColdEncoding::Fp16, ColdEncoding::Int8] {
            let bytes = encode_payload(&m, encoding);
            for cut in [0, 5, 11, bytes.len() / 2, bytes.len() - 1] {
                assert!(
                    decode_payload(&bytes[..cut], encoding).is_err(),
                    "{encoding:?} cut {cut}"
                );
            }
        }
    }

    #[test]
    fn empty_module_round_trips_under_all_encodings() {
        let m = KvCache::with_shape(3, 8);
        for encoding in [ColdEncoding::F32, ColdEncoding::Fp16, ColdEncoding::Int8] {
            let back = decode_payload(&encode_payload(&m, encoding), encoding).unwrap();
            assert_eq!(back, m, "{encoding:?}");
        }
    }

    #[test]
    fn record_round_trips_through_parse() {
        let key = ModuleKey::new("s", &["<span>".into(), "1".into()]);
        let key_bytes = encode_key(&key);
        let payload = encode_payload(&module(3), ColdEncoding::F32);
        let mut buf = Vec::new();
        write_record(&mut buf, &key_bytes, &payload, ColdEncoding::F32.byte(), 2.5);
        let ParseOutcome::Record(rec) = parse_record(&buf, 0) else {
            panic!("expected a record");
        };
        assert_eq!(rec.key, key);
        assert_eq!(rec.encoding, 0);
        assert_eq!(rec.cost, 2.5);
        assert_eq!(rec.next_offset, buf.len());
        assert_eq!(
            rec.checksum,
            checksum_bytes(&[&key_bytes, &payload]),
            "declared checksum matches recomputation"
        );
        assert_eq!(
            &buf[rec.payload_offset..rec.payload_offset + rec.payload_len],
            &payload[..]
        );
        assert_eq!(parse_record(&buf, buf.len()), ParseOutcome::End);
    }

    #[test]
    fn torn_records_are_detected_at_every_cut() {
        let key_bytes = encode_key(&ModuleKey::new("s", &["a".into()]));
        let payload = encode_payload(&module(2), ColdEncoding::Int8);
        let mut buf = Vec::new();
        write_record(&mut buf, &key_bytes, &payload, ColdEncoding::Int8.byte(), 1.0);
        for cut in 1..buf.len() {
            assert_eq!(parse_record(&buf[..cut], 0), ParseOutcome::Torn, "cut {cut}");
        }
        let mut bad_magic = buf.clone();
        bad_magic[0] ^= 0xFF;
        assert_eq!(parse_record(&bad_magic, 0), ParseOutcome::Torn);
    }

    #[test]
    fn tombstone_records_parse() {
        let key_bytes = encode_key(&ModuleKey::new("s", &["gone".into()]));
        let mut buf = Vec::new();
        write_record(&mut buf, &key_bytes, &[], TOMBSTONE, 0.0);
        let ParseOutcome::Record(rec) = parse_record(&buf, 0) else {
            panic!("expected a record");
        };
        assert_eq!(rec.encoding, TOMBSTONE);
        assert_eq!(rec.payload_len, 0);
    }

    #[test]
    fn encoding_byte_round_trips() {
        for e in [ColdEncoding::F32, ColdEncoding::Fp16, ColdEncoding::Int8] {
            assert_eq!(ColdEncoding::from_byte(e.byte()), Some(e));
        }
        assert_eq!(ColdEncoding::from_byte(TOMBSTONE), None);
        assert_eq!(ColdEncoding::from_byte(7), None);
    }
}
