//! Per-module cache analytics: the heat data behind `/debug/cache` and
//! the labeled `pc_module_*` Prometheus series.
//!
//! The aggregate [`crate::StoreStats`] counters say the cache is busy;
//! they cannot say **which modules** earn their residency. This table
//! records, per module id: hits, misses, graceful-degradation
//! recomputes, device-tier evictions, bytes served zero-copy vs copied,
//! the store's logical clock at last access, and — fed from the batched
//! scheduler's prefix-group accounting — how many KV rows of the module
//! were streamed *once per group* by the prefix-aware kernel. The
//! resulting heat ranking is exactly what a tiered store promotes and
//! demotes by, and what a sharded router places by.
//!
//! **Lock discipline.** The table is lock-light, mirroring the metrics
//! registry: one short mutex guards the label → counter-block map (and
//! the segment-id tag map), held only for the lookup; every counter is
//! an atomic, so the increment itself never holds the lock. The table is
//! opt-in ([`crate::StoreConfig::module_analytics`]); a store without
//! one pays a single `Option` check per would-be recording site.

use crate::store::ModuleKey;
use pc_model::SegmentId;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Upper bound on retained segment-id tags. Segment ids are pointer
/// identities; schema replacement mints new ones, so the map is pruned
/// wholesale past this bound rather than growing without limit (a brief
/// attribution gap, never unbounded memory).
const MAX_SEGMENT_TAGS: usize = 8192;

/// Atomic counter block for one module.
#[derive(Debug, Default)]
struct ModuleCounters {
    hits: AtomicU64,
    misses: AtomicU64,
    degrades: AtomicU64,
    evictions: AtomicU64,
    relocations: AtomicU64,
    bytes_shared: AtomicU64,
    bytes_copied: AtomicU64,
    shared_rows: AtomicU64,
    last_access_tick: AtomicU64,
}

/// Point-in-time analytics for one module — one row of
/// [`CacheAnalytics::snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModuleHeat {
    /// The module id: `schema:path/segments`.
    pub module: String,
    /// Store hits attributed to this module.
    pub hits: u64,
    /// Store misses (including corruption drops and injected misses).
    pub misses: u64,
    /// Graceful-degradation recomputes (missing/corrupt at fetch).
    pub degrades: u64,
    /// Device-tier evictions of this module.
    pub evictions: u64,
    /// Hits served at a non-zero placement shift: the canonical entry was
    /// reused at an offset other than the one it was encoded at, via
    /// deferred-RoPE rotate-on-read. A subset of `hits`.
    pub relocations: u64,
    /// Bytes served zero-copy (`Arc`-aliased into session views).
    pub bytes_shared: u64,
    /// Bytes memcpy'd into session views (zero-copy off).
    pub bytes_copied: u64,
    /// KV rows of this module streamed once per prefix group by the
    /// batched two-phase kernel (row × layer units, matching
    /// `pc_kv_rows_shared_read_total`).
    pub shared_rows: u64,
    /// Store logical clock at the most recent access (0 = never).
    pub last_access_tick: u64,
}

impl ModuleHeat {
    /// The promotion score the heat ranking sorts by: accesses plus
    /// batched reuse, with relocated hits counted again on top. A module
    /// that is fetched often, anchors many prefix groups, *or* earns its
    /// keep across many different placements is hot; one with none of
    /// those is a demotion candidate.
    pub fn heat(&self) -> u64 {
        self.hits + self.shared_rows + self.relocations
    }
}

/// The per-module analytics table. See the [module docs](self).
#[derive(Debug, Default)]
pub struct CacheAnalytics {
    modules: Mutex<HashMap<String, Arc<ModuleCounters>>>,
    /// Segment pointer-identity → module counter block, so the batched
    /// scheduler's per-group shared-row accounting (which sees only
    /// [`SegmentId`]s) can be attributed back to modules.
    segments: Mutex<HashMap<SegmentId, Arc<ModuleCounters>>>,
}

/// The canonical module id label: `schema:path/segments`.
pub fn module_label(key: &ModuleKey) -> String {
    let mut label = String::with_capacity(key.schema.len() + 16);
    label.push_str(&key.schema);
    label.push(':');
    for (i, seg) in key.path.iter().enumerate() {
        if i > 0 {
            label.push('/');
        }
        label.push_str(seg);
    }
    label
}

impl CacheAnalytics {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    fn counters(&self, key: &ModuleKey) -> Arc<ModuleCounters> {
        let label = module_label(key);
        Arc::clone(self.modules.lock().entry(label).or_default())
    }

    /// Records a store hit at logical tick `tick`.
    pub fn record_hit(&self, key: &ModuleKey, tick: u64) {
        let c = self.counters(key);
        c.hits.fetch_add(1, Ordering::Relaxed);
        c.last_access_tick.store(tick, Ordering::Relaxed);
    }

    /// Records a store miss (not found, injected, or corruption-dropped)
    /// at logical tick `tick`.
    pub fn record_miss(&self, key: &ModuleKey, tick: u64) {
        let c = self.counters(key);
        c.misses.fetch_add(1, Ordering::Relaxed);
        c.last_access_tick.store(tick, Ordering::Relaxed);
    }

    /// Records a graceful-degradation recompute of the module.
    pub fn record_degrade(&self, key: &ModuleKey) {
        self.counters(key).degrades.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a device-tier eviction of the module.
    pub fn record_eviction(&self, key: &ModuleKey) {
        self.counters(key).evictions.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a hit served at a non-zero placement shift (the engine
    /// relocated the canonical entry via deferred-RoPE rotate-on-read).
    /// Call alongside — not instead of — the hit recorded by the store.
    pub fn record_relocation(&self, key: &ModuleKey) {
        self.counters(key).relocations.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `bytes` of the module served zero-copy into a session
    /// view.
    pub fn record_bytes_shared(&self, key: &ModuleKey, bytes: u64) {
        self.counters(key)
            .bytes_shared
            .fetch_add(bytes, Ordering::Relaxed);
    }

    /// Records `bytes` of the module memcpy'd into a session view.
    pub fn record_bytes_copied(&self, key: &ModuleKey, bytes: u64) {
        self.counters(key)
            .bytes_copied
            .fetch_add(bytes, Ordering::Relaxed);
    }

    /// Tags a view segment with the module it aliases, so later
    /// [`CacheAnalytics::record_shared_rows_for_segment`] calls (from the
    /// batched scheduler, which sees only segment identities) land on the
    /// right module. Re-tagging an id overwrites.
    pub fn tag_segment(&self, id: SegmentId, key: &ModuleKey) {
        let counters = self.counters(key);
        let mut segments = self.segments.lock();
        if segments.len() >= MAX_SEGMENT_TAGS && !segments.contains_key(&id) {
            segments.clear();
        }
        segments.insert(id, counters);
    }

    /// Attributes `rows` shared-row reads (row × layer units) to the
    /// module tagged for `id`. Returns whether the segment was known.
    pub fn record_shared_rows_for_segment(&self, id: SegmentId, rows: u64) -> bool {
        let counters = self.segments.lock().get(&id).cloned();
        match counters {
            Some(c) => {
                c.shared_rows.fetch_add(rows, Ordering::Relaxed);
                true
            }
            None => false,
        }
    }

    /// Point-in-time heat ranking: hottest module first
    /// ([`ModuleHeat::heat`] descending, then last access descending,
    /// then label — fully deterministic for equal counters).
    pub fn snapshot(&self) -> Vec<ModuleHeat> {
        let mut rows: Vec<ModuleHeat> = self
            .modules
            .lock()
            .iter()
            .map(|(label, c)| ModuleHeat {
                module: label.clone(),
                hits: c.hits.load(Ordering::Relaxed),
                misses: c.misses.load(Ordering::Relaxed),
                degrades: c.degrades.load(Ordering::Relaxed),
                evictions: c.evictions.load(Ordering::Relaxed),
                relocations: c.relocations.load(Ordering::Relaxed),
                bytes_shared: c.bytes_shared.load(Ordering::Relaxed),
                bytes_copied: c.bytes_copied.load(Ordering::Relaxed),
                shared_rows: c.shared_rows.load(Ordering::Relaxed),
                last_access_tick: c.last_access_tick.load(Ordering::Relaxed),
            })
            .collect();
        rows.sort_by(|a, b| {
            b.heat()
                .cmp(&a.heat())
                .then(b.last_access_tick.cmp(&a.last_access_tick))
                .then(a.module.cmp(&b.module))
        });
        rows
    }

    /// The labeled Prometheus series for every tracked module:
    /// `pc_module_*{module="…"}` counters plus the
    /// `pc_module_last_access_tick` gauge, with `# HELP`/`# TYPE`
    /// metadata per series name. Deterministic: modules sort by label
    /// within each series.
    pub fn prometheus_text(&self) -> String {
        let mut rows = self.snapshot();
        rows.sort_by(|a, b| a.module.cmp(&b.module));
        if rows.is_empty() {
            return String::new();
        }
        let mut out = String::new();
        type SeriesRow = (&'static str, &'static str, fn(&ModuleHeat) -> u64);
        let series: [SeriesRow; 8] = [
            ("pc_module_hits_total", "counter", |m| m.hits),
            ("pc_module_misses_total", "counter", |m| m.misses),
            ("pc_module_degrades_total", "counter", |m| m.degrades),
            ("pc_module_evictions_total", "counter", |m| m.evictions),
            ("pc_module_relocations_total", "counter", |m| m.relocations),
            ("pc_module_kv_bytes_shared_total", "counter", |m| {
                m.bytes_shared
            }),
            ("pc_module_kv_bytes_copied_total", "counter", |m| {
                m.bytes_copied
            }),
            ("pc_module_shared_rows_total", "counter", |m| m.shared_rows),
        ];
        for (name, kind, value) in series {
            let help = pc_telemetry::export::help_for(name);
            let _ = writeln!(out, "# HELP {name} {help}\n# TYPE {name} {kind}");
            for m in &rows {
                let _ = writeln!(
                    out,
                    "{name}{{module=\"{}\"}} {}",
                    escape_label(&m.module),
                    value(m)
                );
            }
        }
        let name = "pc_module_last_access_tick";
        let help = pc_telemetry::export::help_for(name);
        let _ = writeln!(out, "# HELP {name} {help}\n# TYPE {name} gauge");
        for m in &rows {
            let _ = writeln!(
                out,
                "{name}{{module=\"{}\"}} {}",
                escape_label(&m.module),
                m.last_access_tick
            );
        }
        out
    }
}

/// Prometheus label-value escaping: backslash, double quote, newline.
fn escape_label(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(name: &str) -> ModuleKey {
        ModuleKey::new("s", &[name.to_owned()])
    }

    #[test]
    fn label_joins_schema_and_path() {
        let k = ModuleKey::new("chat", &["<span>".into(), "3".into()]);
        assert_eq!(module_label(&k), "chat:<span>/3");
    }

    #[test]
    fn records_and_ranks_by_heat() {
        let a = CacheAnalytics::new();
        a.record_hit(&key("hot"), 1);
        a.record_hit(&key("hot"), 2);
        a.record_hit(&key("warm"), 3);
        a.record_miss(&key("cold"), 4);
        a.record_degrade(&key("cold"));
        let snap = a.snapshot();
        assert_eq!(snap[0].module, "s:hot");
        assert_eq!((snap[0].hits, snap[0].last_access_tick), (2, 2));
        assert_eq!(snap[1].module, "s:warm");
        assert_eq!(snap[2].module, "s:cold");
        assert_eq!((snap[2].misses, snap[2].degrades), (1, 1));
        assert!(snap[0].heat() > snap[2].heat());
    }

    #[test]
    fn segment_tags_route_shared_rows() {
        use pc_model::{KvCache, KvView};
        let a = CacheAnalytics::new();
        let mut cache = KvCache::with_shape(1, 2);
        cache.push_token_layer(0, &[0.0, 0.0], &[0.0, 0.0]);
        cache.push_position(0);
        let mut view = KvView::with_shape(1, 2);
        view.push_cache(Arc::new(cache)).unwrap();
        let id = view.segments()[0].id();
        assert!(!a.record_shared_rows_for_segment(id, 5), "untagged");
        a.tag_segment(id, &key("mod"));
        assert!(a.record_shared_rows_for_segment(id, 5));
        let snap = a.snapshot();
        assert_eq!(snap[0].shared_rows, 5);
    }

    #[test]
    fn relocations_count_and_raise_heat() {
        let a = CacheAnalytics::new();
        // Both modules have one hit; only "moved" was served at a shift.
        a.record_hit(&key("moved"), 1);
        a.record_relocation(&key("moved"));
        a.record_hit(&key("pinned"), 2);
        let snap = a.snapshot();
        assert_eq!(snap[0].module, "s:moved");
        assert_eq!(snap[0].relocations, 1);
        assert!(snap[0].heat() > snap[1].heat());
        let text = a.prometheus_text();
        assert!(
            text.contains("pc_module_relocations_total{module=\"s:moved\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("pc_module_relocations_total{module=\"s:pinned\"} 0"),
            "{text}"
        );
    }

    #[test]
    fn prometheus_text_is_labeled_and_complete() {
        let a = CacheAnalytics::new();
        a.record_hit(&key("a"), 1);
        a.record_bytes_shared(&key("a"), 128);
        a.record_bytes_copied(&key("b"), 64);
        let text = a.prometheus_text();
        assert!(text.contains("pc_module_hits_total{module=\"s:a\"} 1"), "{text}");
        assert!(
            text.contains("pc_module_kv_bytes_shared_total{module=\"s:a\"} 128"),
            "{text}"
        );
        assert!(
            text.contains("pc_module_kv_bytes_copied_total{module=\"s:b\"} 64"),
            "{text}"
        );
        assert!(text.contains("# HELP pc_module_hits_total "), "{text}");
        assert!(text.contains("# TYPE pc_module_last_access_tick gauge"), "{text}");
        // Every sample line is `name{labels} value` with a numeric value.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (_, value) = line.rsplit_once(' ').expect("name value");
            assert!(value.parse::<f64>().is_ok(), "{line}");
        }
    }

    #[test]
    fn empty_table_exports_nothing() {
        assert_eq!(CacheAnalytics::new().prometheus_text(), "");
    }

    #[test]
    fn label_escaping() {
        let a = CacheAnalytics::new();
        a.record_hit(&ModuleKey::new("s\"x", &["p\\q".into()]), 1);
        let text = a.prometheus_text();
        assert!(text.contains("{module=\"s\\\"x:p\\\\q\"}"), "{text}");
    }
}
