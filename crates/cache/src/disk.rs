//! The persistent disk tier: append-only segment files + checksummed
//! index.
//!
//! [`DiskTier`] is the third store tier below host and device memory.
//! Modules demoted out of host DRAM are appended to **segment files**
//! (record framing in [`crate::segment`]; normative byte spec in
//! `docs/PERSISTENCE.md`) and read back — decoded and dequantized — when
//! a lookup falls through the in-memory tiers.
//!
//! Durability model, in one paragraph: **the segment append is the
//! commit point; the `INDEX` file is an optimization.** The index is
//! written atomically (tmp + rename) with a trailing checksum and the
//! length of every segment at write time. On open, an index that is
//! missing, corrupt, or stale (any segment's on-disk length differs from
//! the recorded one, or the segment set changed) is discarded and the
//! tier **rebuilds by scanning** every segment in id order — later
//! records win, tombstones delete, and a torn tail (a record cut short
//! by a crash mid-append) is truncated away. Payload checksums are *not*
//! verified during the scan (recovery stays O(records)); they are
//! verified on every [`DiskTier::get`], where a mismatch drops the entry
//! and surfaces as a miss so the engine re-encodes (graceful
//! degradation) — a corrupt disk entry can degrade to recompute, never
//! to wrong bytes.

use crate::segment::{
    checksum_bytes, encode_key, encode_payload, decode_payload, parse_record, write_record,
    ColdEncoding, ParseOutcome, SEGMENT_MAGIC, SEGMENT_VERSION, TOMBSTONE,
};
use crate::store::ModuleKey;
use bytes::{Buf, BufMut, BytesMut};
use pc_model::KvCache;
use std::collections::{BTreeMap, HashMap};
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Disk-tier configuration. Build with [`DiskConfig::new`] plus the
/// chainable setters:
///
/// ```
/// use pc_cache::{ColdEncoding, DiskConfig};
///
/// let config = DiskConfig::new("/tmp/pc-modules")
///     .encoding(ColdEncoding::Int8)
///     .capacity_bytes(1 << 30);
/// assert_eq!(config.encoding, ColdEncoding::Int8);
/// ```
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct DiskConfig {
    /// Directory holding the segment files and `INDEX`.
    pub dir: PathBuf,
    /// Live-byte capacity (0 = unbounded). When exceeded, the oldest
    /// entries (smallest write sequence) are tombstoned until under.
    pub capacity_bytes: usize,
    /// Cold-payload encoding for newly written records. Existing records
    /// keep the encoding they were written with (it's in the record
    /// header), so changing this between runs is safe.
    pub encoding: ColdEncoding,
    /// Active-segment roll threshold: a new segment file is started once
    /// the active one reaches this size.
    pub max_segment_bytes: usize,
}

impl DiskConfig {
    /// A disk tier rooted at `dir`: unbounded, exact f32 payloads,
    /// 16 MiB segments.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        DiskConfig {
            dir: dir.into(),
            capacity_bytes: 0,
            encoding: ColdEncoding::F32,
            max_segment_bytes: 16 << 20,
        }
    }

    /// Sets the live-byte capacity (0 = unbounded).
    #[must_use]
    pub fn capacity_bytes(mut self, bytes: usize) -> Self {
        self.capacity_bytes = bytes;
        self
    }

    /// Sets the cold-payload encoding for new records.
    #[must_use]
    pub fn encoding(mut self, encoding: ColdEncoding) -> Self {
        self.encoding = encoding;
        self
    }

    /// Sets the active-segment roll threshold.
    #[must_use]
    pub fn max_segment_bytes(mut self, bytes: usize) -> Self {
        self.max_segment_bytes = bytes.max(SEGMENT_HEADER_LEN as usize + 1);
        self
    }
}

/// Segment file header length (magic + version).
const SEGMENT_HEADER_LEN: u64 = 8;
const INDEX_MAGIC: &[u8; 4] = b"PCIX";
const INDEX_VERSION: u32 = 1;

/// Outcome of a [`DiskTier::get`].
#[derive(Debug)]
pub enum DiskGet {
    /// The key has no live disk record.
    Missing,
    /// A record exists but failed its checksum or could not be decoded —
    /// it has been dropped; the caller should treat this as a miss (the
    /// engine's degrade path re-encodes).
    Corrupt,
    /// The decoded (and, for quantized encodings, dequantized) module
    /// plus the recompute cost recorded with it.
    Module(Box<KvCache>, f64),
}

#[derive(Debug, Clone, PartialEq)]
struct DiskEntry {
    segment: u32,
    record_offset: u64,
    record_len: u32,
    payload_len: u32,
    encoding: u8,
    checksum: u64,
    cost: f64,
    /// Monotone write sequence — recovery replays records in this order,
    /// and capacity eviction drops the smallest first.
    seq: u64,
}

#[derive(Debug, Default, Clone)]
struct SegmentState {
    /// Current file length in bytes (header included).
    len: u64,
    /// Bytes of live (non-superseded, non-tombstoned) records.
    live: u64,
}

/// One live disk-tier entry, as reported by [`DiskTier::entries`] — the
/// `/debug/cache` "disk" tier rows.
#[derive(Debug, Clone, PartialEq)]
pub struct DiskEntryInfo {
    /// The module's key.
    pub key: ModuleKey,
    /// Encoded payload size in bytes.
    pub payload_bytes: usize,
    /// Recompute cost recorded with the entry (eviction input).
    pub cost: f64,
    /// Payload encoding label (`"f32"`, `"fp16"`, `"int8"`).
    pub encoding: &'static str,
}

/// The persistent module tier. See the [module docs](self) for the
/// durability model and `docs/PERSISTENCE.md` for the byte-level format.
///
/// Not internally synchronized: [`crate::ModuleStore`] owns its tier
/// behind the store mutex.
#[derive(Debug)]
pub struct DiskTier {
    config: DiskConfig,
    index: HashMap<ModuleKey, DiskEntry>,
    segments: BTreeMap<u32, SegmentState>,
    active: u32,
    active_file: File,
    next_seq: u64,
    /// Whether the in-memory index has diverged from the `INDEX` file.
    dirty: bool,
}

fn segment_path(dir: &Path, id: u32) -> PathBuf {
    dir.join(format!("seg-{id:08}.pcseg"))
}

fn segment_header() -> [u8; SEGMENT_HEADER_LEN as usize] {
    let mut h = [0u8; SEGMENT_HEADER_LEN as usize];
    h[..4].copy_from_slice(SEGMENT_MAGIC);
    h[4..].copy_from_slice(&SEGMENT_VERSION.to_le_bytes());
    h
}

impl DiskTier {
    /// Opens (or creates) the tier at `config.dir`, recovering state from
    /// the `INDEX` file when it is fresh or by scanning segments when it
    /// is not (see the [module docs](self)).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors (unreadable directory, etc.).
    /// Corrupt or torn *contents* are never an error — they are recovered
    /// past.
    pub fn open(config: DiskConfig) -> io::Result<Self> {
        fs::create_dir_all(&config.dir)?;
        let mut seg_ids: Vec<u32> = fs::read_dir(&config.dir)?
            .filter_map(|e| e.ok())
            .filter_map(|e| {
                let name = e.file_name().into_string().ok()?;
                let id = name.strip_prefix("seg-")?.strip_suffix(".pcseg")?;
                id.parse::<u32>().ok()
            })
            .collect();
        seg_ids.sort_unstable();
        let mut tier = DiskTier {
            active: *seg_ids.last().unwrap_or(&0),
            config,
            index: HashMap::new(),
            segments: BTreeMap::new(),
            // Replaced below; a placeholder that needs no open file.
            active_file: File::open("/dev/null").or_else(|_| {
                // Non-unix fallback: the temp handle is never read.
                File::create(std::env::temp_dir().join("pc-disk-placeholder"))
            })?,
            next_seq: 0,
            dirty: false,
        };
        if seg_ids.is_empty() {
            tier.create_segment(0)?;
        } else if !tier.load_index(&seg_ids)? {
            tier.scan_rebuild(&seg_ids)?;
            tier.dirty = true;
        }
        tier.active_file = OpenOptions::new()
            .append(true)
            .open(segment_path(&tier.config.dir, tier.active))?;
        Ok(tier)
    }

    fn create_segment(&mut self, id: u32) -> io::Result<()> {
        let path = segment_path(&self.config.dir, id);
        let mut f = File::create(&path)?;
        f.write_all(&segment_header())?;
        self.segments.insert(
            id,
            SegmentState {
                len: SEGMENT_HEADER_LEN,
                live: 0,
            },
        );
        self.active = id;
        self.active_file = OpenOptions::new().append(true).open(&path)?;
        Ok(())
    }

    /// Attempts to adopt the `INDEX` file. Returns `Ok(false)` when it is
    /// missing, corrupt, or stale relative to the segment files.
    fn load_index(&mut self, seg_ids: &[u32]) -> io::Result<bool> {
        let bytes = match fs::read(self.config.dir.join("INDEX")) {
            Ok(b) => b,
            Err(_) => return Ok(false),
        };
        if bytes.len() < 8 + 8 || &bytes[..4] != INDEX_MAGIC {
            return Ok(false);
        }
        let (body, tail) = bytes.split_at(bytes.len() - 8);
        if u64::from_le_bytes(tail.try_into().expect("8 bytes")) != checksum_bytes(&[body]) {
            return Ok(false);
        }
        let mut buf = &body[4..];
        if buf.get_u32_le() != INDEX_VERSION {
            return Ok(false);
        }
        let parse = (|| -> Option<(HashMap<ModuleKey, DiskEntry>, BTreeMap<u32, u64>)> {
            let mut index = HashMap::new();
            let entry_count = checked_u32(&mut buf)? as usize;
            for _ in 0..entry_count {
                if buf.remaining() < 4 {
                    return None;
                }
                let key_len = buf.get_u32_le() as usize;
                if buf.remaining() < key_len {
                    return None;
                }
                let key = crate::segment::decode_key(&buf[..key_len])?;
                buf.advance(key_len);
                if buf.remaining() < 4 + 8 + 4 + 4 + 4 + 8 + 8 + 8 {
                    return None;
                }
                let entry = DiskEntry {
                    segment: buf.get_u32_le(),
                    record_offset: buf.get_u64_le(),
                    record_len: buf.get_u32_le(),
                    payload_len: buf.get_u32_le(),
                    encoding: {
                        let e = buf.get_u8();
                        buf.advance(3);
                        e
                    },
                    checksum: buf.get_u64_le(),
                    cost: buf.get_f64_le(),
                    seq: buf.get_u64_le(),
                };
                index.insert(key, entry);
            }
            let seg_count = checked_u32(&mut buf)? as usize;
            let mut lens = BTreeMap::new();
            for _ in 0..seg_count {
                if buf.remaining() < 12 {
                    return None;
                }
                lens.insert(buf.get_u32_le(), buf.get_u64_le());
            }
            buf.is_empty().then_some((index, lens))
        })();
        let Some((index, lens)) = parse else {
            return Ok(false);
        };
        // Freshness: the index must describe exactly the segments on disk,
        // at exactly their current lengths. Anything else means writes
        // happened after the last flush — rescan.
        if lens.keys().copied().collect::<Vec<u32>>() != seg_ids {
            return Ok(false);
        }
        for (&id, &len) in &lens {
            let actual = fs::metadata(segment_path(&self.config.dir, id))
                .map(|m| m.len())
                .unwrap_or(u64::MAX);
            if actual != len {
                return Ok(false);
            }
        }
        let mut segments: BTreeMap<u32, SegmentState> = lens
            .into_iter()
            .map(|(id, len)| (id, SegmentState { len, live: 0 }))
            .collect();
        for e in index.values() {
            if let Some(seg) = segments.get_mut(&e.segment) {
                seg.live += u64::from(e.record_len);
            }
        }
        self.next_seq = index.values().map(|e| e.seq + 1).max().unwrap_or(0);
        self.index = index;
        self.segments = segments;
        self.active = *seg_ids.last().expect("non-empty");
        Ok(true)
    }

    /// Rebuilds the index by scanning every segment in id order,
    /// truncating torn tails as it goes.
    fn scan_rebuild(&mut self, seg_ids: &[u32]) -> io::Result<()> {
        self.index.clear();
        self.segments.clear();
        self.next_seq = 0;
        for &id in seg_ids {
            let path = segment_path(&self.config.dir, id);
            let bytes = fs::read(&path)?;
            let header_ok = bytes.len() >= SEGMENT_HEADER_LEN as usize
                && &bytes[..4] == SEGMENT_MAGIC
                && bytes[4..8] == SEGMENT_VERSION.to_le_bytes();
            if !header_ok {
                // A damaged header means nothing in the file can be
                // trusted; reset it to an empty segment.
                fs::write(&path, segment_header())?;
                self.segments.insert(
                    id,
                    SegmentState {
                        len: SEGMENT_HEADER_LEN,
                        live: 0,
                    },
                );
                continue;
            }
            let mut at = SEGMENT_HEADER_LEN as usize;
            loop {
                match parse_record(&bytes, at) {
                    ParseOutcome::End => break,
                    ParseOutcome::Torn => {
                        // Crash mid-append: drop the torn tail.
                        OpenOptions::new()
                            .write(true)
                            .open(&path)?
                            .set_len(at as u64)?;
                        break;
                    }
                    ParseOutcome::Record(rec) => {
                        let record_len = (rec.next_offset - at) as u32;
                        if let Some(old) = self.index.remove(&rec.key) {
                            if let Some(seg) = self.segments.get_mut(&old.segment) {
                                seg.live -= u64::from(old.record_len);
                            }
                        }
                        if rec.encoding != TOMBSTONE {
                            self.index.insert(
                                rec.key,
                                DiskEntry {
                                    segment: id,
                                    record_offset: at as u64,
                                    record_len,
                                    payload_len: rec.payload_len as u32,
                                    encoding: rec.encoding,
                                    checksum: rec.checksum,
                                    cost: rec.cost,
                                    seq: self.next_seq,
                                },
                            );
                            self.next_seq += 1;
                        }
                        at = rec.next_offset;
                    }
                }
            }
            let mut state = SegmentState {
                len: at as u64,
                live: 0,
            };
            state.live = self
                .index
                .values()
                .filter(|e| e.segment == id)
                .map(|e| u64::from(e.record_len))
                .sum();
            self.segments.insert(id, state);
        }
        self.active = *seg_ids.last().expect("non-empty");
        Ok(())
    }

    /// Appends (or supersedes) `key`'s module, encoded per
    /// [`DiskConfig::encoding`]. Enforces the capacity bound by
    /// tombstoning the oldest entries.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; on error the in-memory index is
    /// unchanged (the partially appended bytes become a torn tail for the
    /// next recovery scan).
    pub fn put(&mut self, key: &ModuleKey, cache: &KvCache, cost: f64) -> io::Result<()> {
        let key_bytes = encode_key(key);
        let payload = encode_payload(cache, self.config.encoding);
        let checksum = checksum_bytes(&[&key_bytes, &payload]);
        let mut record = Vec::new();
        write_record(
            &mut record,
            &key_bytes,
            &payload,
            self.config.encoding.byte(),
            cost,
        );
        let (segment, record_offset) = self.append(&record)?;
        let entry = DiskEntry {
            segment,
            record_offset,
            record_len: record.len() as u32,
            payload_len: payload.len() as u32,
            encoding: self.config.encoding.byte(),
            checksum,
            cost,
            seq: self.next_seq,
        };
        self.next_seq += 1;
        if let Some(seg) = self.segments.get_mut(&segment) {
            seg.live += u64::from(entry.record_len);
        }
        if let Some(old) = self.index.insert(key.clone(), entry) {
            self.forget(&old)?;
        }
        self.dirty = true;
        self.enforce_capacity()?;
        Ok(())
    }

    /// Appends raw record bytes to the active segment, rolling it first
    /// if it is full. Returns `(segment id, record offset)`.
    fn append(&mut self, record: &[u8]) -> io::Result<(u32, u64)> {
        let len = self.segments[&self.active].len;
        if len > SEGMENT_HEADER_LEN && len + record.len() as u64 > self.config.max_segment_bytes as u64
        {
            let old = self.active;
            self.create_segment(old + 1)?;
            self.drop_if_dead(old)?;
        }
        let seg = self.active;
        let offset = self.segments[&seg].len;
        self.active_file.write_all(record)?;
        self.segments.get_mut(&seg).expect("active exists").len += record.len() as u64;
        Ok((seg, offset))
    }

    /// Un-counts a superseded or deleted record and reclaims its segment
    /// if that leaves no live bytes.
    fn forget(&mut self, old: &DiskEntry) -> io::Result<()> {
        if let Some(seg) = self.segments.get_mut(&old.segment) {
            seg.live -= u64::from(old.record_len);
        }
        self.drop_if_dead(old.segment)
    }

    /// Deletes a non-active segment file once nothing live remains in it
    /// — the tier's compaction. (Append-only files are never rewritten;
    /// space comes back a whole segment at a time.)
    fn drop_if_dead(&mut self, id: u32) -> io::Result<()> {
        if id == self.active {
            return Ok(());
        }
        if self.segments.get(&id).is_some_and(|s| s.live == 0) {
            fs::remove_file(segment_path(&self.config.dir, id))?;
            self.segments.remove(&id);
            self.dirty = true;
        }
        Ok(())
    }

    fn enforce_capacity(&mut self) -> io::Result<()> {
        if self.config.capacity_bytes == 0 {
            return Ok(());
        }
        while self.live_bytes() > self.config.capacity_bytes {
            let Some(oldest) = self
                .index
                .iter()
                .min_by_key(|(_, e)| e.seq)
                .map(|(k, _)| k.clone())
            else {
                break;
            };
            self.remove(&oldest)?;
        }
        Ok(())
    }

    /// Reads, verifies, and decodes `key`'s module. A checksum mismatch,
    /// undecodable payload, or read error drops the entry and reports
    /// [`DiskGet::Corrupt`] — the degrade path re-encodes it.
    pub fn get(&mut self, key: &ModuleKey) -> DiskGet {
        let Some(entry) = self.index.get(key).cloned() else {
            return DiskGet::Missing;
        };
        let payload = (|| -> io::Result<Vec<u8>> {
            let mut f = File::open(segment_path(&self.config.dir, entry.segment))?;
            let payload_at =
                entry.record_offset + u64::from(entry.record_len) - u64::from(entry.payload_len);
            f.seek(SeekFrom::Start(payload_at))?;
            let mut payload = vec![0u8; entry.payload_len as usize];
            f.read_exact(&mut payload)?;
            Ok(payload)
        })();
        let decoded = payload.ok().and_then(|payload| {
            let key_bytes = encode_key(key);
            if checksum_bytes(&[&key_bytes, &payload]) != entry.checksum {
                return None;
            }
            let encoding = ColdEncoding::from_byte(entry.encoding)?;
            decode_payload(&payload, encoding).ok()
        });
        match decoded {
            Some(cache) => DiskGet::Module(Box::new(cache), entry.cost),
            None => {
                // Poisoned: drop it so the re-encoded replacement (the
                // engine self-heals via insert → later demote) wins.
                self.index.remove(key);
                let _ = self.forget(&entry);
                self.dirty = true;
                DiskGet::Corrupt
            }
        }
    }

    /// Deletes `key` (appends a tombstone). Returns whether it was live.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from the tombstone append.
    pub fn remove(&mut self, key: &ModuleKey) -> io::Result<bool> {
        let Some(old) = self.index.remove(key) else {
            return Ok(false);
        };
        let mut record = Vec::new();
        write_record(&mut record, &encode_key(key), &[], TOMBSTONE, 0.0);
        self.append(&record)?;
        self.forget(&old)?;
        self.dirty = true;
        Ok(true)
    }

    /// Whether `key` has a live disk record.
    pub fn contains(&self, key: &ModuleKey) -> bool {
        self.index.contains_key(key)
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the tier holds no live entries.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Bytes of live records across all segments (the capacity metric;
    /// dead superseded bytes exist until their segment is reclaimed).
    pub fn live_bytes(&self) -> usize {
        self.segments.values().map(|s| s.live as usize).sum()
    }

    /// Total bytes of all segment files, dead records included.
    pub fn file_bytes(&self) -> usize {
        self.segments.values().map(|s| s.len as usize).sum()
    }

    /// Every live key.
    pub fn keys(&self) -> Vec<ModuleKey> {
        self.index.keys().cloned().collect()
    }

    /// Live entries with payload size, cost, and encoding — the
    /// `/debug/cache` disk rows.
    pub fn entries(&self) -> Vec<DiskEntryInfo> {
        self.index
            .iter()
            .map(|(key, e)| DiskEntryInfo {
                key: key.clone(),
                payload_bytes: e.payload_len as usize,
                cost: e.cost,
                encoding: ColdEncoding::from_byte(e.encoding)
                    .map_or("unknown", ColdEncoding::label),
            })
            .collect()
    }

    /// Writes the `INDEX` file atomically (tmp + rename) if the in-memory
    /// index has changed since the last flush.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; the tier stays dirty and usable.
    pub fn flush(&mut self) -> io::Result<()> {
        if !self.dirty {
            return Ok(());
        }
        self.active_file.flush()?;
        let mut buf = BytesMut::new();
        buf.put_slice(INDEX_MAGIC);
        buf.put_u32_le(INDEX_VERSION);
        buf.put_u32_le(self.index.len() as u32);
        for (key, e) in &self.index {
            let key_bytes = encode_key(key);
            buf.put_u32_le(key_bytes.len() as u32);
            buf.put_slice(&key_bytes);
            buf.put_u32_le(e.segment);
            buf.put_u64_le(e.record_offset);
            buf.put_u32_le(e.record_len);
            buf.put_u32_le(e.payload_len);
            buf.put_u8(e.encoding);
            buf.put_slice(&[0u8; 3]);
            buf.put_u64_le(e.checksum);
            buf.put_f64_le(e.cost);
            buf.put_u64_le(e.seq);
        }
        buf.put_u32_le(self.segments.len() as u32);
        for (&id, state) in &self.segments {
            buf.put_u32_le(id);
            buf.put_u64_le(state.len);
        }
        let checksum = checksum_bytes(&[&buf]);
        buf.put_u64_le(checksum);
        let tmp = self.config.dir.join("INDEX.tmp");
        fs::write(&tmp, &buf)?;
        fs::rename(&tmp, self.config.dir.join("INDEX"))?;
        self.dirty = false;
        Ok(())
    }

    /// Flips one bit of `key`'s stored payload **in the segment file,
    /// without touching the record checksum** — the disk-tier corruption
    /// primitive for fault injection (`pc-faults`). Returns `false` for
    /// unknown keys.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn corrupt_record(&mut self, key: &ModuleKey) -> io::Result<bool> {
        let Some(entry) = self.index.get(key) else {
            return Ok(false);
        };
        // Make sure buffered appends are visible to the read-modify-write.
        self.active_file.flush()?;
        let path = segment_path(&self.config.dir, entry.segment);
        let mut f = OpenOptions::new().read(true).write(true).open(path)?;
        let payload_at =
            entry.record_offset + u64::from(entry.record_len) - u64::from(entry.payload_len);
        // Flip a bit late in the payload: quantized payloads start with
        // exact positions, and damage must land in element data too.
        let at = payload_at + u64::from(entry.payload_len) - 1;
        f.seek(SeekFrom::Start(at))?;
        let mut b = [0u8; 1];
        f.read_exact(&mut b)?;
        b[0] ^= 1;
        f.seek(SeekFrom::Start(at))?;
        f.write_all(&b)?;
        Ok(true)
    }
}

fn checked_u32(buf: &mut &[u8]) -> Option<u32> {
    (buf.remaining() >= 4).then(|| buf.get_u32_le())
}

impl Drop for DiskTier {
    /// Best-effort index flush — recovery copes if it doesn't land.
    fn drop(&mut self) {
        let _ = self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn module(tokens: usize, seed: f32) -> KvCache {
        let mut c = KvCache::with_shape(2, 4);
        for t in 0..tokens {
            for l in 0..2 {
                let base = seed + t as f32 * 0.37 + l as f32 * 1.1;
                let k: Vec<f32> = (0..4).map(|i| (base + i as f32).sin() * 3.0).collect();
                let v: Vec<f32> = (0..4).map(|i| (base - i as f32).cos() * 0.5).collect();
                c.push_token_layer(l, &k, &v);
            }
            c.push_position(t);
        }
        c
    }

    fn key(name: &str) -> ModuleKey {
        ModuleKey::new("s", &[name.to_owned()])
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "pc-disk-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn get_module(tier: &mut DiskTier, k: &ModuleKey) -> KvCache {
        match tier.get(k) {
            DiskGet::Module(m, _) => *m,
            other => panic!("expected module, got {other:?}"),
        }
    }

    #[test]
    fn put_get_round_trip_is_exact_for_f32() {
        let dir = temp_dir("roundtrip");
        let mut tier = DiskTier::open(DiskConfig::new(&dir)).unwrap();
        let m = module(5, 0.3);
        tier.put(&key("a"), &m, 2.0).unwrap();
        assert_eq!(get_module(&mut tier, &key("a")), m);
        assert!(matches!(tier.get(&key("zzz")), DiskGet::Missing));
        assert_eq!(tier.len(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopen_adopts_fresh_index() {
        let dir = temp_dir("reopen");
        let m = module(4, 1.0);
        {
            let mut tier = DiskTier::open(DiskConfig::new(&dir)).unwrap();
            tier.put(&key("a"), &m, 1.0).unwrap();
            tier.put(&key("b"), &module(2, 2.0), 1.0).unwrap();
            tier.flush().unwrap();
        }
        let mut tier = DiskTier::open(DiskConfig::new(&dir)).unwrap();
        assert_eq!(tier.len(), 2);
        assert_eq!(get_module(&mut tier, &key("a")), m);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopen_without_index_scans_segments() {
        let dir = temp_dir("noindex");
        let m = module(4, 1.0);
        {
            let mut tier = DiskTier::open(DiskConfig::new(&dir)).unwrap();
            tier.put(&key("a"), &m, 1.0).unwrap();
            tier.put(&key("a"), &module(6, 5.0), 1.5).unwrap(); // supersede
            tier.put(&key("dead"), &module(1, 0.0), 1.0).unwrap();
            tier.remove(&key("dead")).unwrap();
            tier.flush().unwrap();
        }
        fs::remove_file(dir.join("INDEX")).unwrap();
        let mut tier = DiskTier::open(DiskConfig::new(&dir)).unwrap();
        assert_eq!(tier.len(), 1, "later record wins, tombstone deletes");
        assert_eq!(get_module(&mut tier, &key("a")), module(6, 5.0));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_index_triggers_rescan() {
        let dir = temp_dir("stale");
        {
            let mut tier = DiskTier::open(DiskConfig::new(&dir)).unwrap();
            tier.put(&key("a"), &module(2, 1.0), 1.0).unwrap();
            tier.flush().unwrap();
            // Write after the flush: the index is now stale.
            tier.put(&key("b"), &module(3, 2.0), 1.0).unwrap();
            std::mem::forget(tier); // simulate a crash: Drop's flush never runs
        }
        let mut tier = DiskTier::open(DiskConfig::new(&dir)).unwrap();
        assert_eq!(tier.len(), 2, "rescan found the post-flush record");
        assert_eq!(get_module(&mut tier, &key("b")), module(3, 2.0));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_and_prefix_survives() {
        let dir = temp_dir("torn");
        let m = module(4, 1.0);
        {
            let mut tier = DiskTier::open(DiskConfig::new(&dir)).unwrap();
            tier.put(&key("a"), &m, 1.0).unwrap();
            tier.put(&key("b"), &module(3, 2.0), 1.0).unwrap();
            tier.flush().unwrap();
        }
        // Simulate a crash mid-append: cut the last record short.
        let seg = segment_path(&dir, 0);
        let len = fs::metadata(&seg).unwrap().len();
        OpenOptions::new()
            .write(true)
            .open(&seg)
            .unwrap()
            .set_len(len - 7)
            .unwrap();
        let mut tier = DiskTier::open(DiskConfig::new(&dir)).unwrap();
        assert_eq!(tier.len(), 1, "torn record dropped, prefix kept");
        assert_eq!(get_module(&mut tier, &key("a")), m);
        assert!(matches!(tier.get(&key("b")), DiskGet::Missing));
        assert_eq!(
            fs::metadata(&seg).unwrap().len() as usize,
            tier.file_bytes(),
            "file physically truncated at the tear"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_payload_is_detected_and_dropped_on_get() {
        let dir = temp_dir("corrupt");
        let mut tier = DiskTier::open(DiskConfig::new(&dir)).unwrap();
        tier.put(&key("a"), &module(4, 1.0), 1.0).unwrap();
        assert!(tier.corrupt_record(&key("a")).unwrap());
        assert!(matches!(tier.get(&key("a")), DiskGet::Corrupt));
        assert!(
            matches!(tier.get(&key("a")), DiskGet::Missing),
            "poisoned entry dropped"
        );
        assert!(!tier.corrupt_record(&key("a")).unwrap());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn quantized_encodings_round_trip_with_exact_positions() {
        for encoding in [ColdEncoding::Fp16, ColdEncoding::Int8] {
            let dir = temp_dir(encoding.label());
            let mut tier =
                DiskTier::open(DiskConfig::new(&dir).encoding(encoding)).unwrap();
            let m = module(6, 0.9);
            tier.put(&key("q"), &m, 1.0).unwrap();
            let back = get_module(&mut tier, &key("q"));
            assert_eq!(back.positions(), m.positions());
            assert_eq!(back.len(), m.len());
            for (a, b) in m.keys(0).iter().zip(back.keys(0)) {
                assert!((a - b).abs() < 0.05, "{a} vs {b}");
            }
            fs::remove_dir_all(&dir).unwrap();
        }
    }

    #[test]
    fn segments_roll_and_dead_ones_are_reclaimed() {
        let dir = temp_dir("roll");
        let record = {
            // Measure one record's size to pick a roll threshold that
            // forces a new segment per record.
            let mut buf = Vec::new();
            write_record(
                &mut buf,
                &encode_key(&key("x0")),
                &encode_payload(&module(4, 0.0), ColdEncoding::F32),
                0,
                1.0,
            );
            buf.len()
        };
        let mut tier = DiskTier::open(
            DiskConfig::new(&dir).max_segment_bytes(record + SEGMENT_HEADER_LEN as usize),
        )
        .unwrap();
        for i in 0..4 {
            tier.put(&key(&format!("x{i}")), &module(4, i as f32), 1.0).unwrap();
        }
        assert!(tier.segments.len() >= 3, "rolled into multiple segments");
        // Supersede everything in the first segments; those files die.
        let before = tier.segments.len();
        for i in 0..4 {
            tier.put(&key(&format!("x{i}")), &module(4, 10.0 + i as f32), 1.0).unwrap();
        }
        assert!(tier.segments.len() <= before, "dead segments reclaimed");
        assert_eq!(tier.len(), 4);
        for i in 0..4 {
            assert_eq!(
                get_module(&mut tier, &key(&format!("x{i}"))),
                module(4, 10.0 + i as f32)
            );
        }
        // Every remaining segment file exists on disk.
        for &id in tier.segments.keys() {
            assert!(segment_path(&dir, id).exists());
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn capacity_evicts_oldest_entries() {
        let dir = temp_dir("cap");
        let one_record = {
            let mut buf = Vec::new();
            write_record(
                &mut buf,
                &encode_key(&key("a")),
                &encode_payload(&module(4, 0.0), ColdEncoding::F32),
                0,
                1.0,
            );
            buf.len()
        };
        let mut tier = DiskTier::open(
            DiskConfig::new(&dir).capacity_bytes(2 * one_record + one_record / 2),
        )
        .unwrap();
        tier.put(&key("a"), &module(4, 0.0), 1.0).unwrap();
        tier.put(&key("b"), &module(4, 1.0), 1.0).unwrap();
        tier.put(&key("c"), &module(4, 2.0), 1.0).unwrap();
        assert_eq!(tier.len(), 2);
        assert!(!tier.contains(&key("a")), "oldest evicted first");
        assert!(tier.contains(&key("b")) && tier.contains(&key("c")));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_index_falls_back_to_scan() {
        let dir = temp_dir("badindex");
        {
            let mut tier = DiskTier::open(DiskConfig::new(&dir)).unwrap();
            tier.put(&key("a"), &module(3, 1.0), 1.0).unwrap();
            tier.flush().unwrap();
        }
        // Flip a byte inside the INDEX payload: its checksum now fails.
        let idx = dir.join("INDEX");
        let mut bytes = fs::read(&idx).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&idx, &bytes).unwrap();
        let mut tier = DiskTier::open(DiskConfig::new(&dir)).unwrap();
        assert_eq!(tier.len(), 1, "scan recovered the entry");
        assert_eq!(get_module(&mut tier, &key("a")), module(3, 1.0));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn entries_report_encoding_and_size() {
        let dir = temp_dir("entries");
        let mut tier =
            DiskTier::open(DiskConfig::new(&dir).encoding(ColdEncoding::Int8)).unwrap();
        tier.put(&key("a"), &module(4, 1.0), 3.0).unwrap();
        let rows = tier.entries();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].key, key("a"));
        assert_eq!(rows[0].encoding, "int8");
        assert_eq!(rows[0].cost, 3.0);
        assert!(rows[0].payload_bytes > 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_dir_opens_clean() {
        let dir = temp_dir("empty");
        let tier = DiskTier::open(DiskConfig::new(&dir)).unwrap();
        assert!(tier.is_empty());
        assert_eq!(tier.live_bytes(), 0);
        fs::remove_dir_all(&dir).unwrap();
    }
}
