//! Eviction policies for the bounded device tier.
//!
//! The paper leaves "GPU cache replacement strategies optimized to achieve
//! the latency lower bound" to future work (§6); this module implements the
//! classic candidates so the ablation bench (`eviction_ablation`) can
//! compare them under Zipfian module popularity.

/// Per-module access statistics the policies score on.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ModuleStats {
    /// Logical timestamp of the most recent access.
    pub last_access: u64,
    /// Total number of accesses.
    pub access_count: u64,
    /// Size of the module's states in bytes.
    pub size_bytes: usize,
    /// Cost to re-encode the module if evicted (e.g. estimated
    /// milliseconds or FLOPs — any consistent unit).
    pub recompute_cost: f64,
}

/// Which module to evict when the device tier is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EvictionPolicy {
    /// Evict the least recently used module.
    #[default]
    Lru,
    /// Evict the least frequently used module (ties: least recent).
    Lfu,
    /// Greedy-Dual-Size-Frequency: evict the lowest
    /// `freq × cost / size` (ties: least recent). Balances popularity
    /// against footprint and recompute cost.
    Gdsf,
    /// Evict the largest module first (frees space fastest).
    SizeFirst,
}

impl EvictionPolicy {
    /// All policies, for ablation sweeps.
    pub const ALL: [EvictionPolicy; 4] = [
        EvictionPolicy::Lru,
        EvictionPolicy::Lfu,
        EvictionPolicy::Gdsf,
        EvictionPolicy::SizeFirst,
    ];

    /// Short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            EvictionPolicy::Lru => "lru",
            EvictionPolicy::Lfu => "lfu",
            EvictionPolicy::Gdsf => "gdsf",
            EvictionPolicy::SizeFirst => "size-first",
        }
    }

    /// Returns the index of the entry to evict from `candidates`
    /// (`None` when empty). Lower retention score evicts first.
    pub fn victim(self, candidates: &[ModuleStats]) -> Option<usize> {
        if candidates.is_empty() {
            return None;
        }
        let score = |s: &ModuleStats| -> (f64, u64) {
            match self {
                EvictionPolicy::Lru => (s.last_access as f64, s.last_access),
                EvictionPolicy::Lfu => (s.access_count as f64, s.last_access),
                EvictionPolicy::Gdsf => {
                    let size = s.size_bytes.max(1) as f64;
                    (s.access_count as f64 * s.recompute_cost.max(1e-9) / size, s.last_access)
                }
                // SizeFirst retains *small* modules: score = -size.
                EvictionPolicy::SizeFirst => (-(s.size_bytes as f64), s.last_access),
            }
        };
        candidates
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                let (sa, ta) = score(a);
                let (sb, tb) = score(b);
                sa.partial_cmp(&sb)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(ta.cmp(&tb))
            })
            .map(|(i, _)| i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(last: u64, count: u64, size: usize, cost: f64) -> ModuleStats {
        ModuleStats {
            last_access: last,
            access_count: count,
            size_bytes: size,
            recompute_cost: cost,
        }
    }

    #[test]
    fn lru_evicts_oldest() {
        let c = [stats(5, 1, 10, 1.0), stats(2, 9, 10, 1.0), stats(8, 1, 10, 1.0)];
        assert_eq!(EvictionPolicy::Lru.victim(&c), Some(1));
    }

    #[test]
    fn lfu_evicts_least_frequent() {
        let c = [stats(1, 7, 10, 1.0), stats(9, 2, 10, 1.0), stats(5, 5, 10, 1.0)];
        assert_eq!(EvictionPolicy::Lfu.victim(&c), Some(1));
    }

    #[test]
    fn lfu_ties_break_to_least_recent() {
        let c = [stats(9, 3, 10, 1.0), stats(2, 3, 10, 1.0)];
        assert_eq!(EvictionPolicy::Lfu.victim(&c), Some(1));
    }

    #[test]
    fn gdsf_prefers_keeping_cheap_to_store_expensive_to_recompute() {
        // Same frequency: the big, cheap-to-recompute module goes first.
        let c = [
            stats(1, 5, 1_000_000, 1.0), // big, cheap
            stats(1, 5, 1_000, 1.0),     // small
            stats(1, 5, 1_000_000, 500.0), // big but very costly to redo
        ];
        assert_eq!(EvictionPolicy::Gdsf.victim(&c), Some(0));
    }

    #[test]
    fn size_first_evicts_largest() {
        let c = [stats(1, 1, 10, 1.0), stats(1, 1, 999, 1.0), stats(1, 1, 50, 1.0)];
        assert_eq!(EvictionPolicy::SizeFirst.victim(&c), Some(1));
    }

    #[test]
    fn empty_candidates_yield_none() {
        for p in EvictionPolicy::ALL {
            assert_eq!(p.victim(&[]), None);
        }
    }

    #[test]
    fn single_candidate_is_always_victim() {
        let c = [stats(1, 1, 1, 1.0)];
        for p in EvictionPolicy::ALL {
            assert_eq!(p.victim(&c), Some(0));
        }
    }
}
