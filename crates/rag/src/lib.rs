//! Retrieval-augmented generation over a Prompt Cache module database.
//!
//! The paper's conclusion singles this out: "Prompt Cache can directly
//! accelerate in-context retrieval augmented generation (RAG) methods,
//! where the information retrieval system basically serves as a database
//! of prompt modules" (§6). This crate builds that system:
//!
//! * [`chunker`] splits documents into fixed-size overlapping chunks —
//!   each chunk becomes one prompt module;
//! * [`Bm25Index`] is a from-scratch BM25 retriever over the chunks;
//! * [`RagPipeline`] wires them to a [`prompt_cache::PromptCache`]: at
//!   build time every chunk is encoded once into the cache; at query time
//!   the retriever picks top-k chunks and the engine serves a prompt that
//!   *imports* them, so document context costs a memcpy instead of a
//!   prefill — the latency-sensitive RAG serving the paper motivates.
//!
//! # Example
//!
//! ```
//! use pc_model::{Model, ModelConfig};
//! use pc_rag::{RagConfig, RagPipeline};
//! use pc_tokenizer::WordTokenizer;
//! use prompt_cache::{EngineConfig, PromptCache};
//!
//! let docs = ["the eiffel tower stands in paris france",
//!             "mount fuji rises near tokyo japan"];
//! let tokenizer = WordTokenizer::train(&["the eiffel tower stands in paris \
//!     france mount fuji rises near tokyo japan where is it located"]);
//! let engine = PromptCache::new(
//!     Model::new(ModelConfig::llama_tiny(64), 0), tokenizer,
//!     EngineConfig::default());
//! let rag = RagPipeline::build(engine, &docs, RagConfig::default()).unwrap();
//! let result = rag.query("where is the eiffel tower located", 1, 4).unwrap();
//! assert_eq!(result.retrieved, vec![0]); // the paris chunk
//! ```

#![warn(missing_docs)]

pub mod chunker;
mod index;
mod pipeline;

pub use index::Bm25Index;
pub use pipeline::{RagConfig, RagPipeline, RagResult};
