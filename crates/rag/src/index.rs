//! A from-scratch BM25 retrieval index.
//!
//! Okapi BM25 with the conventional constants (`k1 = 1.2`, `b = 0.75`) and
//! the non-negative idf variant `ln(1 + (N − df + 0.5)/(df + 0.5))`.

use std::collections::HashMap;

const K1: f64 = 1.2;
const B: f64 = 0.75;

/// An immutable BM25 index over a chunk collection.
#[derive(Debug, Clone)]
pub struct Bm25Index {
    /// Term → (doc id, term frequency) postings.
    postings: HashMap<String, Vec<(usize, usize)>>,
    doc_lens: Vec<usize>,
    avg_len: f64,
}

fn terms(text: &str) -> impl Iterator<Item = String> + '_ {
    text.split_whitespace().map(|w| {
        w.chars()
            .filter(|c| c.is_alphanumeric())
            .collect::<String>()
            .to_lowercase()
    })
}

impl Bm25Index {
    /// Builds an index over `docs` (ids are the slice indices).
    pub fn build<S: AsRef<str>>(docs: &[S]) -> Self {
        let mut postings: HashMap<String, Vec<(usize, usize)>> = HashMap::new();
        let mut doc_lens = Vec::with_capacity(docs.len());
        for (id, doc) in docs.iter().enumerate() {
            let mut tf: HashMap<String, usize> = HashMap::new();
            let mut len = 0usize;
            for term in terms(doc.as_ref()).filter(|t| !t.is_empty()) {
                *tf.entry(term).or_insert(0) += 1;
                len += 1;
            }
            doc_lens.push(len);
            for (term, count) in tf {
                postings.entry(term).or_default().push((id, count));
            }
        }
        let avg_len = if doc_lens.is_empty() {
            0.0
        } else {
            doc_lens.iter().sum::<usize>() as f64 / doc_lens.len() as f64
        };
        Bm25Index {
            postings,
            doc_lens,
            avg_len,
        }
    }

    /// Number of indexed documents.
    pub fn len(&self) -> usize {
        self.doc_lens.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.doc_lens.is_empty()
    }

    /// BM25 score of document `id` for `query`.
    pub fn score(&self, query: &str, id: usize) -> f64 {
        let n = self.len() as f64;
        let mut total = 0.0;
        for term in terms(query).filter(|t| !t.is_empty()) {
            let Some(posting) = self.postings.get(&term) else {
                continue;
            };
            let Some(&(_, tf)) = posting.iter().find(|(d, _)| *d == id) else {
                continue;
            };
            let df = posting.len() as f64;
            let idf = ((n - df + 0.5) / (df + 0.5) + 1.0).ln();
            let tf = tf as f64;
            let len_norm = 1.0 - B + B * self.doc_lens[id] as f64 / self.avg_len.max(1e-9);
            total += idf * tf * (K1 + 1.0) / (tf + K1 * len_norm);
        }
        total
    }

    /// The `k` best-scoring documents for `query`, best first; documents
    /// with zero score are excluded. Ties break toward lower ids.
    pub fn retrieve(&self, query: &str, k: usize) -> Vec<(usize, f64)> {
        let mut scores: HashMap<usize, f64> = HashMap::new();
        let n = self.len() as f64;
        for term in terms(query).filter(|t| !t.is_empty()) {
            let Some(posting) = self.postings.get(&term) else {
                continue;
            };
            let df = posting.len() as f64;
            let idf = ((n - df + 0.5) / (df + 0.5) + 1.0).ln();
            for &(id, tf) in posting {
                let tf = tf as f64;
                let len_norm =
                    1.0 - B + B * self.doc_lens[id] as f64 / self.avg_len.max(1e-9);
                *scores.entry(id).or_insert(0.0) +=
                    idf * tf * (K1 + 1.0) / (tf + K1 * len_norm);
            }
        }
        let mut ranked: Vec<(usize, f64)> = scores.into_iter().filter(|&(_, s)| s > 0.0).collect();
        ranked.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        ranked.truncate(k);
        ranked
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Vec<&'static str> {
        vec![
            "the eiffel tower stands in paris france",
            "mount fuji rises near tokyo japan",
            "the colosseum sits in rome italy",
            "paris also hosts the louvre museum in france",
        ]
    }

    #[test]
    fn retrieves_relevant_documents_first() {
        let index = Bm25Index::build(&corpus());
        let top = index.retrieve("where is the eiffel tower", 2);
        assert_eq!(top[0].0, 0);
    }

    #[test]
    fn multiple_matches_rank_by_score() {
        let index = Bm25Index::build(&corpus());
        let top = index.retrieve("paris france", 4);
        let ids: Vec<usize> = top.iter().map(|x| x.0).collect();
        assert!(ids.contains(&0) && ids.contains(&3));
        assert!(!ids.contains(&1), "tokyo doc must not match");
    }

    #[test]
    fn rare_terms_outweigh_common_terms() {
        let index = Bm25Index::build(&corpus());
        // "colosseum" appears once; "the" appears everywhere.
        let specific = index.retrieve("colosseum", 1);
        assert_eq!(specific[0].0, 2);
        let idf_common = index.score("the", 0);
        let idf_rare = index.score("colosseum", 2);
        assert!(idf_rare > idf_common);
    }

    #[test]
    fn zero_score_documents_excluded() {
        let index = Bm25Index::build(&corpus());
        let top = index.retrieve("zzz qqq", 10);
        assert!(top.is_empty());
    }

    #[test]
    fn k_truncates() {
        let index = Bm25Index::build(&corpus());
        assert_eq!(index.retrieve("the", 2).len(), 2);
    }

    #[test]
    fn case_and_punctuation_insensitive() {
        let index = Bm25Index::build(&["Hello, World!"]);
        assert!(!index.retrieve("hello world", 1).is_empty());
        assert!(index.score("HELLO", 0) > 0.0);
    }

    #[test]
    fn empty_index_and_query() {
        let index = Bm25Index::build::<&str>(&[]);
        assert!(index.is_empty());
        assert!(index.retrieve("anything", 3).is_empty());
        let index = Bm25Index::build(&corpus());
        assert!(index.retrieve("", 3).is_empty());
    }

    #[test]
    fn term_frequency_saturates() {
        // BM25's tf term saturates: 10 repeats score < 10× one occurrence.
        let index = Bm25Index::build(&["cat", "cat cat cat cat cat cat cat cat cat cat"]);
        let once = index.score("cat", 0);
        let many = index.score("cat", 1);
        assert!(many < 10.0 * once);
        assert!(many > 0.0);
    }
}
