//! Document chunking: fixed word-count windows with overlap.
//!
//! RAG corpora are chunked before indexing so retrieval granularity and
//! module size stay bounded. Overlap keeps facts that straddle a boundary
//! retrievable from at least one chunk.

/// Splits `text` into chunks of at most `chunk_words` words, consecutive
/// chunks sharing `overlap_words` words. Returns whole-text single chunk
/// when it fits; never returns empty chunks.
///
/// # Panics
///
/// Panics if `overlap_words >= chunk_words` (the window would not
/// advance).
pub fn chunk_words(text: &str, chunk_words: usize, overlap_words: usize) -> Vec<String> {
    assert!(
        overlap_words < chunk_words,
        "overlap {overlap_words} must be smaller than chunk size {chunk_words}"
    );
    let words: Vec<&str> = text.split_whitespace().collect();
    if words.is_empty() {
        return Vec::new();
    }
    if words.len() <= chunk_words {
        return vec![words.join(" ")];
    }
    let stride = chunk_words - overlap_words;
    let mut chunks = Vec::new();
    let mut start = 0;
    while start < words.len() {
        let end = (start + chunk_words).min(words.len());
        chunks.push(words[start..end].join(" "));
        if end == words.len() {
            break;
        }
        start += stride;
    }
    chunks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_text_is_one_chunk() {
        let chunks = chunk_words("one two three", 10, 2);
        assert_eq!(chunks, vec!["one two three"]);
    }

    #[test]
    fn empty_text_yields_nothing() {
        assert!(chunk_words("", 10, 2).is_empty());
        assert!(chunk_words("   ", 10, 2).is_empty());
    }

    #[test]
    fn chunks_cover_everything_with_overlap() {
        let words: Vec<String> = (0..25).map(|i| format!("w{i}")).collect();
        let text = words.join(" ");
        let chunks = chunk_words(&text, 10, 3);
        // Every word appears in at least one chunk.
        for w in &words {
            assert!(chunks.iter().any(|c| c.split_whitespace().any(|x| x == w)));
        }
        // Consecutive chunks share exactly the overlap.
        let first: Vec<&str> = chunks[0].split_whitespace().collect();
        let second: Vec<&str> = chunks[1].split_whitespace().collect();
        assert_eq!(&first[first.len() - 3..], &second[..3]);
    }

    #[test]
    fn chunk_sizes_are_bounded() {
        let text = (0..100).map(|i| format!("w{i} ")).collect::<String>();
        for chunk in chunk_words(&text, 16, 4) {
            let n = chunk.split_whitespace().count();
            assert!(n <= 16 && n > 0);
        }
    }

    #[test]
    fn no_tiny_trailing_duplicate() {
        // When the final window reaches the end exactly, no extra chunk.
        let text = (0..20).map(|i| format!("w{i} ")).collect::<String>();
        let chunks = chunk_words(&text, 10, 0);
        assert_eq!(chunks.len(), 2);
    }

    #[test]
    #[should_panic(expected = "must be smaller")]
    fn overlap_must_advance() {
        chunk_words("a b c", 5, 5);
    }
}
