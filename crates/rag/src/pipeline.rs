//! The RAG pipeline: chunk → index → encode-as-modules → retrieve-and-serve.

use crate::chunker::chunk_words as chunk_words_helper;
use crate::index::Bm25Index;
use prompt_cache::{PromptCache, Response, Result, ServeOptions, ServeRequest, Served};

/// RAG pipeline configuration.
#[derive(Debug, Clone)]
pub struct RagConfig {
    /// Words per chunk (each chunk becomes one prompt module).
    pub chunk_words: usize,
    /// Overlapping words between consecutive chunks.
    pub overlap_words: usize,
    /// Schema name the corpus registers under.
    pub schema_name: String,
}

impl Default for RagConfig {
    fn default() -> Self {
        RagConfig {
            chunk_words: 64,
            overlap_words: 8,
            schema_name: "rag-corpus".to_owned(),
        }
    }
}

/// The result of one RAG query.
#[derive(Debug, Clone)]
pub struct RagResult {
    /// Chunk ids that were retrieved and imported, best match first.
    pub retrieved: Vec<usize>,
    /// The engine response (generated text, TTFT, cache stats).
    pub response: Response,
}

/// A retrieval-augmented generation pipeline whose document store *is* a
/// Prompt Cache module database: retrieval selects which precomputed
/// modules a prompt imports.
#[derive(Debug)]
pub struct RagPipeline {
    engine: PromptCache,
    index: Bm25Index,
    chunks: Vec<String>,
    schema_name: String,
}

impl RagPipeline {
    /// Chunks `docs`, indexes the chunks, and encodes every chunk as a
    /// prompt module (the one-time cost that makes queries cheap).
    ///
    /// # Errors
    ///
    /// Propagates schema-registration failures.
    pub fn build<S: AsRef<str>>(
        engine: PromptCache,
        docs: &[S],
        config: RagConfig,
    ) -> Result<Self> {
        let chunks: Vec<String> = docs
            .iter()
            .flat_map(|d| chunk_words_helper(d.as_ref(), config.chunk_words, config.overlap_words))
            .collect();
        let index = Bm25Index::build(&chunks);

        let mut schema = format!("<schema name=\"{}\">", config.schema_name);
        for (i, chunk) in chunks.iter().enumerate() {
            schema.push_str(&format!(
                "<module name=\"chunk-{i}\">{}</module>",
                escape(chunk)
            ));
        }
        schema.push_str("</schema>");
        engine.register_schema(&schema)?;

        Ok(RagPipeline {
            engine,
            index,
            chunks,
            schema_name: config.schema_name,
        })
    }

    /// Adds documents to a live pipeline: new chunks are appended to the
    /// schema (append-only, so existing chunk states are reused and only
    /// the new chunks are encoded) and the retrieval index is rebuilt.
    ///
    /// # Errors
    ///
    /// Propagates schema-replacement failures.
    pub fn add_documents<S: AsRef<str>>(
        &mut self,
        docs: &[S],
        chunk_words: usize,
        overlap_words: usize,
    ) -> Result<usize> {
        let new_chunks: Vec<String> = docs
            .iter()
            .flat_map(|d| chunk_words_helper(d.as_ref(), chunk_words, overlap_words))
            .collect();
        let added = new_chunks.len();
        self.chunks.extend(new_chunks);
        let mut schema = format!("<schema name=\"{}\">", self.schema_name);
        for (i, chunk) in self.chunks.iter().enumerate() {
            schema.push_str(&format!(
                "<module name=\"chunk-{i}\">{}</module>",
                escape(chunk)
            ));
        }
        schema.push_str("</schema>");
        self.engine.replace_schema(&schema)?;
        self.index = Bm25Index::build(&self.chunks);
        Ok(added)
    }

    /// Number of indexed chunks (= prompt modules).
    pub fn num_chunks(&self) -> usize {
        self.chunks.len()
    }

    /// The text of chunk `id`.
    pub fn chunk(&self, id: usize) -> Option<&str> {
        self.chunks.get(id).map(String::as_str)
    }

    /// The underlying engine (for stats and persistence).
    pub fn engine(&self) -> &PromptCache {
        &self.engine
    }

    /// Retrieves the top-`k` chunks for `question` and serves a prompt
    /// importing them. With zero retrieval hits the question is served
    /// without context.
    ///
    /// Chunks are imported in retrieval-rank order, **not** re-sorted
    /// into their encoded (schema) order: the engine's deferred-RoPE
    /// path relocates each cached chunk to wherever this prompt places
    /// it, so best-match-first ordering costs nothing in cache hits.
    ///
    /// # Errors
    ///
    /// Propagates engine failures.
    pub fn query(&self, question: &str, k: usize, max_new_tokens: usize) -> Result<RagResult> {
        self.query_with(
            question,
            k,
            &ServeOptions::default().max_new_tokens(max_new_tokens),
        )
    }

    /// [`RagPipeline::query`] with full serve options.
    ///
    /// # Errors
    ///
    /// Propagates engine failures.
    pub fn query_with(
        &self,
        question: &str,
        k: usize,
        options: &ServeOptions,
    ) -> Result<RagResult> {
        let retrieved: Vec<usize> = self
            .index
            .retrieve(question, k)
            .into_iter()
            .map(|(id, _)| id)
            .collect();
        let mut prompt = format!("<prompt schema=\"{}\">", self.schema_name);
        for id in &retrieved {
            prompt.push_str(&format!("<chunk-{id}/>"));
        }
        prompt.push_str(&escape(question));
        prompt.push_str("</prompt>");
        let response = self.engine.serve(&ServeRequest::new(&prompt).options(options.clone())).map(Served::into_response)?;
        Ok(RagResult {
            retrieved,
            response,
        })
    }

    /// The baseline comparison: the same retrieved context served as a
    /// plain uncached prompt (what a RAG system without Prompt Cache pays).
    ///
    /// # Errors
    ///
    /// Propagates engine failures.
    pub fn query_baseline(
        &self,
        question: &str,
        k: usize,
        options: &ServeOptions,
    ) -> Result<RagResult> {
        let retrieved: Vec<usize> = self
            .index
            .retrieve(question, k)
            .into_iter()
            .map(|(id, _)| id)
            .collect();
        let mut text = String::new();
        for id in &retrieved {
            text.push_str(&self.chunks[*id]);
            text.push(' ');
        }
        text.push_str(question);
        let response = self.engine.generate_plain(&text, options, Vec::new())?;
        Ok(RagResult {
            retrieved,
            response,
        })
    }
}

fn escape(text: &str) -> String {
    text.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pc_model::{Model, ModelConfig};
    use pc_tokenizer::{Tokenizer, WordTokenizer};
    use prompt_cache::EngineConfig;

    fn docs() -> Vec<String> {
        vec![
            "the eiffel tower stands in paris france and attracts visitors".to_owned(),
            "mount fuji rises near tokyo japan with snow capped slopes".to_owned(),
            "the colosseum sits in rome italy hosting ancient games".to_owned(),
        ]
    }

    fn pipeline() -> RagPipeline {
        let corpus = docs().join(" ") + " where is the located what question";
        let tokenizer = WordTokenizer::train(&[corpus.as_str()]);
        let vocab = tokenizer.vocab_size().max(64);
        let engine = PromptCache::new(
            Model::new(ModelConfig::llama_tiny(vocab), 3),
            tokenizer,
            EngineConfig::default(),
        );
        RagPipeline::build(engine, &docs(), RagConfig::default()).unwrap()
    }

    #[test]
    fn build_encodes_all_chunks() {
        let rag = pipeline();
        assert_eq!(rag.num_chunks(), 3); // short docs → one chunk each
        assert!(rag.engine().cached_bytes() > 0);
        assert!(rag.chunk(0).unwrap().contains("eiffel"));
        assert!(rag.chunk(9).is_none());
    }

    #[test]
    fn query_retrieves_and_serves_from_cache() {
        let rag = pipeline();
        let result = rag.query("where is the eiffel tower located", 1, 4).unwrap();
        assert_eq!(result.retrieved, vec![0]);
        assert!(result.response.stats.cached_tokens > 0);
        assert_eq!(
            result.response.stats.cached_tokens,
            rag.chunk(0).unwrap().split_whitespace().count()
        );
    }

    #[test]
    fn query_beats_baseline_ttft() {
        let rag = pipeline();
        let opts = ServeOptions::default().max_new_tokens(1);
        // Warm up both paths.
        rag.query_with("where is mount fuji", 2, &opts).unwrap();
        rag.query_baseline("where is mount fuji", 2, &opts).unwrap();
        let cached = rag.query_with("where is mount fuji", 2, &opts).unwrap();
        let baseline = rag.query_baseline("where is mount fuji", 2, &opts).unwrap();
        assert_eq!(cached.retrieved, baseline.retrieved);
        assert!(
            cached.response.timings.ttft <= baseline.response.timings.ttft,
            "cached {:?} vs baseline {:?}",
            cached.response.timings.ttft,
            baseline.response.timings.ttft
        );
    }

    #[test]
    fn shuffled_retrieval_order_still_hits_cache() {
        // A query ranking chunk 1 above chunk 0 imports them in that
        // order — the reverse of their encoded order in the schema.
        // Both placements still serve fully from cache: deferred RoPE
        // relocates the stored states instead of demanding the offsets
        // they were encoded at.
        let rag = pipeline();
        let opts = ServeOptions::default().max_new_tokens(1);
        let result = rag
            .query_with("mount fuji rises near tokyo japan snow eiffel", 2, &opts)
            .unwrap();
        assert_eq!(result.retrieved, vec![1, 0], "best match first");
        let expected: usize = result
            .retrieved
            .iter()
            .map(|id| rag.chunk(*id).unwrap().split_whitespace().count())
            .sum();
        assert_eq!(
            result.response.stats.cached_tokens, expected,
            "out-of-schema-order imports must still hit the cache"
        );
    }

    #[test]
    fn no_hits_serves_question_alone() {
        let rag = pipeline();
        let result = rag.query("zzz qqq xxx", 2, 2).unwrap();
        assert!(result.retrieved.is_empty());
        assert_eq!(result.response.stats.cached_tokens, 0);
    }

    #[test]
    fn long_documents_are_chunked() {
        let long_doc: String = (0..300).map(|i| format!("w{i} ")).collect();
        let corpus = long_doc.clone() + " question";
        let tokenizer = WordTokenizer::train(&[corpus.as_str()]);
        let vocab = tokenizer.vocab_size().max(64);
        let engine = PromptCache::new(
            Model::new(ModelConfig::llama_tiny(vocab), 3),
            tokenizer,
            EngineConfig::default(),
        );
        let rag = RagPipeline::build(
            engine,
            &[long_doc],
            RagConfig {
                chunk_words: 64,
                overlap_words: 8,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(rag.num_chunks() >= 5, "{}", rag.num_chunks());
        let result = rag.query("w137", 1, 1).unwrap();
        assert_eq!(result.retrieved.len(), 1);
        assert!(rag.chunk(result.retrieved[0]).unwrap().contains("w137"));
    }
}
#[cfg(test)]
mod incremental_tests {
    use super::tests_support::*;

    #[test]
    fn add_documents_extends_without_reencoding_old_chunks() {
        let mut rag = pipeline_fixture();
        let chunks_before = rag.num_chunks();
        let added = rag
            .add_documents(
                &["the golden gate bridge spans san francisco bay california"],
                64,
                8,
            )
            .unwrap();
        assert_eq!(added, 1);
        assert_eq!(rag.num_chunks(), chunks_before + 1);
        // Old and new content both retrievable and cache-served.
        let old = rag.query("where is the eiffel tower located", 1, 2).unwrap();
        assert_eq!(old.retrieved, vec![0]);
        let new = rag.query("where is the golden gate bridge", 1, 2).unwrap();
        assert_eq!(new.retrieved, vec![chunks_before]);
        assert!(new.response.stats.cached_tokens > 0);
    }
}

#[cfg(test)]
pub(crate) mod tests_support {
    use super::*;
    use pc_model::{Model, ModelConfig};
    use pc_tokenizer::{Tokenizer, WordTokenizer};
    use prompt_cache::EngineConfig;

    pub(crate) fn pipeline_fixture() -> RagPipeline {
        let docs = [
            "the eiffel tower stands in paris france and attracts visitors".to_owned(),
            "mount fuji rises near tokyo japan with snow capped slopes".to_owned(),
        ];
        let corpus = docs.join(" ")
            + " where is the located golden gate bridge spans san francisco bay california";
        let tokenizer = WordTokenizer::train(&[corpus.as_str()]);
        let vocab = tokenizer.vocab_size().max(64);
        let engine = PromptCache::new(
            Model::new(ModelConfig::llama_tiny(vocab), 3),
            tokenizer,
            EngineConfig::default(),
        );
        RagPipeline::build(engine, &docs, RagConfig::default()).unwrap()
    }
}
