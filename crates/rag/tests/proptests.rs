//! Property-based tests for the RAG substrate.

use pc_rag::chunker::chunk_words;
use pc_rag::Bm25Index;
use proptest::prelude::*;

fn docs_strategy() -> impl Strategy<Value = Vec<String>> {
    proptest::collection::vec(
        proptest::collection::vec("[a-z]{2,6}", 3..30).prop_map(|w| w.join(" ")),
        1..8,
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Chunking loses no words and respects the size bound.
    #[test]
    fn chunking_covers_and_bounds(
        words in proptest::collection::vec("[a-z]{1,6}", 0..120),
        chunk in 4usize..32,
        overlap in 0usize..3,
    ) {
        let text = words.join(" ");
        let chunks = chunk_words(&text, chunk, overlap);
        // Bound.
        for c in &chunks {
            prop_assert!(c.split_whitespace().count() <= chunk);
        }
        // Coverage: concatenating chunks with overlap removed reproduces
        // the original word sequence.
        let mut rebuilt: Vec<&str> = Vec::new();
        for (i, c) in chunks.iter().enumerate() {
            let ws: Vec<&str> = c.split_whitespace().collect();
            let skip = if i == 0 { 0 } else { overlap.min(ws.len()) };
            rebuilt.extend(&ws[skip..]);
        }
        let original: Vec<&str> = text.split_whitespace().collect();
        prop_assert_eq!(rebuilt, original);
    }

    /// A document always retrieves itself for a query made of its own
    /// rarest term (when that term is unique to it).
    #[test]
    fn unique_term_retrieves_owner(docs in docs_strategy(), marker_doc in 0usize..8) {
        let mut docs = docs;
        let idx = marker_doc % docs.len();
        docs[idx].push_str(" zzuniquemarker");
        let index = Bm25Index::build(&docs);
        let top = index.retrieve("zzuniquemarker", 1);
        prop_assert_eq!(top.len(), 1);
        prop_assert_eq!(top[0].0, idx);
    }

    /// Scores are non-negative and retrieval is sorted descending.
    #[test]
    fn retrieval_is_sorted_and_nonnegative(docs in docs_strategy(), query in "[a-z]{2,6}( [a-z]{2,6}){0,3}") {
        let index = Bm25Index::build(&docs);
        let top = index.retrieve(&query, docs.len());
        for w in top.windows(2) {
            prop_assert!(w[0].1 >= w[1].1);
        }
        for (_, s) in &top {
            prop_assert!(*s > 0.0);
        }
    }

    /// retrieve() agrees with score() on every returned document.
    #[test]
    fn retrieve_scores_match_score(docs in docs_strategy(), query in "[a-z]{2,6}") {
        let index = Bm25Index::build(&docs);
        for (id, s) in index.retrieve(&query, docs.len()) {
            let direct = index.score(&query, id);
            prop_assert!((s - direct).abs() < 1e-9);
        }
    }
}
