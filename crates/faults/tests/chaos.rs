//! Chaos integration tests: injected faults against the real engine and
//! server, proving graceful degradation (byte-identical output under
//! cache loss/corruption) and deadline shedding (no wasted workers).

use pc_cache::{ModuleKey, StoreConfig};
use pc_faults::{FaultConfig, FaultPlan};
use pc_model::{Model, ModelConfig};
use pc_server::{RequestHandle, RequestOutcome, Server, ServerConfig, ShedReason, SubmitRequest};
use pc_tokenizer::{Tokenizer, WordTokenizer};
use prompt_cache::{EngineConfig, PromptCache, ServeOptions, ServeOutcome};
use std::sync::Arc;
use std::time::Duration;
use prompt_cache::{ServeRequest, Served};

const CORPUS: &str =
    "alpha beta gamma delta epsilon zeta eta theta question one two three four";
const SCHEMA: &str = r#"<schema name="s">
    <module name="ctx">alpha beta gamma delta epsilon zeta eta theta</module>
    <module name="extra">one two three four</module>
  </schema>"#;
const PROMPT: &str = r#"<prompt schema="s"><ctx/><extra/>question</prompt>"#;

fn engine_with(config: EngineConfig) -> PromptCache {
    let tokenizer = WordTokenizer::train(&[CORPUS]);
    let vocab = tokenizer.vocab_size().max(64);
    let engine = PromptCache::new(Model::new(ModelConfig::llama_tiny(vocab), 5), tokenizer, config);
    engine.register_schema(SCHEMA).unwrap();
    engine
}

fn opts() -> ServeOptions {
    ServeOptions::default().max_new_tokens(4)
}

fn submit(server: &Server, prompt: String, options: ServeOptions) -> RequestHandle {
    server
        .submit_request(&SubmitRequest::new(prompt).options(options).blocking(true))
        .expect("blocking submit cannot fail")
}

fn span_key(i: usize) -> ModuleKey {
    ModuleKey::new("s", &["<span>".to_owned(), i.to_string()])
}

#[test]
fn injected_misses_degrade_with_byte_identical_output() {
    let engine = engine_with(EngineConfig::default());
    let healthy = engine.serve(&ServeRequest::new(PROMPT).options(opts().clone())).map(Served::into_response).unwrap();
    assert_eq!(healthy.stats.degraded_spans, 0);
    assert!(healthy.stats.cached_tokens > 0);

    // Every fetch now reports the entry missing.
    engine.set_fetch_fault_injector(Some(Arc::new(FaultPlan::new(FaultConfig {
        fetch_miss_rate: 1.0,
        ..Default::default()
    }))));
    let degraded = engine.serve(&ServeRequest::new(PROMPT).options(opts().clone())).map(Served::into_response).unwrap();
    assert!(degraded.stats.degraded_spans > 0, "spans were recomputed");
    assert_eq!(degraded.outcome, ServeOutcome::Complete);
    // The headline resilience guarantee: degradation is invisible in the
    // output — recomputing the owner reproduces the lost states exactly.
    assert_eq!(degraded.tokens, healthy.tokens);
    assert_eq!(degraded.text, healthy.text);

    // Clearing the injector restores the healthy path.
    engine.set_fetch_fault_injector(None);
    let healed = engine.serve(&ServeRequest::new(PROMPT).options(opts().clone())).map(Served::into_response).unwrap();
    assert_eq!(healed.stats.degraded_spans, 0);
    assert_eq!(healed.tokens, healthy.tokens);
}

#[test]
fn checksum_corruption_is_detected_degraded_and_self_healed() {
    let engine = engine_with(EngineConfig::default().store(StoreConfig::default().verify_checksums(true)));
    let healthy = engine.serve(&ServeRequest::new(PROMPT).options(opts().clone())).map(Served::into_response).unwrap();

    // Flip a bit in span 0's stored states, leaving its checksum stale.
    assert!(engine.store().corrupt_module(&span_key(0)));
    let degraded = engine.serve(&ServeRequest::new(PROMPT).options(opts().clone())).map(Served::into_response).unwrap();
    assert!(degraded.stats.degraded_spans > 0, "corruption forced a recompute");
    assert_eq!(degraded.tokens, healthy.tokens, "degraded serve is byte-identical");
    assert!(engine.store_stats().corruptions_detected >= 1);

    // The recompute re-inserted fresh states: the next serve is healthy
    // again without any intervention.
    let healed = engine.serve(&ServeRequest::new(PROMPT).options(opts().clone())).map(Served::into_response).unwrap();
    assert_eq!(healed.stats.degraded_spans, 0, "store self-healed");
    assert_eq!(healed.tokens, healthy.tokens);
}

#[test]
fn relocated_module_corruption_degrades_byte_identically() {
    // A module imported after prompt text serves at a shift ≠ 0 from its
    // canonical entry (deferred RoPE relocates it at read time).
    // Corrupting that entry must still degrade-and-recompute to output
    // byte-identical with the healthy serve: the re-encode path rebuilds
    // the canonical states, and the same rotation relocates them again.
    let engine = engine_with(
        EngineConfig::default().store(StoreConfig::default().verify_checksums(true)),
    );
    assert!(engine.deferred_rope_effective());
    let prompt = r#"<prompt schema="s">one two three <ctx/>question</prompt>"#;
    let healthy = engine
        .serve(&ServeRequest::new(prompt).options(opts().clone()))
        .map(Served::into_response)
        .unwrap();
    assert_eq!(healthy.stats.degraded_spans, 0);
    assert!(healthy.stats.cached_tokens > 0, "relocated span must still hit");

    // Flip a bit in the relocated module's canonical states.
    assert!(engine.store().corrupt_module(&span_key(0)));
    let degraded = engine
        .serve(&ServeRequest::new(prompt).options(opts().clone()))
        .map(Served::into_response)
        .unwrap();
    assert!(degraded.stats.degraded_spans > 0, "corruption forced a recompute");
    assert_eq!(degraded.tokens, healthy.tokens, "degraded serve is byte-identical");
    assert_eq!(degraded.text, healthy.text);
    assert!(engine.store_stats().corruptions_detected >= 1);

    // The recompute reinserted canonical states: the next serve of the
    // same relocated placement is healthy and still byte-identical.
    let healed = engine
        .serve(&ServeRequest::new(prompt).options(opts().clone()))
        .map(Served::into_response)
        .unwrap();
    assert_eq!(healed.stats.degraded_spans, 0, "store self-healed");
    assert_eq!(healed.tokens, healthy.tokens);
}

#[test]
fn degradation_matches_the_uncached_baseline() {
    // Transitivity check straight against the paper's baseline: a fully
    // degraded serve (every span recomputed) still equals full prefill.
    let engine = engine_with(EngineConfig::default());
    let baseline = engine.serve(&ServeRequest::new(PROMPT).options(opts().clone()).baseline(true)).map(Served::into_response).unwrap();
    engine.set_fetch_fault_injector(Some(Arc::new(FaultPlan::new(FaultConfig {
        fetch_miss_rate: 1.0,
        ..Default::default()
    }))));
    let degraded = engine.serve(&ServeRequest::new(PROMPT).options(opts().clone())).map(Served::into_response).unwrap();
    assert!(degraded.stats.degraded_spans > 0);
    assert_eq!(degraded.tokens, baseline.tokens);
}

#[test]
fn degrade_disabled_surfaces_the_miss_as_an_error() {
    let engine = engine_with(EngineConfig::default().degrade_on_miss(false));
    engine.set_fetch_fault_injector(Some(Arc::new(FaultPlan::new(FaultConfig {
        fetch_miss_rate: 1.0,
        ..Default::default()
    }))));
    let err = engine.serve(&ServeRequest::new(PROMPT).options(opts().clone())).map(Served::into_response).unwrap_err();
    assert!(
        err.to_string().contains("span"),
        "expected MissingModuleStates, got: {err}"
    );
}

#[test]
fn transient_faults_heal_over_repeated_serves() {
    // A mid-range miss rate faults some fetches; every serve still
    // completes with identical output, and the run is reproducible.
    let run = |seed: u64| -> (Vec<Vec<u32>>, Vec<usize>) {
        let engine = engine_with(EngineConfig::default());
        engine.set_fetch_fault_injector(Some(Arc::new(FaultPlan::new(FaultConfig {
            seed,
            fetch_miss_rate: 0.5,
            ..Default::default()
        }))));
        let mut outputs = Vec::new();
        let mut degraded = Vec::new();
        for _ in 0..8 {
            let r = engine.serve(&ServeRequest::new(PROMPT).options(opts().clone())).map(Served::into_response).unwrap();
            outputs.push(r.tokens);
            degraded.push(r.stats.degraded_spans);
        }
        (outputs, degraded)
    };
    let (outputs_a, degraded_a) = run(11);
    let (outputs_b, degraded_b) = run(11);
    assert_eq!(degraded_a, degraded_b, "same seed, same degradations");
    assert_eq!(outputs_a, outputs_b);
    assert!(outputs_a.windows(2).all(|w| w[0] == w[1]), "output never changes");
}

#[test]
fn stalled_worker_triggers_deadline_shedding() {
    let engine = engine_with(EngineConfig::default());
    let server = Server::start(
        engine,
        ServerConfig::default().workers(1).queue_capacity(16),
    );
    // Every pickup stalls well past the request deadline.
    server.set_worker_faults(Some(Arc::new(FaultPlan::new(FaultConfig {
        stall_rate: 1.0,
        stall: Duration::from_millis(80),
        ..Default::default()
    }))));
    let deadline_opts = opts().clone().deadline(Duration::from_millis(20));
    let handles: Vec<_> = (0..4)
        .map(|_| submit(&server, PROMPT.into(), deadline_opts.clone()))
        .collect();
    let mut served_past_deadline = 0;
    let mut shed = 0;
    for handle in handles {
        match handle.wait().unwrap().outcome {
            RequestOutcome::Ok(response) => {
                assert_eq!(response.outcome, ServeOutcome::DeadlineExceeded);
                served_past_deadline += 1;
            }
            RequestOutcome::Shed(reason) => {
                assert_eq!(reason, ShedReason::DeadlineBeforeStart);
                shed += 1;
            }
            RequestOutcome::Err(e) => panic!("unexpected engine error: {e}"),
        }
    }
    // The first pickup stalls through its own deadline and returns a
    // partial response; everything queued behind it is already dead at
    // pickup and gets shed without touching the engine.
    assert!(served_past_deadline >= 1);
    assert!(shed >= 1, "stall must back up the queue into sheds");
    let m = server.metrics();
    assert_eq!(m.shed, shed);
    server.shutdown();
}

#[test]
fn flight_recorder_chaos_replay_is_byte_identical() {
    // The flight recorder's determinism contract: under seeded faults
    // and sequential submission, the deterministic JSONL dump (wall-
    // clock timings stripped) is byte-identical across two same-seed
    // runs — a failing replay can be diffed event-for-event against a
    // healthy one.
    let run = |seed: u64| -> String {
        let engine = engine_with(
            EngineConfig::default().store(StoreConfig::default().verify_checksums(true)),
        );
        engine.set_fetch_fault_injector(Some(Arc::new(FaultPlan::new(FaultConfig {
            seed,
            fetch_miss_rate: 0.4,
            fetch_corrupt_rate: 0.2,
            ..Default::default()
        }))));
        let server = Server::start(
            engine,
            ServerConfig::default()
                .workers(1)
                .queue_capacity(32)
                .flight_recorder(1024),
        );
        // One request at a time, so event order is schedule-independent.
        for _ in 0..8 {
            assert!(submit(&server, PROMPT.into(), opts()).wait().unwrap().outcome.is_ok());
        }
        let dump = server.flight_json_deterministic();
        server.shutdown();
        dump
    };
    let a = run(33);
    assert!(
        a.lines().count() >= 8 * 4,
        "submit/pickup/fetch/finish per request: {a}"
    );
    assert!(a.contains("\"kind\":\"degrade\""), "chaos must surface degrades: {a}");
    assert!(!a.contains("\"t\":"), "deterministic dump carries no wall-clock timings");
    let b = run(33);
    assert_eq!(a, b, "same seed → byte-identical flight dump");
    let c = run(99);
    assert_ne!(a, c, "different seed → different fault trail");
}

#[test]
fn chaos_run_is_deterministic_end_to_end() {
    // Same seed, same prompts → the same set of degraded serves and the
    // same outputs, through the whole server stack. Checksums are on so
    // injected corruption is *detected* (silent corruption is a separate
    // store mode); one worker keeps the per-key fault occurrences paired
    // with the same serves on every run.
    let run = |seed: u64| -> (u64, Vec<u32>) {
        let engine = engine_with(EngineConfig::default().store(StoreConfig::default().verify_checksums(true)));
        engine.set_fetch_fault_injector(Some(Arc::new(FaultPlan::new(FaultConfig {
            seed,
            fetch_miss_rate: 0.4,
            fetch_corrupt_rate: 0.2,
            ..Default::default()
        }))));
        let server = Server::start(
            engine,
            ServerConfig::default().workers(1).queue_capacity(32),
        );
        let handles: Vec<_> = (0..12)
            .map(|_| submit(&server, PROMPT.into(), opts()))
            .collect();
        let mut tokens = None;
        for handle in handles {
            let response = handle.wait().unwrap().outcome.unwrap();
            let t = tokens.get_or_insert_with(|| response.tokens.clone());
            assert_eq!(&response.tokens, t, "every serve byte-identical");
        }
        let text = server.metrics_text();
        let degraded = text
            .lines()
            .find_map(|l| l.strip_prefix("pc_degraded_serves_total "))
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap();
        server.shutdown();
        (degraded, tokens.unwrap())
    };
    let (degraded_a, tokens_a) = run(21);
    let (degraded_b, tokens_b) = run(21);
    assert_eq!(tokens_a, tokens_b);
    assert_eq!(degraded_a, degraded_b, "same seed, same degraded-serve count");
}
