//! Persistence chaos tests: damage the disk tier the way real storage
//! fails — bit rot on stored records (plan-driven), a crash mid-append
//! (torn segment tail), garbage written past the last record — and
//! prove the store recovers to a consistent state while every serve
//! stays byte-identical through the degrade-and-recompute path.

use pc_cache::{ColdEncoding, DiskConfig, StoreConfig};
use pc_faults::{FaultConfig, FaultPlan};
use pc_model::{Model, ModelConfig};
use pc_tokenizer::{Tokenizer, WordTokenizer};
use prompt_cache::{EngineConfig, PromptCache, Response, ServeOptions, ServeRequest, Served};
use std::path::{Path, PathBuf};

const CORPUS: &str =
    "alpha beta gamma delta epsilon zeta eta theta question one two three four";
const SCHEMA: &str = r#"<schema name="s">
    <module name="ctx">alpha beta gamma delta epsilon zeta eta theta</module>
    <module name="extra">one two three four</module>
  </schema>"#;
const PROMPT: &str = r#"<prompt schema="s"><ctx/><extra/>question</prompt>"#;

/// A bare engine — no schema registered yet, so warm-restart tests can
/// `restore()` first (registration preloads matching store entries
/// instead of re-encoding them).
fn bare_engine(config: EngineConfig) -> PromptCache {
    let tokenizer = WordTokenizer::train(&[CORPUS]);
    let vocab = tokenizer.vocab_size().max(64);
    PromptCache::new(Model::new(ModelConfig::llama_tiny(vocab), 5), tokenizer, config)
}

fn engine_with(config: EngineConfig) -> PromptCache {
    let engine = bare_engine(config);
    engine.register_schema(SCHEMA).unwrap();
    engine
}

fn disk_store(dir: &Path) -> StoreConfig {
    StoreConfig::default().disk(DiskConfig::new(dir.to_path_buf()))
}

fn opts() -> ServeOptions {
    ServeOptions::default().max_new_tokens(4)
}

fn serve(engine: &PromptCache) -> Response {
    engine
        .serve(&ServeRequest::new(PROMPT).options(opts()))
        .map(Served::into_response)
        .unwrap()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "pc-chaos-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The disk-backed engine used by the bit-rot tests: a host capacity of
/// one byte demotes every module except the most recently touched one,
/// so each serve round-trips module states through the disk tier.
fn tiny_host_engine(dir: &Path, encoding: ColdEncoding) -> PromptCache {
    engine_with(
        EngineConfig::default().store(
            StoreConfig::default()
                .verify_checksums(true)
                .host_capacity_bytes(1)
                .disk(DiskConfig::new(dir.to_path_buf()).encoding(encoding)),
        ),
    )
}

/// Keys of every module currently resident on the disk tier.
fn disk_keys(engine: &PromptCache) -> Vec<pc_cache::ModuleKey> {
    engine
        .store()
        .snapshot()
        .into_iter()
        .filter(|row| row.tier == "disk")
        .map(|row| row.key)
        .collect()
}

#[test]
fn plan_driven_disk_corruption_degrades_byte_identically_and_self_heals() {
    let dir = temp_dir("bitrot");
    let engine = tiny_host_engine(&dir, ColdEncoding::F32);
    let healthy = serve(&engine);
    assert_eq!(healthy.stats.degraded_spans, 0);
    assert!(
        engine.store().disk_len() > 0,
        "tiny host capacity must demote modules to disk"
    );

    // The fault plan decides, per key, which stored records rotted.
    // Rate 1.0 damages every record — the worst case.
    let plan = FaultPlan::new(FaultConfig {
        seed: 17,
        disk_corrupt_rate: 1.0,
        ..Default::default()
    });
    let keys = disk_keys(&engine);
    assert!(!keys.is_empty());
    for key in &keys {
        assert!(plan.should_corrupt_disk(key));
        assert!(engine.store().corrupt_disk_entry(key), "corrupt {key:?}");
    }

    // Damaged records fail their checksum on promote, degrade to
    // re-encode, and the output stays byte-identical.
    let degraded = serve(&engine);
    assert!(degraded.stats.degraded_spans > 0, "corruption forced recompute");
    assert_eq!(degraded.tokens, healthy.tokens);
    assert_eq!(degraded.text, healthy.text);
    let stats = engine.store_stats();
    assert!(stats.disk_corruptions >= 1, "{stats:?}");

    // The recompute re-inserted fresh states; their re-demotion wrote
    // clean records, so the next serve promotes without degrading.
    let healed = serve(&engine);
    assert_eq!(healed.stats.degraded_spans, 0, "store self-healed");
    assert_eq!(healed.tokens, healthy.tokens);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_segment_tail_recovers_to_consistent_store() {
    // "Process one": populate the store, snapshot it to disk, exit.
    let dir = temp_dir("torn");
    let healthy_tokens;
    let persisted;
    {
        let engine = engine_with(EngineConfig::default().store(disk_store(&dir)));
        healthy_tokens = serve(&engine).tokens;
        persisted = engine.snapshot().unwrap();
        assert!(persisted >= 2, "both schema modules persisted");
    }

    // Kill mid-append: chop bytes off the segment tail, leaving the
    // last record structurally torn and the INDEX stale (it describes a
    // longer file than the one on disk).
    let seg = dir.join("seg-00000000.pcseg");
    let len = std::fs::metadata(&seg).unwrap().len();
    let file = std::fs::OpenOptions::new().write(true).open(&seg).unwrap();
    file.set_len(len - 5).unwrap();
    drop(file);

    // "Process two": reopen over the damaged directory. The stale INDEX
    // is rejected, the scan truncates the torn tail, and every record
    // before it restores; the torn module is re-encoded at registration.
    let engine = bare_engine(EngineConfig::default().store(disk_store(&dir)));
    let restored = engine.restore().unwrap();
    assert_eq!(restored, persisted - 1, "exactly the torn record is lost");
    engine.register_schema(SCHEMA).unwrap();
    let warm = serve(&engine);
    assert_eq!(warm.tokens, healthy_tokens, "recovery serves byte-identically");

    // The store is consistent again: a fresh snapshot round-trips.
    assert_eq!(engine.snapshot().unwrap(), persisted);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn garbage_after_last_record_is_truncated_on_reopen() {
    let dir = temp_dir("garbage");
    let healthy_tokens;
    let persisted;
    {
        let engine = engine_with(EngineConfig::default().store(disk_store(&dir)));
        healthy_tokens = serve(&engine).tokens;
        persisted = engine.snapshot().unwrap();
    }

    // A crash between a partial write and the record header landing:
    // bytes that parse as no record sit past the last good one.
    let seg = dir.join("seg-00000000.pcseg");
    let mut bytes = std::fs::read(&seg).unwrap();
    bytes.extend_from_slice(&[0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0x01, 0x02]);
    std::fs::write(&seg, &bytes).unwrap();

    // Every intact record survives — only the trailing garbage goes.
    let engine = bare_engine(EngineConfig::default().store(disk_store(&dir)));
    assert_eq!(engine.restore().unwrap(), persisted);
    engine.register_schema(SCHEMA).unwrap();
    let warm = serve(&engine);
    assert_eq!(warm.tokens, healthy_tokens);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_warm_restart_restores_survivors_and_recomputes_the_rest() {
    // Snapshot, "restart", then rot a plan-chosen subset of records
    // before restore: survivors restore, victims are skipped (counted
    // as disk corruptions) and re-encoded at registration — output
    // unchanged either way.
    let dir = temp_dir("restart-rot");
    let healthy_tokens;
    {
        let engine = engine_with(EngineConfig::default().store(disk_store(&dir)));
        healthy_tokens = serve(&engine).tokens;
        engine.snapshot().unwrap();
    }

    let engine = bare_engine(EngineConfig::default().store(disk_store(&dir)));
    let plan = FaultPlan::new(FaultConfig {
        seed: 5,
        disk_corrupt_rate: 0.6,
        ..Default::default()
    });
    let keys = disk_keys(&engine);
    assert!(!keys.is_empty());
    let rotted: Vec<_> = keys
        .iter()
        .filter(|key| plan.should_corrupt_disk(key))
        .collect();
    for key in &rotted {
        assert!(engine.store().corrupt_disk_entry(key));
    }

    let restored = engine.restore().unwrap();
    assert_eq!(restored, keys.len() - rotted.len());
    assert_eq!(
        engine.store_stats().disk_corruptions as usize,
        rotted.len(),
        "every rotted record is detected, none served"
    );
    engine.register_schema(SCHEMA).unwrap();
    let warm = serve(&engine);
    assert_eq!(warm.tokens, healthy_tokens);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn quantized_disk_tier_survives_the_same_chaos() {
    // Int8 cold records carry the same checksum armor: corrupt them and
    // the serve degrades to full-precision recompute. A quantized
    // promote is intentionally lossy, so byte-equality is asserted
    // against the full-prefill baseline — exactly what the degrade
    // path reproduces.
    let dir = temp_dir("int8-rot");
    let engine = tiny_host_engine(&dir, ColdEncoding::Int8);
    let baseline = engine
        .serve(&ServeRequest::new(PROMPT).options(opts()).baseline(true))
        .map(Served::into_response)
        .unwrap();
    let healthy = serve(&engine);
    assert_eq!(healthy.stats.degraded_spans, 0, "quantized promotes still hit");
    let keys = disk_keys(&engine);
    assert!(!keys.is_empty());
    for key in &keys {
        assert!(engine.store().corrupt_disk_entry(key));
    }
    let degraded = serve(&engine);
    assert!(degraded.stats.degraded_spans > 0);
    assert_eq!(degraded.tokens, baseline.tokens);
    assert!(engine.store_stats().disk_corruptions >= 1);
    let _ = std::fs::remove_dir_all(&dir);
}
