//! Fleet chaos suite: a seeded [`FaultPlan`] driving per-worker stalls
//! and a scheduled mid-run worker kill against the sharded router, with
//! the invariant that matters — every response stays **byte-identical**
//! to single-process serving while the fleet stalls, dies, and
//! rebalances underneath.

use std::sync::Arc;
use std::time::Duration;

use pc_faults::{FaultConfig, FaultPlan};
use pc_model::ModelConfig;
use pc_server::wire::TokenizerSpec;
use pc_server::{EngineBlueprint, FleetConfig, FleetFaults, Router, SubmitRequest};
use prompt_cache::ServeRequest;

const CORPUS: &str = "tokyo offers temples gardens and remarkable food \
    kyoto keeps quiet shrines old wooden lanes \
    the miami coast has warm beaches surf sun \
    plan a day trip what should i pack answer briefly please";

const SCHEMA_EAST: &str = r#"<schema name="east">
    <module name="tokyo">tokyo offers temples gardens and remarkable food</module>
    <module name="kyoto">kyoto keeps quiet shrines old wooden lanes</module>
  </schema>"#;

const SCHEMA_WEST: &str = r#"<schema name="west">
    <module name="miami">the miami coast has warm beaches surf sun</module>
  </schema>"#;

fn blueprint() -> EngineBlueprint {
    EngineBlueprint::new(
        ModelConfig::llama_tiny(64),
        17,
        TokenizerSpec::Word {
            corpus: vec![CORPUS.to_owned()],
        },
    )
}

fn prompts() -> Vec<String> {
    let mut out = Vec::new();
    for i in 0..5 {
        out.push(format!(
            r#"<prompt schema="east"><tokyo/>plan a day trip please q{i}</prompt>"#
        ));
        out.push(format!(
            r#"<prompt schema="east"><kyoto/>what should i pack q{i}</prompt>"#
        ));
        out.push(format!(
            r#"<prompt schema="west"><miami/>answer briefly q{i}</prompt>"#
        ));
    }
    out
}

fn single_engine_outputs(prompts: &[String]) -> Vec<(String, Vec<u32>)> {
    let engine = blueprint().build();
    engine.register_schema(SCHEMA_EAST).unwrap();
    engine.register_schema(SCHEMA_WEST).unwrap();
    prompts
        .iter()
        .map(|p| {
            let r = engine
                .serve(&ServeRequest::new(p).max_new_tokens(3))
                .unwrap()
                .into_response();
            (r.text, r.tokens)
        })
        .collect()
}

fn chaos_run(plan: Arc<FaultPlan>, shards: usize, replication: usize) -> Vec<(String, Vec<u32>)> {
    let router = Router::start(
        blueprint(),
        FleetConfig::default()
            .shards(shards)
            .replication(replication)
            .queue_capacity(64),
    );
    router.register_schema(SCHEMA_EAST).unwrap();
    router.register_schema(SCHEMA_WEST).unwrap();
    router.set_fleet_faults(Some(plan));
    let handles: Vec<_> = prompts()
        .iter()
        .map(|p| {
            router
                .submit(&SubmitRequest::new(p.clone()).max_new_tokens(3).blocking(true))
                .expect("blocking submit cannot fail")
        })
        .collect();
    let out = handles
        .into_iter()
        .map(|h| {
            let r = h.wait().expect("router alive").outcome.unwrap();
            (r.text, r.tokens)
        })
        .collect();
    router.shutdown();
    out
}

#[test]
fn stalls_and_worker_kill_keep_output_byte_identical() {
    let expected = single_engine_outputs(&prompts());
    for seed in [3u64, 71, 2026] {
        let plan = Arc::new(FaultPlan::new(FaultConfig {
            seed,
            stall_rate: 0.4,
            stall: Duration::from_millis(8),
            kill_worker: Some(0),
            kill_after_serves: 2,
            ..Default::default()
        }));
        let got = chaos_run(plan, 2, 1);
        assert_eq!(got, expected, "seed {seed}: chaos must not change bytes");
    }
}

#[test]
fn replicated_fleet_survives_chaos_byte_identically() {
    let expected = single_engine_outputs(&prompts());
    let plan = Arc::new(FaultPlan::new(FaultConfig {
        seed: 9,
        stall_rate: 0.3,
        stall: Duration::from_millis(6),
        kill_worker: Some(1),
        kill_after_serves: 1,
        ..Default::default()
    }));
    let got = chaos_run(plan, 3, 2);
    assert_eq!(got, expected, "replicated fleet under chaos must match");
}

#[test]
fn kill_actually_fires_and_backlog_reroutes() {
    let router = Router::start(
        blueprint(),
        FleetConfig::default().shards(2).queue_capacity(64),
    );
    router.register_schema(SCHEMA_EAST).unwrap();
    router.register_schema(SCHEMA_WEST).unwrap();
    let victim = router.owners_of("east")[0];
    router.set_fleet_faults(Some(Arc::new(FaultPlan::new(FaultConfig {
        seed: 5,
        kill_worker: Some(victim),
        kill_after_serves: 1,
        ..Default::default()
    }))));
    let expected = single_engine_outputs(&prompts());
    let handles: Vec<_> = prompts()
        .iter()
        .map(|p| {
            router
                .submit(&SubmitRequest::new(p.clone()).max_new_tokens(3).blocking(true))
                .unwrap()
        })
        .collect();
    let got: Vec<_> = handles
        .into_iter()
        .map(|h| {
            let r = h.wait().unwrap().outcome.unwrap();
            (r.text, r.tokens)
        })
        .collect();
    assert_eq!(got, expected);
    assert!(!router.workers()[victim].alive, "scheduled kill must fire");
    assert!(
        router.rerouted_total() > 0,
        "the victim's backlog must re-route to the survivor"
    );
    router.shutdown();
}

#[test]
fn fleet_fault_decisions_are_seed_deterministic() {
    let config = FaultConfig {
        seed: 42,
        stall_rate: 0.5,
        stall: Duration::from_millis(9),
        kill_worker: Some(2),
        kill_after_serves: 7,
        ..Default::default()
    };
    let a = FaultPlan::new(config);
    let b = FaultPlan::new(config);
    let mut stalled = 0;
    for worker in 0..4usize {
        assert_eq!(
            FleetFaults::kill_after(&a, worker),
            FleetFaults::kill_after(&b, worker)
        );
        for id in 0..64u64 {
            let da = FleetFaults::pre_serve_delay(&a, worker, id);
            assert_eq!(da, FleetFaults::pre_serve_delay(&b, worker, id));
            if !da.is_zero() {
                stalled += 1;
            }
        }
    }
    assert_eq!(FleetFaults::kill_after(&a, 2), Some(7));
    assert_eq!(FleetFaults::kill_after(&a, 0), None);
    assert!(stalled > 0, "a 0.5 stall rate must stall some pickups");
    assert!(stalled < 256, "…but not all of them");
}

#[test]
fn worker_index_enters_the_stall_decision() {
    let plan = FaultPlan::new(FaultConfig {
        seed: 8,
        stall_rate: 0.5,
        ..Default::default()
    });
    let per_worker: Vec<Vec<bool>> = (0..4usize)
        .map(|w| {
            (0..64u64)
                .map(|id| !FleetFaults::pre_serve_delay(&plan, w, id).is_zero())
                .collect()
        })
        .collect();
    assert!(
        (1..4).any(|w| per_worker[w] != per_worker[0]),
        "different workers must see different stall schedules"
    );
}
