//! Deterministic, seeded fault injection for the Prompt Cache stack.
//!
//! Production serving systems are validated by injecting the failures
//! they must survive: slow workers, lost cache entries, corrupted bytes.
//! This crate provides one [`FaultPlan`] that implements both fault
//! hooks the stack exposes —
//! [`pc_cache::FetchFaultInjector`] (module-store fetch misses and
//! corruptions, exercising the engine's recompute-and-reinsert
//! degradation path) and [`pc_server::WorkerFaults`] (pre-serve stalls,
//! exercising deadline shedding and cancellation) — with every decision
//! derived **purely from the seed and the event's identity**, never from
//! wall-clock time or a shared RNG stream. Two runs with the same seed
//! inject the same faults even when thread scheduling differs:
//!
//! * a fetch decision depends on `(seed, module key, per-key occurrence
//!   index)` — the *n*-th fetch of a given key always gets the same
//!   verdict, so faults can be transient (fault the first fetch, let the
//!   self-healed reinsert succeed later) without becoming
//!   schedule-dependent;
//! * a stall decision depends on `(seed, request id)` only.
//!
//! The plan also implements [`pc_server::FleetFaults`] for the sharded
//! fleet: per-worker stalls keyed by `(seed, request id, worker)`, and a
//! scheduled deterministic worker loss ([`FaultConfig::kill_worker`] /
//! [`FaultConfig::kill_after_serves`]) that kills one worker after a
//! fixed number of completed serves — the chaos hook behind the fleet's
//! byte-identity-through-rebalancing suite.
//!
//! ```
//! use pc_faults::{FaultConfig, FaultPlan};
//! use pc_cache::{FetchFault, FetchFaultInjector, ModuleKey};
//!
//! let plan = FaultPlan::new(FaultConfig { fetch_miss_rate: 1.0, ..Default::default() });
//! let key = ModuleKey::new("schema", &["<span>".to_owned(), "0".to_owned()]);
//! assert_eq!(plan.fault(&key), FetchFault::Miss);
//! ```

#![warn(missing_docs)]

use pc_cache::{FetchFault, FetchFaultInjector, ModuleKey};
use pc_server::{FleetFaults, WorkerFaults};
use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Duration;

/// Fault rates and magnitudes. All rates are probabilities in `[0, 1]`;
/// the default plan is entirely healthy (all rates zero).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Seed for every fault decision. Same seed → same faults.
    pub seed: u64,
    /// Probability that a module-store fetch reports the entry missing
    /// (models eviction races, lost host memory, failed transfers).
    pub fetch_miss_rate: f64,
    /// Probability that a module-store fetch returns bit-flipped states
    /// (models DMA/storage corruption; only *observable* when the store
    /// verifies checksums — see `pc_cache::StoreConfig::verify_checksums`).
    pub fetch_corrupt_rate: f64,
    /// Probability that a worker stalls before serving a request
    /// (models CPU contention, page faults, stuck I/O).
    pub stall_rate: f64,
    /// Stall duration applied when a stall fires.
    pub stall: Duration,
    /// Fleet only: the shard index of a worker scheduled to die. The
    /// worker kills itself once it has completed
    /// [`kill_after_serves`](FaultConfig::kill_after_serves) serves —
    /// a deterministic mid-run worker loss, applied at the next pickup.
    /// `None` (the default) kills nobody.
    pub kill_worker: Option<usize>,
    /// Fleet only: completed-serve count after which
    /// [`kill_worker`](FaultConfig::kill_worker) dies.
    pub kill_after_serves: u64,
    /// Probability that a module's **disk-tier record** is bit-flipped
    /// (models storage bit rot and torn sectors). Consulted via
    /// [`FaultPlan::should_corrupt_disk`] by harnesses that drive
    /// `pc_cache::ModuleStore::corrupt_disk_entry`; the store's record
    /// checksum then catches the damage on the next disk read and
    /// degrades to re-encode.
    pub disk_corrupt_rate: f64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            seed: 0x9E37_79B9,
            fetch_miss_rate: 0.0,
            fetch_corrupt_rate: 0.0,
            stall_rate: 0.0,
            stall: Duration::from_millis(5),
            kill_worker: None,
            kill_after_serves: 0,
            disk_corrupt_rate: 0.0,
        }
    }
}

/// A deterministic fault plan — implements both
/// [`FetchFaultInjector`] and [`WorkerFaults`]. Wrap in an `Arc` and
/// hand clones to `PromptCache::set_fetch_fault_injector` and
/// `Server::set_worker_faults`.
#[derive(Debug)]
pub struct FaultPlan {
    config: FaultConfig,
    /// Per-key fetch occurrence counters, keyed by the key's hash. The
    /// counter makes the *n*-th fetch of a key a distinct, stable event.
    fetch_counts: Mutex<HashMap<u64, u64>>,
}

/// Domain separators so the same `(seed, id)` pair never reuses a
/// decision across fault kinds.
const DOMAIN_FETCH: u64 = 0xF47C;
const DOMAIN_STALL: u64 = 0x57A1;
const DOMAIN_DISK: u64 = 0xD15C;

/// splitmix64 — a full-avalanche mixer; every output bit depends on
/// every input bit, so structured inputs (small counters, similar keys)
/// still produce uniform decisions.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// FNV-1a over a module key's schema and path.
fn key_hash(key: &ModuleKey) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h ^= 0xFF;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    };
    eat(key.schema.as_bytes());
    for part in &key.path {
        eat(part.as_bytes());
    }
    h
}

impl FaultPlan {
    /// Builds a plan from `config`.
    pub fn new(config: FaultConfig) -> Self {
        FaultPlan {
            config,
            fetch_counts: Mutex::new(HashMap::new()),
        }
    }

    /// The plan's configuration.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Whether `key`'s disk-tier record should be corrupted, decided
    /// purely from `(seed, key)` — occurrence-independent, because a
    /// stored record is damaged (or not) once, no matter how often it is
    /// read. Harnesses apply the verdict with
    /// `pc_cache::ModuleStore::corrupt_disk_entry` after demoting or
    /// persisting modules.
    pub fn should_corrupt_disk(&self, key: &ModuleKey) -> bool {
        self.config.disk_corrupt_rate > 0.0
            && self.unit(DOMAIN_DISK, key_hash(key), 0) < self.config.disk_corrupt_rate
    }

    /// A uniform sample in `[0, 1)` derived purely from
    /// `(seed, domain, a, b)`.
    fn unit(&self, domain: u64, a: u64, b: u64) -> f64 {
        let mixed = splitmix64(
            splitmix64(self.config.seed ^ domain)
                .wrapping_add(splitmix64(a))
                .wrapping_add(splitmix64(b).rotate_left(17)),
        );
        (mixed >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl FetchFaultInjector for FaultPlan {
    fn fault(&self, key: &ModuleKey) -> FetchFault {
        let miss = self.config.fetch_miss_rate;
        let corrupt = self.config.fetch_corrupt_rate;
        if miss <= 0.0 && corrupt <= 0.0 {
            return FetchFault::None;
        }
        let hash = key_hash(key);
        let occurrence = {
            let mut counts = self.fetch_counts.lock().unwrap();
            let slot = counts.entry(hash).or_insert(0);
            let n = *slot;
            *slot += 1;
            n
        };
        let u = self.unit(DOMAIN_FETCH, hash, occurrence);
        if u < miss {
            FetchFault::Miss
        } else if u < miss + corrupt {
            FetchFault::Corrupt
        } else {
            FetchFault::None
        }
    }
}

impl WorkerFaults for FaultPlan {
    fn pre_serve_delay(&self, id: u64) -> Duration {
        if self.config.stall_rate > 0.0 && self.unit(DOMAIN_STALL, id, 0) < self.config.stall_rate
        {
            self.config.stall
        } else {
            Duration::ZERO
        }
    }
}

impl FleetFaults for FaultPlan {
    fn pre_serve_delay(&self, worker: usize, id: u64) -> Duration {
        // Worker index enters the decision (offset so worker 0 differs
        // from the single-process domain): the same request stalls on
        // one worker but not another, exactly the asymmetry a real
        // contended fleet shows.
        if self.config.stall_rate > 0.0
            && self.unit(DOMAIN_STALL, id, worker as u64 + 1) < self.config.stall_rate
        {
            self.config.stall
        } else {
            Duration::ZERO
        }
    }

    fn kill_after(&self, worker: usize) -> Option<u64> {
        (self.config.kill_worker == Some(worker)).then_some(self.config.kill_after_serves)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(i: usize) -> ModuleKey {
        ModuleKey::new("s", &["<span>".to_owned(), i.to_string()])
    }

    #[test]
    fn default_plan_is_healthy() {
        let plan = FaultPlan::new(FaultConfig::default());
        for i in 0..64 {
            assert_eq!(plan.fault(&key(i)), FetchFault::None);
            assert_eq!(WorkerFaults::pre_serve_delay(&plan, i as u64), Duration::ZERO);
        }
    }

    #[test]
    fn same_seed_same_decisions() {
        let config = FaultConfig {
            seed: 42,
            fetch_miss_rate: 0.3,
            fetch_corrupt_rate: 0.2,
            stall_rate: 0.5,
            ..Default::default()
        };
        let a = FaultPlan::new(config);
        let b = FaultPlan::new(config);
        for i in 0..256 {
            // Repeated fetches of the same key advance its occurrence
            // counter identically on both plans.
            assert_eq!(a.fault(&key(i % 16)), b.fault(&key(i % 16)), "fetch {i}");
            assert_eq!(
                WorkerFaults::pre_serve_delay(&a, i as u64),
                WorkerFaults::pre_serve_delay(&b, i as u64),
                "stall {i}"
            );
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mk = |seed| {
            FaultPlan::new(FaultConfig {
                seed,
                fetch_miss_rate: 0.5,
                ..Default::default()
            })
        };
        let (a, b) = (mk(1), mk(2));
        let decisions_a: Vec<_> = (0..64).map(|i| a.fault(&key(i))).collect();
        let decisions_b: Vec<_> = (0..64).map(|i| b.fault(&key(i))).collect();
        assert_ne!(decisions_a, decisions_b);
    }

    #[test]
    fn rates_are_respected_in_aggregate() {
        let plan = FaultPlan::new(FaultConfig {
            seed: 7,
            fetch_miss_rate: 0.25,
            fetch_corrupt_rate: 0.25,
            ..Default::default()
        });
        let n = 4000;
        let mut misses = 0;
        let mut corruptions = 0;
        for i in 0..n {
            match plan.fault(&key(i)) {
                FetchFault::Miss => misses += 1,
                FetchFault::Corrupt => corruptions += 1,
                FetchFault::None => {}
            }
        }
        let miss_rate = f64::from(misses) / f64::from(n as u32);
        let corrupt_rate = f64::from(corruptions) / f64::from(n as u32);
        assert!((miss_rate - 0.25).abs() < 0.03, "{miss_rate}");
        assert!((corrupt_rate - 0.25).abs() < 0.03, "{corrupt_rate}");
    }

    #[test]
    fn occurrence_counter_makes_faults_transient() {
        // With a mid-range rate, a single key's fetch sequence mixes
        // faulty and healthy verdicts — the counter, not the key alone,
        // drives the decision.
        let plan = FaultPlan::new(FaultConfig {
            seed: 3,
            fetch_miss_rate: 0.5,
            ..Default::default()
        });
        let verdicts: Vec<_> = (0..64).map(|_| plan.fault(&key(0))).collect();
        assert!(verdicts.contains(&FetchFault::Miss));
        assert!(verdicts.contains(&FetchFault::None));
    }

    #[test]
    fn disk_corruption_is_per_key_and_deterministic() {
        let config = FaultConfig {
            seed: 11,
            disk_corrupt_rate: 0.5,
            ..Default::default()
        };
        let (a, b) = (FaultPlan::new(config), FaultPlan::new(config));
        let verdicts: Vec<_> = (0..64).map(|i| a.should_corrupt_disk(&key(i))).collect();
        // Occurrence-independent: asking again never changes the answer…
        for (i, &v) in verdicts.iter().enumerate() {
            assert_eq!(a.should_corrupt_disk(&key(i)), v, "replay {i}");
            assert_eq!(b.should_corrupt_disk(&key(i)), v, "twin plan {i}");
        }
        // …and a mid-range rate damages some keys but not all.
        assert!(verdicts.contains(&true));
        assert!(verdicts.contains(&false));
    }

    #[test]
    fn disk_corruption_rate_is_respected_in_aggregate() {
        let plan = FaultPlan::new(FaultConfig {
            seed: 13,
            disk_corrupt_rate: 0.2,
            ..Default::default()
        });
        let n = 4000;
        let hits = (0..n).filter(|&i| plan.should_corrupt_disk(&key(i))).count();
        let rate = hits as f64 / f64::from(n as u32);
        assert!((rate - 0.2).abs() < 0.03, "{rate}");
    }

    #[test]
    fn zero_disk_rate_never_corrupts() {
        let plan = FaultPlan::new(FaultConfig::default());
        assert!((0..64).all(|i| !plan.should_corrupt_disk(&key(i))));
    }

    #[test]
    fn full_rate_always_faults() {
        let plan = FaultPlan::new(FaultConfig {
            seed: 9,
            fetch_miss_rate: 1.0,
            stall_rate: 1.0,
            stall: Duration::from_millis(7),
            ..Default::default()
        });
        for i in 0..32 {
            assert_eq!(plan.fault(&key(i)), FetchFault::Miss);
            assert_eq!(WorkerFaults::pre_serve_delay(&plan, i as u64), Duration::from_millis(7));
        }
    }
}
