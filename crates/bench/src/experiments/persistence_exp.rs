//! Warm restart and cold-tier economics: what the persistent disk tier
//! buys. Three measurements against the same module library:
//!
//! 1. **Warm vs cold startup** — time from engine construction to the
//!    first served token, once encoding every module from scratch
//!    (cold) and once restoring a snapshot from the disk tier (warm).
//! 2. **Quantized capacity** — live bytes of the same library written
//!    as f32, fp16, and int8 cold records; the capacity multiplier is
//!    how many quantized libraries fit where one f32 library did.
//! 3. **Promote latency and drift** — per-module decode+dequantize time
//!    per encoding, and the worst int8 element drift against its
//!    per-row bound (`max|row| / 127`).

use super::Report;
use crate::emit::{fmt_time_s, Table};
use pc_cache::{ColdEncoding, DiskConfig, DiskTier, ModuleKey, StoreConfig};
use pc_model::{KvCache, Model, ModelConfig};
use pc_tokenizer::{Tokenizer, WordTokenizer};
use prompt_cache::{EngineConfig, PromptCache, ServeOptions, ServeRequest, Served};
use serde_json::json;
use std::path::{Path, PathBuf};
use std::time::Instant;

const DOC_WORDS: usize = 160;

fn doc() -> String {
    (0..DOC_WORDS).map(|i| format!("w{} ", i % 53)).collect()
}

fn schema() -> String {
    let doc = doc();
    format!(
        r#"<schema name="persist">preamble text<module name="doc">{doc}</module><module name="tail">closing words</module></schema>"#
    )
}

const PROMPT: &str = r#"<prompt schema="persist"><doc/><tail/>answer briefly</prompt>"#;

fn bare_engine(dir: &Path) -> PromptCache {
    let corpus = format!("{} preamble text closing words answer briefly", doc());
    let tokenizer = WordTokenizer::train(&[corpus.as_str()]);
    let vocab = tokenizer.vocab_size().max(64);
    PromptCache::new(
        Model::new(ModelConfig::llama_tiny(vocab), 6),
        tokenizer,
        EngineConfig::default()
            .store(StoreConfig::default().disk(DiskConfig::new(dir.to_path_buf()))),
    )
}

fn first_token(engine: &PromptCache) {
    engine
        .serve(
            &ServeRequest::new(PROMPT).options(ServeOptions::default().max_new_tokens(1)),
        )
        .map(Served::into_response)
        .expect("serve");
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "pc-bench-persist-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Startup-to-first-token, cold (encode everything) and warm (restore
/// the snapshot left by the previous "process"). Returns seconds.
fn startup_pair(dir: &Path) -> (f64, f64) {
    let cold_t = Instant::now();
    let engine = bare_engine(dir);
    engine.register_schema(&schema()).expect("register");
    first_token(&engine);
    let cold = cold_t.elapsed().as_secs_f64();
    engine.snapshot().expect("snapshot");
    drop(engine);

    let warm_t = Instant::now();
    let engine = bare_engine(dir);
    engine.restore().expect("restore");
    engine.register_schema(&schema()).expect("register");
    first_token(&engine);
    let warm = warm_t.elapsed().as_secs_f64();
    assert_eq!(
        engine.store_stats().misses,
        0,
        "a warm restart must not re-encode"
    );
    (cold, warm)
}

struct EncodingRow {
    label: &'static str,
    live_bytes: usize,
    multiplier: f64,
    promote_mean_s: f64,
    max_drift: f64,
    drift_bound: f64,
}

/// Writes `modules` into a fresh tier under `encoding`, then reads each
/// back, timing the promote and measuring element drift.
fn encoding_row(
    tag: &str,
    encoding: ColdEncoding,
    modules: &[(ModuleKey, std::sync::Arc<KvCache>)],
    f32_bytes: Option<usize>,
) -> EncodingRow {
    let dir = temp_dir(tag);
    let mut tier =
        DiskTier::open(DiskConfig::new(dir.clone()).encoding(encoding)).expect("open tier");
    for (key, cache) in modules {
        tier.put(key, cache, 1.0).expect("put");
    }
    let live_bytes = tier.live_bytes();

    let mut promote_total = 0.0f64;
    let mut max_drift = 0.0f64;
    let mut drift_bound = 0.0f64;
    for (key, original) in modules {
        let t = Instant::now();
        let got = tier.get(key);
        promote_total += t.elapsed().as_secs_f64();
        let pc_cache::DiskGet::Module(back, _) = got else {
            panic!("module lost on promote");
        };
        for layer in 0..original.num_layers() {
            let rows = [
                (original.keys(layer), back.keys(layer)),
                (original.values(layer), back.values(layer)),
            ];
            for (a, b) in rows {
                let bound = a.iter().fold(0.0f32, |m, x| m.max(x.abs())) / 127.0;
                drift_bound = drift_bound.max(f64::from(bound));
                for (x, y) in a.iter().zip(b) {
                    max_drift = max_drift.max(f64::from((x - y).abs()));
                }
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
    EncodingRow {
        label: encoding.label(),
        live_bytes,
        multiplier: f32_bytes.map_or(1.0, |f| f as f64 / live_bytes as f64),
        promote_mean_s: promote_total / modules.len() as f64,
        max_drift,
        drift_bound,
    }
}

/// Warm-restart and cold-tier figures. Full runs also write
/// `BENCH_persistence.json` at the working directory root.
pub fn persistence(quick: bool) -> Report {
    // 1. Startup-to-first-token, cold vs warm, over a few repetitions.
    let reps = if quick { 1 } else { 5 };
    let mut cold_s = 0.0;
    let mut warm_s = 0.0;
    for rep in 0..reps {
        let dir = temp_dir(&format!("startup-{rep}"));
        let (cold, warm) = startup_pair(&dir);
        cold_s += cold / reps as f64;
        warm_s += warm / reps as f64;
        let _ = std::fs::remove_dir_all(&dir);
    }

    // 2 & 3. The encoded library, written under each cold encoding.
    let dir = temp_dir("library");
    let engine = bare_engine(&dir);
    engine.register_schema(&schema()).expect("register");
    first_token(&engine);
    let modules: Vec<(ModuleKey, std::sync::Arc<KvCache>)> = engine
        .store()
        .snapshot()
        .into_iter()
        .map(|row| {
            let states = engine
                .store()
                .get(&row.key, pc_cache::Tier::Host)
                .expect("resident");
            (row.key, states)
        })
        .collect();
    let hot_bytes: usize = modules.iter().map(|(_, m)| m.size_bytes()).sum();
    drop(engine);
    let _ = std::fs::remove_dir_all(&dir);

    let f32_row = encoding_row("f32", ColdEncoding::F32, &modules, None);
    let fp16_row = encoding_row("fp16", ColdEncoding::Fp16, &modules, Some(f32_row.live_bytes));
    let int8_row = encoding_row("int8", ColdEncoding::Int8, &modules, Some(f32_row.live_bytes));
    assert!(
        f32_row.max_drift == 0.0,
        "f32 cold records must round-trip exactly"
    );
    assert!(
        int8_row.max_drift <= int8_row.drift_bound + 1e-6,
        "int8 drift {} exceeds bound {}",
        int8_row.max_drift,
        int8_row.drift_bound
    );

    let mut table = Table::new(&[
        "Encoding",
        "library bytes",
        "capacity ×",
        "promote mean",
        "max drift",
    ]);
    let row_json = |r: &EncodingRow| {
        json!({
            "encoding": r.label,
            "live_bytes": r.live_bytes,
            "capacity_multiplier": r.multiplier,
            "promote_mean_s": r.promote_mean_s,
            "max_drift": r.max_drift,
            "drift_bound": r.drift_bound,
        })
    };
    for r in [&f32_row, &fp16_row, &int8_row] {
        table.row(&[
            r.label.into(),
            format!("{}", r.live_bytes),
            format!("{:.2}×", r.multiplier),
            fmt_time_s(r.promote_mean_s),
            format!("{:.2e}", r.max_drift),
        ]);
    }

    let startup = json!({
        "reps": reps,
        "cold_s": cold_s,
        "warm_s": warm_s,
        "warm_speedup": cold_s / warm_s.max(1e-9),
    });
    let json = json!({
        "modules": modules.len(),
        "hot_bytes": hot_bytes,
        "startup": startup,
        "encodings": [row_json(&f32_row), row_json(&fp16_row), row_json(&int8_row)],
    });

    // The perf-trajectory file: full runs only (quick doubles as the
    // test path and must stay side-effect free).
    let mut bench_path = None;
    if !quick {
        let path = "BENCH_persistence.json";
        std::fs::write(path, serde_json::to_string_pretty(&json).expect("serialise"))
            .expect("write BENCH_persistence.json");
        bench_path = Some(path.to_owned());
    }

    Report {
        id: "persistence",
        title: "Warm restart and quantized cold-tier capacity",
        markdown: format!(
            "{}\nstartup-to-first-token: cold {} vs warm {} ({:.1}× speedup, {} reps); \
             {} modules, {} hot bytes{}\n",
            table.to_markdown(),
            fmt_time_s(cold_s),
            fmt_time_s(warm_s),
            cold_s / warm_s.max(1e-9),
            reps,
            modules.len(),
            hot_bytes,
            bench_path
                .as_deref()
                .map(|p| format!("; trajectory at `{p}`"))
                .unwrap_or_default()
        ),
        json,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn persistence_invariants_hold() {
        let r = persistence(true);
        assert!(r.json["modules"].as_u64().unwrap() >= 2);
        let startup = &r.json["startup"];
        assert!(startup["cold_s"].as_f64().unwrap() > 0.0);
        assert!(startup["warm_s"].as_f64().unwrap() > 0.0);
        let encodings = r.json["encodings"].as_array().unwrap();
        assert_eq!(encodings.len(), 3);
        // f32 is the identity encoding; fp16 halves states, int8
        // quarters them (amortising the shared header and per-row
        // scales), so the multipliers are strictly ordered.
        assert_eq!(encodings[0]["max_drift"].as_f64().unwrap(), 0.0);
        let fp16_mult = encodings[1]["capacity_multiplier"].as_f64().unwrap();
        let int8_mult = encodings[2]["capacity_multiplier"].as_f64().unwrap();
        assert!(fp16_mult > 1.5, "{fp16_mult}");
        assert!(int8_mult > fp16_mult, "{int8_mult} vs {fp16_mult}");
        // Quick mode writes no artifact.
        assert!(!std::path::Path::new("BENCH_persistence.json").exists());
    }
}
