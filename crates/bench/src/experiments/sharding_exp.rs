//! Sharded-fleet economics: what schema-affinity routing buys as the
//! fleet widens. The same prompt mix is replayed through a [`Router`]
//! at shard counts {1, 2, 4} with affinity routing on and off, and
//! every configuration is held to the fleet's core invariant — output
//! **byte-identical** to a single-process engine — while we measure:
//!
//! 1. **Store hit rate** — affinity keeps a schema's requests on the
//!    workers that own (and pre-encoded) its modules; spreading them
//!    least-loaded re-encodes the same modules on every worker they
//!    touch.
//! 2. **Queue wait** — time from submission to worker pickup, per
//!    request, as shards absorb the backlog.
//! 3. **Shed rate** — requests dropped before service (zero on a
//!    healthy fleet; recorded so regressions surface in the artifact).

use super::Report;
use crate::emit::{fmt_time_s, Table};
use pc_model::ModelConfig;
use pc_server::wire::TokenizerSpec;
use pc_server::{EngineBlueprint, FleetConfig, Router, SubmitRequest};
use prompt_cache::ServeRequest;
use serde_json::json;
use std::time::Duration;

const CORPUS: &str = "tokyo offers temples gardens and remarkable food \
    kyoto keeps quiet shrines old wooden lanes \
    the miami coast has warm beaches surf sun \
    plan a day trip what should i pack answer briefly please";

const SCHEMA_EAST: &str = r#"<schema name="east">
    <module name="tokyo">tokyo offers temples gardens and remarkable food</module>
    <module name="kyoto">kyoto keeps quiet shrines old wooden lanes</module>
  </schema>"#;

const SCHEMA_WEST: &str = r#"<schema name="west">
    <module name="miami">the miami coast has warm beaches surf sun</module>
  </schema>"#;

fn blueprint() -> EngineBlueprint {
    EngineBlueprint::new(
        ModelConfig::llama_tiny(64),
        11,
        TokenizerSpec::Word {
            corpus: vec![CORPUS.to_owned()],
        },
    )
}

fn prompts(reps: usize) -> Vec<String> {
    let mut out = Vec::new();
    for i in 0..reps {
        out.push(format!(
            r#"<prompt schema="east"><tokyo/>plan a day trip please q{i}</prompt>"#
        ));
        out.push(format!(
            r#"<prompt schema="east"><kyoto/>what should i pack q{i}</prompt>"#
        ));
        out.push(format!(
            r#"<prompt schema="west"><miami/>answer briefly q{i}</prompt>"#
        ));
    }
    out
}

/// Ground truth: the same prompts on one single-process engine built
/// from the same blueprint.
fn single_engine_outputs(prompts: &[String]) -> Vec<(String, Vec<u32>)> {
    let engine = blueprint().build();
    engine.register_schema(SCHEMA_EAST).expect("register east");
    engine.register_schema(SCHEMA_WEST).expect("register west");
    prompts
        .iter()
        .map(|p| {
            let response = engine
                .serve(&ServeRequest::new(p).max_new_tokens(3))
                .expect("serve")
                .into_response();
            (response.text, response.tokens)
        })
        .collect()
}

struct ConfigRow {
    shards: usize,
    affinity: bool,
    hits: u64,
    misses: u64,
    hit_rate: f64,
    mean_queue_wait_s: f64,
    shed: usize,
    shed_rate: f64,
    routed_affinity: u64,
    routed_spilled: u64,
    rerouted: u64,
}

/// Replays the prompt mix through one fleet configuration, asserting
/// byte-identity against `expected` and returning the measured row.
fn run_config(
    shards: usize,
    affinity: bool,
    prompts: &[String],
    expected: &[(String, Vec<u32>)],
) -> ConfigRow {
    let router = Router::start(
        blueprint(),
        FleetConfig::default()
            .shards(shards)
            .affinity(affinity)
            .queue_capacity(prompts.len().max(64)),
    );
    router.register_schema(SCHEMA_EAST).expect("register east");
    router.register_schema(SCHEMA_WEST).expect("register west");

    let handles: Vec<_> = prompts
        .iter()
        .map(|p| {
            router
                .submit(&SubmitRequest::new(p.clone()).max_new_tokens(3).blocking(true))
                .expect("blocking submit cannot fail")
        })
        .collect();

    let mut got = Vec::new();
    let mut shed = 0usize;
    let mut queue_wait = Duration::ZERO;
    for handle in handles {
        let result = handle.wait().expect("router alive");
        queue_wait += result.queue_time;
        match result.outcome.ok() {
            Some(response) => got.push((response.text, response.tokens)),
            None => shed += 1,
        }
    }
    assert_eq!(shed, 0, "a healthy fleet sheds nothing");
    assert_eq!(
        got, expected,
        "shards={shards} affinity={affinity} must match single-process output"
    );

    let (hits, misses) = router
        .workers()
        .iter()
        .fold((0u64, 0u64), |(h, m), w| (h + w.store_hits, m + w.store_misses));
    let (routed_affinity, routed_spilled) = router.routing_split();
    let rerouted = router.rerouted_total();
    router.shutdown();

    ConfigRow {
        shards,
        affinity,
        hits,
        misses,
        hit_rate: hits as f64 / (hits + misses).max(1) as f64,
        mean_queue_wait_s: queue_wait.as_secs_f64() / prompts.len() as f64,
        shed,
        shed_rate: shed as f64 / prompts.len() as f64,
        routed_affinity,
        routed_spilled,
        rerouted,
    }
}

/// Sharded-fleet routing figures. Full runs also write
/// `BENCH_sharding.json` at the working directory root.
pub fn sharding(quick: bool) -> Report {
    let reps = if quick { 3 } else { 8 };
    let prompts = prompts(reps);
    let expected = single_engine_outputs(&prompts);

    let mut rows = Vec::new();
    for shards in [1usize, 2, 4] {
        for affinity in [true, false] {
            rows.push(run_config(shards, affinity, &prompts, &expected));
        }
    }

    let mut table = Table::new(&[
        "Shards",
        "Affinity",
        "hit rate",
        "queue wait (mean)",
        "shed rate",
        "owner-routed",
    ]);
    for r in &rows {
        table.row(&[
            format!("{}", r.shards),
            if r.affinity { "on" } else { "off" }.into(),
            format!("{:.3}", r.hit_rate),
            fmt_time_s(r.mean_queue_wait_s),
            format!("{:.3}", r.shed_rate),
            format!("{}", r.routed_affinity),
        ]);
    }

    let json = json!({
        "prompts": prompts.len(),
        "schemas": 2,
        "configs": rows
            .iter()
            .map(|r| {
                json!({
                    "shards": r.shards,
                    "affinity": r.affinity,
                    "hits": r.hits,
                    "misses": r.misses,
                    "hit_rate": r.hit_rate,
                    "mean_queue_wait_s": r.mean_queue_wait_s,
                    "shed": r.shed,
                    "shed_rate": r.shed_rate,
                    "routed_affinity": r.routed_affinity,
                    "routed_spilled": r.routed_spilled,
                    "rerouted": r.rerouted,
                    "byte_identical": true,
                })
            })
            .collect::<Vec<_>>(),
    });

    // The perf-trajectory file: full runs only (quick doubles as the
    // test path and must stay side-effect free).
    let mut bench_path = None;
    if !quick {
        let path = "BENCH_sharding.json";
        std::fs::write(path, serde_json::to_string_pretty(&json).expect("serialise"))
            .expect("write BENCH_sharding.json");
        bench_path = Some(path.to_owned());
    }

    Report {
        id: "sharding",
        title: "Sharded fleet: affinity routing vs least-loaded spread",
        markdown: format!(
            "{}\n{} prompts over 2 schemas; every configuration byte-identical \
             to a single-process engine{}\n",
            table.to_markdown(),
            prompts.len(),
            bench_path
                .as_deref()
                .map(|p| format!("; trajectory at `{p}`"))
                .unwrap_or_default()
        ),
        json,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharding_invariants_hold() {
        let r = sharding(true);
        let configs = r.json["configs"].as_array().unwrap();
        assert_eq!(configs.len(), 6, "3 shard counts x affinity on/off");
        for c in configs {
            assert!(c["byte_identical"].as_bool().unwrap());
            assert_eq!(c["shed"].as_u64().unwrap(), 0);
        }
        // At 4 shards, affinity routing serves from the owners that
        // pre-encoded the schema modules; spreading least-loaded makes
        // non-owners re-encode, so its hit rate cannot be higher.
        let rate = |shards: u64, affinity: bool| {
            configs
                .iter()
                .find(|c| {
                    c["shards"].as_u64() == Some(shards)
                        && c["affinity"].as_bool() == Some(affinity)
                })
                .and_then(|c| c["hit_rate"].as_f64())
                .unwrap()
        };
        assert!(
            rate(4, true) >= rate(4, false),
            "affinity on {} must not trail affinity off {}",
            rate(4, true),
            rate(4, false)
        );
        // Quick mode writes no artifact.
        assert!(!std::path::Path::new("BENCH_sharding.json").exists());
    }
}
