//! Position-reuse A/B: a shuffled-position RAG replay served with
//! deferred RoPE (one canonical entry per chunk, rotated to its placement
//! at read time) vs the baked-position baseline (an entry is only valid
//! at the exact offset it was encoded at, so shuffled retrieval orders
//! miss and re-encode per-position duplicates).
//!
//! The replay imports `IMPORTS_PER_QUERY` chunks per query in a
//! deterministically shuffled order. The deferred arm serves every
//! placement from the one canonical entry; the baked arm hits only when
//! a (chunk, offset) pair recurs, paying fresh prefill — and a duplicate
//! store entry — for every new offset. Reported per arm: placement hit
//! rate, store entries, and mean TTFT; plus the correctness oracles
//! (shift-0 byte-identity across the A/B knob, shifted-placement logits
//! within the fidelity bound of a full prefill).

use super::Report;
use crate::emit::{fmt_time_s, Table};
use pc_cache::StoreConfig;
use pc_model::{fidelity, KvView, Model, ModelConfig};
use pc_tokenizer::{Tokenizer, WordTokenizer};
use prompt_cache::{EngineConfig, PromptCache, ServeOptions, ServeRequest, Served};
use serde_json::json;
use std::collections::HashSet;

const CHUNK_WORDS: usize = 12;
const IMPORTS_PER_QUERY: usize = 3;
const QUESTION: &str = "answer the question now";
const MAX_NEW_TOKENS: usize = 4;

/// Deterministic LCG so the replay (and the artifact) is reproducible.
fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

/// Chunk lengths vary (as retrieved passages do), so a chunk's placement
/// offset depends on which chunks precede it — the combinatorial spread
/// that starves an exact-position cache.
fn chunk_len(i: usize) -> usize {
    CHUNK_WORDS + (i % 5)
}

fn chunk_text(i: usize) -> String {
    (0..chunk_len(i))
        .map(|w| format!("c{i}w{w}"))
        .collect::<Vec<_>>()
        .join(" ")
}

fn build_engine(num_chunks: usize, config: EngineConfig) -> PromptCache {
    let corpus: String = (0..num_chunks)
        .map(chunk_text)
        .collect::<Vec<_>>()
        .join(" ")
        + " "
        + QUESTION;
    let tokenizer = WordTokenizer::train(&[corpus.as_str()]);
    let vocab = tokenizer.vocab_size().max(64);
    let engine = PromptCache::new(
        Model::new(ModelConfig::llama_tiny(vocab), 11),
        tokenizer,
        config,
    );
    let mut schema = String::from(r#"<schema name="corpus">"#);
    for i in 0..num_chunks {
        schema.push_str(&format!(
            r#"<module name="chunk-{i}">{}</module>"#,
            chunk_text(i)
        ));
    }
    schema.push_str("</schema>");
    engine.register_schema(&schema).expect("register");
    engine
}

/// The shuffled retrieval orders: `queries` draws of `IMPORTS_PER_QUERY`
/// distinct chunks each, Fisher–Yates-shuffled with the seeded LCG.
fn retrieval_orders(num_chunks: usize, queries: usize) -> Vec<Vec<usize>> {
    let mut state = 0x5eed_cafe_u64;
    (0..queries)
        .map(|_| {
            let mut ids: Vec<usize> = (0..num_chunks).collect();
            for i in (1..ids.len()).rev() {
                let j = (lcg(&mut state) as usize) % (i + 1);
                ids.swap(i, j);
            }
            ids.truncate(IMPORTS_PER_QUERY);
            ids
        })
        .collect()
}

struct ArmResult {
    hits: u64,
    placements: u64,
    store_entries: usize,
    ttft_mean_s: f64,
    relocations: u64,
}

impl ArmResult {
    fn hit_rate(&self) -> f64 {
        self.hits as f64 / self.placements.max(1) as f64
    }
}

/// Deferred arm: every chunk is imported wherever retrieval ranked it;
/// the engine relocates the canonical entry at read time.
fn run_deferred(num_chunks: usize, orders: &[Vec<usize>]) -> ArmResult {
    let engine = build_engine(
        num_chunks,
        EngineConfig::default().store(StoreConfig::default().module_analytics(true)),
    );
    assert!(engine.deferred_rope_effective());
    let opts = ServeOptions::default().max_new_tokens(MAX_NEW_TOKENS);
    let (mut hits, mut placements, mut ttft) = (0u64, 0u64, 0.0f64);
    for order in orders {
        let mut prompt = String::from(r#"<prompt schema="corpus">"#);
        for id in order {
            prompt.push_str(&format!("<chunk-{id}/>"));
        }
        prompt.push_str(QUESTION);
        prompt.push_str("</prompt>");
        let r = engine
            .serve(&ServeRequest::new(&prompt).options(opts.clone()))
            .map(Served::into_response)
            .expect("serve");
        assert_eq!(
            r.stats.cached_tokens,
            order.iter().map(|&id| chunk_len(id)).sum::<usize>(),
            "a shuffled placement missed the canonical entry"
        );
        hits += order.len() as u64;
        placements += order.len() as u64;
        ttft += r.timings.ttft.as_secs_f64();
    }
    let relocations = engine
        .store()
        .analytics()
        .map(|a| a.snapshot().iter().map(|m| m.relocations).sum())
        .unwrap_or(0);
    ArmResult {
        hits,
        placements,
        store_entries: engine.store().len(),
        ttft_mean_s: ttft / orders.len().max(1) as f64,
        relocations,
    }
}

/// Baked-position arm: an entry only serves at the offset it was encoded
/// at. A placement hits iff that (chunk, offset) pair was encoded before
/// (at registration, chunk `i` sits at offset `i × CHUNK_WORDS`); every
/// other placement pays fresh prefill — modelled by inlining the chunk
/// text — and stores a per-position duplicate.
fn run_baked(num_chunks: usize, orders: &[Vec<usize>]) -> ArmResult {
    let engine = build_engine(num_chunks, EngineConfig::default());
    let opts = ServeOptions::default().max_new_tokens(MAX_NEW_TOKENS);
    // At registration every chunk was encoded at its schema layout
    // offset — the cumulative length of the chunks before it.
    let mut encoded: HashSet<(usize, usize)> = HashSet::new();
    let mut layout = 0usize;
    for i in 0..num_chunks {
        encoded.insert((i, layout));
        layout += chunk_len(i);
    }
    let (mut hits, mut placements, mut ttft) = (0u64, 0u64, 0.0f64);
    for order in orders {
        let mut prompt = String::from(r#"<prompt schema="corpus">"#);
        let mut cursor = 0usize;
        for id in order.iter() {
            let offset = cursor;
            cursor += chunk_len(*id);
            if encoded.contains(&(*id, offset)) {
                // Exact-position hit: serve the stored entry. The import
                // lands at `offset` because every slot is chunk-sized.
                prompt.push_str(&format!("<chunk-{id}/>"));
                hits += 1;
            } else {
                // Miss: the baked world re-encodes at the new offset.
                prompt.push_str(&chunk_text(*id));
                prompt.push(' ');
                encoded.insert((*id, offset));
            }
            placements += 1;
        }
        prompt.push_str(QUESTION);
        prompt.push_str("</prompt>");
        let r = engine
            .serve(&ServeRequest::new(&prompt).options(opts.clone()))
            .map(Served::into_response)
            .expect("serve");
        ttft += r.timings.ttft.as_secs_f64();
    }
    ArmResult {
        hits,
        placements,
        // The simulated store: one entry per (chunk, offset) ever encoded.
        store_entries: encoded.len(),
        ttft_mean_s: ttft / orders.len().max(1) as f64,
        relocations: 0,
    }
}

/// Shift-0 oracle: with the module at its canonical offset, the deferred
/// engine's output is byte-identical to the legacy (`deferred_rope(false)`)
/// engine's.
fn shift0_byte_identical(num_chunks: usize) -> bool {
    let deferred = build_engine(num_chunks, EngineConfig::default());
    let legacy = build_engine(num_chunks, EngineConfig::default().deferred_rope(false));
    let prompt = format!(r#"<prompt schema="corpus"><chunk-0/>{QUESTION}</prompt>"#);
    let opts = ServeOptions::default().max_new_tokens(MAX_NEW_TOKENS);
    let a = deferred
        .serve(&ServeRequest::new(&prompt).options(opts.clone()))
        .map(Served::into_response)
        .expect("serve");
    let b = legacy
        .serve(&ServeRequest::new(&prompt).options(opts))
        .map(Served::into_response)
        .expect("serve");
    a.tokens == b.tokens && a.text == b.text
}

/// Shifted oracle: the canonical entry relocated by a non-zero offset
/// yields logits within the fidelity bound of a fresh full prefill at the
/// placed positions.
fn shifted_fidelity(num_chunks: usize, offset: usize) -> fidelity::LogitDistance {
    let engine = build_engine(num_chunks, EngineConfig::default());
    let states = engine
        .schema_span_states("corpus")
        .into_iter()
        .next()
        .flatten()
        .expect("chunk 0 encoded");
    let model = engine.model();
    let module_tokens = engine.tokenizer().encode(&chunk_text(0));
    let question_tokens = engine.tokenizer().encode(QUESTION);

    let mut full_tokens = module_tokens.clone();
    full_tokens.extend(&question_tokens);
    let positions: Vec<usize> = (offset..offset + full_tokens.len()).collect();
    let mut fresh = KvView::with_shape(states.num_layers(), states.kv_dim());
    let reference = model
        .prefill(&full_tokens, &positions, &mut fresh)
        .expect("prefill");

    let mut view = KvView::with_shape(states.num_layers(), states.kv_dim());
    view.push_segment_shifted(states.clone(), 0, states.len(), offset as isize)
        .expect("relocate");
    let q_positions: Vec<usize> =
        (offset + module_tokens.len()..offset + full_tokens.len()).collect();
    let reused = model
        .prefill(&question_tokens, &q_positions, &mut view)
        .expect("prefill");
    fidelity::logit_distance(&reference, &reused)
}

/// Shuffled-position RAG replay: hit rate, store entries, and TTFT with
/// deferred RoPE on vs the baked-position baseline. Full runs write
/// `BENCH_position_reuse.json` at the working directory root.
pub fn position_reuse(quick: bool) -> Report {
    let num_chunks = if quick { 6 } else { 12 };
    let queries = if quick { 12 } else { 48 };
    let orders = retrieval_orders(num_chunks, queries);

    let on = run_deferred(num_chunks, &orders);
    let off = run_baked(num_chunks, &orders);
    let shift0_identical = shift0_byte_identical(num_chunks);
    let shifted = shifted_fidelity(num_chunks, 2 * CHUNK_WORDS);

    // The acceptance bar: deferred reuse at least doubles the baked hit
    // rate, stores exactly one entry per unique chunk, and both
    // correctness oracles hold.
    let hit_ratio = on.hit_rate() / off.hit_rate().max(1e-9);
    assert!(
        hit_ratio >= 2.0,
        "deferred hit rate {:.3} is not 2x the baked {:.3}",
        on.hit_rate(),
        off.hit_rate()
    );
    assert_eq!(on.store_entries, num_chunks, "per-position duplicates appeared");
    assert!(off.store_entries > num_chunks, "baked arm never duplicated");
    assert!(shift0_identical, "shift-0 output diverged from the legacy path");
    assert!(shifted.argmax_agrees, "shifted placement changed the argmax");
    assert!(
        shifted.kl_divergence < 1e-3,
        "shifted placement KL {} above bound",
        shifted.kl_divergence
    );

    let mut table = Table::new(&[
        "Arm",
        "Hit rate",
        "Store entries",
        "TTFT mean",
        "Relocations",
    ]);
    table.row(&[
        "deferred RoPE".to_owned(),
        format!("{:.3}", on.hit_rate()),
        format!("{}", on.store_entries),
        fmt_time_s(on.ttft_mean_s),
        format!("{}", on.relocations),
    ]);
    table.row(&[
        "baked positions".to_owned(),
        format!("{:.3}", off.hit_rate()),
        format!("{}", off.store_entries),
        fmt_time_s(off.ttft_mean_s),
        "-".to_owned(),
    ]);

    let arm_json = |m: &ArmResult| {
        json!({
            "hits": m.hits,
            "placements": m.placements,
            "hit_rate": m.hit_rate(),
            "store_entries": m.store_entries,
            "ttft_mean_s": m.ttft_mean_s,
        })
    };
    let deferred_json = json!({
        "hits": on.hits,
        "placements": on.placements,
        "hit_rate": on.hit_rate(),
        "store_entries": on.store_entries,
        "ttft_mean_s": on.ttft_mean_s,
        "relocations": on.relocations,
    });
    let oracles = json!({
        "shift0_byte_identical": shift0_identical,
        "shifted_argmax_agrees": shifted.argmax_agrees,
        "shifted_max_abs_diff": shifted.max_abs_diff,
        "shifted_kl_divergence": shifted.kl_divergence,
    });
    let json = json!({
        "chunks": num_chunks,
        "chunk_tokens": CHUNK_WORDS,
        "imports_per_query": IMPORTS_PER_QUERY,
        "queries": queries,
        "max_new_tokens": MAX_NEW_TOKENS,
        "deferred_on": deferred_json,
        "baked_off": arm_json(&off),
        "hit_rate_ratio_on_over_off": hit_ratio,
        "oracles": oracles,
    });

    // Perf-trajectory artifact: full runs only (quick doubles as the test
    // path and must stay side-effect free).
    let mut bench_path = None;
    if !quick {
        let path = "BENCH_position_reuse.json";
        std::fs::write(path, serde_json::to_string_pretty(&json).expect("serialise"))
            .expect("write BENCH_position_reuse.json");
        bench_path = Some(path.to_owned());
    }

    Report {
        id: "position_reuse",
        title: "Position-independent modules: shuffled-position RAG replay, deferred RoPE vs baked positions (measured)",
        markdown: format!(
            "{}\nhit-rate ratio on/off {hit_ratio:.2}x; shift-0 byte-identical: {shift0_identical}; \
             shifted KL {:.2e}{}\n",
            table.to_markdown(),
            shifted.kl_divergence,
            bench_path
                .as_deref()
                .map(|p| format!("; trajectory at `{p}`"))
                .unwrap_or_default()
        ),
        json,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn position_reuse_ab_holds() {
        let r = position_reuse(true);
        let on = &r.json["deferred_on"];
        let off = &r.json["baked_off"];
        // Deferred serves every shuffled placement from one entry per
        // chunk; the baked baseline misses and duplicates.
        assert_eq!(on["hit_rate"].as_f64().unwrap(), 1.0);
        assert_eq!(
            on["store_entries"].as_u64().unwrap(),
            r.json["chunks"].as_u64().unwrap()
        );
        assert!(off["hit_rate"].as_f64().unwrap() < 0.5);
        assert!(off["store_entries"].as_u64().unwrap() > r.json["chunks"].as_u64().unwrap());
        assert!(r.json["hit_rate_ratio_on_over_off"].as_f64().unwrap() >= 2.0);
        assert!(on["relocations"].as_u64().unwrap() > 0);
        assert!(r.json["oracles"]["shift0_byte_identical"].as_bool().unwrap());
        // Quick mode writes no artifact.
        assert!(!std::path::Path::new("BENCH_position_reuse.json").exists());
    }
}
