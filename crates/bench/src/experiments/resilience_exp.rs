//! Chaos replay: the resilience layer under deterministic injected
//! faults. Replays one Poisson trace twice — once healthy, once with a
//! seeded [`pc_faults::FaultPlan`] injecting cache-fetch misses,
//! checksum corruption, and worker stalls while every request carries a
//! deadline — and reports what the failure modes cost: shed rate, queue
//! wait percentiles, degraded (recomputed) serves, interrupted partials.
//!
//! The headline guarantee is checked directly: a serve that degrades
//! (recomputes a lost or corrupt module) produces **byte-identical**
//! output to the healthy cached serve.

use super::Report;
use crate::emit::{fmt_time_s, Table};
use pc_cache::StoreConfig;
use pc_faults::{FaultConfig, FaultPlan};
use pc_model::{Model, ModelConfig};
use pc_server::trace::{poisson_trace, replay, TraceEvent};
use pc_server::{Server, ServerConfig};
use pc_tokenizer::{Tokenizer, WordTokenizer};
use prompt_cache::{EngineConfig, PromptCache, ServeOptions};
use serde_json::json;
use std::sync::Arc;
use std::time::Duration;
use prompt_cache::{ServeRequest, Served};

const DOC_WORDS: usize = 120;

fn doc() -> String {
    (0..DOC_WORDS).map(|i| format!("w{} ", i % 53)).collect()
}

fn build_engine() -> PromptCache {
    let doc = doc();
    let corpus = format!("{doc} preamble text answer briefly q0 q1 q2 q3");
    let tokenizer = WordTokenizer::train(&[corpus.as_str()]);
    let vocab = tokenizer.vocab_size().max(64);
    let engine = PromptCache::new(
        Model::new(ModelConfig::llama_tiny(vocab), 6),
        tokenizer,
        EngineConfig::default().// Checksums on so injected corruption is *detected* and
            // repaired rather than silently served.
            store(StoreConfig::default().verify_checksums(true)),
    );
    engine
        .register_schema(&format!(
            r#"<schema name="res">preamble text<module name="doc">{doc}</module></schema>"#
        ))
        .expect("register");
    engine
}

fn prompts() -> Vec<String> {
    (0..4)
        .map(|i| format!(r#"<prompt schema="res"><doc/>answer briefly q{i}</prompt>"#))
        .collect()
}

struct ModeResult {
    mode: &'static str,
    completed: u64,
    interrupted: u64,
    shed: u64,
    failed: u64,
    degraded_serves: u64,
    queue_p50_s: f64,
    queue_p99_s: f64,
    ttft_mean_s: f64,
}

impl ModeResult {
    fn shed_rate(&self) -> f64 {
        let total = self.completed + self.shed + self.failed;
        if total == 0 {
            0.0
        } else {
            self.shed as f64 / total as f64
        }
    }
}

fn run_mode(
    mode: &'static str,
    faults: Option<FaultConfig>,
    deadline: Option<Duration>,
    prompts: &[String],
    trace: &[TraceEvent],
) -> ModeResult {
    let engine = build_engine();
    let plan = faults.map(|config| Arc::new(FaultPlan::new(config)));
    if let Some(plan) = &plan {
        engine.set_fetch_fault_injector(Some(plan.clone()));
    }
    let server = Server::start(
        engine,
        ServerConfig::default().workers(2).queue_capacity(256),
    );
    if let Some(plan) = &plan {
        server.set_worker_faults(Some(plan.clone()));
    }
    let mut options = ServeOptions::default().max_new_tokens(1);
    if let Some(deadline) = deadline {
        options = options.deadline(deadline);
    }
    let report = replay(&server, prompts, trace, &options);
    let degraded_serves = server
        .metrics_text()
        .lines()
        .find_map(|l| l.strip_prefix("pc_degraded_serves_total "))
        .and_then(|v| v.trim().parse::<u64>().ok())
        .unwrap_or(0);
    server.shutdown();

    let secs = |d: Option<Duration>| d.unwrap_or_default().as_secs_f64();
    ModeResult {
        mode,
        completed: report.completed,
        interrupted: report.interrupted,
        shed: report.shed,
        failed: report.failed,
        degraded_serves,
        queue_p50_s: secs(report.queue.percentile(50.0)),
        queue_p99_s: secs(report.queue.percentile(99.0)),
        ttft_mean_s: secs(report.ttft.mean()),
    }
}

/// Chaos replay A/B: a healthy run vs the same trace under injected
/// cache faults and worker stalls with per-request deadlines. Full runs
/// also write `BENCH_resilience.json` at the working directory root.
pub fn resilience(quick: bool) -> Report {
    let prompts = prompts();
    let n = if quick { 12 } else { 80 };
    let rate_hz = if quick { 200.0 } else { 300.0 };
    let trace = poisson_trace(n, rate_hz, prompts.len(), 17);

    let healthy = run_mode("healthy", None, None, &prompts, &trace);
    let chaos = run_mode(
        "chaos",
        Some(FaultConfig {
            seed: 29,
            fetch_miss_rate: 0.3,
            fetch_corrupt_rate: 0.1,
            stall_rate: 0.3,
            stall: Duration::from_millis(15),
            ..Default::default()
        }),
        // Tight enough that the stall-induced queue tail overruns it —
        // the shed and interrupted paths show up in the report.
        Some(Duration::from_millis(40)),
        &prompts,
        &trace,
    );

    // The degradation guarantee, checked outside the replay: with every
    // fetch reporting the cached entry lost, the engine recomputes the
    // module and the output stays byte-identical to the healthy serve.
    let reference = build_engine();
    let lossy = build_engine();
    lossy.set_fetch_fault_injector(Some(Arc::new(FaultPlan::new(FaultConfig {
        fetch_miss_rate: 1.0,
        ..Default::default()
    }))));
    let opts = ServeOptions::default().max_new_tokens(4);
    let mut identical = 0usize;
    let mut degraded_spans = 0usize;
    for prompt in &prompts {
        let healthy_serve = reference.serve(&ServeRequest::new(prompt).options(opts.clone())).map(Served::into_response).expect("healthy serve");
        let degraded_serve = lossy.serve(&ServeRequest::new(prompt).options(opts.clone())).map(Served::into_response).expect("degraded serve");
        assert_eq!(
            degraded_serve.tokens, healthy_serve.tokens,
            "degraded output diverged: {prompt}"
        );
        degraded_spans += degraded_serve.stats.degraded_spans;
        identical += 1;
    }
    assert!(degraded_spans > 0, "full miss injection must force recomputes");

    let mut table = Table::new(&[
        "Mode",
        "completed",
        "interrupted",
        "shed",
        "degraded",
        "shed rate",
        "queue p50",
        "queue p99",
        "TTFT mean",
    ]);
    let mode_json = |m: &ModeResult| {
        json!({
            "mode": m.mode,
            "completed": m.completed,
            "interrupted": m.interrupted,
            "shed": m.shed,
            "failed": m.failed,
            "degraded_serves": m.degraded_serves,
            "shed_rate": m.shed_rate(),
            "queue_p50_s": m.queue_p50_s,
            "queue_p99_s": m.queue_p99_s,
            "ttft_mean_s": m.ttft_mean_s,
        })
    };
    for m in [&healthy, &chaos] {
        table.row(&[
            m.mode.into(),
            format!("{}", m.completed),
            format!("{}", m.interrupted),
            format!("{}", m.shed),
            format!("{}", m.degraded_serves),
            format!("{:.1}%", m.shed_rate() * 100.0),
            fmt_time_s(m.queue_p50_s),
            fmt_time_s(m.queue_p99_s),
            fmt_time_s(m.ttft_mean_s),
        ]);
    }
    let json = json!({
        "requests": n,
        "deadline_ms": 40,
        "identical_degraded_outputs": identical,
        "degraded_spans_under_full_miss": degraded_spans,
        "modes": [mode_json(&healthy), mode_json(&chaos)],
    });

    // The perf-trajectory file: full runs only (quick doubles as the test
    // path and must stay side-effect free).
    let mut bench_path = None;
    if !quick {
        let path = "BENCH_resilience.json";
        std::fs::write(
            path,
            serde_json::to_string_pretty(&json).expect("serialise"),
        )
        .expect("write BENCH_resilience.json");
        bench_path = Some(path.to_owned());
    }

    Report {
        id: "resilience",
        title: "Chaos replay: deadlines, shedding, and graceful degradation under injected faults",
        markdown: format!(
            "{}\n{identical}/{} degraded serves byte-identical to healthy; \
             {} serves recomputed lost/corrupt modules under chaos{}\n",
            table.to_markdown(),
            prompts.len(),
            chaos.degraded_serves,
            bench_path
                .as_deref()
                .map(|p| format!("; trajectory at `{p}`"))
                .unwrap_or_default()
        ),
        json,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resilience_invariants_hold() {
        let r = resilience(true);
        assert_eq!(r.json["identical_degraded_outputs"].as_u64().unwrap(), 4);
        assert!(r.json["degraded_spans_under_full_miss"].as_u64().unwrap() > 0);
        let modes = r.json["modes"].as_array().unwrap();
        let healthy = &modes[0];
        let chaos = &modes[1];
        // The healthy run serves everything; nothing degrades or sheds.
        assert_eq!(healthy["completed"].as_u64().unwrap(), 12);
        assert_eq!(healthy["shed"].as_u64().unwrap(), 0);
        assert_eq!(healthy["degraded_serves"].as_u64().unwrap(), 0);
        // Under chaos every request is accounted for — served (possibly
        // interrupted), shed, or failed — and the seeded fault rates are
        // high enough that some serves must have recomputed modules.
        let total = chaos["completed"].as_u64().unwrap()
            + chaos["shed"].as_u64().unwrap()
            + chaos["failed"].as_u64().unwrap();
        assert_eq!(total, 12);
        assert_eq!(chaos["failed"].as_u64().unwrap(), 0);
        assert!(chaos["degraded_serves"].as_u64().unwrap() > 0);
        // Quick mode writes no artifact.
        assert!(!std::path::Path::new("BENCH_resilience.json").exists());
    }
}
