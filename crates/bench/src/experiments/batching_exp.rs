//! Continuous-batching A/B under load: replays the same Poisson traces
//! against a batched server (one scheduler thread interleaving an
//! in-flight batch) and a one-at-a-time server, comparing throughput
//! and queue wait as the offered load rises.
//!
//! Batching shares the weight-matrix traversal of every decode step
//! across the in-flight sequences, so at any offered load above the
//! solo service rate the batched server turns queue wait into extra
//! occupancy instead of extra latency — while producing byte-identical
//! greedy outputs (asserted directly against solo serving).

use super::Report;
use crate::emit::{fmt_time_s, Table};
use pc_model::{Model, ModelConfig};
use pc_server::trace::{poisson_trace, replay, TraceEvent};
use pc_server::{Server, ServerConfig};
use pc_tokenizer::{Tokenizer, WordTokenizer};
use prompt_cache::{
    BatchConfig, BatchScheduler, EngineConfig, PromptCache, ServeOptions, ServeRequest, Served,
};
use serde_json::json;

const MAX_NEW_TOKENS: usize = 8;
const MAX_BATCH_SIZE: usize = 8;

fn build_engine() -> PromptCache {
    let doc: String = (0..300).map(|i| format!("w{} ", i % 89)).collect();
    let corpus = format!("{doc} you are a helpful assistant answer briefly q0 q1 q2 q3 q4");
    let tokenizer = WordTokenizer::train(&[corpus.as_str()]);
    let vocab = tokenizer.vocab_size().max(64);
    let engine = PromptCache::new(
        Model::new(ModelConfig::llama_small(vocab), 10),
        tokenizer,
        EngineConfig::default(),
    );
    engine
        .register_schema(&format!(
            r#"<schema name="svc">you are a helpful assistant<module name="doc">{doc}</module></schema>"#
        ))
        .expect("register");
    engine
}

fn prompts() -> Vec<String> {
    (0..5)
        .map(|i| format!(r#"<prompt schema="svc"><doc/>answer briefly q{i}</prompt>"#))
        .collect()
}

struct ModeResult {
    mode: &'static str,
    goodput_rps: f64,
    tokens_per_s: f64,
    queue_wait_mean_s: f64,
    e2e_p50_s: f64,
    e2e_p95_s: f64,
    completed: u64,
}

fn run_mode(batched: bool, prompts: &[String], trace: &[TraceEvent]) -> ModeResult {
    // One service thread either way: a single worker serving requests
    // one at a time, or a single scheduler thread interleaving a batch —
    // the A/B isolates batching itself, not thread count.
    let config = if batched {
        ServerConfig::default()
            .queue_capacity(1024)
            .batching(BatchConfig::default().max_batch_size(MAX_BATCH_SIZE))
    } else {
        ServerConfig::default().workers(1).queue_capacity(1024)
    };
    let server = Server::start(build_engine(), config);
    let start = std::time::Instant::now();
    let report = replay(
        &server,
        prompts,
        trace,
        &ServeOptions::default().max_new_tokens(MAX_NEW_TOKENS),
    );
    let wall = start.elapsed().as_secs_f64().max(1e-9);
    let queue_wait_mean_s = server
        .metrics()
        .queue_mean
        .unwrap_or_default()
        .as_secs_f64();
    server.shutdown();
    let secs = |d: Option<std::time::Duration>| d.unwrap_or_default().as_secs_f64();
    ModeResult {
        mode: if batched { "batched" } else { "one-at-a-time" },
        goodput_rps: report.goodput_rps(),
        tokens_per_s: (report.completed as usize * MAX_NEW_TOKENS) as f64 / wall,
        queue_wait_mean_s,
        e2e_p50_s: secs(report.e2e.percentile(50.0)),
        e2e_p95_s: secs(report.e2e.percentile(95.0)),
        completed: report.completed,
    }
}

/// Throughput and queue wait vs offered load, batched vs one-at-a-time,
/// plus a direct batched-vs-solo byte-identity check. Full runs also
/// write `BENCH_batching.json` at the working directory root — the
/// perf-trajectory artifact later PRs compare against.
pub fn batching(quick: bool) -> Report {
    let prompts = prompts();

    // Byte-identity: every prompt decoded inside one full batch equals
    // its solo greedy serve exactly.
    let engine = build_engine();
    let opts = ServeOptions::default().max_new_tokens(MAX_NEW_TOKENS);
    let mut sched = BatchScheduler::new(&engine, BatchConfig::default().max_batch_size(prompts.len()));
    for (i, prompt) in prompts.iter().enumerate() {
        sched.admit(i as u64, prompt, &opts).expect("admit");
    }
    let mut batched_out = Vec::new();
    while !sched.is_idle() {
        for (id, result) in sched.step() {
            batched_out.push((id, result.expect("batched serve")));
        }
    }
    batched_out.sort_by_key(|(id, _)| *id);
    let mut identical = 0usize;
    for (id, response) in &batched_out {
        let solo = engine
            .serve(&ServeRequest::new(&prompts[*id as usize]).options(opts.clone()))
            .map(Served::into_response)
            .expect("solo serve");
        assert_eq!(response.tokens, solo.tokens, "batched output diverged from solo");
        assert_eq!(response.text, solo.text, "batched output diverged from solo");
        identical += 1;
    }
    drop(sched);

    // Load sweep: same trace, both serving modes.
    let n = if quick { 10 } else { 48 };
    let rates: &[f64] = if quick { &[100.0] } else { &[25.0, 100.0, 400.0] };
    let mut table = Table::new(&[
        "Offered load",
        "Mode",
        "Goodput",
        "Tokens/s",
        "Queue wait mean",
        "e2e p50",
        "e2e p95",
    ]);
    let mut sweep = Vec::new();
    for &rate in rates {
        let trace = poisson_trace(n, rate, prompts.len(), 17);
        let batched = run_mode(true, &prompts, &trace);
        let solo = run_mode(false, &prompts, &trace);
        for m in [&batched, &solo] {
            table.row(&[
                format!("{rate:.0} req/s"),
                m.mode.into(),
                format!("{:.0} req/s", m.goodput_rps),
                format!("{:.0}", m.tokens_per_s),
                fmt_time_s(m.queue_wait_mean_s),
                fmt_time_s(m.e2e_p50_s),
                fmt_time_s(m.e2e_p95_s),
            ]);
        }
        let mode_json = |m: &ModeResult| {
            json!({
                "mode": m.mode,
                "goodput_rps": m.goodput_rps,
                "tokens_per_s": m.tokens_per_s,
                "queue_wait_mean_s": m.queue_wait_mean_s,
                "e2e_p50_s": m.e2e_p50_s,
                "e2e_p95_s": m.e2e_p95_s,
                "completed": m.completed,
            })
        };
        sweep.push(json!({
            "offered_rps": rate,
            "batched": mode_json(&batched),
            "one_at_a_time": mode_json(&solo),
            "tokens_per_s_gain": batched.tokens_per_s / solo.tokens_per_s.max(1e-12),
        }));
    }

    let json = json!({
        "requests_per_rate": n,
        "max_new_tokens": MAX_NEW_TOKENS,
        "max_batch_size": MAX_BATCH_SIZE,
        "identical_outputs": identical,
        "load_sweep": sweep,
    });

    // The perf-trajectory file: full runs only (quick doubles as the test
    // path and must stay side-effect free).
    let mut bench_path = None;
    if !quick {
        let path = "BENCH_batching.json";
        std::fs::write(
            path,
            serde_json::to_string_pretty(&json).expect("serialise"),
        )
        .expect("write BENCH_batching.json");
        bench_path = Some(path.to_owned());
    }

    Report {
        id: "batching",
        title: "Continuous batching A/B: throughput and queue wait vs offered load (measured)",
        markdown: format!(
            "{}\n{identical}/{} prompts byte-identical batched vs solo{}\n",
            table.to_markdown(),
            prompts.len(),
            bench_path
                .as_deref()
                .map(|p| format!("; trajectory at `{p}`"))
                .unwrap_or_default()
        ),
        json,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batching_ab_holds() {
        let r = batching(true);
        assert_eq!(r.json["identical_outputs"].as_u64().unwrap(), 5);
        let sweep = r.json["load_sweep"].as_array().unwrap();
        assert_eq!(sweep.len(), 1);
        let row = &sweep[0];
        assert_eq!(row["batched"]["completed"].as_u64().unwrap(), 10);
        assert_eq!(row["one_at_a_time"]["completed"].as_u64().unwrap(), 10);
        assert!(row["batched"]["tokens_per_s"].as_f64().unwrap() > 0.0);
        // Quick mode writes no artifact.
        assert!(!std::path::Path::new("BENCH_batching.json").exists());
    }
}
