//! Measured experiments on the real engine: Table 1 and the §5.6 use
//! cases (Figures 6, 7, 8).

use super::Report;
use crate::emit::{fmt_speedup, fmt_time_s, Table};
use crate::measured::{measure_accuracy, DEFAULT_SCALE};
use pc_longbench::datasets::{DatasetSpec, FIGURE_SET};
use pc_model::{Family, Model, ModelConfig};
use pc_tokenizer::WordTokenizer;
use prompt_cache::{EngineConfig, PromptCache, ServeOptions};
use serde_json::json;
use prompt_cache::{ServeRequest, Served};

/// Table 1: output fidelity of cached inference vs baseline across model
/// families on the figure datasets. The paper reports task scores; with
/// seeded random weights those are meaningless, so the reproduced claim
/// is the one Table 1 exists to make — cached ≈ baseline — measured as
/// score deltas and exact-output agreement.
pub fn table1(quick: bool) -> Report {
    let families = [Family::Llama, Family::Falcon, Family::Mpt, Family::Gpt2];
    let datasets: Vec<&str> = if quick {
        vec!["NarrativeQA", "TriviaQA"]
    } else {
        FIGURE_SET.to_vec()
    };
    let samples = if quick { 1 } else { 3 };
    let mut table = Table::new(&[
        "Dataset", "Metric", "Family", "Baseline", "Cached", "Δ", "Output agreement",
        "Comparable (2σ)",
    ]);
    let mut rows = Vec::new();
    for name in &datasets {
        let spec = DatasetSpec::by_name(name).expect("dataset");
        for family in families {
            let a = measure_accuracy(spec, family, samples, DEFAULT_SCALE);
            table.row(&[
                a.dataset.clone(),
                a.metric.clone(),
                a.family.clone(),
                format!("{:.3}±{:.3}", a.baseline_score, a.baseline_std),
                format!("{:.3}±{:.3}", a.cached_score, a.cached_std),
                format!("{:+.3}", a.cached_score - a.baseline_score),
                format!("{:.0}%", a.agreement * 100.0),
                a.comparable.to_string(),
            ]);
            rows.push(serde_json::to_value(&a).expect("serialisable"));
        }
    }
    Report {
        id: "table1",
        title: "Table 1 — output fidelity: cached vs baseline across architectures",
        markdown: format!(
            "{}\nThe paper's claim is comparability (deltas within noise); here the \
             engine is exact for single-module prompts and near-exact under the \
             documented multi-module masking approximation.\n",
            table.to_markdown()
        ),
        json: json!({ "rows": rows }),
    }
}

/// Shared runner for the §5.6 use cases: serve a schema/prompt pair with
/// the real engine, compare against the baseline path.
fn usecase(
    id: &'static str,
    title: &'static str,
    corpus_texts: &[&str],
    schema: &str,
    prompt: &str,
    paper_note: &str,
) -> Report {
    let tokenizer = WordTokenizer::train(corpus_texts);
    let vocab = tokenizer.vocab().len().max(64);
    let engine = PromptCache::new(
        Model::new(ModelConfig::llama_small(vocab), 9),
        tokenizer,
        EngineConfig::default(),
    );
    engine.register_schema(schema).unwrap();
    let opts = ServeOptions::default().max_new_tokens(8);
    engine.serve(&ServeRequest::new(prompt).options(opts.clone())).map(Served::into_response).unwrap();
    engine.serve(&ServeRequest::new(prompt).options(opts.clone()).baseline(true)).map(Served::into_response).unwrap();
    let mut best_cached = f64::MAX;
    let mut best_base = f64::MAX;
    let mut cached = None;
    let mut baseline = None;
    for _ in 0..3 {
        let c = engine.serve(&ServeRequest::new(prompt).options(opts.clone())).map(Served::into_response).unwrap();
        best_cached = best_cached.min(c.timings.ttft.as_secs_f64());
        cached = Some(c);
        let b = engine.serve(&ServeRequest::new(prompt).options(opts.clone()).baseline(true)).map(Served::into_response).unwrap();
        best_base = best_base.min(b.timings.ttft.as_secs_f64());
        baseline = Some(b);
    }
    let cached = cached.expect("ran");
    let baseline = baseline.expect("ran");
    let speedup = best_base / best_cached;
    let identical = cached.tokens == baseline.tokens;

    let mut table = Table::new(&["Quantity", "Value"]);
    table.row(&["cached tokens".into(), cached.stats.cached_tokens.to_string()]);
    table.row(&["uncached tokens".into(), cached.stats.new_tokens.to_string()]);
    table.row(&["baseline TTFT".into(), fmt_time_s(best_base)]);
    table.row(&["Prompt Cache TTFT".into(), fmt_time_s(best_cached)]);
    table.row(&["speedup".into(), fmt_speedup(speedup)]);
    table.row(&["outputs identical".into(), identical.to_string()]);
    Report {
        id,
        title,
        markdown: format!("{}\n{paper_note}\n", table.to_markdown()),
        json: json!({
            "baseline_s": best_base, "cached_s": best_cached, "speedup": speedup,
            "outputs_identical": identical,
            "cached_tokens": cached.stats.cached_tokens,
            "new_tokens": cached.stats.new_tokens,
        }),
    }
}

/// Figure 6: multi-file code generation — each source file is a module.
pub fn fig6_code_generation() -> Report {
    let corpus = pc_longbench::corpus::Corpus::new(6);
    let files: Vec<(String, String)> = ["unit", "map", "game", "player"]
        .iter()
        .enumerate()
        .map(|(i, name)| (name.to_string(), corpus.code_file(i as u64, 120)))
        .collect();
    let mut schema = String::from(r#"<schema name="codegen">"#);
    for (name, code) in &files {
        schema.push_str(&format!(r#"<module name="{name}">{code}</module>"#));
    }
    schema.push_str("</schema>");
    let prompt = r#"<prompt schema="codegen"><unit/><map/><game/><player/>write the next function now please</prompt>"#;
    let texts: Vec<&str> = files
        .iter()
        .map(|(_, c)| c.as_str())
        .chain(["write the next function now please"])
        .collect();
    usecase(
        "fig6",
        "Figure 6 — code generation with source files as prompt modules",
        &texts,
        &schema,
        prompt,
        "Paper: 4× TTFT improvement on GPU with identical output (CodeLlama 7B).",
    )
}

/// Figure 7: personalization — six trait categories, five traits each,
/// grouped in unions.
pub fn fig7_personalization() -> Report {
    let categories = [
        ("grade", "the learner is in grade level"),
        ("proficiency", "the learner proficiency is"),
        ("history", "the learner previously studied topic"),
        ("style", "the learner prefers a learning style of"),
        ("assessment", "the learner will be assessed with"),
        ("goal", "the learner long term goal is"),
    ];
    let traits = ["alpha", "beta", "gamma", "delta", "epsilon"];
    let mut schema = String::from(r#"<schema name="persona">you are an education assistant "#);
    let mut corpus_text =
        String::from("you are an education assistant recommend the next lesson now");
    for (cat, desc) in &categories {
        schema.push_str("<union>");
        for t in traits {
            let body = format!("{desc} {t} which shapes every recommendation made");
            schema.push_str(&format!(r#"<module name="{cat}-{t}">{body}</module>"#));
            corpus_text.push(' ');
            corpus_text.push_str(&body);
        }
        schema.push_str("</union>");
    }
    schema.push_str("</schema>");
    let prompt = r#"<prompt schema="persona"><grade-alpha/><proficiency-gamma/><history-beta/><style-delta/><assessment-alpha/><goal-epsilon/>recommend the next lesson now</prompt>"#;
    usecase(
        "fig7",
        "Figure 7 — personalization: 6 trait categories × 5 traits in unions",
        &[corpus_text.as_str()],
        &schema,
        prompt,
        "Paper: feature-based personalization with per-category unions; latency \
         drops as cached trait tokens grow, output quality maintained.",
    )
}

/// Figure 8: parameterized prompts — trip-plan with a duration parameter
/// and two destination unions.
pub fn fig8_parameterized() -> Report {
    let schema = r#"
      <schema name="travel">
        you are an experienced travel planner
        <module name="trip-plan">
          plan a trip with a duration of <param name="duration" len="3"/> and
          include practical notes on budget weather and local transport
        </module>
        <union>
          <module name="miami">miami florida offers beaches surfing nightlife and cuban food year round</module>
          <module name="seattle">seattle washington offers mountains coffee museums and rainy charm</module>
        </union>
        <union>
          <module name="hotel">the traveler stays in a downtown hotel with breakfast</module>
          <module name="hostel">the traveler stays in a social hostel near the center</module>
        </union>
      </schema>"#;
    let prompt = r#"<prompt schema="travel"><trip-plan duration="three days"/><miami/><hostel/>make the itinerary now</prompt>"#;
    let corpus = "you are an experienced travel planner plan a trip with a duration of and \
        include practical notes on budget weather and local transport miami florida offers \
        beaches surfing nightlife and cuban food year round seattle washington offers mountains \
        coffee museums and rainy charm the traveler stays in a downtown hotel with breakfast \
        the traveler stays in a social hostel near the center make the itinerary now three days";
    usecase(
        "fig8",
        "Figure 8 — parameterized prompts: trip-plan with runtime arguments",
        &[corpus],
        schema,
        prompt,
        "Paper: the templated prompt is reconfigured at runtime (duration \
         argument, destination/lodging unions) while keeping caching efficiency.",
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig8_serves_with_params_and_unions() {
        let r = fig8_parameterized();
        assert!(r.json["cached_tokens"].as_u64().unwrap() > 20);
        assert!(r.json["new_tokens"].as_u64().unwrap() > 0);
        assert!(r.json["speedup"].as_f64().unwrap() > 0.5);
    }

    #[test]
    fn table1_quick_runs_all_families() {
        let r = table1(true);
        // 2 datasets × 4 families.
        assert_eq!(r.json["rows"].as_array().unwrap().len(), 8);
    }
}
