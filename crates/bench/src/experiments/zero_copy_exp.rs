//! Zero-copy A/B under load: replays one Poisson trace against two
//! engines that differ only in `EngineConfig::zero_copy`, comparing the
//! fetch phase (pointer assembly vs memcpy) and the engine's byte
//! counters (`pc_kv_bytes_shared_total` / `pc_kv_bytes_copied_total`).
//!
//! The paper's §3.4 observation is that module attention states can be
//! *shared* across prompts rather than copied into each session; this
//! experiment measures what that buys on a live serving run and asserts
//! the two transports produce identical outputs.

use super::Report;
use crate::emit::{fmt_time_s, Table};
use pc_model::{Model, ModelConfig};
use pc_server::trace::{poisson_trace, replay, TraceEvent};
use pc_server::{Server, ServerConfig};
use pc_telemetry::Telemetry;
use pc_tokenizer::{Tokenizer, WordTokenizer};
use prompt_cache::{EngineConfig, PromptCache, ServeOptions};
use serde_json::json;
use std::time::Duration;
use prompt_cache::{ServeRequest, Served};

const SCHEMA_DOC_WORDS: usize = 300;

fn build_engine(zero_copy: bool, telemetry: Telemetry) -> PromptCache {
    let doc: String = (0..SCHEMA_DOC_WORDS).map(|i| format!("w{} ", i % 89)).collect();
    let corpus = format!("{doc} you are a helpful assistant answer briefly q0 q1 q2 q3 q4");
    let tokenizer = WordTokenizer::train(&[corpus.as_str()]);
    let vocab = tokenizer.vocab_size().max(64);
    let engine = PromptCache::new(
        Model::new(ModelConfig::llama_small(vocab), 10),
        tokenizer,
        EngineConfig::default().zero_copy(zero_copy).telemetry(telemetry),
    );
    engine
        .register_schema(&format!(
            r#"<schema name="svc">you are a helpful assistant<module name="doc">{doc}</module></schema>"#
        ))
        .expect("register");
    engine
}

fn prompts() -> Vec<String> {
    (0..5)
        .map(|i| format!(r#"<prompt schema="svc"><doc/>answer briefly q{i}</prompt>"#))
        .collect()
}

struct ModeResult {
    mode: &'static str,
    fetch_p50_s: f64,
    fetch_p95_s: f64,
    fetch_mean_s: f64,
    ttft_mean_s: f64,
    completed: u64,
    bytes_shared: u64,
    bytes_copied: u64,
}

fn run_mode(zero_copy: bool, prompts: &[String], trace: &[TraceEvent]) -> ModeResult {
    let telemetry = Telemetry::new();
    let engine = build_engine(zero_copy, telemetry.clone());
    let server = Server::start(
        engine,
        ServerConfig::default().workers(2).queue_capacity(256),
    );
    let report = replay(
        &server,
        prompts,
        trace,
        &ServeOptions::default().max_new_tokens(1),
    );
    server.shutdown();

    let secs = |d: Option<Duration>| d.unwrap_or_default().as_secs_f64();
    let fetch = report
        .phases
        .iter()
        .find(|(name, _)| *name == "fetch")
        .map(|(_, rec)| rec)
        .expect("fetch phase");
    let snap = telemetry.snapshot();
    let counter = |name: &str| {
        snap.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    };
    ModeResult {
        mode: if zero_copy { "zero-copy" } else { "memcpy" },
        fetch_p50_s: secs(fetch.percentile(50.0)),
        fetch_p95_s: secs(fetch.percentile(95.0)),
        fetch_mean_s: secs(fetch.mean()),
        ttft_mean_s: secs(report.ttft.mean()),
        completed: report.completed,
        bytes_shared: counter("pc_kv_bytes_shared_total"),
        bytes_copied: counter("pc_kv_bytes_copied_total"),
    }
}

/// Fetch-phase and bytes-copied A/B of the zero-copy serving path over a
/// Poisson replay. Full runs also write `BENCH_zero_copy.json` at the
/// working directory root — the perf-trajectory artifact later PRs
/// compare against.
pub fn zero_copy(quick: bool) -> Report {
    let prompts = prompts();
    let n = if quick { 10 } else { 60 };
    let trace = poisson_trace(n, 200.0, prompts.len(), 11);

    let shared = run_mode(true, &prompts, &trace);
    let copied = run_mode(false, &prompts, &trace);

    // The replay keeps distributions, not outputs — assert byte-identity
    // directly on fresh engines serving the same prompt mix.
    let a = build_engine(true, Telemetry::disabled());
    let b = build_engine(false, Telemetry::disabled());
    let opts = ServeOptions::default().max_new_tokens(4);
    let mut identical = 0usize;
    for prompt in &prompts {
        let ra = a.serve(&ServeRequest::new(prompt).options(opts.clone())).map(Served::into_response).expect("serve zero-copy");
        let rb = b.serve(&ServeRequest::new(prompt).options(opts.clone())).map(Served::into_response).expect("serve memcpy");
        assert_eq!(ra.tokens, rb.tokens, "outputs diverged: {prompt}");
        assert_eq!(ra.text, rb.text, "outputs diverged: {prompt}");
        identical += 1;
    }

    let mut table = Table::new(&[
        "Mode",
        "fetch p50",
        "fetch p95",
        "fetch mean",
        "TTFT mean",
        "KV bytes shared",
        "KV bytes copied",
    ]);
    let mode_json = |m: &ModeResult| {
        json!({
            "mode": m.mode,
            "fetch_p50_s": m.fetch_p50_s,
            "fetch_p95_s": m.fetch_p95_s,
            "fetch_mean_s": m.fetch_mean_s,
            "ttft_mean_s": m.ttft_mean_s,
            "completed": m.completed,
            "kv_bytes_shared": m.bytes_shared,
            "kv_bytes_copied": m.bytes_copied,
        })
    };
    for m in [&shared, &copied] {
        table.row(&[
            m.mode.into(),
            fmt_time_s(m.fetch_p50_s),
            fmt_time_s(m.fetch_p95_s),
            fmt_time_s(m.fetch_mean_s),
            fmt_time_s(m.ttft_mean_s),
            format!("{}", m.bytes_shared),
            format!("{}", m.bytes_copied),
        ]);
    }
    let speedup = copied.fetch_mean_s / shared.fetch_mean_s.max(1e-12);
    let json = json!({
        "requests": n,
        "identical_outputs": identical,
        "fetch_mean_speedup": speedup,
        "modes": [mode_json(&shared), mode_json(&copied)],
    });

    // The perf-trajectory file: full runs only (quick doubles as the test
    // path and must stay side-effect free).
    let mut bench_path = None;
    if !quick {
        let path = "BENCH_zero_copy.json";
        std::fs::write(
            path,
            serde_json::to_string_pretty(&json).expect("serialise"),
        )
        .expect("write BENCH_zero_copy.json");
        bench_path = Some(path.to_owned());
    }

    Report {
        id: "zero_copy",
        title: "Zero-copy KV serving A/B: shared segments vs memcpy (measured)",
        markdown: format!(
            "{}\nfetch mean speedup {speedup:.2}x; {identical}/{} prompts byte-identical across modes{}\n",
            table.to_markdown(),
            prompts.len(),
            bench_path
                .as_deref()
                .map(|p| format!("; trajectory at `{p}`"))
                .unwrap_or_default()
        ),
        json,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_copy_ab_holds() {
        let r = zero_copy(true);
        assert_eq!(r.json["identical_outputs"].as_u64().unwrap(), 5);
        let modes = r.json["modes"].as_array().unwrap();
        let shared = &modes[0];
        let copied = &modes[1];
        assert_eq!(shared["completed"].as_u64().unwrap(), 10);
        assert_eq!(copied["completed"].as_u64().unwrap(), 10);
        // The default path never memcpys cached states; the baseline
        // never shares them.
        assert_eq!(shared["kv_bytes_copied"].as_u64().unwrap(), 0);
        assert!(shared["kv_bytes_shared"].as_u64().unwrap() > 0);
        assert_eq!(copied["kv_bytes_shared"].as_u64().unwrap(), 0);
        assert!(copied["kv_bytes_copied"].as_u64().unwrap() > 0);
        // Quick mode writes no artifact.
        assert!(!std::path::Path::new("BENCH_zero_copy.json").exists());
    }
}
