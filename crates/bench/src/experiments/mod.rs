//! One runner per paper artifact. Each returns a [`Report`] with
//! human-readable markdown and machine-readable JSON.

mod ablations;
mod batching_exp;
mod persistence_exp;
mod position_reuse_exp;
mod prefix_sharing_exp;
mod real_figs;
mod resilience_exp;
mod serving_exp;
mod sharding_exp;
mod sim_figs;
mod threads_exp;
mod ttft_exp;
mod zero_copy_exp;

pub use ablations::ablations;
pub use batching_exp::batching;
pub use persistence_exp::persistence;
pub use position_reuse_exp::position_reuse;
pub use prefix_sharing_exp::prefix_sharing;
pub use resilience_exp::resilience;
pub use serving_exp::{rag, throughput};
pub use sharding_exp::sharding;
pub use threads_exp::threads;
pub use ttft_exp::ttft_breakdown;
pub use zero_copy_exp::zero_copy;
pub use real_figs::{fig6_code_generation, fig7_personalization, fig8_parameterized, table1};
pub use sim_figs::{
    appendix, e2e, fig3, fig4, fig5, measured_fully_cached, memcpy, modelsize, table2,
};

use serde::Serialize;

/// One experiment's output.
#[derive(Debug, Clone, Serialize)]
pub struct Report {
    /// Paper artifact id (`fig3`, `table1`, …).
    pub id: &'static str,
    /// Human title.
    pub title: &'static str,
    /// Markdown body (tables plus commentary).
    pub markdown: String,
    /// Machine-readable results.
    pub json: serde_json::Value,
}

/// Every experiment id the `figures` binary accepts, in run order.
pub const ALL_IDS: [&str; 24] = [
    "fig3", "fig4", "fig5", "table1", "table2", "memcpy", "modelsize", "e2e", "fig6", "fig7",
    "fig8", "appendix", "ablations", "throughput", "rag", "threads", "ttft_breakdown",
    "zero_copy", "resilience", "batching", "prefix_sharing", "position_reuse", "persistence",
    "sharding",
];

/// Runs an experiment by id. `quick` shrinks sample counts for smoke
/// tests.
pub fn run(id: &str, quick: bool) -> Option<Report> {
    match id {
        "fig3" => Some(fig3()),
        "fig4" => Some(fig4(quick)),
        "fig5" => Some(fig5(quick)),
        "table1" => Some(table1(quick)),
        "table2" => Some(table2()),
        "memcpy" => Some(memcpy()),
        "modelsize" => Some(modelsize()),
        "e2e" => Some(e2e()),
        "fig6" => Some(fig6_code_generation()),
        "fig7" => Some(fig7_personalization()),
        "fig8" => Some(fig8_parameterized()),
        "appendix" => Some(appendix()),
        "ablations" => Some(ablations(quick)),
        "throughput" => Some(throughput(quick)),
        "rag" => Some(rag(quick)),
        "threads" => Some(threads(quick)),
        "ttft_breakdown" => Some(ttft_breakdown(quick)),
        "zero_copy" => Some(zero_copy(quick)),
        "resilience" => Some(resilience(quick)),
        "batching" => Some(batching(quick)),
        "prefix_sharing" => Some(prefix_sharing(quick)),
        "position_reuse" => Some(position_reuse(quick)),
        "persistence" => Some(persistence(quick)),
        "sharding" => Some(sharding(quick)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_id_is_none() {
        assert!(run("fig99", true).is_none());
    }

    #[test]
    fn all_ids_resolve() {
        // Only check dispatch for the cheap, purely-analytic experiments;
        // the measured ones run in the integration suite and binary.
        for id in ["fig3", "table2", "memcpy", "modelsize", "appendix"] {
            assert!(run(id, true).is_some(), "{id}");
        }
    }
}
