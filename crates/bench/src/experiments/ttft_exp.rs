//! TTFT breakdown under load: replays the Poisson trace with telemetry
//! enabled and reports where time-to-first-token goes — tokenize,
//! cache-fetch, prefill, sample — per phase, with percentiles.
//!
//! This is the observability counterpart to the §5.4 throughput sweep:
//! the paper's core claim is that cache fetch (memcpy) is cheap next to
//! the attention prefill it replaces, and the per-phase distributions
//! make that visible on a live serving run rather than a microbenchmark.

use super::Report;
use crate::emit::{fmt_time_s, Table};
use pc_model::{Model, ModelConfig};
use pc_server::trace::{poisson_trace, replay};
use pc_server::{Server, ServerConfig};
use pc_telemetry::Telemetry;
use pc_tokenizer::{Tokenizer, WordTokenizer};
use prompt_cache::{EngineConfig, PromptCache, ServeOptions};
use serde_json::json;
use std::time::Duration;

/// Per-phase TTFT breakdown over a Poisson replay (telemetry on).
///
/// Emits the per-phase percentile table, writes the engine's Chrome
/// trace to `results/ttft_breakdown_trace.json` (full runs only), and
/// returns per-phase JSON for `results/ttft_breakdown.json`.
pub fn ttft_breakdown(quick: bool) -> Report {
    let doc: String = (0..300).map(|i| format!("w{} ", i % 89)).collect();
    let corpus = format!("{doc} you are a helpful assistant answer briefly q0 q1 q2 q3 q4");
    let tokenizer = WordTokenizer::train(&[corpus.as_str()]);
    let vocab = tokenizer.vocab_size().max(64);
    let telemetry = Telemetry::new();
    let engine = PromptCache::new(
        Model::new(ModelConfig::llama_small(vocab), 10),
        tokenizer,
        EngineConfig::default().telemetry(telemetry.clone()),
    );
    engine
        .register_schema(&format!(
            r#"<schema name="svc">you are a helpful assistant<module name="doc">{doc}</module></schema>"#
        ))
        .expect("register");
    let server = Server::start(
        engine,
        ServerConfig::default().workers(2).queue_capacity(256),
    );
    let prompts: Vec<String> = (0..5)
        .map(|i| format!(r#"<prompt schema="svc"><doc/>answer briefly q{i}</prompt>"#))
        .collect();
    let n = if quick { 10 } else { 60 };
    let trace = poisson_trace(n, 200.0, prompts.len(), 11);
    let report = replay(
        &server,
        &prompts,
        &trace,
        &ServeOptions::default().max_new_tokens(1),
    );

    let secs = |d: Option<Duration>| d.unwrap_or_default().as_secs_f64();
    let ttft_mean = secs(report.ttft.mean());
    let mut table = Table::new(&["Phase", "p50", "p95", "p99", "share of mean TTFT"]);
    let mut rows = Vec::new();
    for (name, rec) in &report.phases {
        let mean = secs(rec.mean());
        table.row(&[
            (*name).into(),
            fmt_time_s(secs(rec.percentile(50.0))),
            fmt_time_s(secs(rec.percentile(95.0))),
            fmt_time_s(secs(rec.percentile(99.0))),
            format!("{:.1}%", 100.0 * mean / ttft_mean.max(1e-12)),
        ]);
        rows.push(json!({
            "phase": name,
            "p50_s": secs(rec.percentile(50.0)),
            "p95_s": secs(rec.percentile(95.0)),
            "p99_s": secs(rec.percentile(99.0)),
            "mean_s": mean,
        }));
    }
    table.row(&[
        "ttft (total)".into(),
        fmt_time_s(secs(report.ttft.percentile(50.0))),
        fmt_time_s(secs(report.ttft.percentile(95.0))),
        fmt_time_s(secs(report.ttft.percentile(99.0))),
        "100%".into(),
    ]);

    // The Chrome trace is a heavyweight artifact; only full runs emit it
    // (quick mode doubles as the test path and must stay side-effect
    // free).
    let mut trace_path = None;
    if !quick {
        let path = std::path::Path::new("results/ttft_breakdown_trace.json");
        telemetry
            .write_chrome_trace(path)
            .expect("write chrome trace");
        trace_path = Some(path.display().to_string());
    }
    let spans = telemetry.spans().len();
    server.shutdown();

    Report {
        id: "ttft_breakdown",
        title: "TTFT breakdown under Poisson load (telemetry on, measured)",
        markdown: format!(
            "{}\n{} requests completed; {} spans recorded{}\n",
            table.to_markdown(),
            report.completed,
            spans,
            trace_path
                .as_deref()
                .map(|p| format!("; Chrome trace at `{p}`"))
                .unwrap_or_default()
        ),
        json: json!({
            "completed": report.completed,
            "failed": report.failed,
            "dropped": report.dropped,
            "ttft_mean_s": ttft_mean,
            "ttft_p50_s": secs(report.ttft.percentile(50.0)),
            "ttft_p99_s": secs(report.ttft.percentile(99.0)),
            "phases": rows,
            "spans_recorded": spans,
            "chrome_trace": trace_path,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_account_for_ttft() {
        let r = ttft_breakdown(true);
        assert_eq!(r.json["completed"].as_u64().unwrap(), 10);
        assert_eq!(r.json["dropped"].as_u64().unwrap(), 0);
        let ttft_mean = r.json["ttft_mean_s"].as_f64().unwrap();
        let phase_sum: f64 = r.json["phases"]
            .as_array()
            .unwrap()
            .iter()
            .map(|p| p["mean_s"].as_f64().unwrap())
            .sum();
        // Phases are deltas on one clock, so their means sum to the TTFT
        // mean up to Duration rounding.
        assert!(
            (phase_sum - ttft_mean).abs() <= 0.05 * ttft_mean.max(1e-9),
            "phase sum {phase_sum} vs ttft mean {ttft_mean}"
        );
        assert!(r.json["spans_recorded"].as_u64().unwrap() > 0);
        assert!(r.json["chrome_trace"].is_null());
    }
}
