//! Ablations of the design choices DESIGN.md calls out: eviction policy,
//! buffered concat, and KV quantization.

use super::Report;
use crate::emit::{fmt_time_s, Table};
use pc_cache::arena::naive_concat;
use pc_cache::quant::{round_trip_error, QuantizedKv};
use pc_cache::{ConcatArena, EvictionPolicy, ModuleKey, ModuleStore, StoreConfig, Tier};
use pc_model::KvCache;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde_json::json;
use prompt_cache::{ServeRequest, Served};

/// Runs all four ablations and combines them into one report.
pub fn ablations(quick: bool) -> Report {
    let eviction = eviction_ablation(quick);
    let concat = concat_ablation(quick);
    let quant = quant_ablation();
    let scaffold = scaffold_ablation();
    Report {
        id: "ablations",
        title: "Ablations — eviction policy, buffered concat, KV quantization, scaffolding",
        markdown: format!(
            "### Eviction policy (Zipfian module popularity)\n{}\n\
             ### Buffered concat arena vs naive concatenation\n{}\n\
             ### 8-bit KV quantization\n{}\n\
             ### Scaffolding: memory for exactness (§3.3)\n{}\n",
            eviction.0, concat.0, quant.0, scaffold.0
        ),
        json: json!({
            "eviction": eviction.1,
            "concat": concat.1,
            "quantization": quant.1,
            "scaffold": scaffold.1,
        }),
    }
}

/// Scaffolding trades memory for output consistency: quantify both sides.
fn scaffold_ablation() -> (String, serde_json::Value) {
    use pc_model::{Model, ModelConfig};
    use pc_tokenizer::{Tokenizer, WordTokenizer};
    use prompt_cache::{EngineConfig, PromptCache, ServeOptions};

    let doc_a: String = (0..60).map(|i| format!("alpha{} ", i % 23)).collect();
    let doc_b: String = (0..60).map(|i| format!("beta{} ", i % 19)).collect();
    let corpus = format!("{doc_a} {doc_b} summarize the two documents above now");
    let build = || {
        let tokenizer = WordTokenizer::train(&[corpus.as_str()]);
        let vocab = tokenizer.vocab_size().max(64);
        let engine = PromptCache::new(
            Model::new(ModelConfig::llama_small(vocab), 17),
            tokenizer,
            EngineConfig::default(),
        );
        engine
            .register_schema(&format!(
                r#"<schema name="sc"><module name="a">{doc_a}</module><module name="b">{doc_b}</module></schema>"#
            ))
            .expect("register");
        engine
    };
    let prompt = r#"<prompt schema="sc"><a/><b/>summarize the two documents above now</prompt>"#;
    let opts = ServeOptions::default().max_new_tokens(12);

    // Without scaffolds: the masking approximation is in play.
    let engine = build();
    let bytes_without = engine.cached_bytes();
    let masked = engine.serve(&ServeRequest::new(prompt).options(opts.clone())).map(Served::into_response).expect("masked serve");
    let baseline = engine.serve(&ServeRequest::new(prompt).options(opts.clone()).baseline(true)).map(Served::into_response).expect("baseline");
    let masked_agrees = masked.tokens == baseline.tokens;

    // With a scaffold: extra memory, exact agreement.
    engine.add_scaffold("sc", &["a", "b"]).expect("scaffold");
    let bytes_with = engine.cached_bytes();
    let scaffolded = engine.serve(&ServeRequest::new(prompt).options(opts.clone())).map(Served::into_response).expect("scaffolded serve");
    let scaffold_agrees = scaffolded.tokens == baseline.tokens;

    let mut table = Table::new(&["Configuration", "Store bytes", "Greedy output == baseline"]);
    table.row(&[
        "independent modules (masked)".into(),
        bytes_without.to_string(),
        masked_agrees.to_string(),
    ]);
    table.row(&[
        "scaffolded (co-encoded)".into(),
        format!("{bytes_with} (+{:.0}%)", (bytes_with as f64 / bytes_without as f64 - 1.0) * 100.0),
        scaffold_agrees.to_string(),
    ]);
    (
        table.to_markdown(),
        json!({
            "bytes_without": bytes_without,
            "bytes_with": bytes_with,
            "masked_agrees_with_baseline": masked_agrees,
            "scaffold_agrees_with_baseline": scaffold_agrees,
        }),
    )
}

/// A module cache of `tokens` tokens shaped like the small engine config.
fn module(tokens: usize, marker: u64) -> KvCache {
    let mut c = KvCache::with_shape(4, 128);
    let row: Vec<f32> = (0..128).map(|i| ((marker + i as u64) as f32).sin()).collect();
    for t in 0..tokens {
        for l in 0..4 {
            c.push_token_layer(l, &row, &row);
        }
        c.push_position(t);
    }
    c
}

/// Device-tier hit rate per policy under a Zipfian access trace — the
/// paper's named future-work question ("GPU cache replacement strategies").
fn eviction_ablation(quick: bool) -> (String, serde_json::Value) {
    let num_modules = 40usize;
    let accesses = if quick { 500 } else { 5000 };
    // Capacity for ~8 of 40 modules.
    let module_tokens = 64;
    let one = module(module_tokens, 0).size_bytes();

    let mut table = Table::new(&["Policy", "Device hit rate", "Evictions", "H2D bytes"]);
    let mut rows = Vec::new();
    for policy in EvictionPolicy::ALL {
        let store = ModuleStore::new(StoreConfig::default().device_capacity_bytes(8 * one).policy(policy));
        for m in 0..num_modules {
            // Vary size a little so size-aware policies differentiate.
            let tokens = module_tokens + (m % 5) * 16;
            store.insert(
                ModuleKey::new("abl", &[format!("m{m}")]),
                module(tokens, m as u64),
                (tokens * tokens) as f64,
            );
        }
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..accesses {
            // Zipf-ish: module rank r with probability ∝ 1/(r+1).
            let r: f64 = rng.gen();
            let idx = ((num_modules as f64).powf(r) - 1.0) as usize % num_modules;
            store.get(&ModuleKey::new("abl", &[format!("m{idx}")]), Tier::Device);
        }
        let stats = store.stats();
        let hit_rate = stats.device_hits as f64 / accesses as f64;
        table.row(&[
            policy.name().to_string(),
            format!("{:.1}%", hit_rate * 100.0),
            stats.evictions.to_string(),
            stats.bytes_copied_h2d.to_string(),
        ]);
        rows.push(json!({
            "policy": policy.name(), "hit_rate": hit_rate,
            "evictions": stats.evictions, "h2d_bytes": stats.bytes_copied_h2d,
        }));
    }
    (table.to_markdown(), json!({ "rows": rows }))
}

/// Wall-clock of arena rebuilds vs naive concatenation.
fn concat_ablation(quick: bool) -> (String, serde_json::Value) {
    let segments: Vec<KvCache> = (0..8).map(|i| module(128, i)).collect();
    let refs: Vec<&KvCache> = segments.iter().collect();
    let reps = if quick { 50 } else { 500 };

    let mut arena = ConcatArena::new(&segments[0]);
    arena.rebuild(&refs).unwrap(); // reserve capacity
    let start = std::time::Instant::now();
    for _ in 0..reps {
        std::hint::black_box(arena.rebuild(&refs).unwrap());
    }
    let arena_s = start.elapsed().as_secs_f64() / reps as f64;

    let start = std::time::Instant::now();
    for _ in 0..reps {
        std::hint::black_box(naive_concat(&refs).unwrap());
    }
    let naive_s = start.elapsed().as_secs_f64() / reps as f64;

    let mut table = Table::new(&["Strategy", "Per-request concat time"]);
    table.row(&["buffered arena (reused capacity)".into(), fmt_time_s(arena_s)]);
    table.row(&["naive (fresh allocation)".into(), fmt_time_s(naive_s)]);
    (
        table.to_markdown(),
        json!({ "arena_s": arena_s, "naive_s": naive_s, "ratio": naive_s / arena_s }),
    )
}

/// Quantization: footprint vs reconstruction error.
fn quant_ablation() -> (String, serde_json::Value) {
    let m = module(512, 7);
    let q = QuantizedKv::quantize(&m);
    let err = round_trip_error(&m);
    let ratio = m.size_bytes() as f64 / q.size_bytes() as f64;
    let mut table = Table::new(&["Quantity", "Value"]);
    table.row(&["f32 module bytes".into(), m.size_bytes().to_string()]);
    table.row(&["int8 module bytes".into(), q.size_bytes().to_string()]);
    table.row(&["compression".into(), format!("{ratio:.2}×")]);
    table.row(&["max relative error".into(), format!("{err:.5}")]);
    (
        table.to_markdown(),
        json!({
            "f32_bytes": m.size_bytes(), "int8_bytes": q.size_bytes(),
            "compression": ratio, "max_rel_error": err,
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_report_builds() {
        let r = ablations(true);
        assert!(r.markdown.contains("Eviction policy"));
        let rows = r.json["eviction"]["rows"].as_array().unwrap();
        assert_eq!(rows.len(), EvictionPolicy::ALL.len());
        assert!(r.json["quantization"]["compression"].as_f64().unwrap() > 2.0);
    }

    #[test]
    fn scaffold_restores_agreement_at_memory_cost() {
        let r = ablations(true);
        let s = &r.json["scaffold"];
        assert_eq!(s["scaffold_agrees_with_baseline"], true);
        assert!(
            s["bytes_with"].as_u64().unwrap() > s["bytes_without"].as_u64().unwrap(),
            "scaffolds cost extra memory"
        );
    }

    #[test]
    fn lru_beats_size_first_on_zipf() {
        // Popularity-aware policies should not lose to size-first under a
        // popularity-skewed trace.
        let r = ablations(true);
        let rows = r.json["eviction"]["rows"].as_array().unwrap();
        let rate = |name: &str| {
            rows.iter()
                .find(|x| x["policy"] == name)
                .unwrap()["hit_rate"]
                .as_f64()
                .unwrap()
        };
        assert!(rate("lru") + 0.02 >= rate("size-first"));
    }
}
