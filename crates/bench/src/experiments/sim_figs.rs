//! Simulated paper-scale figures (3, 4, 5, Table 2, §5.4 micro-results)
//! plus measured counterparts where the real engine can contribute.

use super::Report;
use crate::emit::{fmt_speedup, fmt_time_s, Table};
use crate::measured;
use pc_longbench::datasets::{DatasetSpec, ALL, FIGURE_SET};
use pc_simulator::devices::{CPUS, GPUS, INTEL_I9_13900K, RTX_4090};
use pc_simulator::models::{LLAMA_13B, LLAMA_7B, TABLE2_MODELS};
use pc_simulator::{baseline_ttft, prompt_cache_ttft, ModuleLocation};
use serde_json::json;
use prompt_cache::{ServeRequest, Served};

/// Figure 3: GPU TTFT for the eight figure datasets on three GPUs, with
/// modules in CPU memory (yellow bars) and GPU memory (blue bars).
pub fn fig3() -> Report {
    let mut table = Table::new(&[
        "Dataset", "GPU", "Baseline", "PC (CPU mem)", "PC (GPU mem)", "Speedup (CPU mem)",
        "Speedup (GPU mem)",
    ]);
    let mut rows = Vec::new();
    for name in FIGURE_SET {
        let spec = DatasetSpec::by_name(name).expect("figure dataset");
        let (n, cached) = (spec.total_tokens(), spec.context_tokens);
        for gpu in &GPUS {
            let base = baseline_ttft(&LLAMA_7B, gpu, n);
            let host = prompt_cache_ttft(&LLAMA_7B, gpu, n, cached, ModuleLocation::HostMemory);
            let dev = prompt_cache_ttft(&LLAMA_7B, gpu, n, cached, ModuleLocation::DeviceMemory);
            table.row(&[
                name.to_string(),
                gpu.name.to_string(),
                fmt_time_s(base.total_s),
                fmt_time_s(host.total_s),
                fmt_time_s(dev.total_s),
                fmt_speedup(base.total_s / host.total_s),
                fmt_speedup(base.total_s / dev.total_s),
            ]);
            rows.push(json!({
                "dataset": name, "gpu": gpu.name, "baseline_s": base.total_s,
                "pc_cpu_mem_s": host.total_s, "pc_gpu_mem_s": dev.total_s,
            }));
        }
    }
    Report {
        id: "fig3",
        title: "Figure 3 — GPU TTFT, LongBench × {RTX 4090, A40, A100} (simulated, Llama-7B)",
        markdown: format!(
            "{}\nPaper bands: 1.5–3× with modules in CPU memory, 5–10× in GPU memory.\n",
            table.to_markdown()
        ),
        json: json!({ "rows": rows }),
    }
}

/// Figure 4: CPU TTFT on the Intel and AMD hosts (simulated at paper
/// scale) plus a measured scaled-down analogue on this machine.
pub fn fig4(quick: bool) -> Report {
    let mut table = Table::new(&["Dataset", "CPU", "Baseline", "Prompt Cache", "Speedup"]);
    let mut rows = Vec::new();
    for name in FIGURE_SET {
        let spec = DatasetSpec::by_name(name).expect("figure dataset");
        let (n, cached) = (spec.total_tokens(), spec.context_tokens);
        for cpu in &CPUS {
            let base = baseline_ttft(&LLAMA_7B, cpu, n);
            let pc = prompt_cache_ttft(&LLAMA_7B, cpu, n, cached, ModuleLocation::HostMemory);
            table.row(&[
                name.to_string(),
                cpu.name.to_string(),
                fmt_time_s(base.total_s),
                fmt_time_s(pc.total_s),
                fmt_speedup(base.total_s / pc.total_s),
            ]);
            rows.push(json!({
                "dataset": name, "cpu": cpu.name,
                "baseline_s": base.total_s, "pc_s": pc.total_s,
            }));
        }
    }

    // Measured analogue on this machine, scaled workloads.
    let mut measured_table = Table::new(&[
        "Dataset (measured, scaled)", "Cached/new tokens", "Baseline", "Prompt Cache", "Speedup",
    ]);
    let datasets: &[&str] = if quick {
        &["2WikiMultihopQA", "TriviaQA"]
    } else {
        &FIGURE_SET
    };
    let mut measured_rows = Vec::new();
    for name in datasets {
        let spec = DatasetSpec::by_name(name).expect("dataset");
        let m = measured::measure_dataset(spec, measured::DEFAULT_SCALE, 3);
        measured_table.row(&[
            m.dataset.clone(),
            format!("{}/{}", m.cached_tokens, m.new_tokens),
            fmt_time_s(m.baseline_s),
            fmt_time_s(m.cached_s),
            fmt_speedup(m.speedup),
        ]);
        measured_rows.push(serde_json::to_value(&m).expect("serialisable"));
    }

    Report {
        id: "fig4",
        title: "Figure 4 — CPU TTFT (simulated at paper scale + measured scaled runs)",
        markdown: format!(
            "{}\nPaper bands: up to 70× (Intel/DDR5), up to 20× (AMD/DDR4).\n\n{}\n",
            table.to_markdown(),
            measured_table.to_markdown()
        ),
        json: json!({ "simulated": rows, "measured": measured_rows }),
    }
}

/// Figure 5: TTFT vs sequence length — baseline quadratic, Prompt Cache
/// linear. Simulated at paper scale; measured sweep on the real engine.
pub fn fig5(quick: bool) -> Report {
    let lengths = [1000usize, 2000, 3000, 4000, 5000];
    let mut table = Table::new(&[
        "Tokens", "i9 baseline", "i9 PC", "4090 baseline", "4090 PC", "A40 baseline", "A40 PC",
    ]);
    let mut rows = Vec::new();
    for &n in &lengths {
        let i9b = baseline_ttft(&LLAMA_7B, &INTEL_I9_13900K, n).total_s;
        let i9p = prompt_cache_ttft(&LLAMA_7B, &INTEL_I9_13900K, n, n, ModuleLocation::HostMemory)
            .total_s;
        let g1b = baseline_ttft(&LLAMA_7B, &RTX_4090, n).total_s;
        let g1p =
            prompt_cache_ttft(&LLAMA_7B, &RTX_4090, n, n, ModuleLocation::HostMemory).total_s;
        let g2b = baseline_ttft(&LLAMA_7B, &pc_simulator::devices::A40, n).total_s;
        let g2p = prompt_cache_ttft(
            &LLAMA_7B,
            &pc_simulator::devices::A40,
            n,
            n,
            ModuleLocation::HostMemory,
        )
        .total_s;
        table.row(&[
            n.to_string(),
            fmt_time_s(i9b),
            fmt_time_s(i9p),
            fmt_time_s(g1b),
            fmt_time_s(g1p),
            fmt_time_s(g2b),
            fmt_time_s(g2p),
        ]);
        rows.push(json!({
            "tokens": n, "i9_baseline_s": i9b, "i9_pc_s": i9p,
            "rtx4090_baseline_s": g1b, "rtx4090_pc_s": g1p,
            "a40_baseline_s": g2b, "a40_pc_s": g2p,
        }));
    }

    // Measured sweep: fully-cached synthetic prompts on the real engine.
    let sweep: &[usize] = if quick {
        &[128, 256]
    } else {
        &[128, 256, 512, 1024]
    };
    let mut measured_table =
        Table::new(&["Tokens (measured)", "Baseline", "Prompt Cache", "Speedup"]);
    let mut measured_rows = Vec::new();
    for &n in sweep {
        let (b, p) = measured_fully_cached(n);
        measured_table.row(&[
            n.to_string(),
            fmt_time_s(b),
            fmt_time_s(p),
            fmt_speedup(b / p),
        ]);
        measured_rows.push(json!({ "tokens": n, "baseline_s": b, "pc_s": p }));
    }

    Report {
        id: "fig5",
        title: "Figure 5 — cache advantage: quadratic compute vs linear copy",
        markdown: format!(
            "{}\n{}\nThe baseline column grows superlinearly; the PC column is \
             dominated by linear memcpy (plus fixed overhead at paper scale).\n",
            table.to_markdown(),
            measured_table.to_markdown()
        ),
        json: json!({ "simulated": rows, "measured": measured_rows }),
    }
}

/// Measured fully-cached TTFT at context length `n`: one synthetic module
/// of `n` tokens, one-word question. Returns `(baseline_s, pc_s)`.
pub fn measured_fully_cached(n: usize) -> (f64, f64) {
    use pc_model::{Model, ModelConfig};
    use pc_tokenizer::WordTokenizer;
    use prompt_cache::{EngineConfig, PromptCache, ServeOptions};

    let doc: String = (0..n.saturating_sub(1).max(1))
        .map(|i| format!("w{} ", i % 97))
        .collect();
    let tokenizer = WordTokenizer::train(&[doc.as_str(), "go"]);
    let vocab = tokenizer.vocab().len().max(64);
    let engine = PromptCache::new(
        Model::new(ModelConfig::llama_small(vocab), 1),
        tokenizer,
        EngineConfig::default(),
    );
    let schema = format!(r#"<schema name="sweep"><module name="doc">{doc}</module></schema>"#);
    engine.register_schema(&schema).unwrap();
    let prompt = r#"<prompt schema="sweep"><doc/>go</prompt>"#;
    let opts = ServeOptions::default().max_new_tokens(1);
    engine.serve(&ServeRequest::new(prompt).options(opts.clone())).map(Served::into_response).unwrap();
    engine.serve(&ServeRequest::new(prompt).options(opts.clone()).baseline(true)).map(Served::into_response).unwrap();
    let mut best_b = f64::MAX;
    let mut best_p = f64::MAX;
    for _ in 0..3 {
        best_p = best_p.min(
            engine
                .serve(&ServeRequest::new(prompt).options(opts.clone())).map(Served::into_response)
                .unwrap()
                .timings
                .ttft
                .as_secs_f64(),
        );
        best_b = best_b.min(
            engine
                .serve(&ServeRequest::new(prompt).options(opts.clone()).baseline(true)).map(Served::into_response)
                .unwrap()
                .timings
                .ttft
                .as_secs_f64(),
        );
    }
    (best_b, best_p)
}

/// Table 2: MB/token for the eight-model catalog.
pub fn table2() -> Report {
    let paper = [0.03, 0.18, 0.50, 0.78, 1.31, 1.87, 2.5, 4.53];
    let mut table = Table::new(&["LLM", "MB/token (paper)", "MB/token (reproduced)"]);
    let mut rows = Vec::new();
    for (spec, &expected) in TABLE2_MODELS.iter().zip(&paper) {
        let got = spec.mb_per_token();
        table.row(&[
            spec.name.to_string(),
            format!("{expected}"),
            format!("{got:.2}"),
        ]);
        rows.push(json!({ "llm": spec.name, "paper": expected, "reproduced": got }));
    }
    // Extension (§6 names "utilization of grouped query attention" as a
    // way to cut copy overhead): the same catalog under the models' real
    // GQA/MQA head counts.
    let gqa = [
        ("Llama 70B (GQA, 8 kv heads)", 80usize, 8 * 128usize),
        ("Falcon 40B (MQA)", 60, 128),
        ("Falcon 180B (GQA, 8 kv heads)", 80, 8 * 232),
    ];
    let mut gqa_table = Table::new(&["LLM (real attention layout)", "MB/token", "vs MHA"]);
    for (name, layers, kv_dim) in gqa {
        let mb = (2 * layers * kv_dim * 2) as f64 / 1e6;
        let mha = TABLE2_MODELS
            .iter()
            .find(|m| name.starts_with(m.name.split(' ').next().unwrap()))
            .map(|m| m.mb_per_token())
            .unwrap_or(mb);
        gqa_table.row(&[
            name.to_string(),
            format!("{mb:.2}"),
            format!("{:.1}× smaller", mha / mb),
        ]);
    }
    Report {
        id: "table2",
        title: "Table 2 — KV memory overhead per cached token (fp16, MHA)",
        markdown: format!(
            "{}\n### Extension: real GQA/MQA layouts (§6's copy-overhead lever)\n{}\n",
            table.to_markdown(),
            gqa_table.to_markdown()
        ),
        json: json!({ "rows": rows }),
    }
}

/// §5.4 memcpy micro-results: one Llama-7B layer's 5K-token states across
/// the three copy paths, plus this machine's measured h2h bandwidth.
pub fn memcpy() -> Report {
    let tokens = 5000;
    let h2h = pc_simulator::sim::layer_memcpy_s(&LLAMA_7B, tokens, 21.6e9);
    let h2d = pc_simulator::sim::layer_memcpy_s(&LLAMA_7B, tokens, 15.3e9);
    let d2d = pc_simulator::sim::layer_memcpy_s(&LLAMA_7B, tokens, 356.0e9);

    // Measured: copy a same-size buffer on this machine.
    let bytes = 2 * tokens * LLAMA_7B.hidden * 2;
    let src = vec![1u8; bytes];
    let mut dst = vec![0u8; bytes];
    let start = std::time::Instant::now();
    let reps = 20;
    for _ in 0..reps {
        dst.copy_from_slice(&src);
        std::hint::black_box(&dst);
    }
    let measured_s = start.elapsed().as_secs_f64() / reps as f64;

    let mut table = Table::new(&["Path", "Paper", "Reproduced"]);
    table.row(&["host→host".into(), "3.79 ms".into(), fmt_time_s(h2h)]);
    table.row(&["host→device".into(), "5.34 ms".into(), fmt_time_s(h2d)]);
    table.row(&["device→device".into(), "0.23 ms".into(), fmt_time_s(d2d)]);
    table.row(&[
        "host→host (measured, this machine)".into(),
        "—".into(),
        fmt_time_s(measured_s),
    ]);
    Report {
        id: "memcpy",
        title: "§5.4 — memcpy latency for 5K-token attention states (one layer, fp16-sized)",
        markdown: table.to_markdown(),
        json: json!({
            "h2h_s": h2h, "h2d_s": h2d, "d2d_s": d2d,
            "measured_h2h_s": measured_s, "bytes": bytes,
        }),
    }
}

/// §5.4 model-size effect: 7B → 13B at 3K tokens.
pub fn modelsize() -> Report {
    let n = 3000;
    let b7 = baseline_ttft(&LLAMA_7B, &RTX_4090, n).compute_s;
    let b13 = baseline_ttft(&LLAMA_13B, &RTX_4090, n).compute_s;
    let p7 = prompt_cache_ttft(&LLAMA_7B, &RTX_4090, n, n, ModuleLocation::HostMemory);
    let p13 = prompt_cache_ttft(&LLAMA_13B, &RTX_4090, n, n, ModuleLocation::HostMemory);
    let pc_delta = p13.copy_s - p7.copy_s;
    let mut table = Table::new(&["Quantity", "Paper", "Reproduced"]);
    table.row(&[
        "baseline Δ(13B−7B)".into(),
        "+220 ms".into(),
        fmt_time_s(b13 - b7),
    ]);
    table.row(&[
        "Prompt Cache Δ(13B−7B)".into(),
        "+30 ms".into(),
        fmt_time_s(pc_delta),
    ]);
    Report {
        id: "modelsize",
        title: "§5.4 — effect of model size at 3K tokens (RTX 4090)",
        markdown: format!(
            "{}\nShape: the baseline delta is an order of magnitude larger than \
             Prompt Cache's (compute scales ~quadratically with hidden size, the \
             copy linearly).\n",
            table.to_markdown()
        ),
        json: json!({
            "baseline_delta_s": b13 - b7,
            "pc_delta_s": pc_delta,
        }),
    }
}

/// §5.4 end-to-end latency: TTFT savings expressed against growing
/// output lengths ("its impact … diminishes as the number of generated
/// tokens increases"), plus the "25 more tokens in the same timeframe"
/// claim.
pub fn e2e() -> Report {
    use pc_simulator::{decode_step_s, end_to_end_s};
    let n = 3000;
    let mut table = Table::new(&[
        "Output tokens", "Baseline e2e", "Prompt Cache e2e", "Relative gain",
    ]);
    let mut rows = Vec::new();
    for k in [1usize, 10, 25, 50, 100, 250] {
        let base = end_to_end_s(&LLAMA_7B, &RTX_4090, n, 0, ModuleLocation::DeviceMemory, k);
        let pc = end_to_end_s(&LLAMA_7B, &RTX_4090, n, n, ModuleLocation::DeviceMemory, k);
        table.row(&[
            k.to_string(),
            fmt_time_s(base),
            fmt_time_s(pc),
            fmt_speedup(base / pc),
        ]);
        rows.push(json!({ "k": k, "baseline_s": base, "pc_s": pc }));
    }
    let step = decode_step_s(&LLAMA_7B, &RTX_4090, n);
    let saving = baseline_ttft(&LLAMA_7B, &RTX_4090, n).total_s
        - prompt_cache_ttft(&LLAMA_7B, &RTX_4090, n, n, ModuleLocation::DeviceMemory).total_s;
    let tokens_bought = saving / step;
    Report {
        id: "e2e",
        title: "§5.4 — end-to-end latency vs output length (RTX 4090, 3K context)",
        markdown: format!(
            "{}\nTTST ≈ {} per token (paper: 32 ms, \"regardless of the token \
             length\"); the TTFT saving buys ≈ {tokens_bought:.0} output tokens \
             (paper: \"generation of 25 more tokens within the same timeframe\").\n",
            table.to_markdown(),
            fmt_time_s(step)
        ),
        json: json!({ "rows": rows, "ttst_s": step, "tokens_bought": tokens_bought }),
    }
}

/// Appendix: simulated speedups for all 21 datasets (GPU and CPU).
pub fn appendix() -> Report {
    let mut table = Table::new(&[
        "Dataset", "Category", "Cached frac", "4090 speedup (GPU mem)", "i9 speedup",
    ]);
    let mut rows = Vec::new();
    for spec in &ALL {
        let (n, cached) = (spec.total_tokens(), spec.context_tokens);
        let g = baseline_ttft(&LLAMA_7B, &RTX_4090, n).total_s
            / prompt_cache_ttft(&LLAMA_7B, &RTX_4090, n, cached, ModuleLocation::DeviceMemory)
                .total_s;
        let c = baseline_ttft(&LLAMA_7B, &INTEL_I9_13900K, n).total_s
            / prompt_cache_ttft(
                &LLAMA_7B,
                &INTEL_I9_13900K,
                n,
                cached,
                ModuleLocation::HostMemory,
            )
            .total_s;
        table.row(&[
            spec.name.to_string(),
            format!("{:?}", spec.category),
            format!("{:.2}", spec.cached_fraction()),
            fmt_speedup(g),
            fmt_speedup(c),
        ]);
        rows.push(json!({
            "dataset": spec.name, "cached_fraction": spec.cached_fraction(),
            "gpu_speedup": g, "cpu_speedup": c,
        }));
    }
    Report {
        id: "appendix",
        title: "Appendix — all 21 LongBench datasets, simulated speedups",
        markdown: table.to_markdown(),
        json: json!({ "rows": rows }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_covers_8_datasets_x_3_gpus() {
        let r = fig3();
        assert_eq!(r.json["rows"].as_array().unwrap().len(), 24);
        assert!(r.markdown.contains("RTX 4090"));
    }

    #[test]
    fn table2_rows_match_catalog() {
        let r = table2();
        assert_eq!(r.json["rows"].as_array().unwrap().len(), 8);
        assert!(r.markdown.contains("Llama 70B"));
    }

    #[test]
    fn memcpy_report_reproduces_paper_numbers() {
        let r = memcpy();
        let h2h = r.json["h2h_s"].as_f64().unwrap();
        assert!((h2h * 1e3 - 3.79).abs() < 0.5);
    }

    #[test]
    fn appendix_covers_21() {
        let r = appendix();
        assert_eq!(r.json["rows"].as_array().unwrap().len(), 21);
    }

    #[test]
    fn modelsize_shape_holds() {
        // Paper: +220 ms baseline vs +30 ms Prompt Cache (≈7×). Our
        // conservative bulk-streaming bandwidth compresses the ratio; the
        // reproduced shape is "baseline delta ≫ Prompt Cache delta".
        let r = modelsize();
        let base = r.json["baseline_delta_s"].as_f64().unwrap();
        let pc = r.json["pc_delta_s"].as_f64().unwrap();
        assert!(base > 3.0 * pc, "base {base:.3} vs pc {pc:.3}");
    }
}
