//! Prefix-aware batched attention A/B: replays batches of sequences that
//! all import the same document module, with the grouped two-phase kernel
//! on vs off, sweeping the shared-prefix length and the batch size.
//!
//! The quantity under test is KV **row traffic**: with prefix sharing on,
//! each tick streams the shared module rows once per *group*
//! (O(unique KV)), not once per *member* (O(batch × KV)) — while greedy
//! outputs stay byte-identical (asserted against the sharing-off run).

use super::Report;
use crate::emit::{fmt_time_s, Table};
use pc_model::{Model, ModelConfig};
use pc_tokenizer::{Tokenizer, WordTokenizer};
use prompt_cache::{
    BatchConfig, BatchScheduler, EngineConfig, PromptCache, Response, ServeOptions, Telemetry,
};
use serde_json::json;

const MAX_NEW_TOKENS: usize = 8;

fn build_engine(doc_words: usize, telemetry: Telemetry) -> PromptCache {
    let doc: String = (0..doc_words).map(|i| format!("w{} ", i % 89)).collect();
    let corpus = format!("{doc} you are a helpful assistant answer briefly q0 q1 q2");
    let tokenizer = WordTokenizer::train(&[corpus.as_str()]);
    let vocab = tokenizer.vocab_size().max(64);
    let engine = PromptCache::new(
        Model::new(ModelConfig::llama_tiny(vocab), 10),
        tokenizer,
        EngineConfig::default().telemetry(telemetry),
    );
    engine
        .register_schema(&format!(
            r#"<schema name="svc">you are a helpful assistant<module name="doc">{doc}</module></schema>"#
        ))
        .expect("register");
    engine
}

struct ModeResult {
    rows_shared: u64,
    rows_private: u64,
    tick_mean_s: f64,
    ticks: u64,
    responses: Vec<(u64, Response)>,
}

/// Serves `batch_size` sequences (same `<doc/>` module, distinct
/// suffixes) to completion, timing each scheduler tick and reading the
/// row-traffic counters afterwards.
fn run_mode(doc_words: usize, batch_size: usize, sharing: bool) -> ModeResult {
    let telemetry = Telemetry::new();
    let engine = build_engine(doc_words, telemetry.clone());
    let options = ServeOptions::default().max_new_tokens(MAX_NEW_TOKENS);
    let mut sched = BatchScheduler::new(
        &engine,
        BatchConfig::default().max_batch_size(batch_size).prefix_sharing(sharing),
    );
    for i in 0..batch_size {
        let prompt = format!(r#"<prompt schema="svc"><doc/>answer briefly q{}</prompt>"#, i % 3);
        sched.admit(i as u64, &prompt, &options).expect("admit");
    }
    let mut responses = Vec::new();
    let mut ticks = 0u64;
    let start = std::time::Instant::now();
    while !sched.is_idle() {
        for (id, result) in sched.step() {
            responses.push((id, result.expect("serve")));
        }
        ticks += 1;
    }
    let wall = start.elapsed().as_secs_f64();
    responses.sort_by_key(|(id, _)| *id);

    let snap = telemetry.snapshot();
    let counter = |name: &str| {
        snap.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    };
    ModeResult {
        rows_shared: counter("pc_kv_rows_shared_read_total"),
        rows_private: counter("pc_kv_rows_private_read_total"),
        tick_mean_s: wall / ticks.max(1) as f64,
        ticks,
        responses,
    }
}

/// Shared-KV row traffic and per-tick latency vs batch size and
/// shared-prefix length, grouped kernel on vs off. Full runs write
/// `BENCH_prefix_sharing.json` at the working directory root.
pub fn prefix_sharing(quick: bool) -> Report {
    let doc_lengths: &[usize] = if quick { &[40] } else { &[40, 160] };
    let batch_sizes: &[usize] = if quick { &[1, 4] } else { &[1, 2, 4, 8, 16] };

    let mut table = Table::new(&[
        "Prefix",
        "Batch",
        "Shared rows (on)",
        "Private rows (on)",
        "Rows off/on",
        "Tick mean (on)",
        "Tick mean (off)",
    ]);
    let mut sweep = Vec::new();
    let mut identical = 0usize;
    let mut total = 0usize;
    for &doc_words in doc_lengths {
        let mut batches = Vec::new();
        for &batch_size in batch_sizes {
            let on = run_mode(doc_words, batch_size, true);
            let off = run_mode(doc_words, batch_size, false);
            // Byte-identity is part of the contract being benchmarked.
            assert_eq!(on.responses.len(), off.responses.len());
            for ((_, a), (_, b)) in on.responses.iter().zip(&off.responses) {
                assert_eq!(a.tokens, b.tokens, "grouped kernel diverged from per-sequence");
                assert_eq!(a.text, b.text, "grouped kernel diverged from per-sequence");
                identical += 1;
                total += 1;
            }
            let rows_on = (on.rows_shared + on.rows_private).max(1);
            let rows_off = off.rows_shared + off.rows_private;
            table.row(&[
                format!("{doc_words} words"),
                format!("{batch_size}"),
                format!("{}", on.rows_shared),
                format!("{}", on.rows_private),
                format!("{:.2}x", rows_off as f64 / rows_on as f64),
                fmt_time_s(on.tick_mean_s),
                fmt_time_s(off.tick_mean_s),
            ]);
            let mode_json = |m: &ModeResult| {
                json!({
                    "kv_rows_shared_read": m.rows_shared,
                    "kv_rows_private_read": m.rows_private,
                    "tick_mean_s": m.tick_mean_s,
                    "ticks": m.ticks,
                })
            };
            batches.push(json!({
                "batch_size": batch_size,
                "sharing_on": mode_json(&on),
                "sharing_off": mode_json(&off),
                "row_traffic_ratio_off_over_on": rows_off as f64 / rows_on as f64,
            }));
        }
        sweep.push(json!({
            "prefix_words": doc_words,
            "batches": batches,
        }));
    }

    let json = json!({
        "max_new_tokens": MAX_NEW_TOKENS,
        "identical_outputs": identical,
        "sweep": sweep,
    });

    // Perf-trajectory artifact: full runs only (quick doubles as the test
    // path and must stay side-effect free).
    let mut bench_path = None;
    if !quick {
        let path = "BENCH_prefix_sharing.json";
        std::fs::write(path, serde_json::to_string_pretty(&json).expect("serialise"))
            .expect("write BENCH_prefix_sharing.json");
        bench_path = Some(path.to_owned());
    }

    Report {
        id: "prefix_sharing",
        title: "Prefix-aware batched attention: KV row traffic and tick latency, grouped kernel on vs off (measured)",
        markdown: format!(
            "{}\n{identical}/{total} responses byte-identical grouped vs per-sequence{}\n",
            table.to_markdown(),
            bench_path
                .as_deref()
                .map(|p| format!("; trajectory at `{p}`"))
                .unwrap_or_default()
        ),
        json,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_sharing_ab_holds() {
        let r = prefix_sharing(true);
        let sweep = r.json["sweep"].as_array().unwrap();
        assert_eq!(sweep.len(), 1);
        let batches = sweep[0]["batches"].as_array().unwrap();
        assert_eq!(batches.len(), 2);
        for b in batches {
            let size = b["batch_size"].as_u64().unwrap();
            let on = &b["sharing_on"];
            let off = &b["sharing_off"];
            assert_eq!(off["kv_rows_shared_read"].as_u64().unwrap(), 0);
            if size > 1 {
                // The grouped kernel streams the module once per tick;
                // off-mode re-reads it per member.
                assert!(on["kv_rows_shared_read"].as_u64().unwrap() > 0);
                assert!(b["row_traffic_ratio_off_over_on"].as_f64().unwrap() > 1.0);
            }
        }
        // Quick mode writes no artifact.
        assert!(!std::path::Path::new("BENCH_prefix_sharing.json").exists());
    }
}
