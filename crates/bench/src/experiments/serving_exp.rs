//! Serving-system experiments: measured server throughput under mixed
//! load and the §5.4 batch-capacity analysis, plus a measured RAG
//! comparison (§6's latency-sensitive RAG claim).

use super::Report;
use crate::emit::{fmt_speedup, fmt_time_s, Table};
use pc_model::{Model, ModelConfig};
use pc_server::capacity::{analyze, RequestFootprint};
use pc_server::{Server, ServerConfig, SubmitRequest};
use pc_tokenizer::{Tokenizer, WordTokenizer};
use prompt_cache::{EngineConfig, PromptCache, ServeOptions};
use serde_json::json;

fn service_engine(doc: &str) -> PromptCache {
    let corpus = format!("{doc} you are a helpful assistant answer briefly q0 q1 q2 q3 q4");
    let tokenizer = WordTokenizer::train(&[corpus.as_str()]);
    let vocab = tokenizer.vocab_size().max(64);
    let engine = PromptCache::new(
        Model::new(ModelConfig::llama_small(vocab), 10),
        tokenizer,
        EngineConfig::default(),
    );
    engine
        .register_schema(&format!(
            r#"<schema name="svc">you are a helpful assistant<module name="doc">{doc}</module></schema>"#
        ))
        .expect("register");
    engine
}

fn run_load(baseline: bool, requests: usize, workers: usize) -> (f64, f64) {
    let doc: String = (0..300).map(|i| format!("w{} ", i % 89)).collect();
    let server = Server::start(
        service_engine(&doc),
        ServerConfig::default().workers(workers).queue_capacity(256),
    );
    let opts = ServeOptions::default().max_new_tokens(2);
    let start = std::time::Instant::now();
    let handles: Vec<_> = (0..requests)
        .map(|i| {
            let prompt =
                format!(r#"<prompt schema="svc"><doc/>answer briefly q{}</prompt>"#, i % 5);
            let request = SubmitRequest::new(prompt)
                .options(opts.clone())
                .baseline(baseline)
                .blocking(true);
            server.submit_request(&request).expect("blocking submit")
        })
        .collect();
    for h in handles {
        h.wait().expect("served").outcome.expect("ok");
    }
    let wall = start.elapsed().as_secs_f64();
    let p50 = server
        .metrics()
        .ttft_p50
        .expect("samples recorded")
        .as_secs_f64();
    server.shutdown();
    (requests as f64 / wall, p50)
}

/// Measured server throughput (cached vs baseline) + the §5.4 capacity
/// model.
pub fn throughput(quick: bool) -> Report {
    let requests = if quick { 8 } else { 48 };
    let (cached_rps, cached_p50) = run_load(false, requests, 4);
    let (baseline_rps, baseline_p50) = run_load(true, requests, 4);

    let mut table = Table::new(&["Path", "Throughput", "TTFT p50"]);
    table.row(&[
        "Prompt Cache".into(),
        format!("{cached_rps:.0} req/s"),
        fmt_time_s(cached_p50),
    ]);
    table.row(&[
        "baseline KV cache".into(),
        format!("{baseline_rps:.0} req/s"),
        fmt_time_s(baseline_p50),
    ]);
    table.row(&[
        "gain".into(),
        fmt_speedup(cached_rps / baseline_rps),
        fmt_speedup(baseline_p50 / cached_p50),
    ]);

    // §5.4 capacity model.
    let population: Vec<RequestFootprint> = (0..100)
        .map(|_| RequestFootprint {
            modules: vec![(1, 1000)],
            private_tokens: 1000,
        })
        .collect();
    let capacity = analyze(100_000, &population);
    let mut cap_table = Table::new(&["Quantity", "Paper (§5.4)", "Reproduced"]);
    cap_table.row(&[
        "footprint reduction".into(),
        "50%".into(),
        format!("{:.0}%", capacity.footprint_reduction() * 100.0),
    ]);
    cap_table.row(&[
        "batch under 100K-token budget".into(),
        "larger working batch".into(),
        format!(
            "{} → {} requests ({:.1}×)",
            capacity.naive_batch,
            capacity.shared_batch,
            capacity.batch_gain()
        ),
    ]);

    // Open-loop Poisson load sweep: goodput and tail latency as offered
    // load rises (the serving-paper methodology).
    let mut load_table = Table::new(&[
        "Offered load", "Goodput", "e2e p50", "e2e p99",
    ]);
    let mut load_rows = Vec::new();
    let rates: &[f64] = if quick { &[100.0] } else { &[50.0, 200.0, 800.0] };
    {
        let doc: String = (0..300).map(|i| format!("w{} ", i % 89)).collect();
        let server = Server::start(
            service_engine(&doc),
            ServerConfig::default().workers(4).queue_capacity(1024),
        );
        let prompts: Vec<String> = (0..5)
            .map(|i| format!(r#"<prompt schema="svc"><doc/>answer briefly q{i}</prompt>"#))
            .collect();
        let n = if quick { 10 } else { 60 };
        for &rate in rates {
            let trace = pc_server::trace::poisson_trace(n, rate, prompts.len(), 9);
            let report = pc_server::trace::replay(
                &server,
                &prompts,
                &trace,
                &ServeOptions::default().max_new_tokens(1),
            );
            let p50 = report.e2e.percentile(50.0).unwrap_or_default();
            let p99 = report.e2e.percentile(99.0).unwrap_or_default();
            load_table.row(&[
                format!("{rate:.0} req/s"),
                format!("{:.0} req/s", report.goodput_rps()),
                fmt_time_s(p50.as_secs_f64()),
                fmt_time_s(p99.as_secs_f64()),
            ]);
            load_rows.push(json!({
                "offered_rps": rate, "goodput_rps": report.goodput_rps(),
                "e2e_p50_s": p50.as_secs_f64(), "e2e_p99_s": p99.as_secs_f64(),
            }));
        }
        server.shutdown();
    }

    Report {
        id: "throughput",
        title: "§5.4 — serving throughput and batch capacity (measured + model)",
        markdown: format!(
            "{}\n### Batch capacity (100 × 2K-token requests sharing a 1K module)\n{}\n\
             ### Open-loop Poisson load (cached path, 4 workers)\n{}\n",
            table.to_markdown(),
            cap_table.to_markdown(),
            load_table.to_markdown()
        ),
        json: json!({
            "cached_rps": cached_rps, "baseline_rps": baseline_rps,
            "cached_ttft_p50_s": cached_p50, "baseline_ttft_p50_s": baseline_p50,
            "capacity": json!({
                "naive_tokens": capacity.naive_tokens,
                "shared_tokens": capacity.shared_tokens,
                "naive_batch": capacity.naive_batch,
                "shared_batch": capacity.shared_batch,
            }),
            "load_sweep": load_rows,
        }),
    }
}

/// Measured RAG comparison: cached module database vs uncached context
/// stuffing (§6's "latency-sensitive RAG applications").
pub fn rag(quick: bool) -> Report {
    use pc_longbench::corpus::Corpus;
    use pc_rag::{RagConfig, RagPipeline};

    let corpus = Corpus::new(99);
    let num_docs = if quick { 4 } else { 12 };
    let mut docs = Vec::new();
    let mut entities = Vec::new();
    for id in 0..num_docs {
        let (doc, entity, _) = corpus.document_with_fact(id, 180);
        docs.push(doc);
        entities.push(entity);
    }
    let all_text = docs.join(" ") + " what is the secret code for";
    let tokenizer = WordTokenizer::train(&[all_text.as_str()]);
    let vocab = tokenizer.vocab_size().max(64);
    let engine = PromptCache::new(
        Model::new(ModelConfig::llama_small(vocab), 4),
        tokenizer,
        EngineConfig::default(),
    );
    let pipeline = RagPipeline::build(engine, &docs, RagConfig::default()).expect("build");

    let opts = ServeOptions::default().max_new_tokens(1);
    let mut cached_total = 0.0;
    let mut baseline_total = 0.0;
    let queries = entities.len().min(if quick { 2 } else { 6 });
    for entity in entities.iter().take(queries) {
        let q = format!("what is the secret code for {entity}");
        pipeline.query_with(&q, 2, &opts).expect("warm");
        cached_total += pipeline
            .query_with(&q, 2, &opts)
            .expect("query")
            .response
            .timings
            .ttft
            .as_secs_f64();
        baseline_total += pipeline
            .query_baseline(&q, 2, &opts)
            .expect("baseline")
            .response
            .timings
            .ttft
            .as_secs_f64();
    }
    let cached_mean = cached_total / queries as f64;
    let baseline_mean = baseline_total / queries as f64;

    let mut table = Table::new(&["Path", "Mean TTFT over queries"]);
    table.row(&["RAG over Prompt Cache modules".into(), fmt_time_s(cached_mean)]);
    table.row(&["RAG with uncached context".into(), fmt_time_s(baseline_mean)]);
    table.row(&["speedup".into(), fmt_speedup(baseline_mean / cached_mean)]);

    Report {
        id: "rag",
        title: "§6 — RAG with the retriever as a prompt-module database (measured)",
        markdown: table.to_markdown(),
        json: json!({
            "chunks": pipeline.num_chunks(),
            "cached_mean_ttft_s": cached_mean,
            "baseline_mean_ttft_s": baseline_mean,
            "speedup": baseline_mean / cached_mean,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_report_shows_gain() {
        let r = throughput(true);
        let cached = r.json["cached_rps"].as_f64().unwrap();
        let baseline = r.json["baseline_rps"].as_f64().unwrap();
        assert!(cached > baseline, "cached {cached} vs baseline {baseline}");
        assert_eq!(r.json["capacity"]["shared_batch"].as_u64().unwrap(), 99);
    }

    #[test]
    fn rag_report_shows_speedup() {
        let r = rag(true);
        assert!(r.json["speedup"].as_f64().unwrap() > 1.0);
    }
}
