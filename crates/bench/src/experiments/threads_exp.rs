//! Thread-scaling experiment: wall-clock for the two parallelised hot
//! paths — prefill-shaped matmul and schema registration (concurrent
//! module encoding) — swept over 1/2/4/8 threads, plus a guard that the
//! `min_work` threshold keeps decode-shaped (m = 1) kernels serial.
//!
//! Speedups are relative to the 1-thread run on the same machine; on a
//! single-core host they hover around 1× by construction (the results are
//! still bit-identical, which the test below re-checks end to end).

use super::Report;
use crate::emit::{fmt_speedup, fmt_time_s, Table};
use pc_model::{Model, ModelConfig};
use pc_tensor::{ops, Parallelism};
use pc_tokenizer::{Tokenizer, WordTokenizer};
use prompt_cache::{EngineConfig, PromptCache};
use serde_json::json;
use std::time::Instant;

const SWEEP: [usize; 4] = [1, 2, 4, 8];

/// Forces the fan-out at any problem size.
fn force(threads: usize) -> Parallelism {
    Parallelism {
        num_threads: threads,
        min_work: 0,
    }
}

/// Mean seconds per call over `reps` calls (one untimed warm-up).
fn time_mean<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    f();
    let start = Instant::now();
    for _ in 0..reps {
        f();
    }
    start.elapsed().as_secs_f64() / reps as f64
}

fn fill(len: usize, salt: usize) -> Vec<f32> {
    (0..len)
        .map(|i| ((i * 31 + salt * 7) % 17) as f32 * 0.11 - 0.9)
        .collect()
}

/// An 8-module schema so registration has enough independent owners to
/// occupy every swept thread count.
fn eight_module_engine(par: Parallelism) -> (PromptCache, String) {
    let modules: Vec<String> = (0..8)
        .map(|m| {
            let body: String = (0..96).map(|i| format!("w{} ", (m * 96 + i) % 89)).collect();
            format!(r#"<module name="m{m}">{body}</module>"#)
        })
        .collect();
    let schema = format!(r#"<schema name="threads">{}</schema>"#, modules.join(""));
    let corpus: String = (0..89).map(|i| format!("w{i} ")).collect();
    let tokenizer = WordTokenizer::train(&[corpus.as_str()]);
    let vocab = tokenizer.vocab_size().max(64);
    let engine = PromptCache::new(
        Model::new(ModelConfig::llama_tiny(vocab), 11),
        tokenizer,
        EngineConfig::default().parallelism(par),
    );
    (engine, schema)
}

/// Thread sweep over the parallel matmul and concurrent registration.
pub fn threads(quick: bool) -> Report {
    let (m, k, n) = if quick { (64, 64, 64) } else { (256, 256, 256) };
    let reps = if quick { 2 } else { 8 };
    let a = fill(m * k, 1);
    let b = fill(n * k, 2);
    let mut c = vec![0.0f32; m * n];

    let mut table = Table::new(&["Threads", "matmul (m=256)", "speedup", "register 8 modules", "speedup"]);
    let mut rows = Vec::new();
    let mut matmul_base = 0.0;
    let mut register_base = 0.0;
    for t in SWEEP {
        let par = force(t);
        let matmul_s = time_mean(reps, || {
            ops::matmul_transb_slices_par(&a, &b, &mut c, m, k, n, &par);
        });
        let (engine, schema) = eight_module_engine(par);
        let register_s = time_mean(reps, || {
            engine.register_schema(&schema).expect("register");
            engine.unregister_schema("threads");
        });
        if t == 1 {
            matmul_base = matmul_s;
            register_base = register_s;
        }
        table.row(&[
            format!("{t}"),
            fmt_time_s(matmul_s),
            fmt_speedup(matmul_base / matmul_s),
            fmt_time_s(register_s),
            fmt_speedup(register_base / register_s),
        ]);
        rows.push(json!({
            "threads": t,
            "matmul_s": matmul_s,
            "matmul_speedup": matmul_base / matmul_s,
            "register_s": register_s,
            "register_speedup": register_base / register_s,
        }));
    }

    // Decode guard: with the default `min_work` threshold, an m = 1
    // matvec must not pay pool hand-off — multi-thread configs route it
    // through the identical serial path, so the ratio stays near 1.
    let dk = 256;
    let dn = 1024;
    let qa = fill(dk, 3);
    let wb = fill(dn * dk, 4);
    let mut dout = vec![0.0f32; dn];
    let decode_reps = if quick { 16 } else { 128 };
    let serial = Parallelism::serial();
    let wide = Parallelism::with_threads(8);
    let decode_1t = time_mean(decode_reps, || {
        ops::matmul_transb_slices_par(&qa, &wb, &mut dout, 1, dk, dn, &serial);
    });
    let decode_8t = time_mean(decode_reps, || {
        ops::matmul_transb_slices_par(&qa, &wb, &mut dout, 1, dk, dn, &wide);
    });
    let decode_ratio = decode_8t / decode_1t;

    Report {
        id: "threads",
        title: "Thread scaling — parallel kernels and concurrent module encoding",
        markdown: format!(
            "{}\n\nDecode guard (m=1 matvec, default threshold): 8-thread config runs at \
             {} of the serial time — the `min_work` gate keeps decode on the calling thread.\n",
            table.to_markdown(),
            fmt_speedup(decode_ratio)
        ),
        json: json!({
            "rows": rows,
            "decode_m1_ratio": decode_ratio,
            "shape": json!({ "m": m, "k": k, "n": n }),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threads_report_has_full_sweep() {
        let r = threads(true);
        let rows = r.json["rows"].as_array().unwrap();
        assert_eq!(rows.len(), SWEEP.len());
        assert_eq!(rows[0]["threads"], 1);
        for row in rows {
            assert!(row["matmul_s"].as_f64().unwrap() > 0.0);
            assert!(row["register_s"].as_f64().unwrap() > 0.0);
        }
        assert!(r.json["decode_m1_ratio"].as_f64().unwrap() > 0.0);
    }
}
