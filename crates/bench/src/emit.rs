//! Markdown table emission for experiment reports.

/// A simple markdown table builder.
#[derive(Debug, Default, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must match the header arity).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Renders the table as GitHub-flavoured markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("| {} |\n", self.header.join(" | ")));
        out.push_str(&format!(
            "|{}\n",
            self.header.iter().map(|_| "---|").collect::<String>()
        ));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// Formats seconds as an adaptive human unit.
pub fn fmt_time_s(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.2} s")
    } else if seconds >= 1e-3 {
        format!("{:.1} ms", seconds * 1e3)
    } else {
        format!("{:.1} µs", seconds * 1e6)
    }
}

/// Formats a speedup multiplier.
pub fn fmt_speedup(x: f64) -> String {
    format!("{x:.1}×")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_markdown() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["1".into(), "2".into()]);
        let md = t.to_markdown();
        assert!(md.contains("| a | b |"));
        assert!(md.contains("|---|---|"));
        assert!(md.contains("| 1 | 2 |"));
        assert_eq!(t.len(), 1);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn row_arity_checked() {
        Table::new(&["a", "b"]).row(&["1".into()]);
    }

    #[test]
    fn time_units_adapt() {
        assert_eq!(fmt_time_s(2.5), "2.50 s");
        assert_eq!(fmt_time_s(0.0042), "4.2 ms");
        assert_eq!(fmt_time_s(0.0000042), "4.2 µs");
        assert_eq!(fmt_speedup(9.96), "10.0×");
    }
}
