//! Benchmark harness: regenerates every table and figure in the paper.
//!
//! Two kinds of evidence feed the reproduction:
//!
//! * **Measured** ([`measured`]) — the real Rust engine running scaled
//!   LongBench workloads on this machine's CPU. These establish the
//!   mechanism: cached TTFT beats baseline TTFT, quadratically growing
//!   with context for the baseline and linearly for Prompt Cache, with
//!   identical greedy outputs where theory says they must be identical.
//! * **Simulated** (`pc-simulator`) — the paper-scale analytic model
//!   (Llama-7B on the paper's five devices) that regenerates Figures 3–5
//!   with the paper's own axes.
//!
//! The `figures` binary dispatches one experiment per paper artifact:
//! `fig3 fig4 fig5 table1 table2 memcpy modelsize fig6 fig7 fig8
//! appendix ablations all`. Criterion benches under `benches/` time the
//! hot paths themselves.

pub mod emit;
pub mod experiments;
pub mod measured;
