//! Measured experiments: the real engine on scaled workloads.

use pc_longbench::{DatasetSpec, Sample, Workload};
use pc_model::{Family, Model, ModelConfig};
use pc_tokenizer::WordTokenizer;
use prompt_cache::{EngineConfig, PromptCache, Response, ServeOptions};
use serde::Serialize;
use prompt_cache::{ServeRequest, Served};

/// Scale factor mapping paper-size prompts (4–10K tokens) onto sizes the
/// tiny CPU engine sweeps quickly (a few hundred tokens).
pub const DEFAULT_SCALE: f64 = 0.05;

/// Builds an engine whose tokenizer knows the sample's vocabulary.
pub fn engine_for_sample(sample: &Sample, family: Family, seed: u64) -> PromptCache {
    let mut texts: Vec<&str> = sample.docs.iter().map(String::as_str).collect();
    texts.push(&sample.question);
    texts.push(&sample.answer);
    let tokenizer = WordTokenizer::train(&texts);
    let vocab = tokenizer.vocab().len().max(64);
    let cfg = match family {
        Family::Llama => ModelConfig::llama_small(vocab),
        Family::Falcon => ModelConfig {
            num_kv_heads: 1,
            family: Family::Falcon,
            ..ModelConfig::llama_small(vocab)
        },
        Family::Mpt => ModelConfig {
            family: Family::Mpt,
            ..ModelConfig::llama_small(vocab)
        },
        Family::Gpt2 => ModelConfig {
            family: Family::Gpt2,
            ..ModelConfig::llama_small(vocab)
        },
    };
    PromptCache::new(Model::new(cfg, seed), tokenizer, EngineConfig::default())
}

/// One dataset's measured TTFT comparison.
#[derive(Debug, Clone, Serialize)]
pub struct MeasuredTtft {
    /// Dataset name.
    pub dataset: String,
    /// Prompt tokens served from cache.
    pub cached_tokens: usize,
    /// Prompt tokens computed.
    pub new_tokens: usize,
    /// Baseline (full prefill) TTFT, seconds.
    pub baseline_s: f64,
    /// Prompt Cache TTFT, seconds.
    pub cached_s: f64,
    /// Speedup factor.
    pub speedup: f64,
    /// Whether greedy outputs agreed between the two paths.
    pub outputs_equal: bool,
}

/// Runs the measured TTFT comparison for one dataset.
pub fn measure_dataset(spec: &'static DatasetSpec, scale: f64, seed: u64) -> MeasuredTtft {
    let sample = Workload::new(spec, seed, scale).sample(0);
    let engine = engine_for_sample(&sample, Family::Llama, seed);
    engine.register_schema(&sample.schema_pml("lb")).unwrap();
    let prompt = sample.prompt_pml("lb");
    let opts = ServeOptions::default().max_new_tokens(1);
    // Warm-up (allocator, page faults), then measure best-of-3.
    engine.serve(&ServeRequest::new(&prompt).options(opts.clone())).map(Served::into_response).unwrap();
    engine.serve(&ServeRequest::new(&prompt).options(opts.clone()).baseline(true)).map(Served::into_response).unwrap();
    let cached = best_of(3, || engine.serve(&ServeRequest::new(&prompt).options(opts.clone())).map(Served::into_response).unwrap());
    let baseline = best_of(3, || engine.serve(&ServeRequest::new(&prompt).options(opts.clone()).baseline(true)).map(Served::into_response).unwrap());
    MeasuredTtft {
        dataset: spec.name.to_owned(),
        cached_tokens: cached.0.stats.cached_tokens,
        new_tokens: cached.0.stats.new_tokens,
        baseline_s: baseline.1,
        cached_s: cached.1,
        speedup: baseline.1 / cached.1,
        outputs_equal: cached.0.tokens == baseline.0.tokens,
    }
}

fn best_of(n: usize, mut f: impl FnMut() -> Response) -> (Response, f64) {
    let mut best: Option<(Response, f64)> = None;
    for _ in 0..n {
        let r = f();
        let t = r.timings.ttft.as_secs_f64();
        if best.as_ref().is_none_or(|(_, bt)| t < *bt) {
            best = Some((r, t));
        }
    }
    best.expect("n >= 1")
}

/// Accuracy-style comparison for Table 1: greedy outputs from the cached
/// and baseline paths on one dataset, scored against the synthetic
/// reference with the dataset's metric.
#[derive(Debug, Clone, Serialize)]
pub struct MeasuredAccuracy {
    /// Dataset name.
    pub dataset: String,
    /// Model family.
    pub family: String,
    /// Metric name.
    pub metric: String,
    /// Baseline score against the reference.
    pub baseline_score: f64,
    /// Baseline score dispersion across samples.
    pub baseline_std: f64,
    /// Cached score against the reference.
    pub cached_score: f64,
    /// Cached score dispersion across samples.
    pub cached_std: f64,
    /// Fraction of samples where the two paths emitted identical tokens.
    pub agreement: f64,
    /// Whether the cached mean sits within 2σ of the baseline mean —
    /// the paper's "comparable accuracy" criterion, quantified.
    pub comparable: bool,
}

/// Runs the Table 1 comparison: `samples` prompts per dataset/family.
pub fn measure_accuracy(
    spec: &'static DatasetSpec,
    family: Family,
    samples: u64,
    scale: f64,
) -> MeasuredAccuracy {
    use pc_longbench::evaluate::Aggregate;
    let mut baseline_scores = Vec::new();
    let mut cached_scores = Vec::new();
    let mut agree = 0usize;
    for i in 0..samples {
        let sample = Workload::new(spec, 11 + i, scale).sample(i);
        let engine = engine_for_sample(&sample, family, 31 + i);
        engine.register_schema(&sample.schema_pml("lb")).unwrap();
        let prompt = sample.prompt_pml("lb");
        let opts = ServeOptions::default().max_new_tokens(12);
        let cached = engine.serve(&ServeRequest::new(&prompt).options(opts.clone())).map(Served::into_response).unwrap();
        let baseline = engine.serve(&ServeRequest::new(&prompt).options(opts.clone()).baseline(true)).map(Served::into_response).unwrap();
        baseline_scores
            .push(pc_longbench::metrics::score(spec.metric, &baseline.text, &sample.answer));
        cached_scores
            .push(pc_longbench::metrics::score(spec.metric, &cached.text, &sample.answer));
        if cached.tokens == baseline.tokens {
            agree += 1;
        }
    }
    let baseline = Aggregate::of(&baseline_scores);
    let cached = Aggregate::of(&cached_scores);
    MeasuredAccuracy {
        dataset: spec.name.to_owned(),
        family: format!("{family:?}"),
        metric: format!("{:?}", spec.metric),
        baseline_score: baseline.mean,
        baseline_std: baseline.std_dev,
        cached_score: cached.mean,
        cached_std: cached.std_dev,
        agreement: agree as f64 / samples as f64,
        comparable: cached.comparable_to(&baseline, 2.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_ttft_improves_and_matches() {
        let spec = DatasetSpec::by_name("2WikiMultihopQA").unwrap();
        let m = measure_dataset(spec, 0.03, 5);
        assert!(m.speedup > 1.0, "{m:?}");
        assert!(m.cached_tokens > m.new_tokens);
    }

    #[test]
    fn accuracy_comparison_runs() {
        let spec = DatasetSpec::by_name("NarrativeQA").unwrap();
        let a = measure_accuracy(spec, Family::Llama, 2, 0.02);
        assert!((0.0..=1.0).contains(&a.agreement));
        assert!((0.0..=1.0).contains(&a.baseline_score));
        assert!((0.0..=1.0).contains(&a.cached_score));
    }
}
