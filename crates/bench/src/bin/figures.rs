//! Regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run --release -p pc-bench --bin figures -- all
//! cargo run --release -p pc-bench --bin figures -- fig3 table2
//! cargo run --release -p pc-bench --bin figures -- --quick all
//! ```
//!
//! Markdown goes to stdout; JSON results are written to `results/<id>.json`
//! relative to the working directory.

use pc_bench::experiments::{run, ALL_IDS};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let requested: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    let ids: Vec<&str> = if requested.is_empty() || requested.contains(&"all") {
        ALL_IDS.to_vec()
    } else {
        requested
    };

    std::fs::create_dir_all("results").expect("create results dir");
    for id in ids {
        let Some(report) = run(id, quick) else {
            eprintln!("unknown experiment `{id}`; known: {ALL_IDS:?}");
            std::process::exit(2);
        };
        println!("\n## {}\n", report.title);
        println!("{}", report.markdown);
        let path = format!("results/{}.json", report.id);
        std::fs::write(
            &path,
            serde_json::to_string_pretty(&report.json).expect("serialise"),
        )
        .expect("write results");
        eprintln!("[figures] wrote {path}");
    }
}
