//! §5.4 memcpy microbenchmark (host→host on this machine): copying
//! attention states for 1K–5K tokens, the linear-cost half of Figure 5.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pc_model::KvCache;
use std::time::Duration;

/// One Llama-7B-layer-sized state block per token: 2 × 4096 f32s.
fn states(tokens: usize) -> KvCache {
    let mut cache = KvCache::with_shape(1, 4096);
    let row = vec![1.0f32; 4096];
    for t in 0..tokens {
        cache.push_token_layer(0, &row, &row);
        cache.push_position(t);
    }
    cache
}

fn memcpy(c: &mut Criterion) {
    let mut group = c.benchmark_group("memcpy_h2h");
    group
        .sample_size(15)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    for &tokens in &[1000usize, 2500, 5000] {
        let src = states(tokens);
        let bytes = src.size_bytes() as u64;
        group.throughput(Throughput::Bytes(bytes));
        group.bench_with_input(BenchmarkId::from_parameter(tokens), &tokens, |b, _| {
            let mut dst = KvCache::with_shape(1, 4096);
            dst.append(&src).unwrap();
            b.iter(|| {
                dst.truncate(0);
                dst.append(&src).unwrap();
                std::hint::black_box(dst.len());
            })
        });
    }
    group.finish();
}

criterion_group!(benches, memcpy);
criterion_main!(benches);
