//! Serving throughput: a burst of requests through the worker-pool
//! server, cached vs baseline path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pc_model::{Model, ModelConfig};
use pc_server::{Server, ServerConfig, SubmitRequest};
use pc_tokenizer::{Tokenizer, WordTokenizer};
use prompt_cache::{EngineConfig, PromptCache, ServeOptions};
use std::time::Duration;

const BURST: usize = 16;

fn build_server() -> Server {
    let doc: String = (0..200).map(|i| format!("w{} ", i % 89)).collect();
    let corpus = format!("{doc} answer briefly q0 q1 q2 q3");
    let tokenizer = WordTokenizer::train(&[corpus.as_str()]);
    let vocab = tokenizer.vocab_size().max(64);
    let engine = PromptCache::new(
        Model::new(ModelConfig::llama_small(vocab), 10),
        tokenizer,
        EngineConfig::default(),
    );
    engine
        .register_schema(&format!(
            r#"<schema name="svc"><module name="doc">{doc}</module></schema>"#
        ))
        .unwrap();
    Server::start(
        engine,
        ServerConfig::default().workers(4).queue_capacity(64),
    )
}

fn server_throughput(c: &mut Criterion) {
    let server = build_server();
    let opts = ServeOptions::default().max_new_tokens(1);
    let mut group = c.benchmark_group("server_burst16");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(5));
    group.throughput(Throughput::Elements(BURST as u64));

    for baseline in [false, true] {
        let label = if baseline { "baseline" } else { "prompt_cache" };
        group.bench_with_input(BenchmarkId::from_parameter(label), &baseline, |b, &bl| {
            b.iter(|| {
                let handles: Vec<_> = (0..BURST)
                    .map(|i| {
                        let prompt = format!(
                            r#"<prompt schema="svc"><doc/>answer briefly q{}</prompt>"#,
                            i % 4
                        );
                        let request = SubmitRequest::new(prompt)
                            .options(opts.clone())
                            .baseline(bl)
                            .blocking(true);
                        server.submit_request(&request).expect("blocking submit")
                    })
                    .collect();
                for h in handles {
                    h.wait().unwrap().outcome.unwrap();
                }
            })
        });
    }
    group.finish();
    server.shutdown();
}

criterion_group!(benches, server_throughput);
criterion_main!(benches);
