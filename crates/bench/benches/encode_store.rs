//! Module encoding, store access, quantization, and codec throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pc_cache::quant::QuantizedKv;
use pc_cache::{EvictionPolicy, ModuleKey, ModuleStore, StoreConfig, Tier};
use pc_model::{KvCache, Model, ModelConfig};
use std::time::Duration;

fn encode(c: &mut Criterion) {
    let model = Model::new(ModelConfig::llama_small(512), 0);
    let mut group = c.benchmark_group("encode_module");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));
    for &n in &[64usize, 256] {
        let tokens: Vec<u32> = (0..n as u32).map(|t| t % 500).collect();
        let positions: Vec<usize> = (0..n).collect();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| model.encode_segment(&tokens, &positions).unwrap())
        });
    }
    group.finish();
}

fn big_module(tokens: usize) -> KvCache {
    let mut cache = KvCache::with_shape(4, 128);
    let row = vec![0.5f32; 128];
    for t in 0..tokens {
        for l in 0..4 {
            cache.push_token_layer(l, &row, &row);
        }
        cache.push_position(t);
    }
    cache
}

fn store_access(c: &mut Criterion) {
    let one = big_module(64).size_bytes();
    let mut group = c.benchmark_group("store_get");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    for policy in EvictionPolicy::ALL {
        let store = ModuleStore::new(StoreConfig::default().device_capacity_bytes(8 * one).policy(policy));
        for m in 0..32 {
            store.insert(
                ModuleKey::new("b", &[format!("m{m}")]),
                big_module(64),
                1.0,
            );
        }
        group.bench_with_input(
            BenchmarkId::from_parameter(policy.name()),
            &policy,
            |b, _| {
                let mut i = 0usize;
                b.iter(|| {
                    let key = ModuleKey::new("b", &[format!("m{}", i % 32)]);
                    i = i.wrapping_add(7);
                    std::hint::black_box(store.get(&key, Tier::Device))
                })
            },
        );
    }
    group.finish();
}

fn quant_and_codec(c: &mut Criterion) {
    let module = big_module(256);
    let mut group = c.benchmark_group("module_transform");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    group.throughput(Throughput::Bytes(module.size_bytes() as u64));
    group.bench_function("quantize_int8", |b| {
        b.iter(|| QuantizedKv::quantize(&module))
    });
    let q = QuantizedKv::quantize(&module);
    group.bench_function("dequantize_int8", |b| b.iter(|| q.dequantize()));
    group.bench_function("codec_encode", |b| {
        b.iter(|| pc_cache::codec::encode(&module))
    });
    let bytes = pc_cache::codec::encode(&module);
    group.bench_function("codec_decode", |b| {
        b.iter(|| pc_cache::codec::decode(&bytes).unwrap())
    });
    group.finish();
}

criterion_group!(benches, encode, store_access, quant_and_codec);
criterion_main!(benches);
