//! Figure 5 (measured): TTFT vs context length for fully-cached prompts.
//! Baseline prefill grows quadratically with length; Prompt Cache's
//! fetch-and-concat path grows linearly.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pc_model::{Model, ModelConfig};
use pc_tokenizer::WordTokenizer;
use prompt_cache::{EngineConfig, PromptCache, ServeOptions};
use std::time::Duration;
use prompt_cache::{ServeRequest, Served};

fn cache_advantage(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache_advantage");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(4));

    for &n in &[128usize, 256, 512, 1024] {
        let doc: String = (0..n - 1).map(|i| format!("w{} ", i % 97)).collect();
        let tokenizer = WordTokenizer::train(&[doc.as_str(), "go"]);
        let vocab = tokenizer.vocab().len().max(64);
        let engine = PromptCache::new(
            Model::new(ModelConfig::llama_small(vocab), 1),
            tokenizer,
            EngineConfig::default(),
        );
        let schema = format!(r#"<schema name="s"><module name="doc">{doc}</module></schema>"#);
        engine.register_schema(&schema).unwrap();
        let prompt = r#"<prompt schema="s"><doc/>go</prompt>"#;
        let opts = ServeOptions::default().max_new_tokens(1);

        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("baseline", n), &n, |b, _| {
            b.iter(|| engine.serve(&ServeRequest::new(prompt).options(opts.clone()).baseline(true)).map(Served::into_response).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("prompt_cache", n), &n, |b, _| {
            b.iter(|| engine.serve(&ServeRequest::new(prompt).options(opts.clone())).map(Served::into_response).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, cache_advantage);
criterion_main!(benches);
