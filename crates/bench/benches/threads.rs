//! Thread-count sweep over the parallelised hot paths: prefill-shaped
//! matmul (m = 256), the decode-shaped m = 1 guard, and schema
//! registration with 8 independent modules (concurrent encoding).
//!
//! Results feed the `threads` figures experiment; run with `PC_THREADS=1`
//! to pin the rest of the stack while sweeping the explicit configs here.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pc_model::{Model, ModelConfig};
use pc_tensor::{ops, Parallelism};
use pc_tokenizer::{Tokenizer, WordTokenizer};
use prompt_cache::{EngineConfig, PromptCache};
use std::time::Duration;

const SWEEP: [usize; 4] = [1, 2, 4, 8];

fn fill(len: usize, salt: usize) -> Vec<f32> {
    (0..len)
        .map(|i| ((i * 31 + salt * 7) % 17) as f32 * 0.11 - 0.9)
        .collect()
}

fn matmul_prefill(c: &mut Criterion) {
    let (m, k, n) = (256, 256, 256);
    let a = fill(m * k, 1);
    let b = fill(n * k, 2);
    let mut out = vec![0.0f32; m * n];

    let mut group = c.benchmark_group("threads/matmul_prefill_m256");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2))
        .throughput(Throughput::Elements((m * k * n) as u64));
    for t in SWEEP {
        let par = Parallelism {
            num_threads: t,
            min_work: 0,
        };
        group.bench_with_input(BenchmarkId::from_parameter(t), &par, |bch, par| {
            bch.iter(|| ops::matmul_transb_slices_par(&a, &b, &mut out, m, k, n, par));
        });
    }
    group.finish();
}

fn matvec_decode(c: &mut Criterion) {
    // m = 1 with the *default* threshold: every thread count must take
    // the serial path, so the sweep shows flat timings (no regression
    // from pool hand-off on decode steps).
    let (k, n) = (256, 1024);
    let a = fill(k, 3);
    let b = fill(n * k, 4);
    let mut out = vec![0.0f32; n];

    let mut group = c.benchmark_group("threads/matvec_decode_m1");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    for t in SWEEP {
        let par = Parallelism::with_threads(t);
        group.bench_with_input(BenchmarkId::from_parameter(t), &par, |bch, par| {
            bch.iter(|| ops::matmul_transb_slices_par(&a, &b, &mut out, 1, k, n, par));
        });
    }
    group.finish();
}

fn register_schema(c: &mut Criterion) {
    let modules: Vec<String> = (0..8)
        .map(|m| {
            let body: String = (0..96).map(|i| format!("w{} ", (m * 96 + i) % 89)).collect();
            format!(r#"<module name="m{m}">{body}</module>"#)
        })
        .collect();
    let schema = format!(r#"<schema name="threads">{}</schema>"#, modules.join(""));
    let corpus: String = (0..89).map(|i| format!("w{i} ")).collect();

    let mut group = c.benchmark_group("threads/register_schema_8mod");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));
    for t in SWEEP {
        let tokenizer = WordTokenizer::train(&[corpus.as_str()]);
        let vocab = tokenizer.vocab_size().max(64);
        let engine = PromptCache::new(
            Model::new(ModelConfig::llama_tiny(vocab), 11),
            tokenizer,
            EngineConfig::default().parallelism(Parallelism::with_threads(t)),
        );
        group.bench_with_input(BenchmarkId::from_parameter(t), &engine, |bch, engine| {
            bch.iter(|| {
                engine.register_schema(&schema).expect("register");
                engine.unregister_schema("threads");
            });
        });
    }
    group.finish();
}

criterion_group!(benches, matmul_prefill, matvec_decode, register_schema);
criterion_main!(benches);
