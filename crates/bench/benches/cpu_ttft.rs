//! Figure 4 (measured): CPU TTFT, baseline KV cache vs Prompt Cache, on
//! scaled LongBench workloads. One criterion group per dataset with two
//! functions — the bar pairs of the paper's figure.

use criterion::{criterion_group, criterion_main, Criterion};
use pc_longbench::{DatasetSpec, Workload};
use pc_model::Family;
use prompt_cache::ServeOptions;
use std::time::Duration;
use prompt_cache::{ServeRequest, Served};

fn cpu_ttft(c: &mut Criterion) {
    // A QA dataset (tiny uncached tail) and the few-shot outlier (large
    // uncached tail) — the two extremes of Figure 4.
    for name in ["2WikiMultihopQA", "TriviaQA", "GovReport", "MultiNews"] {
        let spec = DatasetSpec::by_name(name).expect("dataset");
        let sample = Workload::new(spec, 7, 0.05).sample(0);
        let engine = pc_bench::measured::engine_for_sample(&sample, Family::Llama, 7);
        engine.register_schema(&sample.schema_pml("lb")).unwrap();
        let prompt = sample.prompt_pml("lb");
        let opts = ServeOptions::default().max_new_tokens(1);

        let mut group = c.benchmark_group(format!("cpu_ttft/{name}"));
        group
            .sample_size(10)
            .warm_up_time(Duration::from_millis(500))
            .measurement_time(Duration::from_secs(3));
        group.bench_function("baseline", |b| {
            b.iter(|| engine.serve(&ServeRequest::new(&prompt).options(opts.clone()).baseline(true)).map(Served::into_response).unwrap())
        });
        group.bench_function("prompt_cache", |b| {
            b.iter(|| engine.serve(&ServeRequest::new(&prompt).options(opts.clone())).map(Served::into_response).unwrap())
        });
        group.finish();
    }
}

criterion_group!(benches, cpu_ttft);
criterion_main!(benches);
