//! Batched decode A/B: the prefix-aware grouped attention kernel vs the
//! per-sequence kernel, batch of 8 sequences sharing one prompt module.
//! The grouped kernel streams the module's K/V rows once per tick
//! instead of once per member, so its advantage grows with the shared
//! prefix length.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pc_model::{BatchScratch, KvCache, KvSeq, KvView, Model, ModelConfig};
use std::sync::Arc;
use std::time::Duration;

const BATCH: usize = 8;

fn shared_module(model: &Model, tokens: usize) -> Arc<KvCache> {
    let mut cache = KvCache::new(model.config());
    let ids: Vec<u32> = (0..tokens).map(|t| (t % 60) as u32).collect();
    let positions: Vec<usize> = (0..tokens).collect();
    model.prefill(&ids, &positions, &mut cache).unwrap();
    Arc::new(cache)
}

fn prefix_sharing(c: &mut Criterion) {
    let mut group = c.benchmark_group("batched_decode");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    let model = Model::new(ModelConfig::llama_tiny(64), 7);
    for &prefix_tokens in &[64usize, 256] {
        let module = shared_module(&model, prefix_tokens);
        let mut views: Vec<KvView> = (0..BATCH)
            .map(|i| {
                let mut v =
                    KvView::with_shape(model.config().num_layers, model.config().kv_dim());
                v.push_cache(Arc::clone(&module)).unwrap();
                model
                    .prefill(&[(i % 60) as u32], &[prefix_tokens], &mut v)
                    .unwrap();
                v
            })
            .collect();
        let base_len = views[0].len();
        let tokens = vec![1u32; BATCH];
        let positions = vec![prefix_tokens + 1; BATCH];

        for sharing in [true, false] {
            let name = if sharing { "grouped" } else { "per-sequence" };
            let mut scratch = BatchScratch::new();
            group.bench_with_input(
                BenchmarkId::new(name, prefix_tokens),
                &prefix_tokens,
                |b, _| {
                    b.iter(|| {
                        let mut refs: Vec<&mut KvView> = views.iter_mut().collect();
                        let logits = model
                            .decode_step_batch_with(
                                &tokens,
                                &positions,
                                &mut refs,
                                &mut scratch,
                                sharing,
                            )
                            .unwrap();
                        // Rewind the tick so every iteration decodes at
                        // the same context length.
                        for v in &mut views {
                            v.truncate(base_len);
                        }
                        std::hint::black_box(logits)
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, prefix_sharing);
criterion_main!(benches);
