//! Concat ablation (§4.2): the buffered concatenation arena vs naive
//! fresh-allocation concatenation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pc_cache::arena::naive_concat;
use pc_cache::ConcatArena;
use pc_model::KvCache;
use std::time::Duration;

fn segment(tokens: usize, marker: u64) -> KvCache {
    let mut c = KvCache::with_shape(4, 128);
    let row: Vec<f32> = (0..128).map(|i| ((marker + i as u64) as f32).sin()).collect();
    for t in 0..tokens {
        for l in 0..4 {
            c.push_token_layer(l, &row, &row);
        }
        c.push_position(t);
    }
    c
}

fn concat(c: &mut Criterion) {
    let mut group = c.benchmark_group("concat");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    for &num_segments in &[2usize, 8, 32] {
        let segments: Vec<KvCache> = (0..num_segments)
            .map(|i| segment(128, i as u64))
            .collect();
        let refs: Vec<&KvCache> = segments.iter().collect();

        group.bench_with_input(
            BenchmarkId::new("arena", num_segments),
            &num_segments,
            |b, _| {
                let mut arena = ConcatArena::new(&segments[0]);
                arena.rebuild(&refs).unwrap();
                b.iter(|| {
                    std::hint::black_box(arena.rebuild(&refs).unwrap());
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("naive", num_segments),
            &num_segments,
            |b, _| {
                b.iter(|| std::hint::black_box(naive_concat(&refs).unwrap()))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, concat);
criterion_main!(benches);
