//! TTFT estimation: baseline KV cache vs Prompt Cache.

use crate::devices::{DeviceKind, DeviceSpec};
use crate::models::LlmSpec;
use serde::Serialize;

/// Where prompt modules live for a GPU inference (Figure 3's yellow vs
/// blue bars). Ignored for CPU inference, which always reads host memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum ModuleLocation {
    /// Modules in host DRAM: GPU pays a host→device copy per request.
    HostMemory,
    /// Modules resident in GPU HBM: device→device copy only.
    DeviceMemory,
}

/// A TTFT estimate with its breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct TtftEstimate {
    /// Total time-to-first-token, seconds.
    pub total_s: f64,
    /// Attention/MLP compute, seconds.
    pub compute_s: f64,
    /// Cached-state copy time, seconds.
    pub copy_s: f64,
    /// Fixed per-request overhead, seconds.
    pub overhead_s: f64,
}

impl TtftEstimate {
    fn new(compute_s: f64, copy_s: f64, overhead_s: f64) -> Self {
        TtftEstimate {
            total_s: compute_s + copy_s + overhead_s,
            compute_s,
            copy_s,
            overhead_s,
        }
    }
}

/// Seconds to copy `bytes` at `bytes_per_s` (0 bandwidth → no copy, e.g.
/// GPU-resident modules that need no transfer at all would pass 0 bytes
/// instead).
pub fn memcpy_time_s(bytes: f64, bytes_per_s: f64) -> f64 {
    if bytes_per_s <= 0.0 {
        0.0
    } else {
        bytes / bytes_per_s
    }
}

/// Baseline (regular KV cache) TTFT: full prefill of `n` tokens.
pub fn baseline_ttft(llm: &LlmSpec, device: &DeviceSpec, n: usize) -> TtftEstimate {
    let compute = llm.prefill_flops(n) / device.effective_flops;
    TtftEstimate::new(compute, 0.0, device.overhead_s)
}

/// Prompt Cache TTFT: `cached` of `n` tokens come from memory (copied at
/// the relevant bandwidth), the remaining `n − cached` are computed with
/// attention over the full context.
pub fn prompt_cache_ttft(
    llm: &LlmSpec,
    device: &DeviceSpec,
    n: usize,
    cached: usize,
    location: ModuleLocation,
) -> TtftEstimate {
    let cached = cached.min(n);
    let compute = llm.cached_prefill_flops(n, cached) / device.effective_flops;
    let bytes = (cached * llm.kv_bytes_per_token()) as f64;
    let bandwidth = match (device.kind, location) {
        (DeviceKind::Cpu, _) => device.h2h_bytes_per_s,
        (DeviceKind::Gpu, ModuleLocation::HostMemory) => device.h2d_bytes_per_s,
        (DeviceKind::Gpu, ModuleLocation::DeviceMemory) => device.d2d_bytes_per_s,
    };
    let copy = memcpy_time_s(bytes, bandwidth);
    TtftEstimate::new(compute, copy, device.overhead_s)
}

/// The §5.4 memcpy microbenchmark: seconds to move one layer's (k, v)
/// states for `tokens` tokens ("attention states with 5K tokens" in the
/// paper's phrasing matches one layer at fp16).
pub fn layer_memcpy_s(llm: &LlmSpec, tokens: usize, bytes_per_s: f64) -> f64 {
    let bytes = (2 * tokens * llm.hidden * 2) as f64;
    memcpy_time_s(bytes, bytes_per_s)
}

/// Time per output token (TTST/TPOT) against an `n`-token context.
/// Decoding is memory-bound — every step streams the weights — with a
/// small FLOP floor; §5.4 anchors this at ~32 ms/token for Llama-7B on
/// the RTX 4090, "regardless of the token length" (the weight term
/// dominates the n-dependent attention term at these scales).
pub fn decode_step_s(llm: &LlmSpec, device: &DeviceSpec, n: usize) -> f64 {
    let weight_time = llm.weight_bytes() / device.decode_bytes_per_s;
    let (n, d) = (n as f64, llm.hidden as f64);
    let flop_time = llm.layers as f64 * (6.0 * d * d + 4.0 * n * d) / device.effective_flops;
    weight_time + flop_time
}

/// End-to-end latency to receive `k` output tokens: TTFT plus `k − 1`
/// decode steps. §5.4: "Since Prompt Cache reduces only TTFT, its impact
/// on the time needed to receive the complete LLM response diminishes as
/// the number of generated tokens increases."
pub fn end_to_end_s(
    llm: &LlmSpec,
    device: &DeviceSpec,
    n: usize,
    cached: usize,
    location: ModuleLocation,
    k: usize,
) -> f64 {
    let ttft = if cached == 0 {
        baseline_ttft(llm, device, n).total_s
    } else {
        prompt_cache_ttft(llm, device, n, cached, location).total_s
    };
    let mut total = ttft;
    for step in 1..k {
        total += decode_step_s(llm, device, n + step);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices::{A40, AMD_7950X, INTEL_I9_13900K, RTX_4090};
    use crate::models::{LLAMA_13B, LLAMA_7B};

    #[test]
    fn paper_anchor_900ms_at_3k_on_4090() {
        let est = baseline_ttft(&LLAMA_7B, &RTX_4090, 3000);
        assert!(
            est.compute_s > 0.7 && est.compute_s < 1.1,
            "compute {:.3}s",
            est.compute_s
        );
    }

    #[test]
    fn gpu_memory_speedup_in_5_to_12_band() {
        // Figure 3 blue bars: 5–10× with modules in GPU memory. The
        // LongBench datasets keep 40–250 uncached question tokens on
        // 5–9K-token contexts.
        for uncached in [50, 100, 250] {
            let base = baseline_ttft(&LLAMA_7B, &RTX_4090, 5000).total_s;
            let pc = prompt_cache_ttft(
                &LLAMA_7B,
                &RTX_4090,
                5000,
                5000 - uncached,
                ModuleLocation::DeviceMemory,
            )
            .total_s;
            let speedup = base / pc;
            assert!(
                (4.0..12.0).contains(&speedup),
                "uncached {uncached}: {speedup:.1}×"
            );
        }
    }

    #[test]
    fn cpu_memory_speedup_in_1_5_to_5_band() {
        // Figure 3 yellow bars: 1.5–3× with modules streamed from host.
        for uncached in [50, 100, 250] {
            let base = baseline_ttft(&LLAMA_7B, &RTX_4090, 5000).total_s;
            let pc = prompt_cache_ttft(
                &LLAMA_7B,
                &RTX_4090,
                5000,
                5000 - uncached,
                ModuleLocation::HostMemory,
            )
            .total_s;
            let speedup = base / pc;
            assert!(
                (1.5..5.0).contains(&speedup),
                "uncached {uncached}: {speedup:.1}×"
            );
        }
    }

    #[test]
    fn intel_cpu_reaches_dozens_of_x() {
        // Figure 4: up to 70× on the Intel CPU for mostly-cached prompts.
        let base = baseline_ttft(&LLAMA_7B, &INTEL_I9_13900K, 5000).total_s;
        let pc = prompt_cache_ttft(
            &LLAMA_7B,
            &INTEL_I9_13900K,
            5000,
            4950,
            ModuleLocation::HostMemory,
        )
        .total_s;
        let speedup = base / pc;
        assert!((30.0..80.0).contains(&speedup), "{speedup:.1}×");
    }

    #[test]
    fn amd_cpu_tops_out_lower() {
        // Figure 4: ~20× maximum on the AMD CPU (slower DDR4 copies).
        let base = baseline_ttft(&LLAMA_7B, &AMD_7950X, 5000).total_s;
        let pc = prompt_cache_ttft(
            &LLAMA_7B,
            &AMD_7950X,
            5000,
            4950,
            ModuleLocation::HostMemory,
        )
        .total_s;
        let speedup = base / pc;
        assert!((12.0..32.0).contains(&speedup), "{speedup:.1}×");
    }

    #[test]
    fn cpu_benefits_more_than_gpu() {
        // §5.2.2: "CPU inference benefits more significantly from Prompt
        // Cache than GPU inference does."
        let cached = 4800;
        let gpu_speedup = baseline_ttft(&LLAMA_7B, &RTX_4090, 5000).total_s
            / prompt_cache_ttft(&LLAMA_7B, &RTX_4090, 5000, cached, ModuleLocation::DeviceMemory)
                .total_s;
        let cpu_speedup = baseline_ttft(&LLAMA_7B, &INTEL_I9_13900K, 5000).total_s
            / prompt_cache_ttft(
                &LLAMA_7B,
                &INTEL_I9_13900K,
                5000,
                cached,
                ModuleLocation::HostMemory,
            )
            .total_s;
        assert!(cpu_speedup > gpu_speedup);
    }

    #[test]
    fn baseline_quadratic_pc_linear() {
        // Figure 5: baseline grows quadratically with length, Prompt Cache
        // (fully cached) linearly.
        let b1 = baseline_ttft(&LLAMA_7B, &INTEL_I9_13900K, 2000).compute_s;
        let b2 = baseline_ttft(&LLAMA_7B, &INTEL_I9_13900K, 4000).compute_s;
        assert!(b2 > 2.4 * b1, "superlinear: {b1:.2} → {b2:.2}");
        let p1 =
            prompt_cache_ttft(&LLAMA_7B, &INTEL_I9_13900K, 2000, 2000, ModuleLocation::HostMemory)
                .copy_s;
        let p2 =
            prompt_cache_ttft(&LLAMA_7B, &INTEL_I9_13900K, 4000, 4000, ModuleLocation::HostMemory)
                .copy_s;
        assert!((p2 / p1 - 2.0).abs() < 0.05, "linear: {p1:.4} → {p2:.4}");
    }

    #[test]
    fn memcpy_microbenchmark_matches_5_4() {
        // h2h 3.79 ms, h2d 5.34 ms, d2d 0.23 ms for 5K tokens (one layer).
        let h2h = layer_memcpy_s(&LLAMA_7B, 5000, 21.6e9);
        let h2d = layer_memcpy_s(&LLAMA_7B, 5000, 15.3e9);
        let d2d = layer_memcpy_s(&LLAMA_7B, 5000, 356.0e9);
        assert!((h2h * 1e3 - 3.79).abs() < 0.5, "h2h {:.2} ms", h2h * 1e3);
        assert!((h2d * 1e3 - 5.34).abs() < 0.7, "h2d {:.2} ms", h2d * 1e3);
        assert!((d2d * 1e3 - 0.23).abs() < 0.05, "d2d {:.2} ms", d2d * 1e3);
    }

    #[test]
    fn model_size_effect_matches_5_4() {
        // §5.4: 7B → 13B at 3K tokens adds ~220 ms baseline but only
        // ~30 ms for Prompt Cache (on the 4090).
        let base_delta = baseline_ttft(&LLAMA_13B, &RTX_4090, 3000).compute_s
            - baseline_ttft(&LLAMA_7B, &RTX_4090, 3000).compute_s;
        let pc_13 =
            prompt_cache_ttft(&LLAMA_13B, &RTX_4090, 3000, 3000, ModuleLocation::HostMemory);
        let pc_7 =
            prompt_cache_ttft(&LLAMA_7B, &RTX_4090, 3000, 3000, ModuleLocation::HostMemory);
        let pc_delta = pc_13.total_s - pc_7.total_s;
        // The paper reports +220 ms; pure FLOP scaling gives ~740 ms (the
        // authors' 13B run evidently sustained better utilisation). The
        // reproduced *shape* is that the baseline delta is hundreds of ms…
        assert!(
            base_delta > 0.15 && base_delta < 1.0,
            "baseline Δ {:.0} ms",
            base_delta * 1e3
        );
        // …while Prompt Cache's is a small fraction of it (paper: 30 ms).
        assert!(pc_delta < base_delta / 3.0, "pc Δ {:.0} ms", pc_delta * 1e3);
    }

    #[test]
    fn cached_fraction_never_hurts() {
        for cached in [0, 1000, 2500, 5000] {
            let pc = prompt_cache_ttft(
                &LLAMA_7B,
                &RTX_4090,
                5000,
                cached,
                ModuleLocation::DeviceMemory,
            );
            let base = baseline_ttft(&LLAMA_7B, &RTX_4090, 5000);
            assert!(pc.total_s <= base.total_s * 1.001, "cached {cached}");
        }
    }

    #[test]
    fn decode_step_matches_32ms_anchor() {
        // §5.4: TTST ≈ 32 ms/token for Llama-7B on the 4090, roughly
        // independent of context length.
        let at_3k = decode_step_s(&LLAMA_7B, &RTX_4090, 3000);
        let at_100 = decode_step_s(&LLAMA_7B, &RTX_4090, 100);
        assert!((at_3k * 1e3 - 32.0).abs() < 8.0, "{:.1} ms", at_3k * 1e3);
        assert!((at_3k - at_100) / at_3k < 0.15, "context-insensitive");
    }

    #[test]
    fn end_to_end_advantage_diminishes_with_output_length() {
        // §5.4's worked numbers: TTFT 900 ms → 90 ms at 3K context buys
        // ~25 tokens of decoding headroom; relative end-to-end gain
        // shrinks as k grows.
        let n = 3000;
        let gain = |k| {
            end_to_end_s(&LLAMA_7B, &RTX_4090, n, 0, ModuleLocation::DeviceMemory, k)
                / end_to_end_s(&LLAMA_7B, &RTX_4090, n, n, ModuleLocation::DeviceMemory, k)
        };
        assert!(gain(1) > gain(10));
        assert!(gain(10) > gain(100));
        assert!(gain(100) < 1.5, "{}", gain(100));

        // TTFT saving expressed in decode steps ≈ tens of tokens.
        let saving = baseline_ttft(&LLAMA_7B, &RTX_4090, n).total_s
            - prompt_cache_ttft(&LLAMA_7B, &RTX_4090, n, n, ModuleLocation::DeviceMemory)
                .total_s;
        let tokens_bought = saving / decode_step_s(&LLAMA_7B, &RTX_4090, n);
        assert!(
            (10.0..60.0).contains(&tokens_bought),
            "{tokens_bought:.0} tokens"
        );
    }

    #[test]
    fn estimate_breakdown_sums() {
        let est = prompt_cache_ttft(&LLAMA_7B, &A40, 4000, 3000, ModuleLocation::HostMemory);
        assert!((est.total_s - (est.compute_s + est.copy_s + est.overhead_s)).abs() < 1e-12);
    }
}
