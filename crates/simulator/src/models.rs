//! The paper's LLM catalog with real architecture dimensions.

use serde::Serialize;

/// Architecture summary of one LLM (the dimensions that drive prefill
/// FLOPs and KV memory).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct LlmSpec {
    /// Display name as the paper prints it.
    pub name: &'static str,
    /// Transformer layer count.
    pub layers: usize,
    /// Hidden dimension `d`.
    pub hidden: usize,
}

impl LlmSpec {
    /// Prefill FLOPs for `n` tokens: `layers × (6nd² + 4n²d)` — the
    /// paper's §2.2 formula.
    pub fn prefill_flops(&self, n: usize) -> f64 {
        let (n, d) = (n as f64, self.hidden as f64);
        self.layers as f64 * (6.0 * n * d * d + 4.0 * n * n * d)
    }

    /// Prefill FLOPs when `cached` of `n` tokens are reused: projections
    /// for the uncached tokens only, attention of uncached tokens over the
    /// full context.
    pub fn cached_prefill_flops(&self, n: usize, cached: usize) -> f64 {
        let new = n.saturating_sub(cached) as f64;
        let (n, d) = (n as f64, self.hidden as f64);
        self.layers as f64 * (6.0 * new * d * d + 4.0 * new * n * d)
    }

    /// Bytes to cache one token at fp16 under the Table 2 MHA assumption:
    /// `2 × layers × hidden × 2`.
    pub fn kv_bytes_per_token(&self) -> usize {
        2 * self.layers * self.hidden * 2
    }

    /// MB/token at fp16 — the Table 2 column.
    pub fn mb_per_token(&self) -> f64 {
        self.kv_bytes_per_token() as f64 / 1e6
    }

    /// Approximate fp16 weight footprint in bytes: `12·L·d²` parameters
    /// (attention 4d² + MLP ≈ 8d²) at 2 bytes each — what a decode step
    /// must stream from memory.
    pub fn weight_bytes(&self) -> f64 {
        12.0 * self.layers as f64 * (self.hidden as f64).powi(2) * 2.0
    }
}

/// BERT-base (Table 2 row 1).
pub const BERT: LlmSpec = LlmSpec {
    name: "BERT",
    layers: 12,
    hidden: 768,
};
/// Falcon 1B.
pub const FALCON_1B: LlmSpec = LlmSpec {
    name: "Falcon 1B",
    layers: 24,
    hidden: 2048,
};
/// Llama2 7B — the workhorse of Figures 3–5.
pub const LLAMA_7B: LlmSpec = LlmSpec {
    name: "Llama 7B",
    layers: 32,
    hidden: 4096,
};
/// Llama2 13B.
pub const LLAMA_13B: LlmSpec = LlmSpec {
    name: "Llama 13B",
    layers: 40,
    hidden: 5120,
};
/// MPT 30B.
pub const MPT_30B: LlmSpec = LlmSpec {
    name: "MPT 30B",
    layers: 48,
    hidden: 7168,
};
/// Falcon 40B.
pub const FALCON_40B: LlmSpec = LlmSpec {
    name: "Falcon 40B",
    layers: 60,
    hidden: 8192,
};
/// Llama2 70B (Table 2 assumes MHA, as the paper does).
pub const LLAMA_70B: LlmSpec = LlmSpec {
    name: "Llama 70B",
    layers: 80,
    hidden: 8192,
};
/// Falcon 180B.
pub const FALCON_180B: LlmSpec = LlmSpec {
    name: "Falcon 180B",
    layers: 80,
    hidden: 14848,
};

/// The Table 2 catalog, in the paper's order.
pub const TABLE2_MODELS: [LlmSpec; 8] = [
    BERT,
    FALCON_1B,
    LLAMA_7B,
    LLAMA_13B,
    MPT_30B,
    FALCON_40B,
    LLAMA_70B,
    FALCON_180B,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_2_mb_per_token_reproduced() {
        // Paper values: 0.03, 0.18, 0.50, 0.78, 1.31, 1.87, 2.5, 4.53.
        let paper = [0.03, 0.18, 0.50, 0.78, 1.31, 1.87, 2.5, 4.53];
        for (spec, &expected) in TABLE2_MODELS.iter().zip(&paper) {
            let got = spec.mb_per_token();
            let rel = (got - expected).abs() / expected;
            assert!(
                rel < 0.30,
                "{}: got {got:.3} MB/token, paper {expected}",
                spec.name
            );
        }
    }

    #[test]
    fn llama_7b_is_exactly_half_mb() {
        assert!((LLAMA_7B.mb_per_token() - 0.524).abs() < 0.01);
    }

    #[test]
    fn prefill_flops_quadratic_tail() {
        let f1 = LLAMA_7B.prefill_flops(1000);
        let f10 = LLAMA_7B.prefill_flops(10_000);
        // At 10K tokens the n² term dominates → superlinear growth.
        assert!(f10 > 15.0 * f1);
    }

    #[test]
    fn fully_cached_flops_are_zero() {
        assert_eq!(LLAMA_7B.cached_prefill_flops(5000, 5000), 0.0);
        assert_eq!(
            LLAMA_7B.cached_prefill_flops(5000, 0),
            LLAMA_7B.prefill_flops(5000)
        );
    }

    #[test]
    fn paper_scale_anchor_3k_tokens() {
        // §5.4 reasons about ~1.4e13 FLOPs at 3K tokens for Llama-7B.
        let f = LLAMA_7B.prefill_flops(3000);
        assert!(f > 1.2e13 && f < 1.7e13, "{f:.3e}");
    }
}
