//! Analytic performance simulator for paper-scale latency figures.
//!
//! The paper measures Llama-7B-class models on five devices (RTX 4090,
//! A40, A100, Intel i9-13900K, AMD 7950X). This reproduction's real
//! engine runs scaled-down models on one CPU, so the paper-scale curves
//! of Figures 3–5 are regenerated analytically from first principles:
//!
//! * prefill compute follows the paper's own FLOP model
//!   `L·(6nd² + 4n²d)` (§2.2, §5.4);
//! * Prompt Cache replaces cached-token compute with a linear memcpy of
//!   the cached states (host→host, host→device, or device→device);
//! * each device has an **effective** throughput and copy bandwidth plus
//!   a fixed per-request overhead, calibrated once against the paper's
//!   published anchor points (900 ms baseline TTFT for 3K tokens of
//!   Llama-7B on the RTX 4090; the §5.4 per-layer memcpy timings; the
//!   headline speedup bands) and then held fixed across every figure.
//!
//! The calibration constants live in [`devices`] with their derivations;
//! EXPERIMENTS.md reports simulated-vs-paper numbers for every figure.

#![warn(missing_docs)]

pub mod devices;
pub mod models;
pub mod sim;

pub use devices::{DeviceKind, DeviceSpec};
pub use models::LlmSpec;
pub use sim::{
    baseline_ttft, decode_step_s, end_to_end_s, memcpy_time_s, prompt_cache_ttft, ModuleLocation,
    TtftEstimate,
};
