//! Device catalog with calibrated effective parameters.
//!
//! Peak spec sheets wildly overstate what an unoptimised HuggingFace
//! pipeline (the paper's prototype substrate, §4) sustains, so each device
//! carries *effective* numbers calibrated against the paper's published
//! anchors and then frozen:
//!
//! * **RTX 4090** — the paper reports baseline TTFT ≈ 900 ms for 3K tokens
//!   of Llama-7B (§5.4). 3K tokens ≈ 1.44e13 FLOPs → ~16 TFLOPS effective
//!   (≈10% of fp16 peak, typical for eager-mode transformers of that era).
//! * **A40 / A100** — scaled from the 4090 by the Figure 3 bar ratios
//!   (A40 ≈ 0.55×, A100 ≈ 1.2× the 4090's effective throughput).
//! * **Copy bandwidths** — §5.4 reports 3.79 ms (h2h), 5.34 ms (h2d) and
//!   0.23 ms (d2d) for "attention states with 5K tokens", which matches
//!   one layer's k+v at fp16 (5000 × 4096 × 2 × 2 B ≈ 82 MB) → 21.6, 15.3
//!   and 356 GB/s *peak* rates; [`crate::sim::layer_memcpy_s`] uses those
//!   directly. Whole-module streaming, however, walks 2 × 32 tensors per
//!   module through the Python/pageable-copy path, so each device's
//!   `h2h`/`h2d` fields carry a much lower **effective module
//!   materialisation rate**, fitted so the figure-level speedup bands
//!   match the paper: 4 GB/s h2d on the 4090 (yellow bars land at
//!   1.5–3×), 3 GB/s h2h on the Intel CPU (≤ ~70× max speedup) and
//!   1.1 GB/s on the AMD CPU (≤ ~25×, the DDR4 penalty the authors call
//!   out).
//! * **Fixed overhead** — 400 ms per request (tokenisation, Python
//!   dispatch, first-token sampling) on every device, bounding the
//!   maximum GPU-memory speedup near the paper's 10×.

use serde::Serialize;

/// CPU or GPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum DeviceKind {
    /// Graphics processor: inference on device, modules in host or device
    /// memory.
    Gpu,
    /// Host processor: inference and modules both in host memory.
    Cpu,
}

/// One device's calibrated effective parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct DeviceSpec {
    /// Display name as the paper prints it.
    pub name: &'static str,
    /// CPU or GPU.
    pub kind: DeviceKind,
    /// Effective sustained throughput for transformer prefill, FLOP/s.
    pub effective_flops: f64,
    /// Host→host sustained copy bandwidth, bytes/s.
    pub h2h_bytes_per_s: f64,
    /// Host→device bulk copy bandwidth, bytes/s (GPUs only; unused on
    /// CPUs).
    pub h2d_bytes_per_s: f64,
    /// Device→device copy bandwidth, bytes/s.
    pub d2d_bytes_per_s: f64,
    /// Sustained weight-streaming bandwidth during decode, bytes/s —
    /// autoregressive decoding is memory-bound, so time-per-output-token
    /// ≈ model weight bytes / this rate (§5.4 anchors the 4090 at ~32 ms
    /// per token for Llama-7B, i.e. ~14 GB / 450 GB/s).
    pub decode_bytes_per_s: f64,
    /// Fixed per-request overhead, seconds.
    pub overhead_s: f64,
}

/// NVIDIA RTX 4090 (paired with the Intel host in the paper).
pub const RTX_4090: DeviceSpec = DeviceSpec {
    name: "RTX 4090",
    kind: DeviceKind::Gpu,
    effective_flops: 16.0e12,
    h2h_bytes_per_s: 21.6e9,
    h2d_bytes_per_s: 4.0e9,
    d2d_bytes_per_s: 356.0e9,
    decode_bytes_per_s: 450.0e9,
    overhead_s: 0.40,
};

/// NVIDIA A40 (NCSA Delta virtual node).
pub const A40: DeviceSpec = DeviceSpec {
    name: "A40",
    kind: DeviceKind::Gpu,
    effective_flops: 9.0e12,
    h2h_bytes_per_s: 18.0e9,
    h2d_bytes_per_s: 3.0e9,
    d2d_bytes_per_s: 300.0e9,
    decode_bytes_per_s: 600.0e9,
    overhead_s: 0.40,
};

/// NVIDIA A100 40GB (NCSA Delta virtual node).
pub const A100: DeviceSpec = DeviceSpec {
    name: "A100",
    kind: DeviceKind::Gpu,
    effective_flops: 19.0e12,
    h2h_bytes_per_s: 18.0e9,
    h2d_bytes_per_s: 5.0e9,
    d2d_bytes_per_s: 600.0e9,
    decode_bytes_per_s: 1500.0e9,
    overhead_s: 0.40,
};

/// Intel i9-13900K with DDR5-5600.
pub const INTEL_I9_13900K: DeviceSpec = DeviceSpec {
    name: "Intel i9-13900K",
    kind: DeviceKind::Cpu,
    effective_flops: 0.35e12,
    h2h_bytes_per_s: 3.0e9,
    h2d_bytes_per_s: 0.0,
    d2d_bytes_per_s: 0.0,
    decode_bytes_per_s: 40.0e9,
    overhead_s: 0.40,
};

/// AMD Ryzen 9 7950X with DDR4-3600.
pub const AMD_7950X: DeviceSpec = DeviceSpec {
    name: "AMD 7950X",
    kind: DeviceKind::Cpu,
    effective_flops: 0.5e12,
    h2h_bytes_per_s: 1.1e9,
    h2d_bytes_per_s: 0.0,
    d2d_bytes_per_s: 0.0,
    decode_bytes_per_s: 30.0e9,
    overhead_s: 0.40,
};

/// The Figure 3 GPU set.
pub const GPUS: [DeviceSpec; 3] = [RTX_4090, A40, A100];

/// The Figure 4 CPU set.
pub const CPUS: [DeviceSpec; 2] = [INTEL_I9_13900K, AMD_7950X];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpus_outrun_cpus() {
        for gpu in GPUS {
            for cpu in CPUS {
                assert!(gpu.effective_flops > 10.0 * cpu.effective_flops);
            }
        }
    }

    #[test]
    fn d2d_beats_h2d_beats_nothing() {
        for gpu in GPUS {
            assert!(gpu.d2d_bytes_per_s > gpu.h2d_bytes_per_s);
            assert!(gpu.h2d_bytes_per_s > 0.0);
        }
    }

    #[test]
    fn intel_memory_outruns_amd() {
        // The paper attributes the Intel/AMD speedup gap to DDR5 vs DDR4.
        assert!(INTEL_I9_13900K.h2h_bytes_per_s > AMD_7950X.h2h_bytes_per_s);
    }
}
