use std::fmt;

/// The dimensions of a [`crate::Tensor`], in row-major order.
///
/// A `Shape` is a thin, validated wrapper around a dimension list. Rank-0
/// shapes are permitted and describe scalars (one element).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Creates a shape from a dimension slice.
    pub fn new(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }

    /// The dimensions as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Total number of elements (product of dimensions; 1 for scalars).
    pub fn num_elements(&self) -> usize {
        self.0.iter().product()
    }

    /// Size of dimension `i`, or `None` if the rank is too small.
    pub fn dim(&self, i: usize) -> Option<usize> {
        self.0.get(i).copied()
    }

    /// Row-major strides for this shape, in elements.
    ///
    /// The last dimension always has stride 1; an empty shape yields an
    /// empty stride vector.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![0; self.0.len()];
        let mut acc = 1;
        for (s, &d) in strides.iter_mut().zip(self.0.iter()).rev() {
            *s = acc;
            acc *= d;
        }
        strides
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.0)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape(dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape(dims.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_shape_has_one_element() {
        let s = Shape::new(&[]);
        assert_eq!(s.rank(), 0);
        assert_eq!(s.num_elements(), 1);
        assert!(s.strides().is_empty());
    }

    #[test]
    fn row_major_strides() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
    }

    #[test]
    fn zero_dim_shape_is_empty() {
        let s = Shape::new(&[3, 0, 2]);
        assert_eq!(s.num_elements(), 0);
    }

    #[test]
    fn dim_accessor() {
        let s = Shape::new(&[5, 7]);
        assert_eq!(s.dim(0), Some(5));
        assert_eq!(s.dim(1), Some(7));
        assert_eq!(s.dim(2), None);
    }

    #[test]
    fn display_matches_debug_list() {
        assert_eq!(Shape::new(&[2, 3]).to_string(), "[2, 3]");
    }

    #[test]
    fn conversions() {
        let a: Shape = vec![1, 2].into();
        let b: Shape = [1usize, 2].into();
        assert_eq!(a, b);
    }
}
