//! Seeded random initialisation for model weights.
//!
//! The reproduction uses deterministic random weights everywhere: tests,
//! examples, and benchmarks all construct models from a seed so every run is
//! exactly reproducible across machines.

use crate::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic weight initialiser.
///
/// Wraps a seeded PRNG and hands out tensors drawn from the distributions
/// transformer weights conventionally use.
///
/// # Example
///
/// ```
/// use pc_tensor::init::Initializer;
///
/// let mut a = Initializer::new(42);
/// let mut b = Initializer::new(42);
/// assert_eq!(a.normal(&[4, 4], 0.02).data(), b.normal(&[4, 4], 0.02).data());
/// ```
#[derive(Debug)]
pub struct Initializer {
    rng: StdRng,
}

impl Initializer {
    /// Creates an initialiser from a seed.
    pub fn new(seed: u64) -> Self {
        Initializer {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// A tensor with elements drawn from `N(0, std²)` (Box–Muller).
    pub fn normal(&mut self, dims: &[usize], std: f32) -> Tensor {
        let n = dims.iter().product();
        let mut data = Vec::with_capacity(n);
        while data.len() < n {
            // Box–Muller transform: two uniforms → two independent normals.
            let u1: f32 = self.rng.gen_range(f32::EPSILON..1.0);
            let u2: f32 = self.rng.gen_range(0.0..1.0);
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f32::consts::PI * u2;
            data.push(r * theta.cos() * std);
            if data.len() < n {
                data.push(r * theta.sin() * std);
            }
        }
        Tensor::from_vec(data, dims).expect("length matches by construction")
    }

    /// A tensor with elements drawn uniformly from `[lo, hi)`.
    pub fn uniform(&mut self, dims: &[usize], lo: f32, hi: f32) -> Tensor {
        let n = dims.iter().product();
        let data = (0..n).map(|_| self.rng.gen_range(lo..hi)).collect();
        Tensor::from_vec(data, dims).expect("length matches by construction")
    }

    /// Xavier/Glorot-scaled normal init for a `[fan_out, fan_in]` matrix.
    pub fn xavier(&mut self, fan_out: usize, fan_in: usize) -> Tensor {
        let std = (2.0 / (fan_in + fan_out) as f32).sqrt();
        self.normal(&[fan_out, fan_in], std)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_weights() {
        let a = Initializer::new(7).normal(&[8, 8], 1.0);
        let b = Initializer::new(7).normal(&[8, 8], 1.0);
        assert_eq!(a.data(), b.data());
    }

    #[test]
    fn different_seeds_differ() {
        let a = Initializer::new(1).normal(&[16], 1.0);
        let b = Initializer::new(2).normal(&[16], 1.0);
        assert_ne!(a.data(), b.data());
    }

    #[test]
    fn normal_moments_are_plausible() {
        let t = Initializer::new(3).normal(&[10_000], 0.5);
        let mean = t.data().iter().sum::<f32>() / t.len() as f32;
        let var = t.data().iter().map(|x| (x - mean).powi(2)).sum::<f32>() / t.len() as f32;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var.sqrt() - 0.5).abs() < 0.02, "std {}", var.sqrt());
    }

    #[test]
    fn normal_odd_length() {
        // Box–Muller emits pairs; an odd element count must still be exact.
        let t = Initializer::new(4).normal(&[7], 1.0);
        assert_eq!(t.len(), 7);
        assert!(t.all_finite());
    }

    #[test]
    fn uniform_respects_bounds() {
        let t = Initializer::new(5).uniform(&[1000], -0.25, 0.75);
        assert!(t.data().iter().all(|&x| (-0.25..0.75).contains(&x)));
    }

    #[test]
    fn xavier_scales_with_fan() {
        let wide = Initializer::new(6).xavier(4, 4096);
        let narrow = Initializer::new(6).xavier(4, 4);
        let spread = |t: &Tensor| t.data().iter().map(|x| x * x).sum::<f32>() / t.len() as f32;
        assert!(spread(&wide) < spread(&narrow));
    }
}
