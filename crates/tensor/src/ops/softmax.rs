//! Numerically stable softmax kernels.

use crate::{Result, Tensor, TensorError};

/// In-place numerically stable softmax over a slice.
///
/// Subtracts the running maximum before exponentiating, so arbitrarily large
/// logits (including the `-inf` entries used for causal masks) are safe. An
/// all `-inf` slice yields all zeros rather than NaN, which is the behaviour
/// attention wants for fully masked rows.
pub fn softmax_slice(x: &mut [f32]) {
    if x.is_empty() {
        return;
    }
    let max = x.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    if max == f32::NEG_INFINITY {
        x.fill(0.0);
        return;
    }
    let mut sum = 0.0;
    for v in x.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    if sum > 0.0 {
        let inv = 1.0 / sum;
        for v in x.iter_mut() {
            *v *= inv;
        }
    }
}

/// In-place log-softmax over a slice (used for KL-divergence fidelity
/// metrics in the accuracy experiments).
pub fn log_softmax_slice(x: &mut [f32]) {
    if x.is_empty() {
        return;
    }
    let max = x.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let log_sum = x.iter().map(|&v| (v - max).exp()).sum::<f32>().ln() + max;
    for v in x.iter_mut() {
        *v -= log_sum;
    }
}

/// Softmax over the last dimension of a rank-1 tensor.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for tensors that are not rank 1;
/// use [`softmax_rows`] for matrices.
pub fn softmax(x: &Tensor) -> Result<Tensor> {
    if x.dims().len() != 1 {
        return Err(TensorError::RankMismatch {
            op: "softmax",
            expected: 1,
            actual: x.dims().len(),
        });
    }
    let mut out = x.clone();
    softmax_slice(out.data_mut());
    Ok(out)
}

/// Row-wise softmax of a rank-2 tensor.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-matrix input.
pub fn softmax_rows(x: &Tensor) -> Result<Tensor> {
    let dims = x.dims();
    if dims.len() != 2 {
        return Err(TensorError::RankMismatch {
            op: "softmax_rows",
            expected: 2,
            actual: dims.len(),
        });
    }
    let cols = dims[1];
    let mut out = x.clone();
    if cols == 0 {
        return Ok(out);
    }
    for row in out.data_mut().chunks_exact_mut(cols) {
        softmax_slice(row);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sums_to_one() {
        let mut x = [1.0, 2.0, 3.0];
        softmax_slice(&mut x);
        let s: f32 = x.iter().sum();
        assert!((s - 1.0).abs() < 1e-6);
        assert!(x[2] > x[1] && x[1] > x[0]);
    }

    #[test]
    fn stable_under_large_logits() {
        let mut x = [1000.0, 1001.0];
        softmax_slice(&mut x);
        assert!(x.iter().all(|v| v.is_finite()));
        assert!((x[0] + x[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn neg_inf_entries_become_zero() {
        let mut x = [f32::NEG_INFINITY, 0.0, f32::NEG_INFINITY];
        softmax_slice(&mut x);
        assert_eq!(x, [0.0, 1.0, 0.0]);
    }

    #[test]
    fn fully_masked_row_is_all_zero() {
        let mut x = [f32::NEG_INFINITY; 4];
        softmax_slice(&mut x);
        assert_eq!(x, [0.0; 4]);
    }

    #[test]
    fn empty_slice_is_noop() {
        let mut x: [f32; 0] = [];
        softmax_slice(&mut x);
        log_softmax_slice(&mut x);
    }

    #[test]
    fn shift_invariance() {
        let mut a = [0.1, 0.5, -0.2];
        let mut b = [100.1, 100.5, 99.8];
        softmax_slice(&mut a);
        softmax_slice(&mut b);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn log_softmax_exp_matches_softmax() {
        let mut a = [0.3, -1.0, 2.0, 0.0];
        let mut b = a;
        softmax_slice(&mut a);
        log_softmax_slice(&mut b);
        for (p, lp) in a.iter().zip(&b) {
            assert!((p - lp.exp()).abs() < 1e-6);
        }
    }

    #[test]
    fn rows_independent() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 1000.0, 1000.0], &[2, 2]).unwrap();
        let y = softmax_rows(&x).unwrap();
        assert!((y.at(&[1, 0]).unwrap() - 0.5).abs() < 1e-6);
        assert!((y.at(&[0, 0]).unwrap() + y.at(&[0, 1]).unwrap() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn rank_checks() {
        let v = Tensor::zeros(&[3]);
        let m = Tensor::zeros(&[2, 3]);
        assert!(softmax(&v).is_ok());
        assert!(softmax(&m).is_err());
        assert!(softmax_rows(&m).is_ok());
        assert!(softmax_rows(&v).is_err());
    }
}
