//! Row-batched decode kernels for continuous batching.
//!
//! During a batched decode step every in-flight sequence contributes
//! exactly one token, so the activations stack into an `[m × k]` block
//! with one row per sequence. The plain kernels
//! ([`super::matmul_transb_slices`]) walk the whole weight matrix once
//! *per activation row*; for a decode batch that order re-streams the
//! (large, shared) weights `m` times from memory. The batched variant
//! inverts the loop nest — weight row outer, batch row inner — so one
//! traversal of the weight matrix serves the entire batch while the
//! per-sequence activation rows (small, cache-resident) are revisited.
//!
//! **Bit-identity invariant.** Every output element is still computed by
//! the identical `dot_unrolled(a_row, b_row)` call the solo kernels use,
//! in the identical floating-point order; only the order in which
//! *independent* elements are produced changes. Batched results are
//! therefore bit-identical to `m` independent single-row calls — the
//! property the engine's batched-vs-solo equality tests rest on.

use super::matmul::dot_unrolled;
use crate::par::{run_tasks, Parallelism};
use std::ops::Range;

/// Strictly sequential dot product — one accumulator, ascending index,
/// no unrolling. This is the float-operation order of the attention
/// score pass, factored out so the per-sequence and the prefix-shared
/// batched kernels execute *the same function* on each (query, key) pair
/// and bit-identity between them holds by construction rather than by
/// parallel maintenance of two loops.
#[inline]
pub fn dot_seq(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut dot = 0.0;
    for (x, y) in a.iter().zip(b) {
        dot += x * y;
    }
    dot
}

/// Strictly sequential `acc[i] += p * row[i]` — the attention value
/// accumulation step, shared between the kernels for the same reason as
/// [`dot_seq`].
#[inline]
pub fn axpy_seq(acc: &mut [f32], p: f32, row: &[f32]) {
    debug_assert_eq!(acc.len(), row.len());
    for (o, &v) in acc.iter_mut().zip(row) {
        *o += p * v;
    }
}

/// Dot product of `q` against a rotary-rotated key row, fused so no
/// rotated copy of `k` is ever materialised. `k` uses the rotate-half
/// layout `[x0…x_{h-1}, y0…y_{h-1}]`; `cos`/`sin` are one position's
/// table row (`h` values each); `sin_sign` is `±1.0` and selects the
/// rotation direction (negative shifts rotate backwards).
///
/// **Bit-identity contract.** The accumulation order is exactly
/// "rotate `k` with `x*c - y*s` / `x*s + y*c`, then [`dot_seq`]": one
/// accumulator, ascending index, each rotated element formed by the same
/// expression the materialising path uses. A caller that rotates the row
/// into a scratch buffer and calls [`dot_seq`] gets the same bits.
#[inline]
pub fn dot_rotated(q: &[f32], k: &[f32], cos: &[f32], sin: &[f32], sin_sign: f32) -> f32 {
    let h = cos.len();
    debug_assert_eq!(sin.len(), h);
    debug_assert_eq!(q.len(), 2 * h);
    debug_assert_eq!(k.len(), 2 * h);
    let mut dot = 0.0;
    for j in 0..h {
        let s = sin_sign * sin[j];
        dot += q[j] * (k[j] * cos[j] - k[j + h] * s);
    }
    for j in 0..h {
        let s = sin_sign * sin[j];
        dot += q[j + h] * (k[j] * s + k[j + h] * cos[j]);
    }
    dot
}

/// `C[m,n] = A[m,k] · B[n,k]ᵀ` with the weight traversal shared across
/// the batch: each of `B`'s `n` rows is loaded once and dotted against
/// every one of the `m` batch rows before moving to the next weight row.
///
/// Bit-identical to calling [`super::matmul_transb_slices`] once per row
/// of `A` (and hence to the solo decode path).
///
/// # Panics
///
/// Debug-asserts the slice lengths; callers are the model engine, which
/// guarantees layouts.
pub fn matmul_transb_batched(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(c.len(), m * n);
    batched_transb_rows(a, b, c, 0..m, k, n);
}

/// [`matmul_transb_batched`] with batch rows split across `par` threads.
/// Each thread runs its own weight traversal over its row subset, so the
/// sharing is per-thread; results stay bit-identical at any thread count
/// because each output element is owned by exactly one thread running the
/// identical scalar code.
pub fn matmul_transb_batched_par(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    par: &Parallelism,
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(c.len(), m * n);
    let threads = par.threads_for(m * k * n).min(m).max(1);
    if threads <= 1 {
        batched_transb_rows(a, b, c, 0..m, k, n);
        return;
    }
    let per = m.div_ceil(threads);
    let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = c
        .chunks_mut(per * n)
        .enumerate()
        .map(|(chunk_idx, c_rows)| {
            let first = chunk_idx * per;
            let rows = first..first + c_rows.len() / n;
            Box::new(move || batched_transb_rows(a, b, c_rows, rows, k, n))
                as Box<dyn FnOnce() + Send + '_>
        })
        .collect();
    run_tasks(tasks, threads);
}

/// Weight-row-outer kernel body: output rows `rows` of `A·Bᵀ` into
/// `c_rows` (local row 0 = global row `rows.start`). Shared by the serial
/// and parallel entry points.
#[inline]
fn batched_transb_rows(
    a: &[f32],
    b: &[f32],
    c_rows: &mut [f32],
    rows: Range<usize>,
    k: usize,
    n: usize,
) {
    for j in 0..n {
        let b_row = &b[j * k..(j + 1) * k];
        for (local, i) in rows.clone().enumerate() {
            c_rows[local * n + j] = dot_unrolled(&a[i * k..(i + 1) * k], b_row);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::matmul_transb_slices;

    fn wave(len: usize, step: f32) -> Vec<f32> {
        (0..len).map(|i| (i as f32 * step).sin()).collect()
    }

    #[test]
    fn batched_matches_per_row_solo_calls_bitwise() {
        for (m, k, n) in [(1usize, 8usize, 4usize), (2, 16, 9), (7, 24, 13), (8, 5, 3)] {
            let a = wave(m * k, 0.37);
            let b = wave(n * k, 0.19);
            let mut batched = vec![f32::NAN; m * n];
            matmul_transb_batched(&a, &b, &mut batched, m, k, n);
            // Reference: each batch row served alone, as the solo decode
            // path would.
            for i in 0..m {
                let mut solo = vec![f32::NAN; n];
                matmul_transb_slices(&a[i * k..(i + 1) * k], &b, &mut solo, 1, k, n);
                assert_eq!(&batched[i * n..(i + 1) * n], &solo[..], "row {i} ({m},{k},{n})");
            }
        }
    }

    #[test]
    fn parallel_batched_is_bit_identical() {
        let (m, k, n) = (7, 17, 11);
        let a = wave(m * k, 0.41);
        let b = wave(n * k, 0.23);
        let mut serial = vec![0.0f32; m * n];
        matmul_transb_batched(&a, &b, &mut serial, m, k, n);
        for threads in [2usize, 3, 4, 8, 16] {
            let par = Parallelism {
                num_threads: threads,
                min_work: 0,
            };
            let mut parallel = vec![f32::NAN; m * n];
            matmul_transb_batched_par(&a, &b, &mut parallel, m, k, n, &par);
            assert_eq!(serial, parallel, "threads {threads}");
        }
    }

    #[test]
    fn seq_primitives_match_naive_loops_bitwise() {
        let a = wave(37, 0.17);
        let b = wave(37, 0.43);
        let mut naive = 0.0f32;
        for i in 0..a.len() {
            naive += a[i] * b[i];
        }
        assert_eq!(dot_seq(&a, &b), naive);

        let mut acc = wave(37, 0.61);
        let mut expect = acc.clone();
        for i in 0..expect.len() {
            expect[i] += 0.37 * b[i];
        }
        axpy_seq(&mut acc, 0.37, &b);
        assert_eq!(acc, expect);
    }

    #[test]
    fn dot_rotated_matches_materialised_rotation_bitwise() {
        for h in [1usize, 2, 4, 8, 32] {
            let q = wave(2 * h, 0.21);
            let k = wave(2 * h, 0.47);
            let cos: Vec<f32> = (0..h).map(|i| (i as f32 * 0.13).cos()).collect();
            let sin: Vec<f32> = (0..h).map(|i| (i as f32 * 0.13).sin()).collect();
            for sign in [1.0f32, -1.0] {
                // Reference: rotate the key row into a scratch buffer with
                // the canonical expressions, then dot sequentially.
                let mut kr = vec![0.0f32; 2 * h];
                for j in 0..h {
                    let s = sign * sin[j];
                    let (x, y) = (k[j], k[j + h]);
                    kr[j] = x * cos[j] - y * s;
                    kr[j + h] = x * s + y * cos[j];
                }
                let expect = dot_seq(&q, &kr);
                let fused = dot_rotated(&q, &k, &cos, &sin, sign);
                assert_eq!(fused.to_bits(), expect.to_bits(), "h {h} sign {sign}");
            }
        }
    }

    #[test]
    fn dot_rotated_identity_rotation_matches_dot_seq() {
        let h = 8;
        let q = wave(2 * h, 0.33);
        let k = wave(2 * h, 0.57);
        let cos = vec![1.0f32; h];
        let sin = vec![0.0f32; h];
        let plain = dot_seq(&q, &k);
        let rotated = dot_rotated(&q, &k, &cos, &sin, 1.0);
        assert!((plain - rotated).abs() < 1e-6);
    }

    #[test]
    fn single_row_batch_matches_plain_kernel() {
        let (k, n) = (16, 8);
        let a = wave(k, 0.29);
        let b = wave(n * k, 0.31);
        let mut batched = vec![f32::NAN; n];
        matmul_transb_batched(&a, &b, &mut batched, 1, k, n);
        let mut plain = vec![f32::NAN; n];
        matmul_transb_slices(&a, &b, &mut plain, 1, k, n);
        assert_eq!(batched, plain);
    }
}
