//! Reductions: argmax, top-k, dot, mean.

use crate::{Result, Tensor, TensorError};

/// Index of the maximum element (ties break toward the lower index, which
/// keeps greedy decoding deterministic).
///
/// # Errors
///
/// Returns [`TensorError::Empty`] for an empty tensor.
pub fn argmax(x: &Tensor) -> Result<usize> {
    argmax_slice(x.data()).ok_or(TensorError::Empty { op: "argmax" })
}

/// Slice form of [`argmax`]; `None` on an empty slice.
pub fn argmax_slice(x: &[f32]) -> Option<usize> {
    let mut best: Option<(usize, f32)> = None;
    for (i, &v) in x.iter().enumerate() {
        match best {
            Some((_, bv)) if v <= bv => {}
            _ => best = Some((i, v)),
        }
    }
    best.map(|(i, _)| i)
}

/// Indices and values of the `k` largest elements, in descending value
/// order (ties break toward lower indices).
///
/// Returns fewer than `k` entries when the tensor is shorter than `k`.
pub fn top_k(x: &[f32], k: usize) -> Vec<(usize, f32)> {
    let mut indexed: Vec<(usize, f32)> = x.iter().copied().enumerate().collect();
    indexed.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal).then(a.0.cmp(&b.0)));
    indexed.truncate(k);
    indexed
}

/// Dot product of two equal-length slices.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Arithmetic mean; 0.0 on an empty slice.
pub fn mean(x: &[f32]) -> f32 {
    if x.is_empty() {
        0.0
    } else {
        x.iter().sum::<f32>() / x.len() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn argmax_basic() {
        let t = Tensor::from_vec(vec![1.0, 5.0, 3.0], &[3]).unwrap();
        assert_eq!(argmax(&t).unwrap(), 1);
    }

    #[test]
    fn argmax_tie_breaks_low() {
        assert_eq!(argmax_slice(&[2.0, 2.0, 1.0]), Some(0));
    }

    #[test]
    fn argmax_empty_errors() {
        let t = Tensor::zeros(&[0]);
        assert!(matches!(argmax(&t), Err(TensorError::Empty { .. })));
        assert_eq!(argmax_slice(&[]), None);
    }

    #[test]
    fn argmax_handles_negatives() {
        assert_eq!(argmax_slice(&[-3.0, -1.0, -2.0]), Some(1));
    }

    #[test]
    fn top_k_sorted_descending() {
        let got = top_k(&[0.1, 0.9, 0.5, 0.7], 3);
        assert_eq!(got.iter().map(|x| x.0).collect::<Vec<_>>(), vec![1, 3, 2]);
    }

    #[test]
    fn top_k_truncates_to_len() {
        assert_eq!(top_k(&[1.0, 2.0], 5).len(), 2);
        assert!(top_k(&[], 3).is_empty());
    }

    #[test]
    fn dot_and_mean() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
    }
}
