//! Matrix multiplication kernels.
//!
//! The transformer engine spends nearly all of its time here, so the slice
//! kernels use an `i-k-j` loop order (unit-stride inner loop over the output
//! row) which the compiler auto-vectorises, plus a transposed-B variant for
//! attention `Q·Kᵀ` where `K` is stored row-per-token. The inner loops are
//! branch-free: a data-dependent `if` in the hot loop would defeat
//! auto-vectorisation and make kernel timing input-dependent.
//!
//! Both kernels have `*_par` variants that split **output rows** across the
//! [`crate::par`] thread pool. Every output element is still computed by
//! exactly one thread running the identical scalar code in the identical
//! floating-point order, so parallel results are bit-identical to serial —
//! see the determinism notes in [`crate::par`].

use crate::par::{run_tasks, Parallelism};
use crate::{Result, Tensor, TensorError};
use std::ops::Range;

/// `C[m,n] = A[m,k] · B[k,n]` over raw slices.
///
/// # Panics
///
/// Debug-asserts the slice lengths; callers are the validated [`matmul`]
/// wrapper and the model engine, which guarantees layouts.
pub fn matmul_slices(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    c.fill(0.0);
    matmul_rows(a, b, c, 0..m, k, n);
}

/// [`matmul_slices`] with output rows split across `par` threads.
/// Bit-identical to the serial kernel at any thread count.
pub fn matmul_slices_par(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    par: &Parallelism,
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    let threads = par.threads_for(m * k * n).min(m).max(1);
    if threads <= 1 {
        matmul_slices(a, b, c, m, k, n);
        return;
    }
    c.fill(0.0);
    let per = m.div_ceil(threads);
    let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = c
        .chunks_mut(per * n)
        .enumerate()
        .map(|(chunk_idx, c_rows)| {
            let first = chunk_idx * per;
            let rows = first..first + c_rows.len() / n;
            Box::new(move || matmul_rows(a, b, c_rows, rows, k, n))
                as Box<dyn FnOnce() + Send + '_>
        })
        .collect();
    run_tasks(tasks, threads);
}

/// Computes output rows `rows` of `A·B` into `c_rows` (pre-zeroed, local
/// row 0 = global row `rows.start`). The single implementation shared by
/// the serial and parallel entry points — sharing it is what makes the
/// bit-identity guarantee structural rather than incidental.
#[inline]
fn matmul_rows(a: &[f32], b: &[f32], c_rows: &mut [f32], rows: Range<usize>, k: usize, n: usize) {
    for (local, i) in rows.enumerate() {
        let a_row = &a[i * k..(i + 1) * k];
        let c_row = &mut c_rows[local * n..(local + 1) * n];
        for (p, &a_ip) in a_row.iter().enumerate() {
            axpy(a_ip, &b[p * n..(p + 1) * n], c_row);
        }
    }
}

/// Fused `y += alpha · x` update — the branch-free body of the `i-k-j`
/// matmul inner loop, kept as its own `#[inline]` function so both kernels
/// vectorise the identical code.
#[inline]
fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    for (y_j, &x_j) in y.iter_mut().zip(x) {
        *y_j += alpha * x_j;
    }
}

/// `C[m,n] = A[m,k] · B[n,k]ᵀ` over raw slices (`B` stored row-major with
/// rows of length `k`, i.e. row-per-output-column).
pub fn matmul_transb_slices(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(c.len(), m * n);
    matmul_transb_rows(a, b, c, 0..m, k, n);
}

/// [`matmul_transb_slices`] with output rows split across `par` threads.
/// Bit-identical to the serial kernel at any thread count.
pub fn matmul_transb_slices_par(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    par: &Parallelism,
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(c.len(), m * n);
    let threads = par.threads_for(m * k * n).min(m).max(1);
    if threads <= 1 {
        matmul_transb_slices(a, b, c, m, k, n);
        return;
    }
    let per = m.div_ceil(threads);
    let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = c
        .chunks_mut(per * n)
        .enumerate()
        .map(|(chunk_idx, c_rows)| {
            let first = chunk_idx * per;
            let rows = first..first + c_rows.len() / n;
            Box::new(move || matmul_transb_rows(a, b, c_rows, rows, k, n))
                as Box<dyn FnOnce() + Send + '_>
        })
        .collect();
    run_tasks(tasks, threads);
}

/// Output rows `rows` of `A·Bᵀ` into `c_rows` (local row 0 = global row
/// `rows.start`); shared by the serial and parallel entry points.
#[inline]
fn matmul_transb_rows(
    a: &[f32],
    b: &[f32],
    c_rows: &mut [f32],
    rows: Range<usize>,
    k: usize,
    n: usize,
) {
    for (local, i) in rows.enumerate() {
        let a_row = &a[i * k..(i + 1) * k];
        let c_row = &mut c_rows[local * n..(local + 1) * n];
        for (j, c_ij) in c_row.iter_mut().enumerate() {
            *c_ij = dot_unrolled(a_row, &b[j * k..(j + 1) * k]);
        }
    }
}

/// Dot product with 8-way manual unrolling (helps on dot-heavy attention:
/// eight independent accumulators keep the FMA pipeline full). Shared with
/// the batched decode kernels (`ops::batched`) so every output element —
/// solo or batched — is produced by this one scalar routine.
#[inline]
pub(crate) fn dot_unrolled(a: &[f32], b: &[f32]) -> f32 {
    let mut acc = [0.0f32; 8];
    let chunks = a.len() / 8;
    for c in 0..chunks {
        let i = c * 8;
        acc[0] += a[i] * b[i];
        acc[1] += a[i + 1] * b[i + 1];
        acc[2] += a[i + 2] * b[i + 2];
        acc[3] += a[i + 3] * b[i + 3];
        acc[4] += a[i + 4] * b[i + 4];
        acc[5] += a[i + 5] * b[i + 5];
        acc[6] += a[i + 6] * b[i + 6];
        acc[7] += a[i + 7] * b[i + 7];
    }
    let mut s = ((acc[0] + acc[4]) + (acc[1] + acc[5])) + ((acc[2] + acc[6]) + (acc[3] + acc[7]));
    for i in chunks * 8..a.len() {
        s += a[i] * b[i];
    }
    s
}

/// `y[n] = x[k] · W[k,n]` (row vector times matrix).
pub fn matvec(x: &[f32], w: &[f32], y: &mut [f32], k: usize, n: usize) {
    matmul_slices(x, w, y, 1, k, n);
}

/// `y[n] = x[k] · W[n,k]ᵀ` — the usual "linear layer" with weights stored
/// `[out, in]`, applied to one token.
pub fn vecmat_transb(x: &[f32], w: &[f32], y: &mut [f32], k: usize, n: usize) {
    matmul_transb_slices(x, w, y, 1, k, n);
}

/// Validated tensor matmul: `A[m,k] · B[k,n]`.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-matrix operands and
/// [`TensorError::ShapeMismatch`] when inner dimensions disagree.
///
/// # Example
///
/// ```
/// use pc_tensor::{ops, Tensor};
/// let a = Tensor::from_vec(vec![1.0, 2.0], &[1, 2]).unwrap();
/// let b = Tensor::from_vec(vec![3.0, 4.0], &[2, 1]).unwrap();
/// assert_eq!(ops::matmul(&a, &b).unwrap().data(), &[11.0]);
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, k, k2, n) = matrix_dims("matmul", a, b)?;
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            op: "matmul",
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
        });
    }
    // `c` comes fresh from `Tensor::zeros`, so skip the kernel's re-zeroing
    // pass and accumulate directly.
    let mut c = Tensor::zeros(&[m, n]);
    matmul_rows(a.data(), b.data(), c.data_mut(), 0..m, k, n);
    Ok(c)
}

/// Validated tensor matmul with transposed right operand: `A[m,k] · B[n,k]ᵀ`.
///
/// # Errors
///
/// Same contract as [`matmul`], with `B`'s *second* dimension matched
/// against `A`'s.
pub fn matmul_transb(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, k, n, k2) = matrix_dims("matmul_transb", a, b)?;
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            op: "matmul_transb",
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
        });
    }
    let mut c = Tensor::zeros(&[m, n]);
    matmul_transb_slices(a.data(), b.data(), c.data_mut(), m, k, n);
    Ok(c)
}

fn matrix_dims(
    op: &'static str,
    a: &Tensor,
    b: &Tensor,
) -> Result<(usize, usize, usize, usize)> {
    let (ad, bd) = (a.dims(), b.dims());
    if ad.len() != 2 {
        return Err(TensorError::RankMismatch {
            op,
            expected: 2,
            actual: ad.len(),
        });
    }
    if bd.len() != 2 {
        return Err(TensorError::RankMismatch {
            op,
            expected: 2,
            actual: bd.len(),
        });
    }
    Ok((ad[0], ad[1], bd[0], bd[1]))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(data: &[f32], dims: &[usize]) -> Tensor {
        Tensor::from_vec(data.to_vec(), dims).unwrap()
    }

    #[test]
    fn matmul_2x2() {
        let a = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = t(&[5.0, 6.0, 7.0, 8.0], &[2, 2]);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let c = matmul(&a, &Tensor::eye(3)).unwrap();
        assert_eq!(c.data(), a.data());
    }

    #[test]
    fn matmul_rejects_bad_inner_dim() {
        let a = t(&[1.0; 6], &[2, 3]);
        let b = t(&[1.0; 8], &[4, 2]);
        assert!(matches!(
            matmul(&a, &b),
            Err(TensorError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn matmul_rejects_vectors() {
        let a = t(&[1.0, 2.0], &[2]);
        let b = t(&[1.0, 2.0], &[2]);
        assert!(matches!(
            matmul(&a, &b),
            Err(TensorError::RankMismatch { .. })
        ));
    }

    #[test]
    fn zero_entries_in_a_are_handled() {
        // The kernel is branch-free: rows/columns of zeros must come out
        // exactly zero, with no special-casing in the inner loop.
        let a = t(&[0.0, 0.0, 1.0, 2.0], &[2, 2]);
        let b = t(&[3.0, 4.0, 5.0, 6.0], &[2, 2]);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.data(), &[0.0, 0.0, 13.0, 16.0]);
    }

    #[test]
    fn transb_matches_explicit_transpose() {
        // A[2,3] · B[4,3]ᵀ == A · Bᵀ[3,4]
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = t(
            &[1.0, 0.0, 2.0, 0.0, 1.0, 1.0, 3.0, 1.0, 0.0, 2.0, 2.0, 2.0],
            &[4, 3],
        );
        let via_transb = matmul_transb(&a, &b).unwrap();
        // Transpose b manually.
        let mut bt = Tensor::zeros(&[3, 4]);
        for i in 0..4 {
            for j in 0..3 {
                bt.data_mut()[j * 4 + i] = b.data()[i * 3 + j];
            }
        }
        let direct = matmul(&a, &bt).unwrap();
        assert_eq!(via_transb.data(), direct.data());
    }

    #[test]
    fn matvec_and_vecmat() {
        let w = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]; // [2,3] row-major
        let x = [1.0, 1.0];
        let mut y = [0.0; 3];
        matvec(&x, &w, &mut y, 2, 3);
        assert_eq!(y, [5.0, 7.0, 9.0]);

        // vecmat_transb: W stored [out=3, in=2]
        let w2 = [1.0, 4.0, 2.0, 5.0, 3.0, 6.0];
        let mut y2 = [0.0; 3];
        vecmat_transb(&x, &w2, &mut y2, 2, 3);
        assert_eq!(y2, [5.0, 7.0, 9.0]);
    }

    #[test]
    fn dot_unrolled_handles_remainders() {
        for len in [0usize, 1, 3, 4, 5, 7, 8, 9, 13, 16, 17, 23, 24] {
            let a: Vec<f32> = (0..len).map(|i| i as f32).collect();
            let b: Vec<f32> = (0..len).map(|i| (i * 2) as f32).collect();
            let expect: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
            assert_eq!(super::dot_unrolled(&a, &b), expect, "len {len}");
        }
    }

    #[test]
    fn axpy_accumulates_in_place() {
        let mut y = [1.0f32, 2.0, 3.0];
        axpy(2.0, &[10.0, 20.0, 30.0], &mut y);
        assert_eq!(y, [21.0, 42.0, 63.0]);
        axpy(0.0, &[5.0, 5.0, 5.0], &mut y);
        assert_eq!(y, [21.0, 42.0, 63.0]);
    }

    #[test]
    fn large_matmul_associativity_with_identity_chain() {
        let a = t(&(0..64).map(|x| (x % 7) as f32 - 3.0).collect::<Vec<_>>(), &[8, 8]);
        let c = matmul(&matmul(&a, &Tensor::eye(8)).unwrap(), &Tensor::eye(8)).unwrap();
        assert_eq!(c.data(), a.data());
    }

    fn force_par(threads: usize) -> Parallelism {
        Parallelism {
            num_threads: threads,
            min_work: 0,
        }
    }

    #[test]
    fn parallel_matmul_is_bit_identical() {
        let (m, k, n) = (13, 9, 11);
        let a: Vec<f32> = (0..m * k).map(|i| (i as f32 * 0.37).sin()).collect();
        let b: Vec<f32> = (0..k * n).map(|i| (i as f32 * 0.19).cos()).collect();
        let mut serial = vec![0.0f32; m * n];
        matmul_slices(&a, &b, &mut serial, m, k, n);
        for threads in [2usize, 3, 4, 8, 16] {
            let mut par = vec![f32::NAN; m * n];
            matmul_slices_par(&a, &b, &mut par, m, k, n, &force_par(threads));
            assert_eq!(serial, par, "threads {threads}");
        }
    }

    #[test]
    fn parallel_transb_is_bit_identical() {
        let (m, k, n) = (7, 17, 5);
        let a: Vec<f32> = (0..m * k).map(|i| (i as f32 * 0.41).sin()).collect();
        let b: Vec<f32> = (0..n * k).map(|i| (i as f32 * 0.23).cos()).collect();
        let mut serial = vec![0.0f32; m * n];
        matmul_transb_slices(&a, &b, &mut serial, m, k, n);
        for threads in [2usize, 3, 4, 8, 16] {
            let mut par = vec![f32::NAN; m * n];
            matmul_transb_slices_par(&a, &b, &mut par, m, k, n, &force_par(threads));
            assert_eq!(serial, par, "threads {threads}");
        }
    }

    #[test]
    fn parallel_single_row_falls_back_to_serial() {
        // m = 1 cannot split; the decode-step matvec must stay serial.
        let (k, n) = (16, 8);
        let a: Vec<f32> = (0..k).map(|i| i as f32).collect();
        let b: Vec<f32> = (0..k * n).map(|i| (i % 5) as f32).collect();
        let mut serial = vec![0.0f32; n];
        matmul_slices(&a, &b, &mut serial, 1, k, n);
        let mut par = vec![f32::NAN; n];
        matmul_slices_par(&a, &b, &mut par, 1, k, n, &force_par(8));
        assert_eq!(serial, par);
    }
}
