//! Matrix multiplication kernels.
//!
//! The transformer engine spends nearly all of its time here, so the slice
//! kernels use an `i-k-j` loop order (unit-stride inner loop over the output
//! row) which the compiler auto-vectorises, plus a transposed-B variant for
//! attention `Q·Kᵀ` where `K` is stored row-per-token.

use crate::{Result, Tensor, TensorError};

/// `C[m,n] = A[m,k] · B[k,n]` over raw slices.
///
/// # Panics
///
/// Debug-asserts the slice lengths; callers are the validated [`matmul`]
/// wrapper and the model engine, which guarantees layouts.
pub fn matmul_slices(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    c.fill(0.0);
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let c_row = &mut c[i * n..(i + 1) * n];
        for (p, &a_ip) in a_row.iter().enumerate() {
            if a_ip == 0.0 {
                continue;
            }
            let b_row = &b[p * n..(p + 1) * n];
            for (c_ij, &b_pj) in c_row.iter_mut().zip(b_row) {
                *c_ij += a_ip * b_pj;
            }
        }
    }
}

/// `C[m,n] = A[m,k] · B[n,k]ᵀ` over raw slices (`B` stored row-major with
/// rows of length `k`, i.e. row-per-output-column).
pub fn matmul_transb_slices(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(c.len(), m * n);
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        for j in 0..n {
            let b_row = &b[j * k..(j + 1) * k];
            c[i * n + j] = dot_unrolled(a_row, b_row);
        }
    }
}

/// Dot product with 4-way manual unrolling (helps on dot-heavy attention).
#[inline]
fn dot_unrolled(a: &[f32], b: &[f32]) -> f32 {
    let mut acc = [0.0f32; 4];
    let chunks = a.len() / 4;
    for c in 0..chunks {
        let i = c * 4;
        acc[0] += a[i] * b[i];
        acc[1] += a[i + 1] * b[i + 1];
        acc[2] += a[i + 2] * b[i + 2];
        acc[3] += a[i + 3] * b[i + 3];
    }
    let mut s = acc[0] + acc[1] + acc[2] + acc[3];
    for i in chunks * 4..a.len() {
        s += a[i] * b[i];
    }
    s
}

/// `y[n] = x[k] · W[k,n]` (row vector times matrix).
pub fn matvec(x: &[f32], w: &[f32], y: &mut [f32], k: usize, n: usize) {
    matmul_slices(x, w, y, 1, k, n);
}

/// `y[n] = x[k] · W[n,k]ᵀ` — the usual "linear layer" with weights stored
/// `[out, in]`, applied to one token.
pub fn vecmat_transb(x: &[f32], w: &[f32], y: &mut [f32], k: usize, n: usize) {
    matmul_transb_slices(x, w, y, 1, k, n);
}

/// Validated tensor matmul: `A[m,k] · B[k,n]`.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-matrix operands and
/// [`TensorError::ShapeMismatch`] when inner dimensions disagree.
///
/// # Example
///
/// ```
/// use pc_tensor::{ops, Tensor};
/// let a = Tensor::from_vec(vec![1.0, 2.0], &[1, 2]).unwrap();
/// let b = Tensor::from_vec(vec![3.0, 4.0], &[2, 1]).unwrap();
/// assert_eq!(ops::matmul(&a, &b).unwrap().data(), &[11.0]);
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, k, k2, n) = matrix_dims("matmul", a, b)?;
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            op: "matmul",
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
        });
    }
    let mut c = Tensor::zeros(&[m, n]);
    matmul_slices(a.data(), b.data(), c.data_mut(), m, k, n);
    Ok(c)
}

/// Validated tensor matmul with transposed right operand: `A[m,k] · B[n,k]ᵀ`.
///
/// # Errors
///
/// Same contract as [`matmul`], with `B`'s *second* dimension matched
/// against `A`'s.
pub fn matmul_transb(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, k, n, k2) = matrix_dims("matmul_transb", a, b)?;
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            op: "matmul_transb",
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
        });
    }
    let mut c = Tensor::zeros(&[m, n]);
    matmul_transb_slices(a.data(), b.data(), c.data_mut(), m, k, n);
    Ok(c)
}

fn matrix_dims(
    op: &'static str,
    a: &Tensor,
    b: &Tensor,
) -> Result<(usize, usize, usize, usize)> {
    let (ad, bd) = (a.dims(), b.dims());
    if ad.len() != 2 {
        return Err(TensorError::RankMismatch {
            op,
            expected: 2,
            actual: ad.len(),
        });
    }
    if bd.len() != 2 {
        return Err(TensorError::RankMismatch {
            op,
            expected: 2,
            actual: bd.len(),
        });
    }
    Ok((ad[0], ad[1], bd[0], bd[1]))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(data: &[f32], dims: &[usize]) -> Tensor {
        Tensor::from_vec(data.to_vec(), dims).unwrap()
    }

    #[test]
    fn matmul_2x2() {
        let a = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = t(&[5.0, 6.0, 7.0, 8.0], &[2, 2]);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let c = matmul(&a, &Tensor::eye(3)).unwrap();
        assert_eq!(c.data(), a.data());
    }

    #[test]
    fn matmul_rejects_bad_inner_dim() {
        let a = t(&[1.0; 6], &[2, 3]);
        let b = t(&[1.0; 8], &[4, 2]);
        assert!(matches!(
            matmul(&a, &b),
            Err(TensorError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn matmul_rejects_vectors() {
        let a = t(&[1.0, 2.0], &[2]);
        let b = t(&[1.0, 2.0], &[2]);
        assert!(matches!(
            matmul(&a, &b),
            Err(TensorError::RankMismatch { .. })
        ));
    }

    #[test]
    fn transb_matches_explicit_transpose() {
        // A[2,3] · B[4,3]ᵀ == A · Bᵀ[3,4]
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = t(
            &[1.0, 0.0, 2.0, 0.0, 1.0, 1.0, 3.0, 1.0, 0.0, 2.0, 2.0, 2.0],
            &[4, 3],
        );
        let via_transb = matmul_transb(&a, &b).unwrap();
        // Transpose b manually.
        let mut bt = Tensor::zeros(&[3, 4]);
        for i in 0..4 {
            for j in 0..3 {
                bt.data_mut()[j * 4 + i] = b.data()[i * 3 + j];
            }
        }
        let direct = matmul(&a, &bt).unwrap();
        assert_eq!(via_transb.data(), direct.data());
    }

    #[test]
    fn matvec_and_vecmat() {
        let w = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]; // [2,3] row-major
        let x = [1.0, 1.0];
        let mut y = [0.0; 3];
        matvec(&x, &w, &mut y, 2, 3);
        assert_eq!(y, [5.0, 7.0, 9.0]);

        // vecmat_transb: W stored [out=3, in=2]
        let w2 = [1.0, 4.0, 2.0, 5.0, 3.0, 6.0];
        let mut y2 = [0.0; 3];
        vecmat_transb(&x, &w2, &mut y2, 2, 3);
        assert_eq!(y2, [5.0, 7.0, 9.0]);
    }

    #[test]
    fn dot_unrolled_handles_remainders() {
        for len in [0usize, 1, 3, 4, 5, 8, 13] {
            let a: Vec<f32> = (0..len).map(|i| i as f32).collect();
            let b: Vec<f32> = (0..len).map(|i| (i * 2) as f32).collect();
            let expect: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
            assert_eq!(super::dot_unrolled(&a, &b), expect, "len {len}");
        }
    }

    #[test]
    fn large_matmul_associativity_with_identity_chain() {
        let a = t(&(0..64).map(|x| (x % 7) as f32 - 3.0).collect::<Vec<_>>(), &[8, 8]);
        let c = matmul(&matmul(&a, &Tensor::eye(8)).unwrap(), &Tensor::eye(8)).unwrap();
        assert_eq!(c.data(), a.data());
    }
}
