//! Tensor kernels: matrix multiplication, softmax, normalisation,
//! activations, elementwise arithmetic, and reductions.
//!
//! Kernels are free functions over [`crate::Tensor`] (and, for the hot
//! paths, over raw `&[f32]` slices so `pc-model` can operate on views
//! without copies).

mod activation;
mod batched;
mod elementwise;
mod matmul;
mod norm;
mod reduce;
mod softmax;

pub use activation::{gelu, gelu_scalar, gelu_slice, silu, silu_scalar, silu_slice};
pub use batched::{axpy_seq, dot_rotated, dot_seq, matmul_transb_batched, matmul_transb_batched_par};
pub use elementwise::{add, add_assign_slice, mul, scale, scale_slice};
pub use matmul::{
    matmul, matmul_slices, matmul_slices_par, matmul_transb, matmul_transb_slices,
    matmul_transb_slices_par, matvec, vecmat_transb,
};
pub use norm::{layer_norm, layer_norm_slice, rms_norm, rms_norm_slice};
pub use reduce::{argmax, argmax_slice, dot, mean, top_k};
pub use softmax::{log_softmax_slice, softmax, softmax_rows, softmax_slice};
