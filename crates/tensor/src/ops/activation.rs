//! Activation functions used by the supported model families.
//!
//! SiLU (a.k.a. swish) drives Llama-style gated MLPs; tanh-approximated GELU
//! drives Falcon/MPT/GPT-2 MLPs.

use crate::Tensor;

/// SiLU applied to one value: `x · sigmoid(x)`.
#[inline]
pub fn silu_scalar(x: f32) -> f32 {
    x / (1.0 + (-x).exp())
}

/// Tanh-approximated GELU applied to one value (the GPT-2/Falcon variant).
#[inline]
pub fn gelu_scalar(x: f32) -> f32 {
    const SQRT_2_OVER_PI: f32 = 0.797_884_6;
    0.5 * x * (1.0 + (SQRT_2_OVER_PI * (x + 0.044_715 * x * x * x)).tanh())
}

/// In-place SiLU over a slice.
pub fn silu_slice(x: &mut [f32]) {
    for v in x.iter_mut() {
        *v = silu_scalar(*v);
    }
}

/// In-place GELU over a slice.
pub fn gelu_slice(x: &mut [f32]) {
    for v in x.iter_mut() {
        *v = gelu_scalar(*v);
    }
}

/// Elementwise SiLU of a tensor.
pub fn silu(x: &Tensor) -> Tensor {
    x.map(silu_scalar)
}

/// Elementwise GELU of a tensor.
pub fn gelu(x: &Tensor) -> Tensor {
    x.map(gelu_scalar)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn silu_fixed_points() {
        assert_eq!(silu_scalar(0.0), 0.0);
        // silu(x) → x for large x, → 0 for very negative x.
        assert!((silu_scalar(20.0) - 20.0).abs() < 1e-4);
        assert!(silu_scalar(-20.0).abs() < 1e-4);
    }

    #[test]
    fn silu_known_value() {
        // silu(1) = 1/(1+e^-1) ≈ 0.731059
        assert!((silu_scalar(1.0) - 0.731_059).abs() < 1e-5);
    }

    #[test]
    fn gelu_fixed_points() {
        assert_eq!(gelu_scalar(0.0), 0.0);
        assert!((gelu_scalar(10.0) - 10.0).abs() < 1e-3);
        assert!(gelu_scalar(-10.0).abs() < 1e-3);
    }

    #[test]
    fn gelu_known_value() {
        // Reference value from the tanh approximation at x = 1.
        assert!((gelu_scalar(1.0) - 0.841_192).abs() < 1e-4);
    }

    #[test]
    fn activations_are_monotone_on_positives() {
        let mut prev_s = 0.0;
        let mut prev_g = 0.0;
        for i in 1..100 {
            let x = i as f32 * 0.1;
            let s = silu_scalar(x);
            let g = gelu_scalar(x);
            assert!(s > prev_s && g > prev_g, "x={x}");
            prev_s = s;
            prev_g = g;
        }
    }

    #[test]
    fn slice_and_tensor_variants_agree() {
        let vals = vec![-2.0, -0.5, 0.0, 0.5, 2.0];
        let t = Tensor::from_vec(vals.clone(), &[5]).unwrap();
        let ts = silu(&t);
        let mut s = vals.clone();
        silu_slice(&mut s);
        assert_eq!(ts.data(), &s[..]);

        let tg = gelu(&t);
        let mut g = vals;
        gelu_slice(&mut g);
        assert_eq!(tg.data(), &g[..]);
    }
}
