//! Normalisation layers: RMSNorm (Llama) and LayerNorm (Falcon, MPT, GPT-2).

use crate::{Result, Tensor, TensorError};

/// In-place RMSNorm over one token's hidden vector.
///
/// `x[i] ← x[i] / rms(x) · weight[i]` with `rms(x) = sqrt(mean(x²) + eps)`.
pub fn rms_norm_slice(x: &mut [f32], weight: &[f32], eps: f32) {
    debug_assert_eq!(x.len(), weight.len());
    if x.is_empty() {
        return;
    }
    let ms = x.iter().map(|v| v * v).sum::<f32>() / x.len() as f32;
    let inv = 1.0 / (ms + eps).sqrt();
    for (v, &w) in x.iter_mut().zip(weight) {
        *v = *v * inv * w;
    }
}

/// In-place LayerNorm over one token's hidden vector.
///
/// `x[i] ← (x[i] - mean) / sqrt(var + eps) · weight[i] + bias[i]`.
pub fn layer_norm_slice(x: &mut [f32], weight: &[f32], bias: &[f32], eps: f32) {
    debug_assert_eq!(x.len(), weight.len());
    debug_assert_eq!(x.len(), bias.len());
    if x.is_empty() {
        return;
    }
    let n = x.len() as f32;
    let mean = x.iter().sum::<f32>() / n;
    let var = x.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n;
    let inv = 1.0 / (var + eps).sqrt();
    for ((v, &w), &b) in x.iter_mut().zip(weight).zip(bias) {
        *v = (*v - mean) * inv * w + b;
    }
}

/// Row-wise RMSNorm of a `[tokens, hidden]` matrix.
///
/// # Errors
///
/// Returns an error when `x` is not rank 2 or `weight`'s length differs from
/// the hidden dimension.
pub fn rms_norm(x: &Tensor, weight: &Tensor, eps: f32) -> Result<Tensor> {
    let dims = x.dims();
    if dims.len() != 2 {
        return Err(TensorError::RankMismatch {
            op: "rms_norm",
            expected: 2,
            actual: dims.len(),
        });
    }
    if weight.len() != dims[1] {
        return Err(TensorError::ShapeMismatch {
            op: "rms_norm",
            lhs: dims.to_vec(),
            rhs: weight.dims().to_vec(),
        });
    }
    let mut out = x.clone();
    if dims[1] == 0 {
        return Ok(out);
    }
    for row in out.data_mut().chunks_exact_mut(dims[1]) {
        rms_norm_slice(row, weight.data(), eps);
    }
    Ok(out)
}

/// Row-wise LayerNorm of a `[tokens, hidden]` matrix.
///
/// # Errors
///
/// Returns an error when `x` is not rank 2 or `weight`/`bias` lengths differ
/// from the hidden dimension.
pub fn layer_norm(x: &Tensor, weight: &Tensor, bias: &Tensor, eps: f32) -> Result<Tensor> {
    let dims = x.dims();
    if dims.len() != 2 {
        return Err(TensorError::RankMismatch {
            op: "layer_norm",
            expected: 2,
            actual: dims.len(),
        });
    }
    if weight.len() != dims[1] || bias.len() != dims[1] {
        return Err(TensorError::ShapeMismatch {
            op: "layer_norm",
            lhs: dims.to_vec(),
            rhs: weight.dims().to_vec(),
        });
    }
    let mut out = x.clone();
    if dims[1] == 0 {
        return Ok(out);
    }
    for row in out.data_mut().chunks_exact_mut(dims[1]) {
        layer_norm_slice(row, weight.data(), bias.data(), eps);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rms_norm_unit_output_scale() {
        let mut x = [3.0, 4.0];
        let w = [1.0, 1.0];
        rms_norm_slice(&mut x, &w, 0.0);
        // rms = sqrt((9+16)/2) = sqrt(12.5)
        let rms = (12.5f32).sqrt();
        assert!((x[0] - 3.0 / rms).abs() < 1e-6);
        assert!((x[1] - 4.0 / rms).abs() < 1e-6);
        // Output RMS is 1.
        let out_ms = (x[0] * x[0] + x[1] * x[1]) / 2.0;
        assert!((out_ms - 1.0).abs() < 1e-5);
    }

    #[test]
    fn rms_norm_applies_weight() {
        let mut x = [1.0, 1.0];
        rms_norm_slice(&mut x, &[2.0, 0.5], 0.0);
        assert!((x[0] - 2.0).abs() < 1e-6);
        assert!((x[1] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn layer_norm_zero_mean_unit_var() {
        let mut x = [1.0, 2.0, 3.0, 4.0];
        let w = [1.0; 4];
        let b = [0.0; 4];
        layer_norm_slice(&mut x, &w, &b, 1e-6);
        let mean: f32 = x.iter().sum::<f32>() / 4.0;
        let var: f32 = x.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-5);
        assert!((var - 1.0).abs() < 1e-3);
    }

    #[test]
    fn layer_norm_bias_shifts() {
        let mut x = [1.0, -1.0];
        layer_norm_slice(&mut x, &[1.0, 1.0], &[5.0, 5.0], 1e-6);
        assert!((x[0] + x[1] - 10.0).abs() < 1e-4);
    }

    #[test]
    fn tensor_wrappers_validate() {
        let x = Tensor::zeros(&[2, 4]);
        let w = Tensor::full(&[4], 1.0);
        let b = Tensor::zeros(&[4]);
        assert!(rms_norm(&x, &w, 1e-5).is_ok());
        assert!(layer_norm(&x, &w, &b, 1e-5).is_ok());
        let bad_w = Tensor::full(&[3], 1.0);
        assert!(rms_norm(&x, &bad_w, 1e-5).is_err());
        assert!(layer_norm(&x, &bad_w, &b, 1e-5).is_err());
        let v = Tensor::zeros(&[4]);
        assert!(rms_norm(&v, &w, 1e-5).is_err());
    }

    #[test]
    fn eps_guards_zero_vector() {
        let mut x = [0.0; 4];
        rms_norm_slice(&mut x, &[1.0; 4], 1e-5);
        assert!(x.iter().all(|v| v.is_finite()));
        let mut y = [2.0; 4]; // zero variance
        layer_norm_slice(&mut y, &[1.0; 4], &[0.0; 4], 1e-5);
        assert!(y.iter().all(|v| v.is_finite()));
    }
}
