//! Elementwise arithmetic.

use crate::{Result, Tensor, TensorError};

fn check_same_shape(op: &'static str, a: &Tensor, b: &Tensor) -> Result<()> {
    if a.shape() != b.shape() {
        return Err(TensorError::ShapeMismatch {
            op,
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
        });
    }
    Ok(())
}

/// Elementwise sum of two same-shape tensors.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when shapes differ.
pub fn add(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    check_same_shape("add", a, b)?;
    let data = a.data().iter().zip(b.data()).map(|(x, y)| x + y).collect();
    Tensor::from_vec(data, a.dims())
}

/// Elementwise (Hadamard) product of two same-shape tensors.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when shapes differ.
pub fn mul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    check_same_shape("mul", a, b)?;
    let data = a.data().iter().zip(b.data()).map(|(x, y)| x * y).collect();
    Tensor::from_vec(data, a.dims())
}

/// Multiplies every element by a scalar.
pub fn scale(a: &Tensor, s: f32) -> Tensor {
    a.map(|x| x * s)
}

/// In-place `a[i] += b[i]` over slices (residual connections).
pub fn add_assign_slice(a: &mut [f32], b: &[f32]) {
    debug_assert_eq!(a.len(), b.len());
    for (x, &y) in a.iter_mut().zip(b) {
        *x += y;
    }
}

/// In-place scalar multiply over a slice.
pub fn scale_slice(a: &mut [f32], s: f32) {
    for x in a.iter_mut() {
        *x *= s;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(data: &[f32]) -> Tensor {
        Tensor::from_vec(data.to_vec(), &[data.len()]).unwrap()
    }

    #[test]
    fn add_and_mul() {
        let a = t(&[1.0, 2.0]);
        let b = t(&[3.0, 4.0]);
        assert_eq!(add(&a, &b).unwrap().data(), &[4.0, 6.0]);
        assert_eq!(mul(&a, &b).unwrap().data(), &[3.0, 8.0]);
    }

    #[test]
    fn shape_mismatch_rejected() {
        let a = t(&[1.0, 2.0]);
        let b = Tensor::zeros(&[3]);
        assert!(add(&a, &b).is_err());
        assert!(mul(&a, &b).is_err());
        // Same element count, different shape must also fail.
        let c = Tensor::zeros(&[1, 2]);
        assert!(add(&a, &c).is_err());
    }

    #[test]
    fn scale_variants_agree() {
        let a = t(&[1.0, -2.0, 0.5]);
        let scaled = scale(&a, 2.0);
        let mut raw = a.data().to_vec();
        scale_slice(&mut raw, 2.0);
        assert_eq!(scaled.data(), &raw[..]);
    }

    #[test]
    fn add_assign_slice_accumulates() {
        let mut a = [1.0, 1.0];
        add_assign_slice(&mut a, &[0.5, -0.5]);
        assert_eq!(a, [1.5, 0.5]);
    }
}
