//! Minimal f32 tensor kernels for the Prompt Cache reproduction.
//!
//! This crate is the arithmetic substrate underneath the transformer engine
//! in `pc-model`. It deliberately implements only what LLM inference needs —
//! dense row-major f32 tensors, matrix multiplication, softmax with additive
//! bias (for attention masks and ALiBi), normalisation layers, and the
//! activation functions used by the Llama/Falcon/MPT/GPT-2 families — and
//! implements those operations carefully and predictably rather than
//! generically.
//!
//! # Layout
//!
//! All tensors are contiguous row-major [`Tensor`] values. Shapes are plain
//! `Vec<usize>` wrapped in [`Shape`]. There is no broadcasting, no autograd,
//! and no device abstraction: Prompt Cache's device story (CPU vs GPU
//! memory) lives in `pc-cache` and `pc-simulator`.
//!
//! # Example
//!
//! ```
//! use pc_tensor::{Tensor, ops};
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
//! let b = Tensor::eye(2);
//! let c = ops::matmul(&a, &b).unwrap();
//! assert_eq!(c.data(), a.data());
//! ```

#![warn(missing_docs)]

mod error;
pub mod init;
pub mod ops;
pub mod par;
mod shape;
mod tensor;

pub use error::TensorError;
pub use par::Parallelism;
pub use shape::Shape;
pub use tensor::Tensor;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, TensorError>;
