use crate::{Result, Shape, TensorError};

/// A dense, contiguous, row-major tensor of `f32` values.
///
/// `Tensor` is the only data container in this crate. It owns its buffer;
/// cheap sub-views are exposed as plain `&[f32]` row slices via
/// [`Tensor::row`] and [`Tensor::rows`], which is all the transformer engine
/// needs (per-token and per-head slices are rows under the layouts chosen in
/// `pc-model`).
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Shape,
}

impl Tensor {
    /// Creates a tensor from a flat buffer and shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeDataMismatch`] if `data.len()` is not the
    /// product of `dims`.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Result<Self> {
        let shape = Shape::new(dims);
        if shape.num_elements() != data.len() {
            return Err(TensorError::ShapeDataMismatch {
                shape: dims.to_vec(),
                data_len: data.len(),
            });
        }
        Ok(Tensor { data, shape })
    }

    /// Creates a zero-filled tensor.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        Tensor {
            data: vec![0.0; shape.num_elements()],
            shape,
        }
    }

    /// Creates a tensor filled with `value`.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        Tensor {
            data: vec![value; shape.num_elements()],
            shape,
        }
    }

    /// The `n × n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The dimensions as a slice (shorthand for `shape().dims()`).
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read-only access to the flat row-major buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the flat row-major buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Reinterprets the buffer under a new shape with the same element count.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeDataMismatch`] if the element counts
    /// differ.
    pub fn reshape(self, dims: &[usize]) -> Result<Self> {
        Tensor::from_vec(self.data, dims)
    }

    /// Row `i` of a rank-2 tensor, as a slice of length `cols`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrix tensors and
    /// [`TensorError::IndexOutOfBounds`] for an out-of-range row.
    pub fn row(&self, i: usize) -> Result<&[f32]> {
        let dims = self.shape.dims();
        if dims.len() != 2 {
            return Err(TensorError::RankMismatch {
                op: "row",
                expected: 2,
                actual: dims.len(),
            });
        }
        let (rows, cols) = (dims[0], dims[1]);
        if i >= rows {
            return Err(TensorError::IndexOutOfBounds { index: i, bound: rows });
        }
        Ok(&self.data[i * cols..(i + 1) * cols])
    }

    /// Iterator over the rows of a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrix tensors.
    pub fn rows(&self) -> Result<impl Iterator<Item = &[f32]>> {
        let dims = self.shape.dims();
        if dims.len() != 2 {
            return Err(TensorError::RankMismatch {
                op: "rows",
                expected: 2,
                actual: dims.len(),
            });
        }
        Ok(self.data.chunks_exact(dims[1].max(1)))
    }

    /// Element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns an error when the index rank or any coordinate is out of
    /// bounds.
    pub fn at(&self, index: &[usize]) -> Result<f32> {
        let dims = self.shape.dims();
        if index.len() != dims.len() {
            return Err(TensorError::RankMismatch {
                op: "at",
                expected: dims.len(),
                actual: index.len(),
            });
        }
        let mut offset = 0;
        for ((&i, &d), stride) in index.iter().zip(dims).zip(self.shape.strides()) {
            if i >= d {
                return Err(TensorError::IndexOutOfBounds { index: i, bound: d });
            }
            offset += i * stride;
        }
        Ok(self.data[offset])
    }

    /// Returns a new tensor with every element mapped through `f`.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Self {
        Tensor {
            data: self.data.iter().map(|&x| f(x)).collect(),
            shape: self.shape.clone(),
        }
    }

    /// Maximum absolute difference against another tensor of the same shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn max_abs_diff(&self, other: &Tensor) -> Result<f32> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                op: "max_abs_diff",
                lhs: self.dims().to_vec(),
                rhs: other.dims().to_vec(),
            });
        }
        Ok(self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max))
    }

    /// Whether all elements are finite (no NaN or infinity).
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec(vec![1.0; 6], &[2, 3]).is_ok());
        let err = Tensor::from_vec(vec![1.0; 5], &[2, 3]).unwrap_err();
        assert!(matches!(err, TensorError::ShapeDataMismatch { .. }));
    }

    #[test]
    fn zeros_and_full() {
        let z = Tensor::zeros(&[3, 2]);
        assert_eq!(z.len(), 6);
        assert!(z.data().iter().all(|&x| x == 0.0));
        let f = Tensor::full(&[2], 7.5);
        assert_eq!(f.data(), &[7.5, 7.5]);
    }

    #[test]
    fn eye_is_identity() {
        let i = Tensor::eye(3);
        assert_eq!(i.at(&[0, 0]).unwrap(), 1.0);
        assert_eq!(i.at(&[0, 1]).unwrap(), 0.0);
        assert_eq!(i.at(&[2, 2]).unwrap(), 1.0);
    }

    #[test]
    fn row_access() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        assert_eq!(t.row(0).unwrap(), &[1.0, 2.0, 3.0]);
        assert_eq!(t.row(1).unwrap(), &[4.0, 5.0, 6.0]);
        assert!(t.row(2).is_err());
    }

    #[test]
    fn rows_iterates_all() {
        let t = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[3, 2]).unwrap();
        let rows: Vec<_> = t.rows().unwrap().collect();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[2], &[4.0, 5.0]);
    }

    #[test]
    fn rows_rejects_rank_1() {
        let t = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        assert!(t.rows().is_err());
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[4]).unwrap();
        let m = t.clone().reshape(&[2, 2]).unwrap();
        assert_eq!(m.data(), t.data());
        assert!(t.reshape(&[3, 2]).is_err());
    }

    #[test]
    fn at_multi_dim() {
        let t = Tensor::from_vec((0..24).map(|x| x as f32).collect(), &[2, 3, 4]).unwrap();
        assert_eq!(t.at(&[1, 2, 3]).unwrap(), 23.0);
        assert_eq!(t.at(&[0, 1, 2]).unwrap(), 6.0);
        assert!(t.at(&[2, 0, 0]).is_err());
        assert!(t.at(&[0, 0]).is_err());
    }

    #[test]
    fn map_applies_elementwise() {
        let t = Tensor::from_vec(vec![1.0, -2.0], &[2]).unwrap();
        assert_eq!(t.map(f32::abs).data(), &[1.0, 2.0]);
    }

    #[test]
    fn max_abs_diff_detects_divergence() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![1.5, 2.0], &[2]).unwrap();
        assert_eq!(a.max_abs_diff(&b).unwrap(), 0.5);
        let c = Tensor::zeros(&[3]);
        assert!(a.max_abs_diff(&c).is_err());
    }

    #[test]
    fn all_finite_flags_nan() {
        let mut t = Tensor::zeros(&[2]);
        assert!(t.all_finite());
        t.data_mut()[0] = f32::NAN;
        assert!(!t.all_finite());
    }
}
