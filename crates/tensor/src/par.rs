//! Work-partitioning parallelism over a reusable scoped-thread pool.
//!
//! Every parallel kernel in this workspace funnels through [`run_tasks`]:
//! the caller prepares one closure per **disjoint** slice of the output,
//! the tasks are grouped into at most `threads` contiguous batches, and the
//! batches run on a lazily-grown, process-wide pool of crossbeam-channel
//! workers (the calling thread always executes the first batch itself, so a
//! cold or saturated pool never stalls progress).
//!
//! # Determinism
//!
//! Parallelism here never changes *what* is computed, only *where*: each
//! output element is produced by exactly one task, and every task runs the
//! same scalar code in the same floating-point order as the serial kernel.
//! Results are therefore **bit-identical** at any thread count — the
//! property that keeps the paper's Table-1 fidelity claims valid — and the
//! proptests in `tests/par_proptests.rs` assert exact `f32` equality, not
//! approximate closeness.
//!
//! # Configuration
//!
//! [`Parallelism`] carries the thread count and a serial/parallel work
//! threshold. [`Parallelism::from_env`] (also [`Parallelism::default`])
//! reads the `PC_THREADS` environment variable, falling back to the number
//! of available cores, so `PC_THREADS=1 cargo bench` pins the whole stack
//! to one core without code changes.

use crossbeam::channel::{unbounded, Receiver, Sender};
use crossbeam::sync::WaitGroup;
use std::cell::Cell;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// How much work is fanned out, and when fanning out is worth it.
///
/// The two fields are deliberately public plain data: configs embed and
/// compare this by value (`ModelConfig`, `EngineConfig`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Parallelism {
    /// Worker threads to split work across (1 = fully serial).
    pub num_threads: usize,
    /// Minimum work size (`m × k × n` multiply-adds for a matmul, an
    /// equivalent flop estimate elsewhere) below which a kernel stays on
    /// the calling thread — tiny decode-step matvecs must not pay pool
    /// hand-off latency.
    pub min_work: usize,
}

/// Default serial/parallel threshold: ~256k multiply-adds, a few
/// microseconds of scalar work — comfortably above pool hand-off cost,
/// comfortably below one prefill-shaped matmul (`256³ ≈ 16.8M`).
pub const DEFAULT_MIN_WORK: usize = 1 << 18;

impl Parallelism {
    /// Fully serial execution (the old single-core behaviour).
    pub fn serial() -> Self {
        Parallelism {
            num_threads: 1,
            min_work: DEFAULT_MIN_WORK,
        }
    }

    /// `n` threads with the default work threshold.
    pub fn with_threads(n: usize) -> Self {
        Parallelism {
            num_threads: n.max(1),
            min_work: DEFAULT_MIN_WORK,
        }
    }

    /// Thread count from the `PC_THREADS` environment variable, defaulting
    /// to the number of available cores. The value is resolved once per
    /// process.
    pub fn from_env() -> Self {
        static RESOLVED: OnceLock<usize> = OnceLock::new();
        let n = *RESOLVED.get_or_init(|| {
            std::env::var("PC_THREADS")
                .ok()
                .and_then(|v| v.trim().parse::<usize>().ok())
                .filter(|&n| n >= 1)
                .unwrap_or_else(|| {
                    std::thread::available_parallelism().map_or(1, |n| n.get())
                })
        });
        Parallelism::with_threads(n)
    }

    /// Threads to use for a kernel invocation of the given work size:
    /// `num_threads` when the work clears the threshold, else 1.
    pub fn threads_for(&self, work: usize) -> usize {
        if self.num_threads > 1 && work >= self.min_work {
            self.num_threads
        } else {
            1
        }
    }
}

impl Default for Parallelism {
    /// [`Parallelism::from_env`].
    fn default() -> Self {
        Parallelism::from_env()
    }
}

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Backstop on pool growth; far above any sensible `PC_THREADS`.
const MAX_POOL_THREADS: usize = 128;

struct Pool {
    tx: Sender<Job>,
    rx: Receiver<Job>,
    spawned: AtomicUsize,
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| {
        let (tx, rx) = unbounded();
        Pool {
            tx,
            rx,
            spawned: AtomicUsize::new(0),
        }
    })
}

thread_local! {
    static IN_POOL_WORKER: Cell<bool> = const { Cell::new(false) };
}

fn in_pool_worker() -> bool {
    IN_POOL_WORKER.with(Cell::get)
}

impl Pool {
    /// Grows the pool so at least `wanted` workers exist (capped).
    fn ensure_workers(&self, wanted: usize) {
        let wanted = wanted.min(MAX_POOL_THREADS);
        loop {
            let cur = self.spawned.load(Ordering::Relaxed);
            if cur >= wanted {
                return;
            }
            if self
                .spawned
                .compare_exchange(cur, cur + 1, Ordering::Relaxed, Ordering::Relaxed)
                .is_err()
            {
                continue;
            }
            let rx = self.rx.clone();
            std::thread::Builder::new()
                .name(format!("pc-par-{cur}"))
                .spawn(move || {
                    IN_POOL_WORKER.with(|c| c.set(true));
                    while let Ok(job) = rx.recv() {
                        job();
                    }
                })
                .expect("spawn pool worker");
        }
    }
}

/// Runs `tasks` — closures over **disjoint** data — to completion, split
/// into at most `threads` contiguous batches. Batch 0 runs on the calling
/// thread; the rest go to the shared pool. Returns only after every task
/// has finished, so tasks may safely borrow from the caller's stack.
///
/// Called from inside a pool worker (nested parallelism), all tasks run
/// inline on that worker: the outer fan-out already owns the cores, and
/// inline execution cannot deadlock against a bounded pool.
///
/// # Panics
///
/// Re-raises the panic of any panicking task on the calling thread (after
/// all other tasks have completed).
pub fn run_tasks<'scope>(tasks: Vec<Box<dyn FnOnce() + Send + 'scope>>, threads: usize) {
    let n = tasks.len();
    if n == 0 {
        return;
    }
    let threads = threads.max(1).min(n);
    if threads == 1 || in_pool_worker() {
        for task in tasks {
            task();
        }
        return;
    }

    let pool = pool();
    pool.ensure_workers(threads - 1);

    // Contiguous batches: batch b gets tasks [b·per, (b+1)·per).
    let per = n.div_ceil(threads);
    let mut tasks = tasks.into_iter();
    let first_batch: Vec<_> = tasks.by_ref().take(per).collect();

    let wg = WaitGroup::new();
    let panic_slot: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
    loop {
        let batch: Vec<_> = tasks.by_ref().take(per).collect();
        if batch.is_empty() {
            break;
        }
        let wg = wg.clone();
        let slot = &panic_slot;
        let job: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
            for task in batch {
                if let Err(payload) = catch_unwind(AssertUnwindSafe(task)) {
                    *slot.lock().unwrap() = Some(payload);
                    break;
                }
            }
            drop(wg);
        });
        // SAFETY: the job borrows only data outliving `'scope` plus the
        // local `panic_slot`, and `wg.wait()` below does not return until
        // every job has run to completion (the WaitGroup clone drops even
        // on panic, which is caught inside the job). No borrow escapes
        // this function, so promoting the closure to `'static` for the
        // pool channel cannot produce a dangling reference.
        let job: Job = unsafe { std::mem::transmute(job) };
        pool.tx.send(job).expect("parallel pool channel closed");
    }
    let caller_outcome = catch_unwind(AssertUnwindSafe(|| {
        for task in first_batch {
            task();
        }
    }));
    wg.wait();
    if let Err(payload) = caller_outcome {
        resume_unwind(payload);
    }
    let propagated = panic_slot.lock().unwrap().take();
    if let Some(payload) = propagated {
        resume_unwind(payload);
    }
}

/// Splits a row-major output buffer of `row_width`-element rows into at
/// most `threads` contiguous chunks and runs `f(first_row, chunk)` on each
/// in parallel. Disjointness is structural (`chunks_mut`), so `f` can
/// write its chunk freely; `first_row` tells it which global rows the
/// chunk backs. The row-partitioned attention kernels funnel through this
/// so serial and parallel execution share one code path.
pub fn parallel_output_chunks<T, F>(out: &mut [T], row_width: usize, threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    if out.is_empty() {
        return;
    }
    debug_assert!(row_width > 0 && out.len().is_multiple_of(row_width));
    let rows = out.len() / row_width;
    let threads = threads.max(1).min(rows);
    if threads <= 1 {
        f(0, out);
        return;
    }
    let rows_per_task = rows.div_ceil(threads);
    let f = &f;
    let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = out
        .chunks_mut(rows_per_task * row_width)
        .enumerate()
        .map(|(chunk_idx, chunk)| {
            let first_row = chunk_idx * rows_per_task;
            Box::new(move || f(first_row, chunk)) as Box<dyn FnOnce() + Send + '_>
        })
        .collect();
    run_tasks(tasks, threads);
}

/// Splits `0..m` into at most `threads` contiguous row ranges and runs `f`
/// on each range in parallel. `f` is responsible for writing disjoint
/// output per range (typically via interior indexing of shared storage or
/// by pre-splitting with `chunks_mut`).
pub fn parallel_rows<F>(m: usize, threads: usize, f: F)
where
    F: Fn(Range<usize>) + Sync,
{
    let threads = threads.max(1).min(m);
    if threads <= 1 {
        if m > 0 {
            f(0..m);
        }
        return;
    }
    let per = m.div_ceil(threads);
    let f = &f;
    let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..threads)
        .map(|t| (t * per).min(m)..((t + 1) * per).min(m))
        .filter(|r| !r.is_empty())
        .map(|r| Box::new(move || f(r)) as Box<dyn FnOnce() + Send + '_>)
        .collect();
    run_tasks(tasks, threads);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thresholds_gate_parallelism() {
        let p = Parallelism {
            num_threads: 4,
            min_work: 1000,
        };
        assert_eq!(p.threads_for(999), 1);
        assert_eq!(p.threads_for(1000), 4);
        assert_eq!(Parallelism::serial().threads_for(usize::MAX), 1);
    }

    #[test]
    fn with_threads_clamps_to_one() {
        assert_eq!(Parallelism::with_threads(0).num_threads, 1);
    }

    #[test]
    fn parallel_rows_partitions_exactly() {
        for m in [0usize, 1, 2, 3, 7, 8, 17] {
            for threads in [1usize, 2, 4, 8] {
                let seen = Mutex::new(vec![0u32; m]);
                parallel_rows(m, threads, |range| {
                    let mut seen = seen.lock().unwrap();
                    for i in range {
                        seen[i] += 1;
                    }
                });
                let seen = seen.into_inner().unwrap();
                assert!(
                    seen.iter().all(|&c| c == 1),
                    "m={m} threads={threads}: {seen:?}"
                );
            }
        }
    }

    #[test]
    fn run_tasks_completes_all_before_returning() {
        let counter = AtomicUsize::new(0);
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..64)
            .map(|_| {
                Box::new(|| {
                    counter.fetch_add(1, Ordering::SeqCst);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        run_tasks(tasks, 8);
        assert_eq!(counter.load(Ordering::SeqCst), 64);
    }

    #[test]
    fn panic_in_pool_task_propagates() {
        let result = std::panic::catch_unwind(|| {
            let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..4)
                .map(|i| {
                    Box::new(move || {
                        if i == 3 {
                            panic!("task boom");
                        }
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            run_tasks(tasks, 4);
        });
        let payload = result.expect_err("panic must propagate");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "task boom");
    }

    #[test]
    fn nested_fanout_runs_inline_without_deadlock() {
        let counter = AtomicUsize::new(0);
        let outer: Vec<Box<dyn FnOnce() + Send + '_>> = (0..4)
            .map(|_| {
                Box::new(|| {
                    // A parallel kernel invoked from within a pool worker
                    // must degrade to inline execution, not deadlock.
                    parallel_rows(16, 4, |range| {
                        counter.fetch_add(range.len(), Ordering::SeqCst);
                    });
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        run_tasks(outer, 4);
        assert_eq!(counter.load(Ordering::SeqCst), 64);
    }
}
