use std::fmt;

/// Errors produced by tensor construction and kernels.
///
/// Every variant carries enough context to diagnose the failing call without
/// a debugger: the offending shapes or indices are embedded in the error.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TensorError {
    /// The data length does not match the product of the requested shape.
    ShapeDataMismatch {
        /// Requested dimensions.
        shape: Vec<usize>,
        /// Number of elements actually supplied.
        data_len: usize,
    },
    /// Two operands have incompatible shapes for the attempted operation.
    ShapeMismatch {
        /// Name of the operation that failed (e.g. `"matmul"`).
        op: &'static str,
        /// Shape of the left-hand operand.
        lhs: Vec<usize>,
        /// Shape of the right-hand operand.
        rhs: Vec<usize>,
    },
    /// The operation requires a tensor of a different rank.
    RankMismatch {
        /// Name of the operation that failed.
        op: &'static str,
        /// Rank the operation expects.
        expected: usize,
        /// Rank that was supplied.
        actual: usize,
    },
    /// An index is out of bounds for the tensor's shape.
    IndexOutOfBounds {
        /// The offending index.
        index: usize,
        /// The bound it violated.
        bound: usize,
    },
    /// The operation is undefined on an empty tensor.
    Empty {
        /// Name of the operation that failed.
        op: &'static str,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeDataMismatch { shape, data_len } => write!(
                f,
                "shape {shape:?} implies {} elements but {data_len} were supplied",
                shape.iter().product::<usize>()
            ),
            TensorError::ShapeMismatch { op, lhs, rhs } => {
                write!(f, "{op}: incompatible shapes {lhs:?} and {rhs:?}")
            }
            TensorError::RankMismatch {
                op,
                expected,
                actual,
            } => write!(f, "{op}: expected rank {expected}, got rank {actual}"),
            TensorError::IndexOutOfBounds { index, bound } => {
                write!(f, "index {index} out of bounds for dimension of size {bound}")
            }
            TensorError::Empty { op } => write!(f, "{op}: undefined on an empty tensor"),
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_shapes() {
        let err = TensorError::ShapeMismatch {
            op: "matmul",
            lhs: vec![2, 3],
            rhs: vec![4, 5],
        };
        let msg = err.to_string();
        assert!(msg.contains("matmul"));
        assert!(msg.contains("[2, 3]"));
        assert!(msg.contains("[4, 5]"));
    }

    #[test]
    fn display_mismatch_counts_elements() {
        let err = TensorError::ShapeDataMismatch {
            shape: vec![2, 3],
            data_len: 5,
        };
        assert!(err.to_string().contains("6 elements"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<TensorError>();
    }
}
