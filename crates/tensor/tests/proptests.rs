//! Property-based tests for the tensor kernels.

use pc_tensor::{ops, Tensor};
use proptest::prelude::*;

/// Strategy: a matrix with dims in [1, 8] and small finite values.
fn matrix(max_dim: usize) -> impl Strategy<Value = Tensor> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-10.0f32..10.0, r * c)
            .prop_map(move |data| Tensor::from_vec(data, &[r, c]).unwrap())
    })
}

fn vector(max_len: usize) -> impl Strategy<Value = Vec<f32>> {
    (1..=max_len).prop_flat_map(|n| proptest::collection::vec(-50.0f32..50.0, n))
}

proptest! {
    #[test]
    fn matmul_identity_left_and_right(a in matrix(8)) {
        let (r, c) = (a.dims()[0], a.dims()[1]);
        let left = ops::matmul(&Tensor::eye(r), &a).unwrap();
        let right = ops::matmul(&a, &Tensor::eye(c)).unwrap();
        prop_assert_eq!(left.data(), a.data());
        prop_assert_eq!(right.data(), a.data());
    }

    #[test]
    fn matmul_distributes_over_addition(
        seed in proptest::collection::vec(-5.0f32..5.0, 48)
    ) {
        // A[2,4], B[4,3], C[4,3]: A·(B+C) == A·B + A·C (within fp tolerance).
        let a = Tensor::from_vec(seed[0..8].to_vec(), &[2, 4]).unwrap();
        let b = Tensor::from_vec(seed[8..20].to_vec(), &[4, 3]).unwrap();
        let c = Tensor::from_vec(seed[20..32].to_vec(), &[4, 3]).unwrap();
        let lhs = ops::matmul(&a, &ops::add(&b, &c).unwrap()).unwrap();
        let rhs = ops::add(&ops::matmul(&a, &b).unwrap(), &ops::matmul(&a, &c).unwrap()).unwrap();
        prop_assert!(lhs.max_abs_diff(&rhs).unwrap() < 1e-3);
    }

    #[test]
    fn matmul_transb_equals_matmul_of_transpose(
        (a, b) in (1usize..=6, 1usize..=6, 1usize..=6).prop_flat_map(|(m, k, n)| {
            (
                proptest::collection::vec(-10.0f32..10.0, m * k)
                    .prop_map(move |d| Tensor::from_vec(d, &[m, k]).unwrap()),
                proptest::collection::vec(-10.0f32..10.0, n * k)
                    .prop_map(move |d| Tensor::from_vec(d, &[n, k]).unwrap()),
            )
        })
    ) {
        let (n, k) = (b.dims()[0], b.dims()[1]);
        let mut bt = Tensor::zeros(&[k, n]);
        for i in 0..n {
            for j in 0..k {
                bt.data_mut()[j * n + i] = b.data()[i * k + j];
            }
        }
        let via_t = ops::matmul_transb(&a, &b).unwrap();
        let direct = ops::matmul(&a, &bt).unwrap();
        prop_assert!(via_t.max_abs_diff(&direct).unwrap() < 1e-4);
    }

    #[test]
    fn softmax_is_distribution(v in vector(64)) {
        let mut x = v;
        ops::softmax_slice(&mut x);
        let sum: f32 = x.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
        prop_assert!(x.iter().all(|&p| (0.0..=1.0 + 1e-6).contains(&p)));
    }

    #[test]
    fn softmax_shift_invariant(v in vector(32), shift in -100.0f32..100.0) {
        let mut a = v.clone();
        let mut b: Vec<f32> = v.iter().map(|x| x + shift).collect();
        ops::softmax_slice(&mut a);
        ops::softmax_slice(&mut b);
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn softmax_preserves_order(v in vector(32)) {
        let mut s = v.clone();
        ops::softmax_slice(&mut s);
        for i in 0..v.len() {
            for j in 0..v.len() {
                if v[i] > v[j] {
                    prop_assert!(s[i] >= s[j]);
                }
            }
        }
    }

    #[test]
    fn rms_norm_output_has_unit_rms(v in vector(64)) {
        prop_assume!(v.iter().any(|&x| x.abs() > 1e-3));
        let mut x = v;
        let w = vec![1.0; x.len()];
        ops::rms_norm_slice(&mut x, &w, 1e-6);
        let ms = x.iter().map(|v| v * v).sum::<f32>() / x.len() as f32;
        prop_assert!((ms - 1.0).abs() < 1e-2);
    }

    #[test]
    fn layer_norm_output_zero_mean(v in vector(64)) {
        let mut x = v;
        let n = x.len();
        let w = vec![1.0; n];
        let b = vec![0.0; n];
        ops::layer_norm_slice(&mut x, &w, &b, 1e-5);
        prop_assert!(ops::mean(&x).abs() < 1e-3);
    }

    #[test]
    fn argmax_is_maximal(v in vector(64)) {
        let i = ops::argmax_slice(&v).unwrap();
        prop_assert!(v.iter().all(|&x| x <= v[i]));
    }

    #[test]
    fn top_k_prefix_is_sorted_and_contains_argmax(v in vector(64), k in 1usize..8) {
        let top = ops::top_k(&v, k);
        prop_assert_eq!(top.len(), k.min(v.len()));
        for w in top.windows(2) {
            prop_assert!(w[0].1 >= w[1].1);
        }
        let am = ops::argmax_slice(&v).unwrap();
        prop_assert_eq!(top[0].0, am);
    }

    #[test]
    fn reshape_round_trip(a in matrix(8)) {
        let dims = a.dims().to_vec();
        let flat = a.clone().reshape(&[a.len()]).unwrap();
        let back = flat.reshape(&dims).unwrap();
        prop_assert_eq!(back, a);
    }

    #[test]
    fn silu_bounded_below(x in -100.0f32..100.0) {
        // silu(x) >= -0.2785 (global minimum ≈ -0.27846)
        prop_assert!(ops::silu_scalar(x) >= -0.279);
    }

    #[test]
    fn gelu_between_zero_and_x_for_positive(x in 0.0f32..50.0) {
        let g = ops::gelu_scalar(x);
        prop_assert!(g >= 0.0 && g <= x + 1e-5);
    }
}
