//! Serialisable tokenizer snapshots.
//!
//! Trained tokenizers must travel with persisted modules (`pc encode`
//! writes states keyed by *this* tokenizer's ids), so both tokenizers
//! expose a serde-friendly snapshot type: convert with `to_saved` /
//! `from_saved`, serialise with any serde format.

use crate::bpe::BpeTokenizer;
use crate::word::WordTokenizer;
use crate::{SpecialToken, Vocab};
use serde::{Deserialize, Serialize};

/// A serialisable [`BpeTokenizer`] snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SavedBpe {
    /// Byte content of every learned token, in internal-id order.
    pub token_bytes: Vec<Vec<u8>>,
    /// Merge rules as `(left, right, rank, merged)` internal ids.
    pub merges: Vec<(u32, u32, u32, u32)>,
}

impl BpeTokenizer {
    /// Snapshot for serialisation.
    pub fn to_saved(&self) -> SavedBpe {
        let mut merges: Vec<(u32, u32, u32, u32)> = self
            .merges_iter()
            .map(|((l, r), (rank, merged))| (l, r, rank, merged))
            .collect();
        merges.sort_by_key(|&(_, _, rank, _)| rank);
        SavedBpe {
            token_bytes: self.token_bytes_vec(),
            merges,
        }
    }

    /// Reconstructs a tokenizer from a snapshot.
    pub fn from_saved(saved: SavedBpe) -> Self {
        BpeTokenizer::from_parts(
            saved.token_bytes,
            saved
                .merges
                .into_iter()
                .map(|(l, r, rank, merged)| ((l, r), (rank, merged)))
                .collect(),
        )
    }
}

/// A serialisable [`WordTokenizer`] snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SavedWord {
    /// Every token's surface form in id order, special tokens included.
    pub tokens: Vec<String>,
}

impl WordTokenizer {
    /// Snapshot for serialisation.
    pub fn to_saved(&self) -> SavedWord {
        SavedWord {
            tokens: (0..self.vocab().len() as u32)
                .map(|id| {
                    self.vocab()
                        .token_of(id)
                        .expect("dense ids")
                        .to_owned()
                })
                .collect(),
        }
    }

    /// Reconstructs a tokenizer from a snapshot.
    ///
    /// The snapshot's leading entries must be the special tokens in
    /// canonical order (any snapshot produced by [`WordTokenizer::to_saved`]
    /// satisfies this); other layouts are rebuilt best-effort by inserting
    /// the remaining words in order.
    pub fn from_saved(saved: SavedWord) -> Self {
        let mut vocab = Vocab::new();
        for token in saved
            .tokens
            .iter()
            .skip(SpecialToken::ALL.len())
        {
            vocab.add(token);
        }
        WordTokenizer::from_vocab(vocab)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tokenizer;

    #[test]
    fn bpe_snapshot_round_trips_exactly() {
        let original =
            BpeTokenizer::train(&["the quick brown fox jumps over the lazy dog"], 320);
        let json = serde_json::to_string(&original.to_saved()).unwrap();
        let restored = BpeTokenizer::from_saved(serde_json::from_str(&json).unwrap());
        for text in ["the quick fox", "unseen zebra text!", ""] {
            assert_eq!(original.encode(text), restored.encode(text), "{text}");
        }
        assert_eq!(original.vocab_size(), restored.vocab_size());
    }

    #[test]
    fn word_snapshot_round_trips_exactly() {
        let mut original = WordTokenizer::train(&["alpha beta gamma delta"]);
        original.add_word("extra");
        let json = serde_json::to_string(&original.to_saved()).unwrap();
        let restored = WordTokenizer::from_saved(serde_json::from_str(&json).unwrap());
        for text in ["alpha extra", "gamma beta unknown", ""] {
            assert_eq!(original.encode(text), restored.encode(text), "{text}");
        }
        assert_eq!(original.vocab_size(), restored.vocab_size());
    }

    #[test]
    fn bpe_snapshot_preserves_merge_order() {
        let original = BpeTokenizer::train(&["aaaa bbbb aaaa bbbb aaaa"], 300);
        let restored = BpeTokenizer::from_saved(original.to_saved());
        // Canonical encodings depend on merge ranks — must match on
        // merge-heavy input.
        let text = "aaaabbbbaaaa";
        assert_eq!(original.encode(text), restored.encode(text));
    }
}
