//! Whitespace/punctuation word tokenizer.
//!
//! The synthetic workload generators in `pc-longbench` size prompts in
//! tokens; a word-level tokenizer keeps that arithmetic transparent (one
//! word ≈ one token). Unknown words map to `<unk>`, so unlike
//! [`crate::BpeTokenizer`] this tokenizer is lossy outside its training
//! vocabulary — tests cover both regimes.

use crate::{SpecialToken, TokenId, Tokenizer, Vocab};

/// A word-level tokenizer with a trained vocabulary.
#[derive(Debug, Clone)]
pub struct WordTokenizer {
    vocab: Vocab,
}

impl WordTokenizer {
    /// Builds a vocabulary from every word that appears in `corpus`.
    pub fn train(corpus: &[&str]) -> Self {
        let mut vocab = Vocab::new();
        for text in corpus {
            for word in split_words(text) {
                vocab.add(word);
            }
        }
        WordTokenizer { vocab }
    }

    /// The underlying vocabulary.
    pub fn vocab(&self) -> &Vocab {
        &self.vocab
    }

    /// Wraps an existing vocabulary (snapshot restoration).
    pub(crate) fn from_vocab(vocab: Vocab) -> Self {
        WordTokenizer { vocab }
    }

    /// Adds a word to the vocabulary after training (the workload
    /// generators register answer strings this way).
    pub fn add_word(&mut self, word: &str) -> TokenId {
        self.vocab.add(word)
    }
}

/// Splits text into word and punctuation chunks. Whitespace separates
/// chunks and is not itself a token.
fn split_words(text: &str) -> impl Iterator<Item = &str> {
    text.split_whitespace().flat_map(|w| {
        // Peel punctuation off both ends as separate tokens.
        let mut parts = Vec::new();
        let mut rest = w;
        while let Some(c) = rest.chars().next() {
            if c.is_ascii_punctuation() {
                parts.push(&rest[..c.len_utf8()]);
                rest = &rest[c.len_utf8()..];
            } else {
                break;
            }
        }
        let mut tail = Vec::new();
        while let Some(c) = rest.chars().last() {
            if c.is_ascii_punctuation() {
                tail.push(&rest[rest.len() - c.len_utf8()..]);
                rest = &rest[..rest.len() - c.len_utf8()];
            } else {
                break;
            }
        }
        if !rest.is_empty() {
            parts.push(rest);
        }
        parts.extend(tail.into_iter().rev());
        parts
    })
}

impl Tokenizer for WordTokenizer {
    fn encode(&self, text: &str) -> Vec<TokenId> {
        split_words(text)
            .map(|w| {
                self.vocab
                    .id_of(w)
                    .unwrap_or_else(|| SpecialToken::Unk.id())
            })
            .collect()
    }

    fn decode(&self, ids: &[TokenId]) -> String {
        let words: Vec<&str> = ids
            .iter()
            .map(|&id| self.vocab.token_of(id).unwrap_or("<unk>"))
            .collect();
        words.join(" ")
    }

    fn vocab_size(&self) -> usize {
        self.vocab.len()
    }

    fn special(&self, token: SpecialToken) -> TokenId {
        token.id()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_on_whitespace_and_punctuation() {
        let words: Vec<&str> = split_words("Hello, world! (yes)").collect();
        assert_eq!(words, vec!["Hello", ",", "world", "!", "(", "yes", ")"]);
    }

    #[test]
    fn known_words_round_trip() {
        let tok = WordTokenizer::train(&["alpha beta gamma"]);
        let ids = tok.encode("beta alpha");
        assert_eq!(tok.decode(&ids), "beta alpha");
    }

    #[test]
    fn unknown_words_become_unk() {
        let tok = WordTokenizer::train(&["alpha"]);
        let ids = tok.encode("alpha omega");
        assert_eq!(ids[1], SpecialToken::Unk.id());
        assert_eq!(tok.decode(&ids), "alpha <unk>");
    }

    #[test]
    fn one_word_one_token() {
        let tok = WordTokenizer::train(&["a b c d e"]);
        assert_eq!(tok.encode("a b c").len(), 3);
    }

    #[test]
    fn add_word_extends_vocab() {
        let mut tok = WordTokenizer::train(&["base"]);
        let before = tok.vocab_size();
        tok.add_word("extension");
        assert_eq!(tok.vocab_size(), before + 1);
        assert_eq!(tok.decode(&tok.encode("extension")), "extension");
    }

    #[test]
    fn empty_text() {
        let tok = WordTokenizer::train(&[]);
        assert!(tok.encode("").is_empty());
        assert!(tok.encode("   \t\n ").is_empty());
    }

    #[test]
    fn punctuation_only_word() {
        let tok = WordTokenizer::train(&["..."]);
        let ids = tok.encode("...");
        assert_eq!(ids.len(), 3); // three '.' tokens
        assert!(ids.iter().all(|&id| id != SpecialToken::Unk.id()));
    }
}
