//! Deterministic trainable tokenizers for the Prompt Cache reproduction.
//!
//! The paper's prototype reuses each LLM's own tokenizer; this reproduction
//! builds two from scratch:
//!
//! * [`BpeTokenizer`] — a byte-level byte-pair-encoding tokenizer. It is
//!   lossless (decode ∘ encode is the identity on any string), trainable on
//!   a corpus, and deterministic, which makes it the default for the engine.
//! * [`WordTokenizer`] — a whitespace/punctuation word tokenizer used by the
//!   synthetic workload generators where a stable token≈word mapping makes
//!   prompt-length arithmetic easy to reason about.
//!
//! Both share a [`Vocab`] that reserves the special tokens Prompt Cache
//! needs: `<s>`, `</s>`, `<unk>` (the paper fills parameter slots with
//! `<unk>` tokens, §3.3), and the chat-template markers `[INST]`/`[/INST]`
//! (§3.2.3).
//!
//! # Example
//!
//! ```
//! use pc_tokenizer::{BpeTokenizer, Tokenizer};
//!
//! let tok = BpeTokenizer::train(&["the cat sat on the mat"], 300);
//! let ids = tok.encode("the cat");
//! assert_eq!(tok.decode(&ids), "the cat");
//! ```

#![warn(missing_docs)]

mod bpe;
mod saved;
mod vocab;
mod word;

pub use bpe::BpeTokenizer;
pub use saved::{SavedBpe, SavedWord};
pub use vocab::{SpecialToken, Vocab};
pub use word::WordTokenizer;

/// Token id type used across the workspace.
pub type TokenId = u32;

/// Common interface over the crate's tokenizers.
pub trait Tokenizer {
    /// Encodes text into token ids (never empty for non-empty input).
    fn encode(&self, text: &str) -> Vec<TokenId>;

    /// Decodes token ids back into text. Unknown ids decode to the `<unk>`
    /// surface form rather than panicking.
    fn decode(&self, ids: &[TokenId]) -> String;

    /// Total vocabulary size (including special tokens).
    fn vocab_size(&self) -> usize;

    /// The id of a special token.
    fn special(&self, token: SpecialToken) -> TokenId;
}
