//! Shared vocabulary with reserved special tokens.

use crate::TokenId;
use std::collections::HashMap;

/// The special tokens every tokenizer in this workspace reserves.
///
/// Ids are assigned in declaration order starting from 0, so `<s>` is always
/// token 0 regardless of training corpus — the engine and the chat-template
/// compiler rely on this stability.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpecialToken {
    /// Beginning-of-sequence, `<s>`.
    Bos,
    /// End-of-sequence, `</s>`.
    Eos,
    /// Unknown token, `<unk>`. Also used to reserve parameter slots during
    /// prompt-module encoding (paper §3.3).
    Unk,
    /// Padding token, `<pad>`.
    Pad,
    /// Llama-style instruction open marker, `[INST]`.
    InstOpen,
    /// Llama-style instruction close marker, `[/INST]`.
    InstClose,
    /// System-prompt open marker, `<<SYS>>`.
    SysOpen,
    /// System-prompt close marker, `<</SYS>>`.
    SysClose,
}

impl SpecialToken {
    /// All special tokens in id order.
    pub const ALL: [SpecialToken; 8] = [
        SpecialToken::Bos,
        SpecialToken::Eos,
        SpecialToken::Unk,
        SpecialToken::Pad,
        SpecialToken::InstOpen,
        SpecialToken::InstClose,
        SpecialToken::SysOpen,
        SpecialToken::SysClose,
    ];

    /// The surface string of this special token.
    pub fn as_str(self) -> &'static str {
        match self {
            SpecialToken::Bos => "<s>",
            SpecialToken::Eos => "</s>",
            SpecialToken::Unk => "<unk>",
            SpecialToken::Pad => "<pad>",
            SpecialToken::InstOpen => "[INST]",
            SpecialToken::InstClose => "[/INST]",
            SpecialToken::SysOpen => "<<SYS>>",
            SpecialToken::SysClose => "<</SYS>>",
        }
    }

    /// The fixed id of this special token.
    pub fn id(self) -> TokenId {
        SpecialToken::ALL
            .iter()
            .position(|&t| t == self)
            .expect("token listed in ALL") as TokenId
    }
}

/// A bidirectional token-string ↔ id map with the special tokens reserved at
/// the front.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Vocab {
    token_to_id: HashMap<String, TokenId>,
    id_to_token: Vec<String>,
}

impl Vocab {
    /// Creates a vocabulary containing only the special tokens.
    pub fn new() -> Self {
        let mut v = Vocab {
            token_to_id: HashMap::new(),
            id_to_token: Vec::new(),
        };
        for t in SpecialToken::ALL {
            let id = v.push(t.as_str().to_owned());
            debug_assert_eq!(id, t.id());
        }
        v
    }

    /// Adds a token if absent and returns its id.
    pub fn add(&mut self, token: &str) -> TokenId {
        if let Some(&id) = self.token_to_id.get(token) {
            return id;
        }
        self.push(token.to_owned())
    }

    fn push(&mut self, token: String) -> TokenId {
        let id = self.id_to_token.len() as TokenId;
        self.token_to_id.insert(token.clone(), id);
        self.id_to_token.push(token);
        id
    }

    /// Looks up a token's id.
    pub fn id_of(&self, token: &str) -> Option<TokenId> {
        self.token_to_id.get(token).copied()
    }

    /// Looks up an id's surface form.
    pub fn token_of(&self, id: TokenId) -> Option<&str> {
        self.id_to_token.get(id as usize).map(String::as_str)
    }

    /// Number of tokens, special tokens included.
    pub fn len(&self) -> usize {
        self.id_to_token.len()
    }

    /// Whether the vocabulary is empty (never true after [`Vocab::new`]).
    pub fn is_empty(&self) -> bool {
        self.id_to_token.is_empty()
    }

    /// Whether `id` designates one of the reserved special tokens.
    pub fn is_special(&self, id: TokenId) -> bool {
        (id as usize) < SpecialToken::ALL.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn special_ids_are_stable() {
        assert_eq!(SpecialToken::Bos.id(), 0);
        assert_eq!(SpecialToken::Eos.id(), 1);
        assert_eq!(SpecialToken::Unk.id(), 2);
        assert_eq!(SpecialToken::InstOpen.id(), 4);
    }

    #[test]
    fn new_vocab_contains_specials() {
        let v = Vocab::new();
        assert_eq!(v.len(), SpecialToken::ALL.len());
        assert_eq!(v.id_of("<unk>"), Some(SpecialToken::Unk.id()));
        assert_eq!(v.token_of(0), Some("<s>"));
    }

    #[test]
    fn add_is_idempotent() {
        let mut v = Vocab::new();
        let a = v.add("hello");
        let b = v.add("hello");
        assert_eq!(a, b);
        assert_eq!(v.len(), SpecialToken::ALL.len() + 1);
    }

    #[test]
    fn round_trip_lookup() {
        let mut v = Vocab::new();
        let id = v.add("world");
        assert_eq!(v.token_of(id), Some("world"));
        assert_eq!(v.id_of("world"), Some(id));
        assert_eq!(v.id_of("missing"), None);
        assert_eq!(v.token_of(9999), None);
    }

    #[test]
    fn is_special_boundary() {
        let mut v = Vocab::new();
        let id = v.add("plain");
        assert!(v.is_special(SpecialToken::SysClose.id()));
        assert!(!v.is_special(id));
    }
}
