//! Byte-level byte-pair-encoding tokenizer.
//!
//! Training starts from the 256 single-byte tokens and greedily merges the
//! most frequent adjacent pair until the target vocabulary size is reached.
//! Ties break lexicographically on the pair's byte content so training is
//! fully deterministic. Because every byte is representable, encoding is
//! lossless: `decode(encode(s)) == s` for any string (a property test pins
//! this down).

use crate::{SpecialToken, TokenId, Tokenizer};
use std::collections::HashMap;

/// A trained byte-level BPE tokenizer.
///
/// See the [crate docs](crate) for an end-to-end example.
#[derive(Debug, Clone)]
pub struct BpeTokenizer {
    /// Byte content of every token, indexed by id minus the special offset.
    token_bytes: Vec<Vec<u8>>,
    /// Merge ranks: (left, right) internal ids → merged internal id, with
    /// rank = merge order (lower merges first during encoding).
    merges: HashMap<(u32, u32), (u32, u32)>, // pair -> (rank, merged_id)
    specials: usize,
}

impl BpeTokenizer {
    /// Trains a tokenizer on `corpus`, growing the vocabulary to at most
    /// `vocab_size` tokens (clamped from below to the 256 byte tokens plus
    /// the special tokens).
    pub fn train(corpus: &[&str], vocab_size: usize) -> Self {
        let specials = SpecialToken::ALL.len();
        let base = specials + 256;
        let target = vocab_size.max(base);

        // Internal ids: 0..256 are raw bytes. Merged tokens extend upward.
        let mut token_bytes: Vec<Vec<u8>> = (0..=255u8).map(|b| vec![b]).collect();
        let mut sequences: Vec<Vec<u32>> = corpus
            .iter()
            .map(|s| s.bytes().map(u32::from).collect())
            .collect();
        let mut merges: HashMap<(u32, u32), (u32, u32)> = HashMap::new();

        let mut rank = 0u32;
        while token_bytes.len() + specials < target {
            // Count adjacent pairs across all sequences.
            let mut counts: HashMap<(u32, u32), usize> = HashMap::new();
            for seq in &sequences {
                for w in seq.windows(2) {
                    *counts.entry((w[0], w[1])).or_insert(0) += 1;
                }
            }
            // Pick the most frequent pair; tie-break on byte content so the
            // result is independent of hash iteration order.
            let best = counts
                .iter()
                .filter(|&(_, &c)| c >= 2)
                .max_by(|(pa, ca), (pb, cb)| {
                    ca.cmp(cb).then_with(|| {
                        let ka = (&token_bytes[pa.0 as usize], &token_bytes[pa.1 as usize]);
                        let kb = (&token_bytes[pb.0 as usize], &token_bytes[pb.1 as usize]);
                        kb.cmp(&ka) // prefer lexicographically smaller pair
                    })
                })
                .map(|(&p, _)| p);
            let Some(pair) = best else { break };

            let merged_id = token_bytes.len() as u32;
            let mut bytes = token_bytes[pair.0 as usize].clone();
            bytes.extend_from_slice(&token_bytes[pair.1 as usize]);
            token_bytes.push(bytes);
            merges.insert(pair, (rank, merged_id));
            rank += 1;

            for seq in &mut sequences {
                apply_merge(seq, pair, merged_id);
            }
        }

        BpeTokenizer {
            token_bytes,
            merges,
            specials,
        }
    }

    /// A merge-free tokenizer (one token per byte). Useful as a fixture.
    pub fn byte_level() -> Self {
        BpeTokenizer::train(&[], 0)
    }

    /// Number of learned merges.
    pub fn num_merges(&self) -> usize {
        self.merges.len()
    }

    /// Iterates merge rules as `((left, right), (rank, merged))` internal
    /// ids — used by the serialisation snapshot.
    pub(crate) fn merges_iter(&self) -> impl Iterator<Item = ((u32, u32), (u32, u32))> + '_ {
        self.merges.iter().map(|(&pair, &val)| (pair, val))
    }

    /// Byte contents of every token in internal-id order.
    pub(crate) fn token_bytes_vec(&self) -> Vec<Vec<u8>> {
        self.token_bytes.clone()
    }

    /// Rebuilds a tokenizer from snapshot parts.
    pub(crate) fn from_parts(
        token_bytes: Vec<Vec<u8>>,
        merges: HashMap<(u32, u32), (u32, u32)>,
    ) -> Self {
        BpeTokenizer {
            token_bytes,
            merges,
            specials: SpecialToken::ALL.len(),
        }
    }

    fn internal_to_public(&self, internal: u32) -> TokenId {
        internal + self.specials as u32
    }

    fn public_to_internal(&self, id: TokenId) -> Option<u32> {
        (id as usize >= self.specials).then(|| id - self.specials as u32)
    }
}

/// Replaces every occurrence of `pair` in `seq` with `merged`.
fn apply_merge(seq: &mut Vec<u32>, pair: (u32, u32), merged: u32) {
    let mut out = Vec::with_capacity(seq.len());
    let mut i = 0;
    while i < seq.len() {
        if i + 1 < seq.len() && seq[i] == pair.0 && seq[i + 1] == pair.1 {
            out.push(merged);
            i += 2;
        } else {
            out.push(seq[i]);
            i += 1;
        }
    }
    *seq = out;
}

impl Tokenizer for BpeTokenizer {
    fn encode(&self, text: &str) -> Vec<TokenId> {
        let mut seq: Vec<u32> = text.bytes().map(u32::from).collect();
        // Repeatedly apply the lowest-rank applicable merge, exactly like
        // training replay, so encoding is canonical.
        loop {
            let mut best: Option<((u32, u32), (u32, u32))> = None;
            for w in seq.windows(2) {
                if let Some(&(rank, merged)) = self.merges.get(&(w[0], w[1])) {
                    if best.is_none_or(|(_, (r, _))| rank < r) {
                        best = Some(((w[0], w[1]), (rank, merged)));
                    }
                }
            }
            match best {
                Some((pair, (_, merged))) => apply_merge(&mut seq, pair, merged),
                None => break,
            }
        }
        seq.into_iter().map(|t| self.internal_to_public(t)).collect()
    }

    fn decode(&self, ids: &[TokenId]) -> String {
        let mut bytes = Vec::new();
        for &id in ids {
            match self.public_to_internal(id) {
                Some(internal) if (internal as usize) < self.token_bytes.len() => {
                    bytes.extend_from_slice(&self.token_bytes[internal as usize]);
                }
                _ => {
                    // Special or out-of-range id: emit its surface form.
                    let s = SpecialToken::ALL
                        .get(id as usize)
                        .map(|t| t.as_str())
                        .unwrap_or("<unk>");
                    bytes.extend_from_slice(s.as_bytes());
                }
            }
        }
        String::from_utf8_lossy(&bytes).into_owned()
    }

    fn vocab_size(&self) -> usize {
        self.specials + self.token_bytes.len()
    }

    fn special(&self, token: SpecialToken) -> TokenId {
        token.id()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_level_round_trip() {
        let tok = BpeTokenizer::byte_level();
        let s = "hello, world! ünïcödé 猫";
        assert_eq!(tok.decode(&tok.encode(s)), s);
    }

    #[test]
    fn training_learns_merges() {
        let tok = BpeTokenizer::train(&["aaaa aaaa aaaa"], 300);
        assert!(tok.num_merges() > 0);
        // "aaaa" should compress below its byte length.
        assert!(tok.encode("aaaa").len() < 4);
    }

    #[test]
    fn trained_round_trip() {
        let corpus = ["the quick brown fox", "the lazy dog", "the the the"];
        let tok = BpeTokenizer::train(&corpus, 300);
        for s in corpus {
            assert_eq!(tok.decode(&tok.encode(s)), s);
        }
        // Unseen text still round-trips (byte fallback).
        assert_eq!(tok.decode(&tok.encode("zebra!")), "zebra!");
    }

    #[test]
    fn training_is_deterministic() {
        let corpus = ["abc abc abd abd xyz xyz"];
        let a = BpeTokenizer::train(&corpus, 280);
        let b = BpeTokenizer::train(&corpus, 280);
        assert_eq!(a.encode("abc abd xyz"), b.encode("abc abd xyz"));
    }

    #[test]
    fn vocab_size_is_respected() {
        let tok = BpeTokenizer::train(&["repeat repeat repeat repeat"], 270);
        assert!(tok.vocab_size() <= 270);
        // And never below base: specials + 256 bytes.
        let tiny = BpeTokenizer::train(&["x"], 1);
        assert_eq!(tiny.vocab_size(), SpecialToken::ALL.len() + 256);
    }

    #[test]
    fn empty_input_encodes_empty() {
        let tok = BpeTokenizer::byte_level();
        assert!(tok.encode("").is_empty());
        assert_eq!(tok.decode(&[]), "");
    }

    #[test]
    fn special_ids_decode_to_surface_form() {
        let tok = BpeTokenizer::byte_level();
        let unk = tok.special(SpecialToken::Unk);
        assert_eq!(tok.decode(&[unk]), "<unk>");
        let bos = tok.special(SpecialToken::Bos);
        assert_eq!(tok.decode(&[bos]), "<s>");
    }

    #[test]
    fn specials_do_not_collide_with_bytes() {
        let tok = BpeTokenizer::byte_level();
        // Byte 0 should encode to a token distinct from every special id.
        let ids = tok.encode("\0");
        assert_eq!(ids.len(), 1);
        assert!(ids[0] as usize >= SpecialToken::ALL.len());
    }

    #[test]
    fn merge_application_is_left_greedy() {
        let mut seq = vec![1, 1, 1];
        apply_merge(&mut seq, (1, 1), 9);
        assert_eq!(seq, vec![9, 1]);
    }
}
