//! Property-based tests for the tokenizers.

use pc_tokenizer::{BpeTokenizer, SpecialToken, Tokenizer, WordTokenizer};
use proptest::prelude::*;

proptest! {
    /// Byte-level BPE must be lossless on arbitrary unicode strings.
    #[test]
    fn bpe_byte_level_round_trip(s in "\\PC{0,64}") {
        let tok = BpeTokenizer::byte_level();
        prop_assert_eq!(tok.decode(&tok.encode(&s)), s);
    }

    /// Trained BPE must stay lossless on arbitrary strings, including text
    /// far from the training corpus.
    #[test]
    fn bpe_trained_round_trip(s in "\\PC{0,64}") {
        let tok = BpeTokenizer::train(
            &["the quick brown fox jumps over the lazy dog", "pack my box"],
            320,
        );
        prop_assert_eq!(tok.decode(&tok.encode(&s)), s);
    }

    /// Encoding never produces ids outside the vocabulary.
    #[test]
    fn bpe_ids_in_range(s in "\\PC{0,64}") {
        let tok = BpeTokenizer::train(&["abc abc abc"], 280);
        for id in tok.encode(&s) {
            prop_assert!((id as usize) < tok.vocab_size());
        }
    }

    /// More merges never lengthen an encoding of in-corpus text.
    #[test]
    fn bpe_compression_is_monotone(reps in 1usize..10) {
        let text = "hello world ".repeat(reps);
        let corpus = [text.as_str()];
        let small = BpeTokenizer::train(&corpus, 270);
        let large = BpeTokenizer::train(&corpus, 320);
        prop_assert!(large.encode(&text).len() <= small.encode(&text).len());
    }

    /// Word tokenizer round-trips whitespace-normalised in-vocab text.
    #[test]
    fn word_round_trip_in_vocab(words in proptest::collection::vec("[a-z]{1,8}", 1..16)) {
        let text = words.join(" ");
        let tok = WordTokenizer::train(&[&text]);
        prop_assert_eq!(tok.decode(&tok.encode(&text)), text);
    }

    /// Word tokenizer emits exactly one token per alphabetic word.
    #[test]
    fn word_token_count(words in proptest::collection::vec("[a-z]{1,8}", 0..16)) {
        let text = words.join(" ");
        let tok = WordTokenizer::train(&[&text]);
        prop_assert_eq!(tok.encode(&text).len(), words.len());
    }

    /// Unknown words never panic and always map to <unk>.
    #[test]
    fn word_unknowns_map_to_unk(w in "[A-Z]{1,8}") {
        let tok = WordTokenizer::train(&["lowercase only corpus"]);
        let ids = tok.encode(&w);
        prop_assert_eq!(ids.len(), 1);
        prop_assert_eq!(ids[0], SpecialToken::Unk.id());
    }
}
