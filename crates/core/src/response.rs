//! Serving results: generated text plus the instrumentation every
//! benchmark reads.

use std::time::Duration;

/// Latency breakdown of one serve call.
///
/// `ttft` is the paper's headline metric — "the time to generate the
/// first token" — and equals `fetch + prefill + first sample`. Decode time
/// is identical between Prompt Cache and the baseline by construction
/// (§5: "Prompt Cache and KV Cache have the same decoding latency after
/// the first token").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Timings {
    /// Time to first token.
    pub ttft: Duration,
    /// Of which: fetching + concatenating cached states.
    pub fetch: Duration,
    /// Of which: computing attention states for uncached tokens.
    pub prefill: Duration,
    /// Time spent decoding the remaining tokens.
    pub decode: Duration,
}

/// Cache-effectiveness counters for one serve call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeStats {
    /// Prompt tokens whose states came from the cache.
    pub cached_tokens: usize,
    /// Prompt tokens computed this call (arguments + new text).
    pub new_tokens: usize,
    /// Bytes of cached states concatenated into the session cache.
    pub bytes_reused: usize,
    /// Whether a scaffold satisfied part of the prompt.
    pub used_scaffold: bool,
}

impl ServeStats {
    /// Fraction of prompt tokens served from cache.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.cached_tokens + self.new_tokens;
        if total == 0 {
            0.0
        } else {
            self.cached_tokens as f64 / total as f64
        }
    }
}

/// The result of serving one prompt.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// Decoded output text.
    pub text: String,
    /// Generated token ids.
    pub tokens: Vec<u32>,
    /// Latency breakdown.
    pub timings: Timings,
    /// Cache counters.
    pub stats: ServeStats,
    /// Non-fatal issues from prompt resolution.
    pub warnings: Vec<String>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_ratio_bounds() {
        let mut s = ServeStats::default();
        assert_eq!(s.hit_ratio(), 0.0);
        s.cached_tokens = 3;
        s.new_tokens = 1;
        assert!((s.hit_ratio() - 0.75).abs() < 1e-12);
        s.new_tokens = 0;
        assert_eq!(s.hit_ratio(), 1.0);
    }
}
