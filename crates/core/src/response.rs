//! Serving results: generated text plus the instrumentation every
//! benchmark reads.

use std::time::Duration;

/// Latency breakdown of one serve call.
///
/// `ttft` is the paper's headline metric — "the time to generate the
/// first token" — measured from serve entry, so it equals
/// `tokenize + fetch + prefill + first sample` (the full per-phase
/// accounting lives in [`TtftBreakdown`]). Decode time is identical
/// between Prompt Cache and the baseline by construction (§5: "Prompt
/// Cache and KV Cache have the same decoding latency after the first
/// token").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Timings {
    /// Time to first token.
    pub ttft: Duration,
    /// Of which: fetching + concatenating cached states.
    pub fetch: Duration,
    /// Of which: computing attention states for uncached tokens.
    pub prefill: Duration,
    /// Time spent decoding the remaining tokens.
    pub decode: Duration,
}

/// Exhaustive per-phase accounting of time-to-first-token, built from
/// cumulative checkpoints on one clock so the phases **sum exactly to
/// `Timings.ttft`** — the paper's Figure-3-style breakdown (attention
/// compute vs. KV retrieval) as first-class serve output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TtftBreakdown {
    /// Prompt parsing, schema resolution, and tokenisation of uncached
    /// text (zero-cache-adjacent work done before any state is touched).
    pub tokenize: Duration,
    /// Fetching cached module states and concatenating them into the
    /// session cache — the memcpy the paper trades attention FLOPs for.
    pub fetch: Duration,
    /// Transformer prefill over the uncached tokens at gap positions.
    pub prefill: Duration,
    /// Sampling the first output token from the prefill logits.
    pub sample: Duration,
}

impl TtftBreakdown {
    /// Sum of all phases — equals the measured TTFT by construction.
    pub fn total(&self) -> Duration {
        self.tokenize + self.fetch + self.prefill + self.sample
    }

    /// `(phase name, duration)` pairs in pipeline order, for reports.
    pub fn phases(&self) -> [(&'static str, Duration); 4] {
        [
            ("tokenize", self.tokenize),
            ("fetch", self.fetch),
            ("prefill", self.prefill),
            ("sample", self.sample),
        ]
    }
}

/// How a serve call ended: to completion, or interrupted cooperatively.
///
/// Interrupted serves still return `Ok(Response)` — with whatever tokens
/// were produced before the interruption landed — so callers always get a
/// typed, partial result instead of an error or a hang. Check this field
/// before treating `tokens` as a finished generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ServeOutcome {
    /// The generation ran to its natural end (EOS or the token budget).
    #[default]
    Complete,
    /// The caller fired the request's [`crate::CancelToken`]; `tokens`
    /// holds everything produced before the cancel was observed.
    Cancelled,
    /// The request's deadline passed mid-serve; `tokens` holds the
    /// partial output produced within the budget.
    DeadlineExceeded,
}

impl ServeOutcome {
    /// Whether the serve ran to completion.
    pub fn is_complete(&self) -> bool {
        matches!(self, ServeOutcome::Complete)
    }

    /// Whether the serve was cut short (cancelled or past deadline).
    pub fn is_interrupted(&self) -> bool {
        !self.is_complete()
    }
}

/// Cache-effectiveness counters for one serve call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeStats {
    /// Prompt tokens whose states came from the cache.
    pub cached_tokens: usize,
    /// Prompt tokens computed this call (arguments + new text).
    pub new_tokens: usize,
    /// Bytes of cached states assembled into the session cache, however
    /// they got there (`bytes_shared + bytes_copied`).
    pub bytes_reused: usize,
    /// Of which: bytes aliased as `Arc`-shared segments — zero memcpy.
    pub bytes_shared: usize,
    /// Of which: bytes memcpy'd into the session's private tail. Zero on
    /// the default zero-copy path; nonzero only with
    /// `EngineConfig::zero_copy = false` (the A/B baseline).
    pub bytes_copied: usize,
    /// Whether a scaffold satisfied part of the prompt.
    pub used_scaffold: bool,
    /// Cached spans that were missing or corrupt at fetch time and were
    /// **recomputed from their tokens** instead (graceful degradation).
    /// Zero on the healthy path; a nonzero value means this serve paid
    /// extra prefill FLOPs but produced byte-identical output.
    pub degraded_spans: usize,
}

impl ServeStats {
    /// Fraction of prompt tokens served from cache.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.cached_tokens + self.new_tokens;
        if total == 0 {
            0.0
        } else {
            self.cached_tokens as f64 / total as f64
        }
    }
}

/// The result of serving one prompt.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// Decoded output text.
    pub text: String,
    /// Generated token ids.
    pub tokens: Vec<u32>,
    /// Latency breakdown.
    pub timings: Timings,
    /// Per-phase TTFT accounting (phases sum to `timings.ttft`).
    pub breakdown: TtftBreakdown,
    /// Cache counters.
    pub stats: ServeStats,
    /// How the serve ended: [`ServeOutcome::Complete`], or an
    /// interruption that made this a partial response.
    pub outcome: ServeOutcome,
    /// Non-fatal issues from prompt resolution.
    pub warnings: Vec<String>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_total_sums_phases() {
        let b = TtftBreakdown {
            tokenize: Duration::from_micros(10),
            fetch: Duration::from_micros(20),
            prefill: Duration::from_micros(30),
            sample: Duration::from_micros(5),
        };
        assert_eq!(b.total(), Duration::from_micros(65));
        assert_eq!(b.phases()[0], ("tokenize", Duration::from_micros(10)));
        assert_eq!(b.phases().iter().map(|(_, d)| *d).sum::<Duration>(), b.total());
    }

    #[test]
    fn hit_ratio_bounds() {
        let mut s = ServeStats::default();
        assert_eq!(s.hit_ratio(), 0.0);
        s.cached_tokens = 3;
        s.new_tokens = 1;
        assert!((s.hit_ratio() - 0.75).abs() < 1e-12);
        s.new_tokens = 0;
        assert_eq!(s.hit_ratio(), 1.0);
    }
}
