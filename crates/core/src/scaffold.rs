//! Scaffolds (paper §3.3): module sets encoded together to share one
//! attention span, removing the cross-module masking approximation "at
//! the cost of additional memory".

use crate::render::SpanTokens;
use crate::{EngineError, Result};
use pc_cache::ModuleKey;
use pc_pml::layout::{ModulePath, SchemaLayout};

/// A registered scaffold: members, their spans, and the store key of the
/// jointly-encoded states.
#[derive(Debug, Clone, PartialEq)]
pub struct Scaffold {
    /// Member module paths (top-level dot paths resolved).
    pub members: Vec<ModulePath>,
    /// Span indices covered, in position order.
    pub span_indices: Vec<usize>,
    /// Store key of the joint encoding.
    pub key: ModuleKey,
}

impl Scaffold {
    /// Validates the member list against the layout and derives the span
    /// set.
    ///
    /// # Errors
    ///
    /// Unknown modules, empty member lists, or members with parameters.
    pub fn build(
        schema: &str,
        modules: &[&str],
        layout: &SchemaLayout,
        span_tokens: &[SpanTokens],
    ) -> Result<Scaffold> {
        if modules.is_empty() {
            return Err(EngineError::InvalidScaffold {
                detail: "scaffold needs at least one module".into(),
            });
        }
        let mut members = Vec::new();
        let mut span_indices = Vec::new();
        for name in modules {
            let path: ModulePath = name.split('.').map(str::to_owned).collect();
            let info = layout
                .module(&path)
                .ok_or_else(|| EngineError::InvalidScaffold {
                    detail: format!("module `{name}` not in schema `{schema}`"),
                })?;
            if !info.params.is_empty() {
                return Err(EngineError::InvalidScaffold {
                    detail: format!("module `{name}` has parameters; scaffolds require plain modules"),
                });
            }
            for (i, span) in layout.spans.iter().enumerate() {
                if span.owner == path {
                    debug_assert!(span_tokens[i].params.is_empty());
                    span_indices.push(i);
                }
            }
            members.push(path);
        }
        span_indices.sort_unstable();
        span_indices.dedup();
        if span_indices.is_empty() {
            return Err(EngineError::InvalidScaffold {
                detail: "scaffold members contain no cacheable content".into(),
            });
        }
        let key = ModuleKey {
            schema: schema.to_owned(),
            path: std::iter::once("<scaffold>".to_owned())
                .chain(modules.iter().map(|s| s.to_string()))
                .collect(),
        };
        Ok(Scaffold {
            members,
            span_indices,
            key,
        })
    }
}
