//! Cooperative cancellation and deadlines for serve calls.
//!
//! A [`CancelToken`] is a cheap, cloneable handle threaded through the
//! engine's prefill/decode loops via [`crate::ServeOptions::cancel`]. The
//! engine polls it at phase boundaries and between decode steps; when the
//! token fires, the serve returns **early with a partial
//! [`crate::Response`]** whose [`crate::ServeOutcome`] says why
//! (`Cancelled` or `DeadlineExceeded`) — never an error, never a hang.
//!
//! Cancellation is *cooperative*: an in-flight forward pass over one
//! token chunk runs to completion, so the abort latency is bounded by one
//! prefill/decode step, not by the whole generation.
//!
//! Tokens compose: [`CancelToken::linked_to`] chains a per-request token
//! to a server-wide shutdown token, and deadlines combine by taking the
//! earliest ([`CancelToken::with_deadline_at`] keeps the minimum).

use crate::response::ServeOutcome;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A cooperative cancellation handle with an optional deadline.
///
/// Cloning shares the underlying flag: cancelling any clone cancels every
/// clone. The default token is inert (never cancelled, no deadline).
///
/// # Example
///
/// ```
/// use prompt_cache::CancelToken;
/// use std::time::Duration;
///
/// let token = CancelToken::new().with_budget(Duration::from_secs(30));
/// assert!(token.interruption().is_none());
/// token.cancel();
/// assert!(token.is_cancelled());
/// ```
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    /// A parent flag (e.g. server shutdown) that also cancels this token.
    linked: Option<Arc<AtomicBool>>,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A fresh, inert token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches an absolute deadline. If the token already carries one,
    /// the **earlier** deadline wins, so budgets from different layers
    /// (caller, server, shutdown) compose safely.
    #[must_use]
    pub fn with_deadline_at(mut self, at: Instant) -> Self {
        self.deadline = Some(self.deadline.map_or(at, |d| d.min(at)));
        self
    }

    /// Attaches a relative budget measured from now. A zero budget means
    /// the deadline has already passed.
    #[must_use]
    pub fn with_budget(self, budget: Duration) -> Self {
        match Instant::now().checked_add(budget) {
            Some(at) => self.with_deadline_at(at),
            // Budget overflows the clock: effectively unbounded.
            None => self,
        }
    }

    /// Links this token to `parent`: if the parent is cancelled (or its
    /// deadline passes), this token reports cancelled too. Used by the
    /// server to chain every request token to one shutdown token.
    #[must_use]
    pub fn linked_to(mut self, parent: &CancelToken) -> Self {
        self.linked = Some(Arc::clone(&parent.flag));
        match parent.deadline {
            Some(d) => self.with_deadline_at(d),
            None => self,
        }
    }

    /// Fires the token. Idempotent; visible to all clones immediately.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether [`CancelToken::cancel`] was called on this token, a clone,
    /// or a linked parent. Does **not** consider the deadline — use
    /// [`CancelToken::interruption`] for the full check.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
            || self
                .linked
                .as_ref()
                .is_some_and(|f| f.load(Ordering::Acquire))
    }

    /// The absolute deadline, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// The check the engine's loops poll: `Some(Cancelled)` if the token
    /// fired, else `Some(DeadlineExceeded)` if the deadline passed, else
    /// `None` (keep going). Explicit cancellation wins over the deadline
    /// so a caller-initiated abort is always reported as `Cancelled`.
    pub fn interruption(&self) -> Option<ServeOutcome> {
        if self.is_cancelled() {
            Some(ServeOutcome::Cancelled)
        } else if self.deadline.is_some_and(|d| Instant::now() >= d) {
            Some(ServeOutcome::DeadlineExceeded)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_token_is_inert() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert!(t.interruption().is_none());
        assert!(t.deadline().is_none());
    }

    #[test]
    fn cancel_propagates_to_clones() {
        let t = CancelToken::new();
        let clone = t.clone();
        t.cancel();
        assert!(clone.is_cancelled());
        assert_eq!(clone.interruption(), Some(ServeOutcome::Cancelled));
    }

    #[test]
    fn zero_budget_is_immediately_exceeded() {
        let t = CancelToken::new().with_budget(Duration::ZERO);
        assert_eq!(t.interruption(), Some(ServeOutcome::DeadlineExceeded));
        assert!(!t.is_cancelled(), "deadline is not cancellation");
    }

    #[test]
    fn earliest_deadline_wins() {
        let near = Instant::now() + Duration::from_secs(1);
        let far = Instant::now() + Duration::from_secs(60);
        let t = CancelToken::new().with_deadline_at(far).with_deadline_at(near);
        assert_eq!(t.deadline(), Some(near));
        let t2 = CancelToken::new().with_deadline_at(near).with_deadline_at(far);
        assert_eq!(t2.deadline(), Some(near));
    }

    #[test]
    fn linked_token_sees_parent_cancel() {
        let parent = CancelToken::new();
        let child = CancelToken::new().linked_to(&parent);
        assert!(!child.is_cancelled());
        parent.cancel();
        assert!(child.is_cancelled());
        // But cancelling the child does not fire the parent.
        let parent2 = CancelToken::new();
        let child2 = CancelToken::new().linked_to(&parent2);
        child2.cancel();
        assert!(!parent2.is_cancelled());
    }

    #[test]
    fn linked_token_inherits_parent_deadline() {
        let parent = CancelToken::new().with_budget(Duration::ZERO);
        let child = CancelToken::new().linked_to(&parent);
        assert_eq!(child.interruption(), Some(ServeOutcome::DeadlineExceeded));
    }

    #[test]
    fn explicit_cancel_wins_over_deadline() {
        let t = CancelToken::new().with_budget(Duration::ZERO);
        t.cancel();
        assert_eq!(t.interruption(), Some(ServeOutcome::Cancelled));
    }
}
