//! Multi-turn conversations over a cached session.
//!
//! A dialogue system built on Prompt Cache enjoys two reuse layers: the
//! schema's modules are shared *across* conversations (system prompts,
//! persona/documents), and within one conversation the session KV cache
//! carries every previous turn, so each turn pays prefill only for the
//! new user text — the "real-time question answering and dialogue
//! systems" deployment the paper closes with (§6).

use crate::{PromptCache, Response, Result, ServeOptions};
use pc_model::{KvSeq, KvView};
use pc_tokenizer::SpecialToken;
use std::time::Instant;

/// One ongoing conversation: the accumulated session KV view plus the
/// transcript. The view's shared segments alias the schema's module
/// states (shared *across* conversations), while every turn's tokens
/// accumulate in the private tail — so N concurrent conversations over
/// one schema hold one physical copy of the modules.
#[derive(Debug)]
pub struct Conversation<'a> {
    engine: &'a PromptCache,
    cache: KvView,
    transcript: Vec<Turn>,
}

/// One completed exchange.
#[derive(Debug, Clone, PartialEq)]
pub struct Turn {
    /// What the user said.
    pub user: String,
    /// What the model answered.
    pub assistant: String,
}

impl PromptCache {
    /// Opens a conversation from an initial PML prompt (imports +
    /// optional first user text). Returns the conversation and the first
    /// response.
    ///
    /// # Errors
    ///
    /// Same contract as [`PromptCache::serve`].
    pub fn conversation(
        &self,
        prompt_pml: &str,
        options: &ServeOptions,
    ) -> Result<(Conversation<'_>, Response)> {
        let served = self.serve(
            &crate::ServeRequest::new(prompt_pml)
                .options(options.clone())
                .session(true),
        )?;
        let mut cache = served.session.expect("session requested");
        let response = served.response;
        // The serve decode loop leaves the final sampled token un-fed (a
        // one-shot response never needs its states); a conversation does —
        // the next turn must attend to the complete reply.
        if let Some(&last) = response.tokens.last() {
            let pos = cache.positions().iter().max().map_or(0, |p| p + 1);
            self.model().prefill(&[last], &[pos], &mut cache)?;
        }
        let mut conversation = Conversation {
            engine: self,
            cache,
            transcript: Vec::new(),
        };
        conversation.transcript.push(Turn {
            user: prompt_pml.to_owned(),
            assistant: response.text.clone(),
        });
        Ok((conversation, response))
    }
}

impl Conversation<'_> {
    /// Sends one user message: its tokens prefill at the next positions
    /// against the whole session history, then the reply decodes into the
    /// session cache. TTFT scales with the *message* length, not the
    /// conversation length.
    ///
    /// # Errors
    ///
    /// Model failures (e.g. the session exhausting `max_position`).
    pub fn say(&mut self, user_text: &str, options: &ServeOptions) -> Result<Response> {
        let started = Instant::now();
        let tokenizer = self.engine.tokenizer();
        let tokens = tokenizer.encode(user_text);
        let tokenize_end = started.elapsed();
        let history_tokens = self.cache.len();
        let start_pos = self.next_position();
        let positions: Vec<usize> = (start_pos..start_pos + tokens.len()).collect();
        let model = self.engine.model();
        let last_logits = if tokens.is_empty() {
            // An empty nudge: re-derive logits from the last cached token
            // is not available here; just continue decoding greedily from
            // a single EOS-avoided pass over the last position. Simplest
            // correct behaviour: reject.
            return Err(crate::EngineError::EmptyPrompt);
        } else {
            model.prefill(&tokens, &positions, &mut self.cache)?
        };
        let prefill = started.elapsed();

        let eos = tokenizer.special(SpecialToken::Eos);
        let mut sampler: Box<dyn pc_model::Sampler> = match options.temperature {
            Some((t, seed)) => Box::new(pc_model::TemperatureSampler::new(t, seed)),
            None => Box::new(pc_model::GreedySampler),
        };
        let mut produced = Vec::new();
        let mut ttft = std::time::Duration::ZERO;
        let mut logits = last_logits;
        let mut next_pos = self.next_position();
        while produced.len() < options.max_new_tokens {
            let token = sampler.sample(&logits);
            produced.push(token);
            if produced.len() == 1 {
                ttft = started.elapsed();
            }
            // Feed every produced token — including the last — so future
            // turns see the complete reply in the session cache.
            logits = model.prefill(&[token], &[next_pos], &mut self.cache)?;
            next_pos += 1;
            if token == eos {
                break;
            }
        }
        let text = tokenizer.decode(&produced);
        self.transcript.push(Turn {
            user: user_text.to_owned(),
            assistant: text.clone(),
        });
        Ok(Response {
            text,
            tokens: produced,
            timings: crate::Timings {
                ttft,
                fetch: std::time::Duration::ZERO,
                prefill,
                decode: started.elapsed() - ttft,
            },
            breakdown: crate::TtftBreakdown {
                tokenize: tokenize_end,
                fetch: std::time::Duration::ZERO,
                prefill: prefill.saturating_sub(tokenize_end),
                sample: ttft.saturating_sub(prefill),
            },
            stats: crate::ServeStats {
                cached_tokens: history_tokens,
                new_tokens: tokens.len(),
                bytes_reused: 0,
                bytes_shared: 0,
                bytes_copied: 0,
                used_scaffold: false,
                degraded_spans: 0,
            },
            outcome: crate::ServeOutcome::Complete,
            warnings: Vec::new(),
        })
    }

    /// Tokens currently held in the session cache (history + replies).
    pub fn session_tokens(&self) -> usize {
        self.cache.len()
    }

    /// The session KV view: shared module segments + this conversation's
    /// private tail. Feed a set of these to [`pc_model::view::physical_bytes`]
    /// to see cross-conversation sharing.
    pub fn session_view(&self) -> &KvView {
        &self.cache
    }

    /// The conversation transcript, oldest first.
    pub fn transcript(&self) -> &[Turn] {
        &self.transcript
    }

    /// Number of completed exchanges (the opening prompt counts as one).
    pub fn turns(&self) -> usize {
        self.transcript.len()
    }

    fn next_position(&self) -> usize {
        self.cache.positions().iter().max().map_or(0, |p| p + 1)
    }
}
