//! Batch serving and shared-module memory accounting (paper §3.4,
//! "Memory optimization in batch inference").
//!
//! When a batch of prompts derives from the same schema, every prompt that
//! imports the same module shares the module's states by pointer (the
//! store hands out `Arc`s) rather than duplicating them — the
//! paged-attention-style sharing the paper describes. [`BatchSharing`]
//! quantifies the saving: the §5.4 worked example (100 requests × 2K
//! tokens sharing a 1K module → 50% footprint reduction) is a unit test.

use crate::{PromptCache, Response, Result, ServeOptions};
use pc_pml::resolve::ResolvedPart;

/// Memory-sharing accounting for one batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BatchSharing {
    /// Prompt-token count summed over the batch (what a naive KV cache
    /// would hold).
    pub naive_tokens: usize,
    /// Tokens actually held: unique cached tokens + every prompt's own
    /// uncached tokens.
    pub shared_tokens: usize,
}

impl BatchSharing {
    /// Fraction of KV memory saved by sharing, in `[0, 1)`.
    pub fn savings(&self) -> f64 {
        if self.naive_tokens == 0 {
            0.0
        } else {
            1.0 - self.shared_tokens as f64 / self.naive_tokens as f64
        }
    }
}

/// Result of serving a batch.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// Per-prompt responses, in input order.
    pub responses: Vec<Response>,
    /// Sharing accounting.
    pub sharing: BatchSharing,
}

impl PromptCache {
    /// Serves a batch of prompts from the same (or different) schemas,
    /// reporting the KV memory the shared module states saved.
    ///
    /// # Errors
    ///
    /// Fails on the first prompt that fails; earlier responses are
    /// dropped (batch serving is all-or-nothing).
    pub fn serve_batch(
        &self,
        prompts: &[&str],
        options: &ServeOptions,
    ) -> Result<BatchReport> {
        let mut responses = Vec::with_capacity(prompts.len());
        let mut sharing = BatchSharing::default();
        let mut seen_spans: std::collections::HashSet<(String, usize)> =
            std::collections::HashSet::new();

        for prompt_pml in prompts {
            // Account sharing from the resolution before serving.
            let prompt = pc_pml::parse_prompt(prompt_pml)?;
            {
                let resolved = self.resolve_for(&prompt)?;
                for part in &resolved.parts {
                    match part {
                        ResolvedPart::Cached {
                            span_index, len, ..
                        } => {
                            sharing.naive_tokens += len;
                            if seen_spans.insert((prompt.schema.clone(), *span_index)) {
                                sharing.shared_tokens += len;
                            }
                        }
                        ResolvedPart::NewText { len, .. } => {
                            sharing.naive_tokens += len;
                            sharing.shared_tokens += len;
                        }
                        ResolvedPart::Argument { actual_len, .. } => {
                            sharing.naive_tokens += actual_len;
                            sharing.shared_tokens += actual_len;
                        }
                    }
                }
            }
            responses.push(
                self.serve(
                    &crate::ServeRequest::new(*prompt_pml).options(options.clone()),
                )?
                .into_response(),
            );
        }
        Ok(BatchReport { responses, sharing })
    }

}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn savings_formula() {
        // Paper §5.4: 100 requests, 2K tokens each, sharing a 1K module →
        // 50% reduction.
        let sharing = BatchSharing {
            naive_tokens: 100 * 2000,
            shared_tokens: 1000 + 100 * 1000,
        };
        assert!((sharing.savings() - 0.495).abs() < 0.01);
    }

    #[test]
    fn empty_batch_saves_nothing() {
        assert_eq!(BatchSharing::default().savings(), 0.0);
    }
}
