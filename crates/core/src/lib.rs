//! Prompt Cache: modular cross-request attention-state reuse.
//!
//! This crate is the paper's primary contribution assembled over the
//! substrates: it owns schema registration (parse → chat-template compile →
//! position layout → **prompt module encoding**, §3.3), and cached
//! inference (resolve → fetch → **buffered concat** → compute uncached
//! tokens at gap positions → decode, §3.4), plus the baseline KV-cache
//! path that shares the identical pipeline except for attention-state
//! reuse — exactly the comparison the paper's evaluation makes.
//!
//! # Quickstart
//!
//! ```
//! use prompt_cache::{EngineConfig, PromptCache};
//! use pc_model::{Model, ModelConfig};
//! use pc_tokenizer::BpeTokenizer;
//!
//! let model = Model::new(ModelConfig::llama_tiny(300), 0);
//! let tokenizer = BpeTokenizer::train(&["a tiny corpus of words"], 280);
//! let engine = PromptCache::new(model, tokenizer, EngineConfig::default());
//!
//! engine.register_schema(r#"
//!   <schema name="cities">
//!     <module name="miami">Miami: beaches, surf, sun.</module>
//!   </schema>"#).unwrap();
//!
//! use prompt_cache::ServeRequest;
//! let served = engine
//!     .serve(
//!         &ServeRequest::new(r#"<prompt schema="cities"><miami/>Where should I surf?</prompt>"#)
//!             .max_new_tokens(4),
//!     )
//!     .unwrap();
//! assert!(served.stats.cached_tokens > 0);
//! ```

#![warn(missing_docs)]

mod batch;
mod cancel;
mod conversation;
mod engine;
mod error;
mod render;
mod request;
mod response;
mod scaffold;
mod sched;

pub use batch::{BatchReport, BatchSharing};
pub use cancel::CancelToken;
pub use conversation::{Conversation, Turn};
pub use engine::{EngineConfig, PromptCache, RegisterOptions, ServeOptions};
pub use request::{ServeRequest, Served};
pub use sched::{BatchConfig, BatchGroupInfo, BatchScheduler, BatchSeqInfo, BatchSnapshot};
pub use pc_tensor::Parallelism;
pub use pc_telemetry::Telemetry;
pub use error::EngineError;
pub use response::{Response, ServeOutcome, ServeStats, Timings, TtftBreakdown};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, EngineError>;
