//! The Prompt Cache engine: schema registration, cached inference, and the
//! baseline KV-cache path.

use crate::cancel::CancelToken;
use crate::render::{render_plain, span_tokens, uncached_chunk, SpanTokens};
use crate::request::{ServeRequest, Served};
use crate::response::{Response, ServeOutcome, ServeStats, Timings, TtftBreakdown};
use crate::scaffold::Scaffold;
use crate::{EngineError, Result};
use parking_lot::RwLock;
use pc_cache::{
    rotate_range, FetchFaultInjector, ModuleKey, ModuleStore, RotatedKey, RotatedViewCache,
    StoreConfig, StoreStats, Tier,
};
use pc_model::{
    is_shift_invariant, GreedySampler, KvCache, KvSeq, KvView, Model, Sampler, TemperatureSampler,
    TokenId,
};
use pc_pml::layout::{ModulePath, SchemaLayout};
use pc_pml::resolve::{resolve_prompt, resolve_prompt_packed, ResolvedPart, ResolvedPrompt};
use pc_pml::template::ChatTemplate;
use pc_pml::{parse_prompt, parse_schema, Schema};
use pc_telemetry::Telemetry;
use pc_tensor::par::run_tasks;
use pc_tensor::Parallelism;
use pc_tokenizer::{SpecialToken, Tokenizer};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Engine configuration.
///
/// Construct with [`EngineConfig::default`] and chain setters — the
/// struct is `#[non_exhaustive]`, so new knobs are non-breaking:
///
/// ```
/// use prompt_cache::EngineConfig;
/// let config = EngineConfig::default().zero_copy(false).prefetch_union_siblings(true);
/// ```
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct EngineConfig {
    /// Module-store configuration (device-tier capacity, eviction policy).
    pub store: StoreConfig,
    /// Chat template for `<system>/<user>/<assistant>` tags.
    pub template: ChatTemplate,
    /// Default memory tier modules are fetched into at serve time.
    /// `None` means host inference (no device copies) — override per call
    /// with [`ServeOptions::tier`].
    pub tier: Option<Tier>,
    /// Thread count for concurrent module encoding at registration (each
    /// owner module is an independent encode, so they fan out across the
    /// shared pool). Defaults to [`Parallelism::from_env`], which honours
    /// the `PC_THREADS` environment variable. Stored span states are
    /// byte-identical at any thread count.
    pub parallelism: Parallelism,
    /// After serving a prompt that imported a union member, prefetch the
    /// sibling members into the device tier (§3.2.3's union prefetching):
    /// the next request is likely to pick a different member at the same
    /// positions.
    pub prefetch_union_siblings: bool,
    /// Telemetry collector threaded through the engine, module store, and
    /// model: serve phases become spans, cache activity becomes
    /// `pc_cache_*` counters/gauges, sampled forward passes record
    /// per-layer attention/MLP histograms. Defaults to
    /// [`Telemetry::disabled`], where every recording call is a single
    /// branch — serve results are identical with telemetry on or off.
    pub telemetry: Telemetry,
    /// Assemble session caches as zero-copy [`KvView`]s over the store's
    /// shared module states (default) instead of memcpying every cached
    /// span into a per-request buffer. Outputs are bit-identical either
    /// way — the copying path is kept purely for A/B measurement
    /// (`bytes_copied` vs `bytes_shared` in [`ServeStats`]).
    pub zero_copy: bool,
    /// When a cached span is missing at serve time (evicted, never
    /// persisted, or dropped by checksum verification), **recompute it
    /// from its tokens** instead of failing the request. The recompute
    /// re-encodes the span's whole owner module exactly as registration
    /// did, so the degraded serve's output is byte-identical to the
    /// healthy path; the fresh states are re-inserted (self-healing) and
    /// the serve is counted in `pc_degraded_serves_total`. Disable to get
    /// the old hard-error ([`EngineError::MissingModuleStates`]) instead.
    pub degrade_on_miss: bool,
    /// Store modules **position-independently** (default on): each module
    /// is encoded once at canonical positions starting from 0 and the
    /// placement-dependent RoPE rotation is applied at read time, so one
    /// store entry serves every placement of the module. Prompts resolve
    /// with *packed* placement (union members drop the group's max-length
    /// padding, RAG chunks land in retrieval order). Placements that match
    /// the canonical positions take the exact legacy read path; shifted
    /// placements rotate keys on read and count as `relocations` in the
    /// cache analytics. Only effective for shift-invariant position
    /// schemes (RoPE, ALiBi); learned-position models fall back to
    /// baked-position storage automatically. Turn off for the A/B
    /// baseline, where each module's states are only valid at the exact
    /// positions they were encoded at.
    pub deferred_rope: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            store: StoreConfig::default(),
            template: ChatTemplate::default(),
            tier: None,
            parallelism: Parallelism::default(),
            prefetch_union_siblings: false,
            telemetry: Telemetry::disabled(),
            zero_copy: true,
            degrade_on_miss: true,
            deferred_rope: true,
        }
    }
}

impl EngineConfig {
    /// Sets the module-store configuration.
    #[must_use]
    pub fn store(mut self, store: StoreConfig) -> Self {
        self.store = store;
        self
    }

    /// Sets the chat template.
    #[must_use]
    pub fn template(mut self, template: ChatTemplate) -> Self {
        self.template = template;
        self
    }

    /// Sets the default serve-time memory tier.
    #[must_use]
    pub fn tier(mut self, tier: Tier) -> Self {
        self.tier = Some(tier);
        self
    }

    /// Sets the parallelism configuration.
    #[must_use]
    pub fn parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Enables or disables union-sibling prefetching (§3.2.3).
    #[must_use]
    pub fn prefetch_union_siblings(mut self, on: bool) -> Self {
        self.prefetch_union_siblings = on;
        self
    }

    /// Attaches a telemetry collector.
    #[must_use]
    pub fn telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Enables or disables zero-copy session views.
    #[must_use]
    pub fn zero_copy(mut self, on: bool) -> Self {
        self.zero_copy = on;
        self
    }

    /// Enables or disables graceful degradation on missing module states.
    #[must_use]
    pub fn degrade_on_miss(mut self, on: bool) -> Self {
        self.degrade_on_miss = on;
        self
    }

    /// Enables or disables position-independent module storage (deferred
    /// RoPE with rotate-on-read).
    #[must_use]
    pub fn deferred_rope(mut self, on: bool) -> Self {
        self.deferred_rope = on;
        self
    }
}

/// Per-call serving options.
///
/// Construct with [`ServeOptions::default`] and chain setters — the
/// struct is `#[non_exhaustive]`, so new knobs are non-breaking:
///
/// ```
/// use prompt_cache::ServeOptions;
/// let options = ServeOptions::default().max_new_tokens(8).use_scaffolds(false);
/// ```
///
/// Most callers never touch `ServeOptions` directly: the
/// [`crate::ServeRequest`] builder exposes the same setters and carries
/// the options into [`PromptCache::serve`].
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct ServeOptions {
    /// Maximum tokens to generate.
    pub max_new_tokens: usize,
    /// Memory tier override for this call.
    pub tier: Option<Tier>,
    /// Honour registered scaffolds (§3.3) when all members are imported.
    pub use_scaffolds: bool,
    /// Sampling temperature; `None` selects deterministic greedy decoding
    /// (the paper's accuracy-evaluation setting).
    pub temperature: Option<(f32, u64)>,
    /// Serve-time budget. When set, the engine stops cooperatively once
    /// the budget elapses — measured from serve entry when calling the
    /// engine directly, or from **submission** when going through
    /// `pc-server` (which converts it to an absolute deadline so queue
    /// wait counts against it). The partial output is returned with
    /// [`ServeOutcome::DeadlineExceeded`]; a zero budget yields an empty
    /// response immediately.
    pub deadline: Option<Duration>,
    /// Cooperative cancellation handle. Keep a clone and call
    /// [`CancelToken::cancel`] to abort mid-generation; the serve returns
    /// its partial output with [`ServeOutcome::Cancelled`] within one
    /// decode step. `None` means not cancellable.
    pub cancel: Option<CancelToken>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            max_new_tokens: 16,
            tier: None,
            use_scaffolds: true,
            temperature: None,
            deadline: None,
            cancel: None,
        }
    }
}

impl ServeOptions {
    /// Sets the maximum number of tokens to generate.
    #[must_use]
    pub fn max_new_tokens(mut self, n: usize) -> Self {
        self.max_new_tokens = n;
        self
    }

    /// Sets the memory-tier override for this call.
    #[must_use]
    pub fn tier(mut self, tier: Tier) -> Self {
        self.tier = Some(tier);
        self
    }

    /// Enables or disables scaffold substitution (§3.3).
    #[must_use]
    pub fn use_scaffolds(mut self, on: bool) -> Self {
        self.use_scaffolds = on;
        self
    }

    /// Selects seeded temperature sampling instead of greedy decoding.
    #[must_use]
    pub fn temperature(mut self, temperature: f32, seed: u64) -> Self {
        self.temperature = Some((temperature, seed));
        self
    }

    /// Sets the serve-time budget.
    #[must_use]
    pub fn deadline(mut self, budget: Duration) -> Self {
        self.deadline = Some(budget);
        self
    }

    /// Attaches a cooperative cancellation handle.
    #[must_use]
    pub fn cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }
}

/// Options for [`PromptCache::register_schema_with`].
///
/// The default (`warm = true`) is full registration: every prompt
/// module is encoded into the store at registration time (paper §3.3).
/// A *cold* registration (`warm = false`) records the schema layout and
/// span tokens but encodes nothing — serving then re-encodes missing
/// modules on demand through the degrade-on-miss path, byte-identically.
/// The sharded fleet uses cold registration on non-owner workers so
/// every worker can serve every schema while only owners pay the
/// encode + memory cost up front.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct RegisterOptions {
    /// Encode all modules at registration (`true`, the default) or
    /// register cold and rely on degrade-on-miss re-encode (`false`).
    pub warm: bool,
}

impl Default for RegisterOptions {
    fn default() -> Self {
        RegisterOptions { warm: true }
    }
}

impl RegisterOptions {
    /// Default options: warm registration.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets whether modules are encoded at registration time.
    #[must_use]
    pub fn warm(mut self, warm: bool) -> Self {
        self.warm = warm;
        self
    }
}

/// Summary returned by [`PromptCache::register_schema`].
#[derive(Debug, Clone, PartialEq)]
pub struct SchemaInfo {
    /// Schema name.
    pub name: String,
    /// Number of cacheable spans encoded.
    pub spans: usize,
    /// Total tokens encoded into the cache.
    pub cached_tokens: usize,
    /// Advisory lints (`pc_pml::lint`): structural anti-patterns that
    /// will cache poorly. Never fatal.
    pub lints: Vec<String>,
}

/// Outcome of [`PromptCache::begin_serve`]: either the serve finished
/// before decode could start (interrupted), or it is positioned at its
/// first sample and ready to decode — solo or inside a batch.
pub(crate) enum Prepared {
    /// Finished without decoding (interrupted before the first sample).
    Done(Box<Response>, Box<KvView>),
    /// Prefilled and ready for decode.
    Ready(Box<PendingDecode>),
}

/// A serve that has completed prefill and is waiting to decode: the unit
/// the batch scheduler admits. Owns everything the decode loop and
/// [`PromptCache::finalize_serve`] need — the session view, the first
/// logits, the sampler, interruption state, and the accounting captured
/// during prepare.
pub(crate) struct PendingDecode {
    /// Session view: shared cached segments plus a private tail that
    /// prefill/decode append into.
    pub(crate) view: KvView,
    /// Logits from the last prefill step (consumed by the first sample).
    pub(crate) logits: Vec<f32>,
    /// Serve start, for TTFT/decode timing.
    pub(crate) started: Instant,
    tokenize_end: Duration,
    fetch_end: Duration,
    /// Checkpoint after prefill — also the pinned TTFT when no token is
    /// ever sampled.
    pub(crate) prefill_end: Duration,
    /// Effective interruption token (caller's token ∩ per-call budget).
    pub(crate) cancel: CancelToken,
    /// End-of-sequence token id.
    pub(crate) eos: TokenId,
    /// Sampler seeded from the request options.
    pub(crate) sampler: Box<dyn Sampler + Send>,
    /// Decode budget.
    pub(crate) max_new_tokens: usize,
    /// Position for the next generated token.
    pub(crate) next_pos: usize,
    cached_rows: usize,
    new_tokens: usize,
    bytes_reused: usize,
    bytes_shared: usize,
    bytes_copied: usize,
    used_scaffold: bool,
    degraded: usize,
    warnings: Vec<String>,
    /// Union-sibling span keys to prefetch at finalize (outside the
    /// timed region).
    prefetch_keys: Vec<ModuleKey>,
}

struct RegisteredSchema {
    layout: SchemaLayout,
    /// Precomputed token views of every span (index-aligned with
    /// `layout.spans`), so serving never re-tokenises cached text. With
    /// deferred RoPE in effect the positions are **canonical** (normalised
    /// so each owner's first span starts at 0), which is what the owner
    /// encodes — and re-encodes, on degrade — at.
    span_tokens: Vec<SpanTokens>,
    scaffolds: Vec<Scaffold>,
    /// `module → indices of the spans it owns`, prebuilt at registration
    /// so argument resolution at serve time is a map lookup instead of an
    /// O(spans) scan per argument.
    owner_spans: HashMap<ModulePath, Vec<usize>>,
    /// Canonical start position of every span (index-aligned with
    /// `layout.spans`): the position its first stored row was encoded at.
    /// A serve-time placement at `p` reads the span's keys through a
    /// rotation shift of `p − canonical_starts[i]`. Equal to the layout
    /// start when deferred RoPE is not in effect (shift always 0).
    canonical_starts: Vec<usize>,
    /// Whether this schema's spans were encoded position-independently
    /// (engine knob on *and* the model's position scheme shift-invariant).
    deferred: bool,
}

/// Pre-resolved engine telemetry handles (the `StoreMetrics` pattern):
/// one registry lookup at construction, lock-free atomics per serve.
struct EngineMetrics {
    kv_bytes_shared: pc_telemetry::Counter,
    kv_bytes_copied: pc_telemetry::Counter,
    degraded_serves: pc_telemetry::Counter,
    degraded_spans: pc_telemetry::Counter,
}

impl EngineMetrics {
    fn resolve(telemetry: &Telemetry) -> Self {
        EngineMetrics {
            kv_bytes_shared: telemetry.counter("pc_kv_bytes_shared_total"),
            kv_bytes_copied: telemetry.counter("pc_kv_bytes_copied_total"),
            degraded_serves: telemetry.counter("pc_degraded_serves_total"),
            degraded_spans: telemetry.counter("pc_degraded_spans_total"),
        }
    }
}

/// The Prompt Cache engine. See the [crate docs](crate) for a quickstart.
///
/// The engine is `Sync`: schemas register under a write lock, serving
/// takes read locks, and the module store is internally synchronised.
pub struct PromptCache {
    model: Arc<Model>,
    tokenizer: Arc<dyn Tokenizer + Send + Sync>,
    config: EngineConfig,
    store: ModuleStore,
    schemas: RwLock<HashMap<String, RegisteredSchema>>,
    metrics: EngineMetrics,
    /// Materialised rotated views of hot deferred-RoPE placements (see
    /// [`pc_cache::RotatedViewCache`]): bounded, invalidated whenever a
    /// module's canonical entry is replaced — including disk-tier
    /// promotions, whose dequantized values may differ from the views'
    /// sources (hence the `Arc`: the store's promotion hook holds one).
    rotated: Arc<RotatedViewCache>,
}

impl PromptCache {
    /// Creates an engine around a model and tokenizer.
    pub fn new(
        model: Model,
        tokenizer: impl Tokenizer + Send + Sync + 'static,
        config: EngineConfig,
    ) -> Self {
        let store = ModuleStore::with_telemetry(config.store.clone(), &config.telemetry);
        let model = model.with_telemetry(config.telemetry.clone());
        let metrics = EngineMetrics::resolve(&config.telemetry);
        let rotated = Arc::new(RotatedViewCache::new(64, 2));
        // A module promoted from disk was dequantized (fp16/int8 cold
        // storage) or at minimum re-decoded; any cached rotated views of
        // its previous in-memory states must not survive the swap.
        let hook_views = Arc::clone(&rotated);
        store.set_promotion_hook(Some(Arc::new(move |key| {
            hook_views.invalidate_module(key);
        })));
        PromptCache {
            model: Arc::new(model),
            tokenizer: Arc::new(tokenizer),
            config,
            store,
            schemas: RwLock::new(HashMap::new()),
            metrics,
            rotated,
        }
    }

    /// Whether modules of this engine are stored position-independently:
    /// the [`EngineConfig::deferred_rope`] knob is on **and** the model's
    /// position scheme is shift-invariant (RoPE/ALiBi — learned positions
    /// cannot be relocated and fall back to baked-position storage).
    pub fn deferred_rope_effective(&self) -> bool {
        self.config.deferred_rope
            && is_shift_invariant(self.model.config().position_scheme())
    }

    /// Number of materialised rotated placement views currently cached.
    pub fn rotated_views(&self) -> usize {
        self.rotated.len()
    }

    /// The underlying model.
    pub fn model(&self) -> &Model {
        &self.model
    }

    /// The engine's telemetry handle (disabled unless one was supplied in
    /// [`EngineConfig::telemetry`]).
    pub fn telemetry(&self) -> &Telemetry {
        &self.config.telemetry
    }

    /// The engine tokenizer.
    pub fn tokenizer(&self) -> &(dyn Tokenizer + Send + Sync) {
        self.tokenizer.as_ref()
    }

    /// Module-store counters (hits, copies, evictions).
    pub fn store_stats(&self) -> StoreStats {
        self.store.stats()
    }

    /// Direct access to the engine's module store — used by the fault
    /// harness (corrupting entries, injecting fetch faults) and by tools
    /// that inspect cache contents.
    pub fn store(&self) -> &ModuleStore {
        &self.store
    }

    /// Installs (or clears, with `None`) a deterministic fetch-fault
    /// injector on the module store. See
    /// [`pc_cache::FetchFaultInjector`]; injected misses and corruptions
    /// exercise the engine's graceful-degradation path.
    pub fn set_fetch_fault_injector(&self, injector: Option<Arc<dyn FetchFaultInjector>>) {
        self.store.set_fault_injector(injector);
    }

    /// Total bytes of encoded modules held in host memory.
    pub fn cached_bytes(&self) -> usize {
        self.store.host_bytes()
    }

    fn count(&self, text: &str) -> usize {
        self.tokenizer.encode(text).len()
    }

    /// Registers a schema from PML source: parses it, compiles chat tags,
    /// lays out positions, and **encodes every prompt module** into the
    /// store (paper §3.3). Idempotent re-registration is an error; call
    /// [`PromptCache::unregister_schema`] first to refresh.
    ///
    /// # Errors
    ///
    /// PML errors, duplicate registration, or model failures during
    /// encoding.
    pub fn register_schema(&self, pml: &str) -> Result<SchemaInfo> {
        let schema = parse_schema(pml)?;
        self.register_schema_ast(&schema)
    }

    /// [`PromptCache::register_schema`] with explicit [`RegisterOptions`]
    /// — in particular `warm(false)` for a cold registration that skips
    /// module encoding (see [`RegisterOptions`]).
    ///
    /// # Errors
    ///
    /// Same contract as [`PromptCache::register_schema`].
    pub fn register_schema_with(
        &self,
        pml: &str,
        opts: &RegisterOptions,
    ) -> Result<SchemaInfo> {
        let schema = parse_schema(pml)?;
        self.register_schema_ast_with(&schema, opts)
    }

    /// [`PromptCache::register_schema`] for an already-parsed AST (e.g.
    /// one built by `pc_pml::program::PromptProgram`).
    ///
    /// # Errors
    ///
    /// Same contract as [`PromptCache::register_schema`].
    pub fn register_schema_ast(&self, schema: &Schema) -> Result<SchemaInfo> {
        self.register_schema_ast_with(schema, &RegisterOptions::default())
    }

    /// [`PromptCache::register_schema_ast`] with explicit
    /// [`RegisterOptions`].
    ///
    /// # Errors
    ///
    /// Same contract as [`PromptCache::register_schema`].
    pub fn register_schema_ast_with(
        &self,
        schema: &Schema,
        opts: &RegisterOptions,
    ) -> Result<SchemaInfo> {
        if self.schemas.read().contains_key(&schema.name) {
            return Err(EngineError::SchemaAlreadyRegistered {
                name: schema.name.clone(),
            });
        }
        let counter = |t: &str| self.count(t);
        let layout = SchemaLayout::build(schema, self.config.template, &counter);

        // Tokenise every span once.
        let mut tokens: Vec<SpanTokens> = layout
            .spans
            .iter()
            .map(|s| span_tokens(s, self.tokenizer.as_ref()))
            .collect();

        // Encode per owner so a module split by nested children is encoded
        // as one attention unit (its spans share an attention span), while
        // distinct modules stay independent (the masking of §3.3). The
        // owner → span-indices map is kept on the registered schema so the
        // serve path resolves arguments by lookup, not by scanning spans.
        let mut owners: Vec<ModulePath> = Vec::new();
        let mut owner_spans: HashMap<ModulePath, Vec<usize>> = HashMap::new();
        for (i, span) in layout.spans.iter().enumerate() {
            let ids = owner_spans.entry(span.owner.clone()).or_default();
            if ids.is_empty() {
                owners.push(span.owner.clone());
            }
            ids.push(i);
        }

        // Position-independent storage (deferred RoPE): normalise each
        // owner's positions so its first span starts at 0 — the canonical
        // placement every serve-time shift is computed against. Gaps
        // *between* an owner's spans (parameter slots, nested children)
        // are preserved, so the owner still encodes as one attention unit
        // with its internal offsets intact. One store entry per unique
        // module content, wherever prompts later place it.
        let deferred = self.deferred_rope_effective();
        let mut canonical_starts: Vec<usize> =
            layout.spans.iter().map(|s| s.start).collect();
        if deferred {
            for ids in owner_spans.values() {
                let base = ids
                    .iter()
                    .map(|&i| layout.spans[i].start)
                    .min()
                    .unwrap_or(0);
                for &i in ids {
                    let c0 = layout.spans[i].start - base;
                    canonical_starts[i] = c0;
                    tokens[i].positions = (c0..c0 + tokens[i].tokens.len()).collect();
                }
            }
        }

        // Spans already present in the store (e.g. loaded from disk via
        // [`PromptCache::load_modules`]) are reused instead of re-encoded
        // — precomputation survives process restarts. A cold registration
        // (`warm == false`) encodes no owners at all: serving re-encodes
        // missing modules on demand via degrade-on-miss.
        let mut preloaded_tokens = 0usize;
        let mut preloaded_spans = 0usize;
        let owners: Vec<ModulePath> = if opts.warm { owners } else { Vec::new() };
        let owners: Vec<ModulePath> = owners
            .into_iter()
            .filter(|owner| {
                let span_ids = &owner_spans[owner];
                // Reuse only states that demonstrably belong to *this*
                // schema revision: the token count and position layout of
                // every span must match what the current layout expects —
                // a persisted module from an edited schema re-encodes
                // instead of silently serving stale states.
                let all_valid = !span_ids.is_empty()
                    && span_ids.iter().all(|&i| {
                        self.store
                            .get(&self.span_key(&schema.name, i), Tier::Host)
                            .is_some_and(|states| {
                                states.len() == tokens[i].tokens.len()
                                    && states.positions() == tokens[i].positions
                                    && states.num_layers() == self.model.config().num_layers
                                    && states.kv_dim() == self.model.config().kv_dim()
                            })
                    });
                if all_valid {
                    for &i in span_ids {
                        preloaded_tokens += tokens[i].tokens.len();
                        preloaded_spans += 1;
                    }
                }
                !all_valid
            })
            .collect();

        let encode_owner = |owner: &ModulePath| -> Result<Vec<(usize, KvCache)>> {
            let span_ids = &owner_spans[owner];
            let mut all_tokens = Vec::new();
            let mut all_positions = Vec::new();
            for &i in span_ids {
                all_tokens.extend_from_slice(&tokens[i].tokens);
                all_positions.extend_from_slice(&tokens[i].positions);
            }
            if all_tokens.is_empty() {
                return Ok(Vec::new());
            }
            let encoded = self.model.encode_segment(&all_tokens, &all_positions)?;
            // Slice the jointly-encoded states back into per-span stores.
            let mut out = Vec::new();
            let mut offset = 0;
            for &i in span_ids {
                let n = tokens[i].tokens.len();
                let part = encoded.slice(offset, offset + n)?;
                offset += n;
                out.push((i, part));
            }
            Ok(out)
        };

        // Each owner is an independent encode (attention never crosses
        // owners), so registrations fan out across the shared pool. The
        // per-owner work is untouched — stored states are byte-identical
        // at any thread count.
        let threads = self
            .config
            .parallelism
            .num_threads
            .min(owners.len().max(1));
        type EncodeSlot = Option<Result<Vec<(usize, KvCache)>>>;
        let encoded: Vec<(usize, KvCache)> = if threads > 1 {
            let mut slots: Vec<EncodeSlot> = Vec::new();
            slots.resize_with(owners.len(), || None);
            let encode_owner = &encode_owner;
            let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = slots
                .iter_mut()
                .zip(&owners)
                .map(|(slot, owner)| {
                    Box::new(move || {
                        *slot = Some(encode_owner(owner));
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            run_tasks(tasks, threads);
            slots
                .into_iter()
                .map(|s| s.expect("encode task completed"))
                .collect::<Result<Vec<_>>>()?
                .into_iter()
                .flatten()
                .collect()
        } else {
            let mut all = Vec::new();
            for owner in &owners {
                all.extend(encode_owner(owner)?);
            }
            all
        };

        let mut cached_tokens = preloaded_tokens;
        let mut spans = preloaded_spans;
        for (i, cache) in encoded {
            cached_tokens += cache.len();
            spans += 1;
            let cost = pc_model::flops::model_prefill_flops(self.model.config(), cache.len());
            let key = self.span_key(&schema.name, i);
            self.rotated.invalidate_module(&key);
            self.store.insert(key, cache, cost as f64);
        }

        self.schemas.write().insert(
            schema.name.clone(),
            RegisteredSchema {
                layout,
                span_tokens: tokens,
                scaffolds: Vec::new(),
                owner_spans,
                canonical_starts,
                deferred,
            },
        );
        let counter = |t: &str| self.count(t);
        let lints = pc_pml::lint::lint_schema(
            schema,
            &counter,
            &pc_pml::lint::LintConfig::default(),
        )
        .into_iter()
        .map(|l| l.to_string())
        .collect();
        Ok(SchemaInfo {
            name: schema.name.clone(),
            spans,
            cached_tokens,
            lints,
        })
    }

    /// Replaces a schema in place: the old layout is dropped but its
    /// encoded states are kept, so spans whose content and positions are
    /// unchanged in the new revision are **reused without re-encoding**.
    /// An append-only extension (new modules added after existing ones)
    /// therefore encodes only the new modules; edited modules re-encode
    /// via the staleness check. Stale leftover spans are dropped.
    ///
    /// # Errors
    ///
    /// Same contract as [`PromptCache::register_schema`] (minus the
    /// duplicate-name error).
    pub fn replace_schema(&self, pml: &str) -> Result<SchemaInfo> {
        let schema = parse_schema(pml)?;
        self.schemas.write().remove(&schema.name);
        // Keep the store contents: register_schema_ast validates each
        // stored span against the new layout and reuses the matches.
        let info = self.register_schema_ast(&schema)?;
        // Garbage-collect spans beyond the new layout's span count.
        let span_count = self
            .schemas
            .read()
            .get(&schema.name)
            .map(|e| e.layout.spans.len())
            .unwrap_or(0);
        for key in self.store_keys_for(&schema.name) {
            match key.path.first().map(String::as_str) {
                Some("<span>") => {
                    let stale = key
                        .path
                        .get(1)
                        .and_then(|s| s.parse::<usize>().ok())
                        .is_some_and(|i| i >= span_count);
                    if stale {
                        self.rotated.invalidate_module(&key);
                        self.store.remove(&key);
                    }
                }
                // Scaffolds were built against the old layout; drop them
                // (callers re-add scaffolds after a replace).
                Some("<scaffold>") => {
                    self.store.remove(&key);
                }
                _ => {}
            }
        }
        Ok(info)
    }

    fn store_keys_for(&self, schema: &str) -> Vec<ModuleKey> {
        self.store
            .keys()
            .into_iter()
            .filter(|k| k.schema == schema)
            .collect()
    }

    /// Names of all registered schemas, sorted.
    pub fn schema_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.schemas.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Whether `name` is registered.
    pub fn has_schema(&self, name: &str) -> bool {
        self.schemas.read().contains_key(name)
    }

    /// Drops a schema and all of its cached states.
    pub fn unregister_schema(&self, name: &str) {
        self.schemas.write().remove(name);
        for key in self.store_keys_for(name) {
            self.rotated.invalidate_module(&key);
        }
        self.store.remove_schema(name);
    }

    /// The stored KV states of every span of a registered schema, in span
    /// order (`None` for spans with no cached state, e.g. empty or
    /// evicted). This is the engine's ground truth for what registration
    /// encoded; the integration tests compare these across thread counts
    /// to prove concurrent encoding stores byte-identical states.
    pub fn schema_span_states(&self, schema: &str) -> Vec<Option<Arc<KvCache>>> {
        let schemas = self.schemas.read();
        let Some(reg) = schemas.get(schema) else {
            return Vec::new();
        };
        (0..reg.layout.spans.len())
            .map(|i| self.store.get(&self.span_key(schema, i), Tier::Host))
            .collect()
    }

    fn span_key(&self, schema: &str, span_index: usize) -> ModuleKey {
        ModuleKey {
            schema: schema.to_owned(),
            path: vec!["<span>".to_owned(), span_index.to_string()],
        }
    }

    /// Registers a scaffold (§3.3): the named modules are re-encoded
    /// **jointly** so they share an attention span, removing the
    /// cross-module masking approximation at the cost of extra memory.
    /// When a later prompt imports every member, the scaffold states
    /// override the members' individual states.
    ///
    /// # Errors
    ///
    /// Unknown schema/modules, or members with parameters (unsupported
    /// inside scaffolds).
    pub fn add_scaffold(&self, schema: &str, modules: &[&str]) -> Result<()> {
        let mut schemas = self.schemas.write();
        let entry = schemas
            .get_mut(schema)
            .ok_or_else(|| EngineError::UnknownSchema {
                name: schema.to_owned(),
            })?;
        let scaffold = Scaffold::build(schema, modules, &entry.layout, &entry.span_tokens)?;
        let (all_tokens, all_positions) = Self::scaffold_tokens(entry, &scaffold);
        let encoded = self.model.encode_segment(&all_tokens, &all_positions)?;
        let cost = pc_model::flops::model_prefill_flops(self.model.config(), encoded.len());
        self.store.insert(scaffold.key.clone(), encoded, cost as f64);
        entry.scaffolds.push(scaffold);
        Ok(())
    }

    /// Serves one [`ServeRequest`] — the single entry point behind every
    /// serving mode (paper §3.4).
    ///
    /// The request builder selects the path: plain cached inference by
    /// default, the baseline KV-cache path with
    /// [`ServeRequest::baseline`], per-token streaming with
    /// [`ServeRequest::streaming`], and session continuation with
    /// [`ServeRequest::session`] (the returned [`Served`] then carries
    /// the session [`KvView`]).
    ///
    /// ```no_run
    /// # use prompt_cache::{PromptCache, ServeRequest};
    /// # fn demo(engine: &PromptCache) -> prompt_cache::Result<()> {
    /// let served = engine.serve(
    ///     &ServeRequest::new(r#"<prompt schema="s"><m/>question</prompt>"#)
    ///         .max_new_tokens(8)
    ///         .session(true),
    /// )?;
    /// println!("{}", served.text); // Served derefs to Response
    /// let view = served.session.expect("requested");
    /// # Ok(()) }
    /// ```
    ///
    /// # Errors
    ///
    /// PML/resolution errors, unknown schemas, or model failures.
    pub fn serve(&self, request: &ServeRequest<'_>) -> Result<Served> {
        if request.is_baseline() {
            let response = self.baseline_response(request.prompt(), request.options_ref())?;
            return Ok(Served {
                response,
                session: None,
            });
        }
        let sink = request.sink();
        let mut adapter = move |token: TokenId, count: usize| {
            if let Some(sink) = sink {
                sink(token, count);
            }
        };
        let (response, view) =
            self.serve_cached(request.prompt(), request.options_ref(), &mut adapter)?;
        Ok(Served {
            response,
            session: request.wants_session().then_some(view),
        })
    }

    /// The cached serving pipeline: prepare (resolve → fetch → prefill),
    /// decode on the calling thread, finalize. The batched scheduler runs
    /// the same [`PromptCache::begin_serve`] / [`PromptCache::finalize_serve`]
    /// halves around its own interleaved decode loop, which is why solo
    /// and batched serves share every phase except token-by-token decode.
    fn serve_cached(
        &self,
        prompt_pml: &str,
        options: &ServeOptions,
        on_token: &mut dyn FnMut(TokenId, usize),
    ) -> Result<(Response, KvView)> {
        let telemetry = &self.config.telemetry;
        let serve_span = telemetry.span("serve");
        let result = match self.begin_serve(prompt_pml, options)? {
            Prepared::Done(response, view) => (*response, *view),
            Prepared::Ready(mut p) => {
                let logits = std::mem::take(&mut p.logits);
                let (tokens, ttft, decode, outcome) = self.decode_loop(
                    &mut p.view,
                    logits,
                    p.max_new_tokens,
                    p.eos,
                    p.sampler.as_mut(),
                    p.started,
                    on_token,
                    &p.cancel,
                    telemetry,
                )?;
                self.finalize_serve(*p, tokens, ttft, decode, outcome)
            }
        };
        drop(serve_span);
        Ok(result)
    }

    /// The serve pipeline up to (and including) prefill: parse, resolve,
    /// fetch cached states into a session view, prefill uncached tokens.
    /// Returns either a finished response (interrupted before decode) or
    /// a [`PendingDecode`] positioned at its first sample — the unit the
    /// batch scheduler admits.
    pub(crate) fn begin_serve(
        &self,
        prompt_pml: &str,
        options: &ServeOptions,
    ) -> Result<Prepared> {
        // One clock, cumulative checkpoints: each TTFT phase is the delta
        // between consecutive checkpoints, so the TtftBreakdown phases sum
        // to `Timings.ttft` exactly.
        let telemetry = &self.config.telemetry;
        let started = Instant::now();

        // Effective interruption token: the caller's token (if any) plus
        // the per-call budget, earliest deadline winning. Polled at phase
        // boundaries and between decode steps.
        let cancel = Self::effective_cancel(options);
        if let Some(outcome) = cancel.interruption() {
            // Dead on arrival (zero/elapsed budget, or cancelled before
            // the serve started): return an empty partial response
            // without touching the model.
            let view = KvView::with_shape(
                self.model.config().num_layers,
                self.model.config().kv_dim(),
            );
            return Ok(Prepared::Done(
                Box::new(Self::partial_response(outcome, TtftBreakdown::default(), ServeStats::default(), Vec::new())),
                Box::new(view),
            ));
        }

        // --- step ①: parse, resolve, and tokenise uncached text ---
        let resolve_span = telemetry.span("schema-resolve");
        let prompt = parse_prompt(prompt_pml)?;
        let schemas = self.schemas.read();
        let entry = schemas
            .get(&prompt.schema)
            .ok_or_else(|| EngineError::UnknownSchema {
                name: prompt.schema.clone(),
            })?;
        let counter = |t: &str| self.count(t);
        // Packed placement goes with position-independent storage: parts
        // land at a running cursor in prompt order and each cached span's
        // placement shift (placed − canonical start) is absorbed by the
        // rotate-on-read kernels. Without it, placements must equal the
        // layout positions modules were encoded at.
        let resolved = if entry.deferred {
            resolve_prompt_packed(&entry.layout, &prompt, &counter)?
        } else {
            resolve_prompt(&entry.layout, &prompt, &counter)?
        };
        drop(resolve_span);
        let tokenize_span = telemetry.span("tokenize");
        let chunk = uncached_chunk(&resolved, self.tokenizer.as_ref());
        drop(tokenize_span);
        let tokenize_end = started.elapsed();

        // --- step ②: fetch cached states and assemble the session view ---
        // With `zero_copy` on (the default) this is pure pointer
        // arithmetic: each cached span becomes an `Arc`-shared segment of
        // the session [`KvView`]; the copying path survives only behind
        // the flag for A/B measurement.
        let fetch_span = telemetry.span("cache-fetch");
        let tier = options.tier.or(self.config.tier).unwrap_or(Tier::Host);
        let zero_copy = self.config.zero_copy;
        // Per-module attribution (opt-in): degrades and zero-copy vs
        // copied bytes land on the module that caused them, and each
        // shared segment is tagged so the batched scheduler can route
        // its per-group shared-row accounting back to modules.
        let analytics = self.store.analytics();
        let mut view = KvView::with_shape(
            self.model.config().num_layers,
            self.model.config().kv_dim(),
        );
        // Mirror of session-cache rows → token ids (for the rare
        // module-only prompt that must re-derive its final token).
        let mut row_tokens: Vec<TokenId> = Vec::new();
        let mut cached_rows = 0usize;
        let mut bytes_reused = 0usize;
        let mut bytes_shared = 0usize;
        let mut bytes_copied = 0usize;
        let mut used_scaffold = false;

        // Which params were filled, per span: span_index → (offset, len),
        // via the registration-time owner → spans map. Each span's ranges
        // are sorted once here, not per cached span below.
        let mut filled: HashMap<usize, Vec<(usize, usize)>> = HashMap::new();
        for part in &resolved.parts {
            if let ResolvedPart::Argument { module, param, .. } = part {
                // Locate the placeholder inside the owning span.
                for &i in entry.owner_spans.get(module).into_iter().flatten() {
                    if let Some((_, off, len)) = entry.span_tokens[i]
                        .params
                        .iter()
                        .find(|(name, _, _)| name == param)
                    {
                        filled.entry(i).or_default().push((*off, *len));
                    }
                }
            }
        }
        for ranges in filled.values_mut() {
            ranges.sort_unstable();
        }

        // Scaffold substitution: pick scaffolds fully covered by imports.
        let imported: Vec<ModulePath> = resolved
            .parts
            .iter()
            .filter_map(|p| match p {
                ResolvedPart::Cached { module, .. } if !module.is_empty() => {
                    Some(module.clone())
                }
                _ => None,
            })
            .collect();
        // Placed start of every cached span in this prompt — the scaffold
        // selection below needs it to check that packed placement moved
        // all of a scaffold's members rigidly.
        let placed_starts: HashMap<usize, usize> = resolved
            .parts
            .iter()
            .filter_map(|p| match p {
                ResolvedPart::Cached {
                    span_index, start, ..
                } => Some((*span_index, *start)),
                _ => None,
            })
            .collect();
        let mut scaffolded_spans: Vec<usize> = Vec::new();
        let mut selected_scaffolds: Vec<(&Scaffold, isize)> = Vec::new();
        if options.use_scaffolds {
            for scaffold in &entry.scaffolds {
                if !scaffold.members.iter().all(|m| imported.contains(m))
                    || scaffold
                        .span_indices
                        .iter()
                        .any(|i| scaffolded_spans.contains(i))
                {
                    continue;
                }
                // A scaffold's joint states encode its members at their
                // layout positions; the states relocate as one rigid block
                // or not at all. Packed placement preserves a subtree's
                // internal offsets, so members imported consecutively in
                // layout order share one shift — anything else (content
                // interleaved between members) deforms the block, and the
                // scaffold steps aside for the per-span path.
                let shifts: Vec<isize> = scaffold
                    .span_indices
                    .iter()
                    .filter_map(|&i| {
                        placed_starts
                            .get(&i)
                            .map(|&p| p as isize - entry.layout.spans[i].start as isize)
                    })
                    .collect();
                let rigid = shifts.len() == scaffold.span_indices.len()
                    && shifts.windows(2).all(|w| w[0] == w[1]);
                if !rigid {
                    continue;
                }
                scaffolded_spans.extend_from_slice(&scaffold.span_indices);
                selected_scaffolds.push((scaffold, shifts.first().copied().unwrap_or(0)));
            }
        }

        // Spans (or whole scaffolds) whose states are missing or were
        // dropped as corrupt are recomputed from their tokens instead of
        // failing the request — graceful degradation, counted per span.
        let mut degraded = 0usize;
        // Per-serve memo of owner recomputes, so a persistently-injected
        // miss (fault harness) re-encodes each owner at most once per
        // serve even when the store refuses to return the healed entry.
        let mut recomputed: HashMap<usize, Arc<KvCache>> = HashMap::new();

        for &(scaffold, shift) in &selected_scaffolds {
            let states = match self.store.get(&scaffold.key, tier) {
                Some(states) => states,
                None if self.config.degrade_on_miss => {
                    let _degrade_span = telemetry.span("degrade");
                    degraded += 1;
                    if let Some(a) = analytics {
                        a.record_degrade(&scaffold.key);
                    }
                    Arc::new(self.reencode_scaffold(entry, scaffold)?)
                }
                None => {
                    return Err(EngineError::MissingModuleStates {
                        key: format!("{:?}", scaffold.key),
                    })
                }
            };
            let rows = states.len();
            let bytes = states.size_bytes();
            if shift != 0 {
                if let Some(a) = analytics {
                    a.record_relocation(&scaffold.key);
                }
            }
            if zero_copy {
                view.push_segment_shifted(Arc::clone(&states), 0, rows, shift)?;
                bytes_shared += bytes;
                if let Some(a) = analytics {
                    if let Some(seg) = view.segments().last() {
                        a.tag_segment(seg.id(), &scaffold.key);
                    }
                    a.record_bytes_shared(&scaffold.key, bytes as u64);
                }
            } else {
                view.append_range_copy_shifted(&states, 0, rows, shift, self.model.rope())?;
                bytes_copied += bytes;
                if let Some(a) = analytics {
                    a.record_bytes_copied(&scaffold.key, bytes as u64);
                }
            }
            // Scaffold members have no params, so the mirror can take the
            // span tokens directly.
            cached_rows += rows;
            bytes_reused += bytes;
            used_scaffold = true;
        }
        if used_scaffold {
            // Rebuild the row mirror from scaffold span tokens.
            for &(scaffold, _) in &selected_scaffolds {
                for &i in &scaffold.span_indices {
                    row_tokens.extend_from_slice(&entry.span_tokens[i].tokens);
                }
            }
        }

        for part in &resolved.parts {
            let ResolvedPart::Cached {
                span_index, start, ..
            } = part
            else {
                continue;
            };
            if scaffolded_spans.contains(span_index) {
                continue;
            }
            // Placement shift of this span: where the prompt placed it
            // minus where its canonical entry was encoded. Zero without
            // deferred RoPE (placements equal encode positions) and for
            // packed placements that happen to coincide with the canonical
            // layout — those take the exact legacy read path.
            let shift = *start as isize - entry.canonical_starts[*span_index] as isize;
            let key = self.span_key(&prompt.schema, *span_index);
            let states = match self.store.get(&key, tier) {
                Some(states) => states,
                None if self.config.degrade_on_miss => {
                    let _degrade_span = telemetry.span("degrade");
                    degraded += 1;
                    if let Some(a) = analytics {
                        a.record_degrade(&key);
                    }
                    self.recompute_owner(&prompt.schema, entry, *span_index, &mut recomputed)?
                }
                None => {
                    return Err(EngineError::MissingModuleStates {
                        key: format!("{}.span{}", prompt.schema, span_index),
                    })
                }
            };
            if shift != 0 {
                if let Some(a) = analytics {
                    a.record_relocation(&key);
                }
            }
            // Take the span, skipping filled placeholder rows (their
            // states are recomputed from the real argument below) — the
            // skip list splits the span into shared segments.
            let skip: &[(usize, usize)] =
                filled.get(span_index).map_or(&[], Vec::as_slice);
            let mut cursor = 0usize;
            let toks = &entry.span_tokens[*span_index].tokens;
            let mut ranges: Vec<(usize, usize)> = Vec::new();
            for &(off, len) in skip {
                if cursor < off {
                    ranges.push((cursor, off));
                }
                cursor = off + len;
            }
            if cursor < states.len() {
                ranges.push((cursor, states.len()));
            }
            for (s, e) in ranges {
                if zero_copy {
                    if shift == 0 {
                        view.push_segment(Arc::clone(&states), s, e)?;
                    } else if let Some(rot) = self.rotated_view(&key, s, e, shift, &states) {
                        // Hot placement: serve the materialised rotation
                        // at shift 0 — bit-identical to the fused path,
                        // no per-score rotation work.
                        view.push_segment(rot, 0, e - s)?;
                    } else {
                        view.push_segment_shifted(Arc::clone(&states), s, e, shift)?;
                    }
                    bytes_shared += states.bytes_for_rows(e - s);
                    if let Some(a) = analytics {
                        if let Some(seg) = view.segments().last() {
                            a.tag_segment(seg.id(), &key);
                        }
                        a.record_bytes_shared(&key, states.bytes_for_rows(e - s) as u64);
                    }
                } else {
                    view.append_range_copy_shifted(&states, s, e, shift, self.model.rope())?;
                    bytes_copied += states.bytes_for_rows(e - s);
                    if let Some(a) = analytics {
                        a.record_bytes_copied(&key, states.bytes_for_rows(e - s) as u64);
                    }
                }
                row_tokens.extend_from_slice(&toks[s..e]);
                cached_rows += e - s;
                bytes_reused += states.bytes_for_rows(e - s);
            }
        }
        self.metrics.kv_bytes_shared.add(bytes_shared as u64);
        self.metrics.kv_bytes_copied.add(bytes_copied as u64);
        if degraded > 0 {
            self.metrics.degraded_serves.add(1);
            self.metrics.degraded_spans.add(degraded as u64);
        }
        drop(fetch_span);
        let fetch_end = started.elapsed();

        if let Some(outcome) = cancel.interruption() {
            // Interrupted before prefill: return what we know (tokenise +
            // fetch accounting) with zero generated tokens.
            let breakdown = TtftBreakdown {
                tokenize: tokenize_end,
                fetch: fetch_end - tokenize_end,
                prefill: Duration::ZERO,
                sample: Duration::ZERO,
            };
            let stats = ServeStats {
                cached_tokens: cached_rows,
                new_tokens: 0,
                bytes_reused,
                bytes_shared,
                bytes_copied,
                used_scaffold,
                degraded_spans: degraded,
            };
            return Ok(Prepared::Done(
                Box::new(Self::partial_response(outcome, breakdown, stats, resolved.warnings)),
                Box::new(view),
            ));
        }

        // --- steps ③/④: compute uncached tokens at their positions ---
        // Prefill and decode append into the view's private tail; the
        // shared segments stay frozen.
        let prefill_span = telemetry.span("prefill");
        let eos = self.tokenizer.special(SpecialToken::Eos);

        let last_logits = if !chunk.tokens.is_empty() {
            self.model
                .prefill(&chunk.tokens, &chunk.positions, &mut view)?
        } else {
            // Module-only prompt: re-derive the final token's logits by
            // recomputing the last cached row.
            if view.is_empty() {
                return Err(EngineError::EmptyPrompt);
            }
            let last_row = view.len() - 1;
            let last_token = row_tokens[last_row];
            let last_pos = view.positions()[last_row];
            view.truncate(last_row);
            self.model.prefill(&[last_token], &[last_pos], &mut view)?
        };
        drop(prefill_span);
        let prefill_end = started.elapsed();

        let sampler: Box<dyn Sampler + Send> = match options.temperature {
            Some((t, seed)) => Box::new(TemperatureSampler::new(t, seed)),
            None => Box::new(GreedySampler),
        };
        let next_pos = view.positions().iter().max().map_or(0, |p| p + 1);

        // Union prefetching (§3.2.3): collect the sibling span keys of
        // every imported union member now, while the schema read lock is
        // held; the store prefetch itself runs at finalize time, outside
        // the timed region — the next request likely swaps one member.
        let mut prefetch_keys = Vec::new();
        if self.config.prefetch_union_siblings && tier == Tier::Device {
            for path in &imported {
                let Some(info) = entry.layout.module(path) else {
                    continue;
                };
                let Some(group) = info.union_group else {
                    continue;
                };
                for sibling in &entry.layout.modules {
                    if sibling.union_group == Some(group) && sibling.path != *path {
                        for (i, span) in entry.layout.spans.iter().enumerate() {
                            if span.owner == sibling.path {
                                prefetch_keys.push(self.span_key(&prompt.schema, i));
                            }
                        }
                    }
                }
            }
        }

        Ok(Prepared::Ready(Box::new(PendingDecode {
            view,
            logits: last_logits,
            started,
            tokenize_end,
            fetch_end,
            prefill_end,
            cancel,
            eos,
            sampler,
            max_new_tokens: options.max_new_tokens,
            next_pos,
            cached_rows,
            new_tokens: chunk.tokens.len(),
            bytes_reused,
            bytes_shared,
            bytes_copied,
            used_scaffold,
            degraded,
            warnings: resolved.warnings,
            prefetch_keys,
        })))
    }

    /// The serve pipeline after decode: assemble the TTFT breakdown,
    /// run deferred union prefetching, and build the [`Response`].
    /// `tokens`/`ttft`/`decode`/`outcome` come from whichever decode loop
    /// ran — the solo [`PromptCache::decode_loop`] or the batch
    /// scheduler's interleaved steps.
    pub(crate) fn finalize_serve(
        &self,
        p: PendingDecode,
        tokens: Vec<TokenId>,
        ttft: Duration,
        decode: Duration,
        outcome: ServeOutcome,
    ) -> (Response, KvView) {
        // An interruption before the first sample leaves no first token:
        // pin TTFT to the prefill checkpoint (and decode to zero) so the
        // breakdown phases still sum exactly to `timings.ttft`.
        let (ttft, decode) = if tokens.is_empty() {
            (p.prefill_end, Duration::ZERO)
        } else {
            (ttft, decode)
        };
        let breakdown = TtftBreakdown {
            tokenize: p.tokenize_end,
            fetch: p.fetch_end - p.tokenize_end,
            prefill: p.prefill_end - p.fetch_end,
            sample: ttft.saturating_sub(p.prefill_end),
        };

        if !p.prefetch_keys.is_empty() {
            self.store.prefetch(&p.prefetch_keys);
        }

        let response = Response {
            text: self.tokenizer.decode(&tokens),
            tokens,
            timings: Timings {
                ttft,
                fetch: breakdown.fetch,
                prefill: breakdown.prefill,
                decode,
            },
            breakdown,
            stats: ServeStats {
                cached_tokens: p.cached_rows,
                new_tokens: p.new_tokens,
                bytes_reused: p.bytes_reused,
                bytes_shared: p.bytes_shared,
                bytes_copied: p.bytes_copied,
                used_scaffold: p.used_scaffold,
                degraded_spans: p.degraded,
            },
            outcome,
            warnings: p.warnings,
        };
        (response, p.view)
    }

    /// The **baseline KV-cache path** behind [`ServeRequest::baseline`]:
    /// the prompt is rendered to plain text (modules inlined, arguments
    /// substituted), tokenised, and prefilled from position 0 with no
    /// reuse — the paper's comparison baseline, sharing every other stage
    /// of the pipeline.
    fn baseline_response(&self, prompt_pml: &str, options: &ServeOptions) -> Result<Response> {
        let prompt = parse_prompt(prompt_pml)?;
        let schemas = self.schemas.read();
        let entry = schemas
            .get(&prompt.schema)
            .ok_or_else(|| EngineError::UnknownSchema {
                name: prompt.schema.clone(),
            })?;
        let counter = |t: &str| self.count(t);
        let resolved = resolve_prompt(&entry.layout, &prompt, &counter)?;
        let text = render_plain(&resolved, &entry.layout.spans);
        drop(schemas);
        self.generate_plain(&text, options, resolved.warnings)
    }

    /// Runs plain-text generation (full prefill, no cache reuse). Public
    /// so benches can time arbitrary synthetic prompts.
    ///
    /// # Errors
    ///
    /// [`EngineError::EmptyPrompt`] for empty text; model failures.
    pub fn generate_plain(
        &self,
        text: &str,
        options: &ServeOptions,
        warnings: Vec<String>,
    ) -> Result<Response> {
        let telemetry = &self.config.telemetry;
        let serve_span = telemetry.span("serve-baseline");
        let started = Instant::now();
        let cancel = Self::effective_cancel(options);
        if let Some(outcome) = cancel.interruption() {
            return Ok(Self::partial_response(
                outcome,
                TtftBreakdown::default(),
                ServeStats::default(),
                warnings,
            ));
        }
        let tokenize_span = telemetry.span("tokenize");
        let tokens = self.tokenizer.encode(text);
        drop(tokenize_span);
        if tokens.is_empty() {
            return Err(EngineError::EmptyPrompt);
        }
        let positions: Vec<usize> = (0..tokens.len()).collect();
        let tokenize_end = started.elapsed();
        let prefill_span = telemetry.span("prefill");
        let mut cache = KvCache::new(self.model.config());
        let last_logits = self.model.prefill(&tokens, &positions, &mut cache)?;
        drop(prefill_span);
        let prefill_end = started.elapsed();
        let eos = self.tokenizer.special(SpecialToken::Eos);
        let mut sampler: Box<dyn Sampler> = match options.temperature {
            Some((t, seed)) => Box::new(TemperatureSampler::new(t, seed)),
            None => Box::new(GreedySampler),
        };
        let (out, ttft, decode, outcome) = self.decode_loop(
            &mut cache,
            last_logits,
            options.max_new_tokens,
            eos,
            sampler.as_mut(),
            started,
            &mut |_, _| {},
            &cancel,
            telemetry,
        )?;
        let (ttft, decode) = if out.is_empty() {
            (prefill_end, Duration::ZERO)
        } else {
            (ttft, decode)
        };
        let breakdown = TtftBreakdown {
            tokenize: tokenize_end,
            fetch: Duration::ZERO,
            prefill: prefill_end - tokenize_end,
            sample: ttft.saturating_sub(prefill_end),
        };
        drop(serve_span);
        Ok(Response {
            text: self.tokenizer.decode(&out),
            tokens: out,
            timings: Timings {
                ttft,
                fetch: Duration::ZERO,
                prefill: breakdown.prefill,
                decode,
            },
            breakdown,
            stats: ServeStats {
                cached_tokens: 0,
                new_tokens: tokens.len(),
                bytes_reused: 0,
                bytes_shared: 0,
                bytes_copied: 0,
                used_scaffold: false,
                degraded_spans: 0,
            },
            outcome,
            warnings,
        })
    }

    /// Resolves a parsed prompt against its registered schema — shared by
    /// batch accounting. Uses the same placement mode as the serve path.
    pub(crate) fn resolve_for(
        &self,
        prompt: &pc_pml::Prompt,
    ) -> Result<ResolvedPrompt> {
        let schemas = self.schemas.read();
        let entry = schemas
            .get(&prompt.schema)
            .ok_or_else(|| EngineError::UnknownSchema {
                name: prompt.schema.clone(),
            })?;
        let counter = |t: &str| self.count(t);
        Ok(if entry.deferred {
            resolve_prompt_packed(&entry.layout, prompt, &counter)?
        } else {
            resolve_prompt(&entry.layout, prompt, &counter)?
        })
    }

    /// Consults the rotated-view cache for a shifted placement of rows
    /// `start..end` of module `key`. A hit returns the materialised view
    /// (rows rotated by `R(shift)`, positions placed) to serve at shift 0;
    /// a miss counts the fused-path use and, once the placement crosses
    /// the hot threshold, materialises and caches the view — returning it
    /// immediately so the promoting serve already benefits. `None` means
    /// keep the fused rotate-on-read path. Position-free families (no
    /// RoPE table) never materialise: their fused path does no extra work.
    fn rotated_view(
        &self,
        key: &ModuleKey,
        start: usize,
        end: usize,
        shift: isize,
        states: &Arc<KvCache>,
    ) -> Option<Arc<KvCache>> {
        let rope = self.model.rope()?;
        let rkey = RotatedKey {
            module: key.clone(),
            start,
            end,
            shift,
        };
        if let Some(rot) = self.rotated.get(&rkey) {
            return Some(rot);
        }
        if self.rotated.note_use(&rkey) {
            let rot = Arc::new(rotate_range(states, start, end, shift, rope));
            self.rotated.insert(rkey, Arc::clone(&rot));
            return Some(rot);
        }
        None
    }

    /// Builds the effective interruption token for one serve call: the
    /// caller's token (or an inert one) narrowed by the per-call budget.
    fn effective_cancel(options: &ServeOptions) -> CancelToken {
        let base = options.cancel.clone().unwrap_or_default();
        match options.deadline {
            Some(budget) => base.with_budget(budget),
            None => base,
        }
    }

    /// An empty partial [`Response`] for serves interrupted before the
    /// first token. TTFT is pinned to the work actually done so the
    /// breakdown phases still sum to `timings.ttft`.
    fn partial_response(
        outcome: ServeOutcome,
        breakdown: TtftBreakdown,
        stats: ServeStats,
        warnings: Vec<String>,
    ) -> Response {
        Response {
            text: String::new(),
            tokens: Vec::new(),
            timings: Timings {
                ttft: breakdown.total(),
                fetch: breakdown.fetch,
                prefill: breakdown.prefill,
                decode: Duration::ZERO,
            },
            breakdown,
            stats,
            outcome,
            warnings,
        }
    }

    /// Graceful-degradation recompute for one missing/corrupt span: all
    /// spans of the owning module are **jointly re-encoded from their
    /// tokens**, exactly as registration encodes an owner, so the result
    /// is byte-identical to the lost states. The fresh states are
    /// re-inserted into the store (self-healing) and memoised in
    /// `recomputed` for the rest of this serve.
    fn recompute_owner(
        &self,
        schema: &str,
        entry: &RegisteredSchema,
        span_index: usize,
        recomputed: &mut HashMap<usize, Arc<KvCache>>,
    ) -> Result<Arc<KvCache>> {
        if let Some(states) = recomputed.get(&span_index) {
            return Ok(Arc::clone(states));
        }
        let owner = &entry.layout.spans[span_index].owner;
        let span_ids: &[usize] = entry
            .owner_spans
            .get(owner)
            .map_or(&[], Vec::as_slice);
        let mut all_tokens = Vec::new();
        let mut all_positions = Vec::new();
        for &i in span_ids {
            all_tokens.extend_from_slice(&entry.span_tokens[i].tokens);
            all_positions.extend_from_slice(&entry.span_tokens[i].positions);
        }
        if all_tokens.is_empty() {
            return Err(EngineError::MissingModuleStates {
                key: format!("{schema}.span{span_index}"),
            });
        }
        let encoded = self.model.encode_segment(&all_tokens, &all_positions)?;
        let mut offset = 0;
        let mut requested = None;
        for &i in span_ids {
            let n = entry.span_tokens[i].tokens.len();
            let part = encoded.slice(offset, offset + n)?;
            offset += n;
            let cost =
                pc_model::flops::model_prefill_flops(self.model.config(), part.len());
            let key = self.span_key(schema, i);
            // The canonical entry is being replaced: any materialised
            // rotated views of it are stale by pointer identity.
            self.rotated.invalidate_module(&key);
            self.store.insert(key, part.clone(), cost as f64);
            let part = Arc::new(part);
            if i == span_index {
                requested = Some(Arc::clone(&part));
            }
            recomputed.insert(i, part);
        }
        requested.ok_or_else(|| EngineError::MissingModuleStates {
            key: format!("{schema}.span{span_index}"),
        })
    }

    /// Token/position streams for a scaffold's joint encoding. Scaffolds
    /// always encode at the **layout** positions of their member spans —
    /// never the canonical (normalised) per-owner positions — because a
    /// scaffold spans several owners whose canonical ranges would
    /// otherwise collide at 0. At serve time the whole scaffold relocates
    /// rigidly: one shift, computed from the members' placed positions.
    fn scaffold_tokens(
        entry: &RegisteredSchema,
        scaffold: &Scaffold,
    ) -> (Vec<TokenId>, Vec<usize>) {
        let mut all_tokens = Vec::new();
        let mut all_positions = Vec::new();
        for &i in &scaffold.span_indices {
            let toks = &entry.span_tokens[i].tokens;
            let start = entry.layout.spans[i].start;
            all_tokens.extend_from_slice(toks);
            all_positions.extend(start..start + toks.len());
        }
        (all_tokens, all_positions)
    }

    /// Graceful-degradation recompute for a missing/corrupt scaffold: its
    /// member spans are jointly re-encoded (the same computation as
    /// [`PromptCache::add_scaffold`]) and re-inserted under the scaffold
    /// key.
    fn reencode_scaffold(&self, entry: &RegisteredSchema, scaffold: &Scaffold) -> Result<KvCache> {
        let (all_tokens, all_positions) = Self::scaffold_tokens(entry, scaffold);
        let encoded = self.model.encode_segment(&all_tokens, &all_positions)?;
        let cost = pc_model::flops::model_prefill_flops(self.model.config(), encoded.len());
        self.store
            .insert(scaffold.key.clone(), encoded.clone(), cost as f64);
        Ok(encoded)
    }

    #[allow(clippy::too_many_arguments)]
    fn decode_loop<K: KvSeq>(
        &self,
        cache: &mut K,
        mut logits: Vec<f32>,
        max_new_tokens: usize,
        eos: TokenId,
        sampler: &mut dyn Sampler,
        started: Instant,
        on_token: &mut dyn FnMut(TokenId, usize),
        cancel: &CancelToken,
        telemetry: &Telemetry,
    ) -> Result<(Vec<TokenId>, Duration, Duration, ServeOutcome)> {
        let mut tokens = Vec::new();
        let mut ttft = Duration::ZERO;
        let mut outcome = ServeOutcome::Complete;
        let mut next_pos = cache.positions().iter().max().map_or(0, |p| p + 1);
        while tokens.len() < max_new_tokens {
            // Cooperative interruption point: polled before every sample,
            // so a cancel fired from `on_token` (or an elapsed deadline)
            // stops the generation before the next forward pass.
            if let Some(o) = cancel.interruption() {
                outcome = o;
                break;
            }
            let token = if tokens.is_empty() {
                // The first sample closes the TTFT window.
                let _sample_span = telemetry.span("sample");
                sampler.sample(&logits)
            } else {
                sampler.sample(&logits)
            };
            tokens.push(token);
            if tokens.len() == 1 {
                ttft = started.elapsed();
            }
            on_token(token, tokens.len());
            if token == eos || tokens.len() == max_new_tokens {
                break;
            }
            logits = self.model.prefill(&[token], &[next_pos], cache)?;
            next_pos += 1;
        }
        let decode = started.elapsed().saturating_sub(ttft);
        Ok((tokens, ttft, decode, outcome))
    }

    /// Persists every encoded module to `dir` (binary codec + manifest),
    /// so a restarted server can skip re-encoding: register the same
    /// schemas after [`PromptCache::load_modules`] and spans found in the
    /// store are reused.
    ///
    /// # Errors
    ///
    /// Filesystem errors.
    pub fn save_modules(&self, dir: &std::path::Path) -> std::io::Result<usize> {
        self.store.save_dir(dir)
    }

    /// Loads modules persisted by [`PromptCache::save_modules`]. Call
    /// before registering schemas.
    ///
    /// # Errors
    ///
    /// Filesystem errors or corrupted payloads.
    pub fn load_modules(&self, dir: &std::path::Path) -> std::io::Result<usize> {
        self.store.load_dir(dir)
    }

    /// Snapshots the module library to the store's disk tier (see
    /// `docs/PERSISTENCE.md`): every in-memory module is written down
    /// and the tier's index is flushed, so the next process over the
    /// same directory starts warm. Returns how many modules were
    /// written.
    ///
    /// Unlike [`PromptCache::save_modules`] this uses the tiered store's
    /// own segment format — crash-recoverable, checksummed, and
    /// optionally quantized ([`pc_cache::ColdEncoding`]).
    ///
    /// # Errors
    ///
    /// `InvalidInput` when the store has no disk tier configured
    /// ([`pc_cache::StoreConfig::disk`]); otherwise filesystem errors.
    pub fn snapshot(&self) -> std::io::Result<usize> {
        self.store.persist_all()
    }

    /// Promotes every disk-tier module into host memory — the restore
    /// half of warm restart, after constructing an engine whose store
    /// points at a previously snapshotted directory. Returns how many
    /// modules were promoted. Restoring is optional: lookups fall
    /// through to the disk tier lazily even without it; this just
    /// front-loads the decode cost. Call before registering schemas so
    /// registration reuses the restored entries instead of re-encoding.
    ///
    /// # Errors
    ///
    /// `InvalidInput` when the store has no disk tier configured.
    pub fn restore(&self) -> std::io::Result<usize> {
        self.store.restore_all()
    }
}

impl std::fmt::Debug for PromptCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PromptCache")
            .field("model", &self.model.config().family)
            .field("schemas", &self.schemas.read().len())
            .field("cached_bytes", &self.store.host_bytes())
            .finish()
    }
}
