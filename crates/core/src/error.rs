use std::fmt;

/// Errors from the Prompt Cache engine.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum EngineError {
    /// PML parsing, layout, or resolution failed.
    Pml(pc_pml::PmlError),
    /// The model engine rejected a forward pass.
    Model(pc_model::ModelError),
    /// A prompt referenced a schema that was never registered.
    UnknownSchema {
        /// The schema name the prompt asked for.
        name: String,
    },
    /// A schema with this name is already registered (unregister first).
    SchemaAlreadyRegistered {
        /// The duplicate name.
        name: String,
    },
    /// The store no longer holds a module the layout expects (evicted or
    /// never encoded).
    MissingModuleStates {
        /// Key description.
        key: String,
    },
    /// Scaffold construction failed.
    InvalidScaffold {
        /// Why.
        detail: String,
    },
    /// The prompt contains no tokens at all (no modules, no text).
    EmptyPrompt,
    /// An error reported by a remote fleet worker (process-mode serving
    /// in `pc-server`): the worker-side error crossed the wire as text.
    /// Structured variants the wire protocol knows (`UnknownSchema`,
    /// `EmptyPrompt`) are reconstructed as themselves; everything else
    /// arrives as this.
    Remote {
        /// The worker-side error, stringified.
        detail: String,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Pml(e) => write!(f, "pml: {e}"),
            EngineError::Model(e) => write!(f, "model: {e}"),
            EngineError::UnknownSchema { name } => write!(f, "schema `{name}` not registered"),
            EngineError::SchemaAlreadyRegistered { name } => {
                write!(f, "schema `{name}` already registered")
            }
            EngineError::MissingModuleStates { key } => {
                write!(f, "no cached states for {key}")
            }
            EngineError::InvalidScaffold { detail } => write!(f, "invalid scaffold: {detail}"),
            EngineError::EmptyPrompt => write!(f, "prompt has no content"),
            EngineError::Remote { detail } => write!(f, "remote worker: {detail}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Pml(e) => Some(e),
            EngineError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<pc_pml::PmlError> for EngineError {
    fn from(e: pc_pml::PmlError) -> Self {
        EngineError::Pml(e)
    }
}

impl From<pc_model::ModelError> for EngineError {
    fn from(e: pc_model::ModelError) -> Self {
        EngineError::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_sources() {
        let e: EngineError = pc_pml::PmlError::DuplicateName { name: "x".into() }.into();
        assert!(std::error::Error::source(&e).is_some());
        assert!(e.to_string().contains("pml"));
    }

    #[test]
    fn plain_variants_have_no_source() {
        let e = EngineError::EmptyPrompt;
        assert!(std::error::Error::source(&e).is_none());
    }
}
