//! The unified serving request: one builder, one entry point.
//!
//! [`ServeRequest`] collapses the historical `serve` / `serve_with` /
//! `serve_streaming` / `serve_session` / `serve_baseline` family (shims
//! deprecated in PR 5 and removed in PR 10) into a
//! single builder consumed by [`crate::PromptCache::serve`], which
//! returns a [`Served`] — the [`crate::Response`] plus (when requested)
//! the session KV view.

use crate::engine::ServeOptions;
use crate::cancel::CancelToken;
use crate::response::Response;
use pc_cache::Tier;
use pc_model::{KvView, TokenId};
use std::time::Duration;

/// A single serving request: prompt, options, and mode flags.
///
/// Defaults describe the common case — cached inference, greedy
/// sampling, no streaming, no session. Every other serving mode is a
/// chained flag:
///
/// ```
/// use prompt_cache::ServeRequest;
///
/// let request = ServeRequest::new(r#"<prompt schema="s"><m/>hi</prompt>"#)
///     .max_new_tokens(16)
///     .session(true);
/// assert_eq!(request.options_ref().max_new_tokens, 16);
/// assert!(request.wants_session());
/// ```
///
/// The lifetime `'a` is the streaming sink's: a request borrowing a sink
/// cannot outlive it.
pub struct ServeRequest<'a> {
    prompt: String,
    options: ServeOptions,
    baseline: bool,
    session: bool,
    sink: Option<&'a (dyn Fn(TokenId, usize) + 'a)>,
}

impl std::fmt::Debug for ServeRequest<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeRequest")
            .field("prompt", &self.prompt)
            .field("options", &self.options)
            .field("baseline", &self.baseline)
            .field("session", &self.session)
            .field("sink", &self.sink.map(|_| "Fn(TokenId, usize)"))
            .finish()
    }
}

impl<'a> ServeRequest<'a> {
    /// A request for `prompt_pml` with default options: cached path,
    /// greedy sampling, engine-default tier, no streaming, no session.
    pub fn new(prompt_pml: impl Into<String>) -> Self {
        ServeRequest {
            prompt: prompt_pml.into(),
            options: ServeOptions::default(),
            baseline: false,
            session: false,
            sink: None,
        }
    }

    /// Replaces the whole option block (for callers that already hold a
    /// [`ServeOptions`]); the per-field setters below are sugar over it.
    #[must_use]
    pub fn options(mut self, options: ServeOptions) -> Self {
        self.options = options;
        self
    }

    /// Decode budget in tokens.
    #[must_use]
    pub fn max_new_tokens(mut self, n: usize) -> Self {
        self.options.max_new_tokens = n;
        self
    }

    /// Storage tier to fetch module states from.
    #[must_use]
    pub fn tier(mut self, tier: Tier) -> Self {
        self.options.tier = Some(tier);
        self
    }

    /// Enables/disables scaffold substitution (§3.3).
    #[must_use]
    pub fn use_scaffolds(mut self, on: bool) -> Self {
        self.options.use_scaffolds = on;
        self
    }

    /// Seeded temperature sampling instead of greedy decoding.
    #[must_use]
    pub fn temperature(mut self, temperature: f32, seed: u64) -> Self {
        self.options.temperature = Some((temperature, seed));
        self
    }

    /// Wall-clock budget; the serve returns a partial response when it
    /// elapses.
    #[must_use]
    pub fn deadline(mut self, budget: Duration) -> Self {
        self.options.deadline = Some(budget);
        self
    }

    /// Cooperative cancellation token, polled at phase boundaries and
    /// between decode steps.
    #[must_use]
    pub fn cancel(mut self, token: CancelToken) -> Self {
        self.options.cancel = Some(token);
        self
    }

    /// Requests the session KV view in [`Served::session`], for
    /// multi-turn continuation.
    #[must_use]
    pub fn session(mut self, on: bool) -> Self {
        self.session = on;
        self
    }

    /// Streams tokens: `sink(token_id, decoded_so_far_len)` runs as each
    /// output token is produced.
    #[must_use]
    pub fn streaming(mut self, sink: &'a (dyn Fn(TokenId, usize) + 'a)) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Routes through the baseline KV-cache path (full prefill, no
    /// reuse) — the paper's comparison baseline.
    #[must_use]
    pub fn baseline(mut self, on: bool) -> Self {
        self.baseline = on;
        self
    }

    /// The PML prompt text.
    pub fn prompt(&self) -> &str {
        &self.prompt
    }

    /// The effective option block.
    pub fn options_ref(&self) -> &ServeOptions {
        &self.options
    }

    pub(crate) fn is_baseline(&self) -> bool {
        self.baseline
    }

    /// Whether [`Served::session`] was requested.
    pub fn wants_session(&self) -> bool {
        self.session
    }

    pub(crate) fn sink(&self) -> Option<&'a (dyn Fn(TokenId, usize) + 'a)> {
        self.sink
    }
}

/// What a serve produced: the response, plus the session KV view when
/// the request asked for one. Derefs to [`Response`] so existing
/// `response.text` / `response.timings` call sites read through.
#[derive(Debug)]
pub struct Served {
    /// The generated response.
    pub response: Response,
    /// The session KV view, present iff [`ServeRequest::session`] was
    /// set (and the baseline path was not taken).
    pub session: Option<KvView>,
}

impl Served {
    /// Discards the session view (if any) and returns the response.
    pub fn into_response(self) -> Response {
        self.response
    }
}

impl std::ops::Deref for Served {
    type Target = Response;

    fn deref(&self) -> &Response {
        &self.response
    }
}
