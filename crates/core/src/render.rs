//! Tokenisation of layout spans and plain-text rendering for the baseline
//! path.

use pc_model::TokenId;
use pc_pml::layout::{LayoutSpan, Segment};
use pc_pml::resolve::{ResolvedPart, ResolvedPrompt};
use pc_tokenizer::{SpecialToken, Tokenizer};

/// Token-level view of one layout span: ids, their schema positions, and
/// where each parameter's placeholder rows sit within the span.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct SpanTokens {
    pub tokens: Vec<TokenId>,
    pub positions: Vec<usize>,
    /// `(param name, row offset within span, reserved len)`.
    pub params: Vec<(String, usize, usize)>,
}

/// Tokenises a span: text segments via the tokenizer, parameters as `len`
/// `<unk>` placeholder tokens (paper §3.3).
pub(crate) fn span_tokens(span: &LayoutSpan, tokenizer: &dyn Tokenizer) -> SpanTokens {
    let unk = tokenizer.special(SpecialToken::Unk);
    let mut tokens = Vec::with_capacity(span.len);
    let mut params = Vec::new();
    for segment in &span.segments {
        match segment {
            Segment::Text { text, .. } => tokens.extend(tokenizer.encode(text)),
            Segment::Param { name, len } => {
                params.push((name.clone(), tokens.len(), *len));
                tokens.extend(std::iter::repeat_n(unk, *len));
            }
        }
    }
    debug_assert_eq!(
        tokens.len(),
        span.len,
        "layout token counts must come from the engine tokenizer"
    );
    let positions = (span.start..span.start + tokens.len()).collect();
    SpanTokens {
        tokens,
        positions,
        params,
    }
}

/// Renders the resolved prompt as the plain text a schema-less system
/// would have received: parts ordered by position, parameters substituted,
/// unfilled placeholders dropped. This is the input to the baseline
/// KV-cache path, guaranteeing both paths see the same content.
pub(crate) fn render_plain(resolved: &ResolvedPrompt, spans: &[LayoutSpan]) -> String {
    // (position, text) pieces, then sort by position for natural order.
    let mut pieces: Vec<(usize, usize, String)> = Vec::new();
    for (order, part) in resolved.parts.iter().enumerate() {
        match part {
            ResolvedPart::Cached {
                span_index, start, ..
            } => {
                let span = &spans[*span_index];
                let mut text_parts = Vec::new();
                for segment in &span.segments {
                    match segment {
                        Segment::Text { text, .. } => text_parts.push(text.clone()),
                        Segment::Param { name, .. } => {
                            // Substitute the supplied argument, if any.
                            let arg = resolved.parts.iter().find_map(|p| match p {
                                ResolvedPart::Argument {
                                    module,
                                    param,
                                    text,
                                    ..
                                } if *module == span.owner && param == name => {
                                    Some(text.clone())
                                }
                                _ => None,
                            });
                            if let Some(arg) = arg {
                                text_parts.push(arg);
                            }
                        }
                    }
                }
                let text = text_parts.join(" ");
                if !text.is_empty() {
                    pieces.push((*start, order, text));
                }
            }
            ResolvedPart::NewText { text, start, .. } => {
                pieces.push((*start, order, text.clone()));
            }
            ResolvedPart::Argument { .. } => {} // rendered inside its span
        }
    }
    pieces.sort_by_key(|&(pos, order, _)| (pos, order));
    pieces
        .into_iter()
        .map(|(_, _, t)| t)
        .collect::<Vec<_>>()
        .join(" ")
}

/// The uncached work of a serve call: argument and new-text tokens with
/// their gap positions, in prompt order.
#[derive(Debug, Clone, Default, PartialEq)]
pub(crate) struct UncachedChunk {
    pub tokens: Vec<TokenId>,
    pub positions: Vec<usize>,
}

/// Builds the uncached chunk from a resolution.
pub(crate) fn uncached_chunk(
    resolved: &ResolvedPrompt,
    tokenizer: &dyn Tokenizer,
) -> UncachedChunk {
    let mut chunk = UncachedChunk::default();
    for part in &resolved.parts {
        match part {
            ResolvedPart::Argument { text, start, .. }
            | ResolvedPart::NewText { text, start, .. } => {
                let ids = tokenizer.encode(text);
                chunk
                    .positions
                    .extend(*start..*start + ids.len());
                chunk.tokens.extend(ids);
            }
            ResolvedPart::Cached { .. } => {}
        }
    }
    chunk
}

#[cfg(test)]
mod tests {
    use super::*;
    use pc_pml::layout::SchemaLayout;
    use pc_pml::template::ChatTemplate;
    use pc_pml::{parse_prompt, parse_schema};
    use pc_tokenizer::WordTokenizer;

    fn setup() -> (SchemaLayout, WordTokenizer) {
        let mut tok = WordTokenizer::train(&[
            "plan a trip of days miami has beaches surf and sun highlight the spots three",
        ]);
        tok.add_word("<unk>");
        let schema = parse_schema(
            r#"<schema name="t">
                 <module name="plan">plan a trip of <param name="duration" len="3"/></module>
                 <module name="miami">miami has beaches</module>
               </schema>"#,
        )
        .unwrap();
        let count = {
            let t = tok.clone();
            move |s: &str| pc_tokenizer::Tokenizer::encode(&t, s).len()
        };
        let layout = SchemaLayout::build(&schema, ChatTemplate::Plain, &count);
        (layout, tok)
    }

    #[test]
    fn span_tokens_place_unk_for_params() {
        let (layout, tok) = setup();
        let span = &layout.spans_of(&["plan".into()])[0];
        let st = span_tokens(span, &tok);
        assert_eq!(st.tokens.len(), 7); // 4 words + 3 slots
        assert_eq!(st.params, vec![("duration".to_string(), 4, 3)]);
        let unk = tok.special(pc_tokenizer::SpecialToken::Unk);
        assert_eq!(&st.tokens[4..7], &[unk, unk, unk]);
        assert_eq!(st.positions, (span.start..span.start + 7).collect::<Vec<_>>());
    }

    #[test]
    fn uncached_chunk_collects_args_and_text() {
        let (layout, tok) = setup();
        let count = {
            let t = tok.clone();
            move |s: &str| pc_tokenizer::Tokenizer::encode(&t, s).len()
        };
        let prompt = parse_prompt(
            r#"<prompt schema="t"><plan duration="three days"/><miami/>highlight the spots</prompt>"#,
        )
        .unwrap();
        let resolved = pc_pml::resolve::resolve_prompt(&layout, &prompt, &count).unwrap();
        let chunk = uncached_chunk(&resolved, &tok);
        assert_eq!(chunk.tokens.len(), 2 + 3);
        // Argument positions are the param slots (4, 5); text follows the
        // last module (miami ends at 7+3=10).
        assert_eq!(chunk.positions, vec![4, 5, 10, 11, 12]);
    }

    #[test]
    fn render_plain_orders_by_position_and_substitutes() {
        let (layout, tok) = setup();
        let count = {
            let t = tok.clone();
            move |s: &str| pc_tokenizer::Tokenizer::encode(&t, s).len()
        };
        let prompt = parse_prompt(
            r#"<prompt schema="t"><miami/><plan duration="three days"/>highlight the spots</prompt>"#,
        )
        .unwrap();
        let resolved = pc_pml::resolve::resolve_prompt(&layout, &prompt, &count).unwrap();
        let text = render_plain(&resolved, &layout.spans);
        // Position order puts plan (start 0) before miami (start 7) even
        // though the prompt imported miami first.
        assert_eq!(
            text,
            "plan a trip of three days miami has beaches highlight the spots"
        );
    }

    #[test]
    fn render_plain_drops_unfilled_params() {
        let (layout, tok) = setup();
        let count = {
            let t = tok.clone();
            move |s: &str| pc_tokenizer::Tokenizer::encode(&t, s).len()
        };
        let prompt = parse_prompt(r#"<prompt schema="t"><plan/></prompt>"#).unwrap();
        let resolved = pc_pml::resolve::resolve_prompt(&layout, &prompt, &count).unwrap();
        assert_eq!(render_plain(&resolved, &layout.spans), "plan a trip of");
    }
}
