//! Continuous batching: a scheduler that interleaves many in-flight
//! serves through one batched decode step per tick.
//!
//! [`BatchScheduler`] admits requests at any decode step (they join the
//! in-flight batch as soon as their prefill finishes) and retires them
//! independently (EOS, token budget, deadline, or cancellation). Each
//! tick of [`BatchScheduler::step`] samples one token per sequence, then
//! runs **one** batched forward pass over all survivors
//! ([`pc_model::Model::decode_step_batch`]), so the weight-matrix
//! traversal is shared across the batch while every sequence keeps its
//! own segmented [`pc_model::KvView`] over the shared module blocks.
//!
//! **Identity invariant.** The scheduler mirrors the solo decode loop
//! exactly — same cancellation poll point, same sample-then-check order,
//! same position bookkeeping — and the batched kernels are bit-identical
//! to their solo counterparts, so a greedy serve produces byte-identical
//! output whether it runs alone or joins a batch of any size and any
//! membership history.

use crate::engine::{Prepared, PromptCache, ServeOptions};
use crate::response::{Response, ServeOutcome};
use crate::Result;
use pc_model::{BatchScratch, KvSeq, PrefixGroup, TokenId};
use pc_telemetry::export::SCHEDULER_TICK_SPAN;
use pc_telemetry::{Counter, Gauge, Histogram, Telemetry};
use std::time::Duration;

/// Configuration for a [`BatchScheduler`].
///
/// ```
/// use prompt_cache::BatchConfig;
///
/// let config = BatchConfig::default().max_batch_size(4);
/// assert_eq!(config.max_batch_size, 4);
/// ```
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct BatchConfig {
    /// Upper bound on concurrently decoding sequences. Admission beyond
    /// the bound is the caller's to gate (the server's batch loop stops
    /// pulling from the queue when the batch is full).
    pub max_batch_size: usize,
    /// Whether the batched decode step groups sequences by shared
    /// leading KV segments and streams each shared row once per group
    /// (the prefix-aware two-phase kernel). Off routes every sequence
    /// through the per-sequence kernel. Output is byte-identical either
    /// way — the switch is the A/B oracle and a row-traffic comparison
    /// knob, on by default.
    pub prefix_sharing: bool,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            max_batch_size: 8,
            prefix_sharing: true,
        }
    }
}

impl BatchConfig {
    /// Sets the maximum number of concurrently decoding sequences.
    #[must_use]
    pub fn max_batch_size(mut self, n: usize) -> Self {
        self.max_batch_size = n.max(1);
        self
    }

    /// Enables or disables the prefix-aware batched attention kernel
    /// (see [`BatchConfig::prefix_sharing`]).
    #[must_use]
    pub fn prefix_sharing(mut self, on: bool) -> Self {
        self.prefix_sharing = on;
        self
    }
}

/// Pre-resolved batching telemetry handles.
struct BatchMetrics {
    /// Current in-flight batch size.
    batch_size: Gauge,
    /// Batch occupancy observed at each step.
    occupancy: Histogram,
    /// Tokens generated across all batched sequences.
    tokens: Counter,
    /// Batched decode steps executed.
    steps: Counter,
    /// KV rows streamed once per prefix group by the two-phase kernel.
    shared_rows: Counter,
    /// KV rows streamed for a single sequence (tails, unshared caches,
    /// or everything when prefix sharing is off).
    private_rows: Counter,
    /// Shared fraction of the last tick's KV row reads, in percent.
    share_ratio: Gauge,
}

impl BatchMetrics {
    fn resolve(telemetry: &Telemetry) -> Self {
        BatchMetrics {
            batch_size: telemetry.gauge("pc_batch_size"),
            occupancy: telemetry
                .histogram("pc_batch_occupancy", &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0]),
            tokens: telemetry.counter("pc_tokens_generated_total"),
            steps: telemetry.counter("pc_batch_steps_total"),
            shared_rows: telemetry.counter("pc_kv_rows_shared_read_total"),
            private_rows: telemetry.counter("pc_kv_rows_private_read_total"),
            share_ratio: telemetry.gauge("pc_batch_share_ratio"),
        }
    }
}

/// Point-in-time batch state reported by
/// [`BatchScheduler::debug_snapshot`] — the `/debug/batch` payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchSnapshot {
    /// Configured batch-size ceiling.
    pub max_batch_size: usize,
    /// Whether the prefix-aware kernel is enabled.
    pub prefix_sharing: bool,
    /// Every in-flight sequence, in batch order.
    pub sequences: Vec<BatchSeqInfo>,
    /// The prefix groups the next prefix-aware tick would form.
    pub groups: Vec<BatchGroupInfo>,
}

/// One in-flight sequence in a [`BatchSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchSeqInfo {
    /// Caller-assigned request id.
    pub id: u64,
    /// Tokens sampled so far.
    pub tokens_generated: usize,
    /// Next decode position.
    pub next_pos: usize,
    /// KV rows this sequence aliases zero-copy from shared modules.
    pub shared_rows: usize,
}

/// One prefix group in a [`BatchSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchGroupInfo {
    /// Request ids of the group's members (contiguous batch run).
    pub members: Vec<u64>,
    /// Leading segments every member shares.
    pub prefix_segments: usize,
    /// KV rows those segments contribute.
    pub prefix_rows: usize,
    /// Whether the group shares rows worth hoisting (len ≥ 2 and rows > 0).
    pub shared: bool,
}

/// One in-flight sequence: a prepared serve plus its decode progress.
struct Seq {
    id: u64,
    p: Box<crate::engine::PendingDecode>,
    tokens: Vec<TokenId>,
    ttft: Duration,
}

/// A continuous-batching scheduler over one engine.
///
/// Drive it by alternating [`BatchScheduler::admit`] (join — any time,
/// including mid-decode of the existing batch) and
/// [`BatchScheduler::step`] (one token for every in-flight sequence;
/// finished sequences leave and are returned). Single-threaded by
/// design: the caller owns the loop, the scheduler owns the batch.
pub struct BatchScheduler<'e> {
    engine: &'e PromptCache,
    config: BatchConfig,
    seqs: Vec<Seq>,
    /// Serves that completed during `admit` (interrupted before decode,
    /// or zero-budget), delivered at the next `step`.
    done: Vec<(u64, Response)>,
    metrics: BatchMetrics,
    /// Where tick spans are recorded (defaults to the engine's handle;
    /// [`BatchScheduler::with_telemetry`] re-targets it).
    telemetry: Telemetry,
    /// Model-owned buffers (activations, scores, CSR segment lists,
    /// prefix groups) reused across every tick of this scheduler.
    scratch: BatchScratch,
}

impl<'e> BatchScheduler<'e> {
    /// A scheduler over `engine`, reporting through the engine's
    /// telemetry.
    pub fn new(engine: &'e PromptCache, config: BatchConfig) -> Self {
        let metrics = BatchMetrics::resolve(engine.telemetry());
        BatchScheduler {
            engine,
            config,
            seqs: Vec::new(),
            done: Vec::new(),
            metrics,
            telemetry: engine.telemetry().clone(),
            scratch: BatchScratch::new(),
        }
    }

    /// Re-resolves the batching metrics (`pc_batch_size`,
    /// `pc_batch_occupancy`, `pc_tokens_generated_total`,
    /// `pc_batch_steps_total`, `pc_kv_rows_shared_read_total`,
    /// `pc_kv_rows_private_read_total`, `pc_batch_share_ratio`) against
    /// `telemetry` instead of the engine's registry — the server uses
    /// this to record into its always-on registry even when engine
    /// telemetry is disabled.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: &Telemetry) -> Self {
        self.metrics = BatchMetrics::resolve(telemetry);
        self.telemetry = telemetry.clone();
        self
    }

    /// Number of sequences currently decoding.
    pub fn in_flight(&self) -> usize {
        self.seqs.len()
    }

    /// Whether the batch has room for another admission.
    pub fn has_capacity(&self) -> bool {
        self.seqs.len() < self.config.max_batch_size
    }

    /// Whether nothing is in flight and nothing is waiting to be
    /// delivered.
    pub fn is_idle(&self) -> bool {
        self.seqs.is_empty() && self.done.is_empty()
    }

    /// Admits a request: runs the prepare half of the serve pipeline
    /// (resolve → fetch → prefill) and joins the in-flight batch at the
    /// current decode step. Requests that finish without decoding
    /// (interrupted, zero token budget) are delivered by the next
    /// [`BatchScheduler::step`].
    ///
    /// To keep same-prefix sequences in **contiguous** batch runs — the
    /// shape the prefix-aware kernel groups on — a new sequence is
    /// inserted directly after the last in-flight sequence whose cache
    /// leads with the same shared segment; unrelated sequences append at
    /// the end. Batch position never affects any sequence's output (each
    /// attends only to its own cache), so this reordering is invisible
    /// in results.
    ///
    /// # Errors
    ///
    /// PML/resolution errors, unknown schemas, or model failures during
    /// prefill — the request never joins the batch.
    pub fn admit(&mut self, id: u64, prompt_pml: &str, options: &ServeOptions) -> Result<()> {
        match self.engine.begin_serve(prompt_pml, options)? {
            Prepared::Done(response, _view) => {
                self.done.push((id, *response));
            }
            Prepared::Ready(p) => {
                if p.max_new_tokens == 0 {
                    // Mirror the solo loop: a zero budget produces an
                    // empty completion without a single decode step.
                    let (response, _view) = self.engine.finalize_serve(
                        *p,
                        Vec::new(),
                        Duration::ZERO,
                        Duration::ZERO,
                        ServeOutcome::Complete,
                    );
                    self.done.push((id, response));
                } else {
                    let seq = Seq {
                        id,
                        p,
                        tokens: Vec::new(),
                        ttft: Duration::ZERO,
                    };
                    let at = seq
                        .p
                        .view
                        .shared_segment_id(0)
                        .and_then(|lead| {
                            self.seqs
                                .iter()
                                .rposition(|s| s.p.view.shared_segment_id(0) == Some(lead))
                        })
                        .map_or(self.seqs.len(), |last| last + 1);
                    self.seqs.insert(at, seq);
                }
            }
        }
        self.metrics.batch_size.set(self.seqs.len() as i64);
        Ok(())
    }

    /// One scheduler tick: sample a token for every in-flight sequence,
    /// retire the finished ones (EOS / budget / interruption), and run a
    /// single batched forward pass over the survivors. Returns every
    /// serve that completed this tick (including those finished at
    /// admission), in no particular order.
    pub fn step(&mut self) -> Vec<(u64, Result<Response>)> {
        let mut out: Vec<(u64, Result<Response>)> = self
            .done
            .drain(..)
            .map(|(id, response)| (id, Ok(response)))
            .collect();
        if self.seqs.is_empty() {
            self.metrics.batch_size.set(0);
            return out;
        }
        self.metrics.occupancy.observe(self.seqs.len() as f64);
        self.metrics.steps.inc();
        // The tick span wraps phase A + B; the Chrome-trace exporter
        // routes spans with this name to a dedicated logical lane so
        // scheduler ticks don't interleave with worker spans.
        let _tick_span = self.telemetry.span(SCHEDULER_TICK_SPAN);

        // Phase A — per-sequence sampling, mirroring the solo decode
        // loop: poll interruption, sample, record TTFT on the first
        // token, retire on EOS or budget exhaustion.
        let seqs = std::mem::take(&mut self.seqs);
        let mut still: Vec<Seq> = Vec::with_capacity(seqs.len());
        for mut seq in seqs {
            if let Some(outcome) = seq.p.cancel.interruption() {
                out.push(self.finish(seq, outcome));
                continue;
            }
            let token = seq.p.sampler.sample(&seq.p.logits);
            seq.tokens.push(token);
            if seq.tokens.len() == 1 {
                seq.ttft = seq.p.started.elapsed();
            }
            self.metrics.tokens.inc();
            if token == seq.p.eos || seq.tokens.len() == seq.p.max_new_tokens {
                out.push(self.finish(seq, ServeOutcome::Complete));
            } else {
                still.push(seq);
            }
        }

        // Phase B — one batched forward pass over every survivor: each
        // sequence contributes its last sampled token at its own next
        // position, against its own segmented cache view.
        if !still.is_empty() {
            let tokens: Vec<TokenId> = still.iter().map(|s| *s.tokens.last().expect("sampled")).collect();
            let positions: Vec<usize> = still.iter().map(|s| s.p.next_pos).collect();
            let batch = {
                let mut views: Vec<&mut pc_model::KvView> =
                    still.iter_mut().map(|s| &mut s.p.view).collect();
                self.engine.model().decode_step_batch_with(
                    &tokens,
                    &positions,
                    &mut views,
                    &mut self.scratch,
                    self.config.prefix_sharing,
                )
            };
            let stats = self.scratch.stats();
            self.metrics.shared_rows.add(stats.shared_rows_read);
            self.metrics.private_rows.add(stats.private_rows_read);
            if stats.total_rows_read() > 0 {
                self.metrics.share_ratio.set(stats.share_percent());
            }
            // Per-module shared-row attribution (opt-in via the store's
            // analytics table): each shared group's prefix segments were
            // streamed once for the whole group this tick; credit those
            // row reads (in the same row × layer units as the counters
            // above) to the modules the segments alias.
            if stats.shared_rows_read > 0 {
                if let Some(analytics) = self.engine.store().analytics() {
                    let layers = self.engine.model().config().num_layers as u64;
                    for g in self.scratch.groups() {
                        if !g.is_shared() {
                            continue;
                        }
                        let view = &still[g.start].p.view;
                        for i in 0..g.prefix_segments {
                            if let Some(id) = view.shared_segment_id(i) {
                                analytics
                                    .record_shared_rows_for_segment(id, id.rows() as u64 * layers);
                            }
                        }
                    }
                }
            }
            match batch {
                Ok(rows) => {
                    for (seq, row) in still.iter_mut().zip(rows) {
                        seq.p.logits = row;
                        seq.p.next_pos += 1;
                    }
                    self.seqs = still;
                }
                Err(_) => {
                    // A malformed member would poison the whole batched
                    // step; fall back to per-sequence solo passes so the
                    // failure is attributed to the sequence that caused
                    // it and the rest of the batch survives.
                    for (i, mut seq) in still.into_iter().enumerate() {
                        match self.engine.model().prefill(
                            &tokens[i..=i],
                            &positions[i..=i],
                            &mut seq.p.view,
                        ) {
                            Ok(logits) => {
                                seq.p.logits = logits;
                                seq.p.next_pos += 1;
                                self.seqs.push(seq);
                            }
                            Err(e) => out.push((seq.id, Err(e.into()))),
                        }
                    }
                }
            }
        }
        self.metrics.batch_size.set(self.seqs.len() as i64);
        out
    }

    /// Point-in-time view of the batch for `/debug/batch`: every
    /// in-flight sequence plus the prefix groups the next prefix-aware
    /// tick would form, recomputed fresh over the current membership so
    /// admissions since the last tick are included.
    pub fn debug_snapshot(&self) -> BatchSnapshot {
        let mut groups: Vec<PrefixGroup> = Vec::new();
        pc_model::group_adjacent_prefixes(
            self.seqs.len(),
            |s, i| self.seqs[s].p.view.shared_segment_id(i),
            &mut groups,
        );
        BatchSnapshot {
            max_batch_size: self.config.max_batch_size,
            prefix_sharing: self.config.prefix_sharing,
            sequences: self
                .seqs
                .iter()
                .map(|s| BatchSeqInfo {
                    id: s.id,
                    tokens_generated: s.tokens.len(),
                    next_pos: s.p.next_pos,
                    shared_rows: s.p.view.shared_rows(),
                })
                .collect(),
            groups: groups
                .iter()
                .map(|g| BatchGroupInfo {
                    members: self.seqs[g.start..g.start + g.len]
                        .iter()
                        .map(|s| s.id)
                        .collect(),
                    prefix_segments: g.prefix_segments,
                    prefix_rows: g.prefix_rows,
                    shared: g.is_shared(),
                })
                .collect(),
        }
    }

    /// Retires one sequence through the shared finalize half of the
    /// serve pipeline.
    fn finish(&self, seq: Seq, outcome: ServeOutcome) -> (u64, Result<Response>) {
        let Seq { id, p, tokens, ttft } = seq;
        let decode = if tokens.is_empty() {
            Duration::ZERO
        } else {
            p.started.elapsed().saturating_sub(ttft)
        };
        let (response, _view) = self.engine.finalize_serve(*p, tokens, ttft, decode, outcome);
        (id, Ok(response))
    }
}

impl std::fmt::Debug for BatchScheduler<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchScheduler")
            .field("max_batch_size", &self.config.max_batch_size)
            .field("in_flight", &self.seqs.len())
            .field("pending_done", &self.done.len())
            .finish()
    }
}
