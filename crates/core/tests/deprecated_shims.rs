//! The deprecated `serve_*` shims must keep compiling and keep
//! producing exactly what the unified [`PromptCache::serve`] produces —
//! this file is the compile-and-equivalence gate for the migration
//! window.

#![allow(deprecated)]

use prompt_cache::{EngineConfig, PromptCache, ServeOptions, ServeRequest, Served};
use pc_model::{KvSeq, Model, ModelConfig};
use pc_tokenizer::{Tokenizer, WordTokenizer};

const CORPUS: &str = "alpha beta gamma delta epsilon zeta eta theta answer the question now";
const SCHEMA: &str =
    r#"<schema name="r"><module name="ctx">alpha beta gamma delta epsilon zeta eta theta</module></schema>"#;
const PROMPT: &str = r#"<prompt schema="r"><ctx/>answer the question now</prompt>"#;

fn engine() -> PromptCache {
    let tokenizer = WordTokenizer::train(&[CORPUS]);
    let vocab = tokenizer.vocab_size().max(64);
    let engine = PromptCache::new(
        Model::new(ModelConfig::llama_tiny(vocab), 13),
        tokenizer,
        EngineConfig::default(),
    );
    engine.register_schema(SCHEMA).unwrap();
    engine
}

#[test]
fn serve_with_matches_serve() {
    let engine = engine();
    let options = ServeOptions::default().max_new_tokens(6);
    let old = engine.serve_with(PROMPT, &options).unwrap();
    let new = engine
        .serve(&ServeRequest::new(PROMPT).options(options.clone()))
        .map(Served::into_response)
        .unwrap();
    assert_eq!(old.tokens, new.tokens);
    assert_eq!(old.text, new.text);
}

#[test]
fn serve_streaming_matches_streaming_request() {
    let engine = engine();
    let options = ServeOptions::default().max_new_tokens(6);
    let mut old_stream = Vec::new();
    let old = engine
        .serve_streaming(PROMPT, &options, &mut |t, n| old_stream.push((t, n)))
        .unwrap();
    let new_stream = std::cell::RefCell::new(Vec::new());
    let sink = |t, n| new_stream.borrow_mut().push((t, n));
    let new = engine
        .serve(&ServeRequest::new(PROMPT).options(options.clone()).streaming(&sink))
        .map(Served::into_response)
        .unwrap();
    assert_eq!(old.tokens, new.tokens);
    assert_eq!(old_stream, new_stream.into_inner());
}

#[test]
fn serve_session_matches_session_request() {
    let engine = engine();
    let options = ServeOptions::default().max_new_tokens(4);
    let (old, old_view) = engine
        .serve_session(PROMPT, &options, &mut |_, _| {})
        .unwrap();
    let served = engine
        .serve(&ServeRequest::new(PROMPT).options(options.clone()).session(true))
        .unwrap();
    let new_view = served.session.expect("session requested");
    assert_eq!(old.tokens, served.response.tokens);
    assert_eq!(old_view.len(), new_view.len());
    assert_eq!(old_view.materialize(), new_view.materialize());
}

#[test]
fn serve_baseline_matches_baseline_request() {
    let engine = engine();
    let options = ServeOptions::default().max_new_tokens(6);
    let old = engine.serve_baseline(PROMPT, &options).unwrap();
    let new = engine
        .serve(&ServeRequest::new(PROMPT).options(options.clone()).baseline(true))
        .map(Served::into_response)
        .unwrap();
    assert_eq!(old.tokens, new.tokens);
    assert_eq!(old.stats.cached_tokens, 0);
    assert_eq!(new.stats.cached_tokens, 0);
}
