//! End-to-end engine tests: the correctness claims of cached inference.
//!
//! The central one is **reuse ≡ recomputation**: when a prompt's prefix is
//! one cached module, Prompt Cache must produce exactly the tokens the
//! baseline full prefill produces, because causal attention makes the
//! module's states identical in both paths. Multi-module prompts introduce
//! the paper's documented cross-module masking approximation; scaffolds
//! (§3.3) remove it again, which the tests also pin down.

use pc_model::{Family, Model, ModelConfig};
use pc_tokenizer::WordTokenizer;
use prompt_cache::{EngineConfig, EngineError, PromptCache, ServeOptions};
use prompt_cache::{ServeRequest, Served};

const CORPUS: &str = "the miami coast has warm beaches surf and sun all year \
    tokyo offers temples gardens and remarkable food in every district \
    plan a detailed trip of days for a traveler who loves the water \
    you are a helpful travel assistant highlight surf spots please \
    answer the following question about documents provided above";

fn engine(family: Family) -> PromptCache {
    let cfg = match family {
        Family::Llama => ModelConfig::llama_tiny(256),
        Family::Falcon => ModelConfig::falcon_tiny(256),
        Family::Mpt => ModelConfig::mpt_tiny(256),
        Family::Gpt2 => ModelConfig::gpt2_tiny(256),
    };
    let model = Model::new(cfg, 42);
    let tokenizer = WordTokenizer::train(&[CORPUS]);
    PromptCache::new(model, tokenizer, EngineConfig::default())
}

const SINGLE_MODULE: &str = r#"
  <schema name="doc">
    <module name="beach">
      the miami coast has warm beaches surf and sun all year
    </module>
  </schema>"#;

const MULTI_MODULE: &str = r#"
  <schema name="trip">
    you are a helpful travel assistant
    <module name="plan">plan a detailed trip of <param name="duration" len="3"/></module>
    <union>
      <module name="miami">the miami coast has warm beaches surf and sun</module>
      <module name="tokyo">tokyo offers temples gardens and remarkable food</module>
    </union>
  </schema>"#;

#[test]
fn single_module_cached_equals_baseline_exactly() {
    // One module covering the whole prefix: cached inference sees exactly
    // the states a full prefill computes, so greedy outputs must agree.
    for family in [Family::Llama, Family::Falcon, Family::Mpt, Family::Gpt2] {
        let engine = engine(family);
        engine.register_schema(SINGLE_MODULE).unwrap();
        let prompt = r#"<prompt schema="doc"><beach/>highlight surf spots please</prompt>"#;
        let opts = ServeOptions::default().max_new_tokens(8);
        let cached = engine.serve(&ServeRequest::new(prompt).options(opts.clone())).map(Served::into_response).unwrap();
        let baseline = engine.serve(&ServeRequest::new(prompt).options(opts.clone()).baseline(true)).map(Served::into_response).unwrap();
        assert_eq!(
            cached.tokens, baseline.tokens,
            "family {family:?}: cached {:?} vs baseline {:?}",
            cached.text, baseline.text
        );
        assert!(cached.stats.cached_tokens > 0);
        assert_eq!(baseline.stats.cached_tokens, 0);
    }
}

#[test]
fn serve_reports_cache_split() {
    let engine = engine(Family::Llama);
    engine.register_schema(SINGLE_MODULE).unwrap();
    let r = engine
        .serve(&ServeRequest::new(r#"<prompt schema="doc"><beach/>highlight surf spots please</prompt>"#).max_new_tokens(4)).map(Served::into_response)
        .unwrap();
    assert_eq!(r.stats.cached_tokens, 11); // module tokens
    assert_eq!(r.stats.new_tokens, 4);
    assert!((r.stats.hit_ratio() - 11.0 / 15.0).abs() < 1e-9);
    assert!(r.stats.bytes_reused > 0);
    assert_eq!(r.tokens.len(), 4);
}

#[test]
fn parameters_substitute_and_match_baseline_when_full_width() {
    // Argument exactly fills the declared slot → position layout matches
    // the baseline exactly; single-module schema keeps attention equal.
    let engine = engine(Family::Llama);
    engine
        .register_schema(
            r#"<schema name="p">
                 <module name="plan">plan a detailed trip of <param name="duration" len="3"/></module>
               </schema>"#,
        )
        .unwrap();
    let prompt =
        r#"<prompt schema="p"><plan duration="days for traveler"/>highlight surf spots</prompt>"#;
    let opts = ServeOptions::default().max_new_tokens(6);
    let cached = engine.serve(&ServeRequest::new(prompt).options(opts.clone())).map(Served::into_response).unwrap();
    let baseline = engine.serve(&ServeRequest::new(prompt).options(opts.clone()).baseline(true)).map(Served::into_response).unwrap();
    assert_eq!(cached.tokens, baseline.tokens);
    // 5 module text tokens cached; 3 argument + 3 text computed.
    assert_eq!(cached.stats.cached_tokens, 5);
    assert_eq!(cached.stats.new_tokens, 6);
}

#[test]
fn short_arguments_leave_trailing_gap() {
    let engine = engine(Family::Llama);
    engine.register_schema(MULTI_MODULE).unwrap();
    let r = engine
        .serve(&ServeRequest::new(r#"<prompt schema="trip"><plan duration="days"/><miami/>highlight surf spots</prompt>"#).max_new_tokens(4)).map(Served::into_response)
        .unwrap();
    // plan text (5) + miami (8) + anonymous (6) cached; 1 arg + 3 text new.
    assert_eq!(r.stats.new_tokens, 4);
    assert!(r.tokens.len() <= 4);
}

#[test]
fn union_members_are_mutually_exclusive_but_both_usable() {
    let engine = engine(Family::Llama);
    engine.register_schema(MULTI_MODULE).unwrap();
    let opts = ServeOptions::default().max_new_tokens(4);
    let miami = engine
        .serve(&ServeRequest::new(r#"<prompt schema="trip"><miami/>highlight surf spots</prompt>"#).options(opts.clone())).map(Served::into_response)
        .unwrap();
    let tokyo = engine
        .serve(&ServeRequest::new(r#"<prompt schema="trip"><tokyo/>highlight surf spots</prompt>"#).options(opts.clone())).map(Served::into_response)
        .unwrap();
    // Different selected context should generally steer generation apart —
    // at minimum both must serve from cache successfully.
    assert!(miami.stats.cached_tokens > 0 && tokyo.stats.cached_tokens > 0);
    let both = engine.serve(&ServeRequest::new(r#"<prompt schema="trip"><miami/><tokyo/>x</prompt>"#).options(opts.clone())).map(Served::into_response);
    assert!(matches!(
        both,
        Err(EngineError::Pml(pc_pml::PmlError::UnionConflict { .. }))
    ));
}

#[test]
fn scaffold_restores_baseline_equivalence() {
    // Two separate modules diverge from the baseline (masking effect);
    // scaffolding them back together must restore exact agreement.
    let schema = r#"
      <schema name="two">
        <module name="a">the miami coast has warm beaches</module>
        <module name="b">tokyo offers temples gardens and remarkable food</module>
      </schema>"#;
    let prompt = r#"<prompt schema="two"><a/><b/>answer the following question</prompt>"#;
    let opts = ServeOptions::default().max_new_tokens(8);

    let engine = engine(Family::Llama);
    engine.register_schema(schema).unwrap();
    engine.add_scaffold("two", &["a", "b"]).unwrap();

    let scaffolded = engine.serve(&ServeRequest::new(prompt).options(opts.clone())).map(Served::into_response).unwrap();
    assert!(scaffolded.stats.used_scaffold);
    let baseline = engine.serve(&ServeRequest::new(prompt).options(opts.clone()).baseline(true)).map(Served::into_response).unwrap();
    assert_eq!(scaffolded.tokens, baseline.tokens);

    // Without scaffolds, the masking approximation is in play (states are
    // genuinely different even if greedy tokens may coincide).
    let masked = engine
        .serve(&ServeRequest::new(prompt).options(opts.clone().use_scaffolds(false).clone())).map(Served::into_response)
        .unwrap();
    assert!(!masked.stats.used_scaffold);
}

#[test]
fn scaffold_requires_known_plain_modules() {
    let engine = engine(Family::Llama);
    engine.register_schema(MULTI_MODULE).unwrap();
    assert!(matches!(
        engine.add_scaffold("trip", &["missing"]),
        Err(EngineError::InvalidScaffold { .. })
    ));
    assert!(matches!(
        engine.add_scaffold("trip", &["plan"]), // has a parameter
        Err(EngineError::InvalidScaffold { .. })
    ));
    assert!(matches!(
        engine.add_scaffold("nope", &["miami"]),
        Err(EngineError::UnknownSchema { .. })
    ));
}

#[test]
fn module_only_prompt_still_generates() {
    let engine = engine(Family::Llama);
    engine.register_schema(SINGLE_MODULE).unwrap();
    let r = engine
        .serve(&ServeRequest::new(r#"<prompt schema="doc"><beach/></prompt>"#).max_new_tokens(4)).map(Served::into_response)
        .unwrap();
    assert_eq!(r.tokens.len(), 4);
    // The re-derived final token costs one row of cache reuse.
    assert_eq!(r.stats.cached_tokens, 11);
    assert_eq!(r.stats.new_tokens, 0);
}

#[test]
fn module_only_prompt_matches_baseline() {
    let engine = engine(Family::Llama);
    engine.register_schema(SINGLE_MODULE).unwrap();
    let prompt = r#"<prompt schema="doc"><beach/></prompt>"#;
    let opts = ServeOptions::default().max_new_tokens(6);
    let cached = engine.serve(&ServeRequest::new(prompt).options(opts.clone())).map(Served::into_response).unwrap();
    let baseline = engine.serve(&ServeRequest::new(prompt).options(opts.clone()).baseline(true)).map(Served::into_response).unwrap();
    assert_eq!(cached.tokens, baseline.tokens);
}

#[test]
fn unknown_schema_and_duplicate_registration() {
    let engine = engine(Family::Llama);
    assert!(matches!(
        engine.serve(&ServeRequest::new(r#"<prompt schema="ghost">x</prompt>"#).max_new_tokens(1)).map(Served::into_response),
        Err(EngineError::UnknownSchema { .. })
    ));
    engine.register_schema(SINGLE_MODULE).unwrap();
    assert!(matches!(
        engine.register_schema(SINGLE_MODULE),
        Err(EngineError::SchemaAlreadyRegistered { .. })
    ));
    engine.unregister_schema("doc");
    assert!(engine.register_schema(SINGLE_MODULE).is_ok());
}

#[test]
fn empty_prompt_rejected() {
    let engine = engine(Family::Llama);
    engine
        .register_schema(r#"<schema name="empty"><module name="m"></module></schema>"#)
        .unwrap();
    assert!(matches!(
        engine.serve(&ServeRequest::new(r#"<prompt schema="empty"></prompt>"#).max_new_tokens(1)).map(Served::into_response),
        Err(EngineError::EmptyPrompt)
    ));
}

#[test]
fn decode_is_deterministic_across_serves() {
    let engine = engine(Family::Llama);
    engine.register_schema(SINGLE_MODULE).unwrap();
    let prompt = r#"<prompt schema="doc"><beach/>highlight surf spots</prompt>"#;
    let a = engine.serve(&ServeRequest::new(prompt).max_new_tokens(8)).map(Served::into_response).unwrap();
    let b = engine.serve(&ServeRequest::new(prompt).max_new_tokens(8)).map(Served::into_response).unwrap();
    assert_eq!(a.tokens, b.tokens);
}

#[test]
fn temperature_sampling_is_seeded() {
    let engine = engine(Family::Llama);
    engine.register_schema(SINGLE_MODULE).unwrap();
    let prompt = r#"<prompt schema="doc"><beach/>highlight surf spots</prompt>"#;
    let opts = |seed| ServeOptions::default().max_new_tokens(8).temperature(0.8, seed);
    let a = engine.serve(&ServeRequest::new(prompt).options(opts(7).clone())).map(Served::into_response).unwrap();
    let b = engine.serve(&ServeRequest::new(prompt).options(opts(7).clone())).map(Served::into_response).unwrap();
    assert_eq!(a.tokens, b.tokens);
}

#[test]
fn batch_sharing_accounts_shared_modules() {
    let engine = engine(Family::Llama);
    engine.register_schema(SINGLE_MODULE).unwrap();
    let prompts = [
        r#"<prompt schema="doc"><beach/>highlight surf spots</prompt>"#,
        r#"<prompt schema="doc"><beach/>answer the question</prompt>"#,
        r#"<prompt schema="doc"><beach/>plan a trip</prompt>"#,
    ];
    let report = engine
        .serve_batch(&prompts, &ServeOptions::default().max_new_tokens(2))
        .unwrap();
    assert_eq!(report.responses.len(), 3);
    // The 11-token module is held once instead of three times.
    assert!(report.sharing.savings() > 0.4, "{:?}", report.sharing);
}

#[test]
fn ttft_improves_over_baseline_for_long_modules() {
    // Not a micro-benchmark — just the directional claim on a module big
    // enough that prefill dominates.
    let doc: String = (0..400).map(|i| format!("w{} ", i % 37)).collect();
    let schema = format!(r#"<schema name="big"><module name="doc">{doc}</module></schema>"#);
    let model = Model::new(ModelConfig::llama_tiny(300), 3);
    let tokenizer = WordTokenizer::train(&[doc.as_str(), "what is the answer"]);
    let engine = PromptCache::new(model, tokenizer, EngineConfig::default());
    engine.register_schema(&schema).unwrap();
    let prompt = r#"<prompt schema="big"><doc/>what is the answer</prompt>"#;
    let opts = ServeOptions::default().max_new_tokens(1);
    // Warm up once, then compare.
    engine.serve(&ServeRequest::new(prompt).options(opts.clone())).map(Served::into_response).unwrap();
    let cached = engine.serve(&ServeRequest::new(prompt).options(opts.clone())).map(Served::into_response).unwrap();
    let baseline = engine.serve(&ServeRequest::new(prompt).options(opts.clone()).baseline(true)).map(Served::into_response).unwrap();
    assert!(
        cached.timings.ttft < baseline.timings.ttft,
        "cached {:?} >= baseline {:?}",
        cached.timings.ttft,
        baseline.timings.ttft
    );
}

#[test]
fn store_stats_reflect_serving() {
    let engine = engine(Family::Llama);
    engine.register_schema(SINGLE_MODULE).unwrap();
    let before = engine.store_stats();
    engine
        .serve(&ServeRequest::new(r#"<prompt schema="doc"><beach/>question</prompt>"#).max_new_tokens(1)).map(Served::into_response)
        .unwrap();
    let after = engine.store_stats();
    assert!(after.hits > before.hits);
    assert!(engine.cached_bytes() > 0);
}

#[test]
fn prompt_program_schema_serves() {
    use pc_pml::program::PromptProgram;
    let schema = PromptProgram::new("prog")
        .text("you are a helpful travel assistant")
        .cond("surf", |m| m.text("the miami coast has warm beaches surf"))
        .build();
    let engine = engine(Family::Llama);
    engine.register_schema_ast(&schema).unwrap();
    let r = engine
        .serve(&ServeRequest::new(r#"<prompt schema="prog"><surf/>plan a trip</prompt>"#).max_new_tokens(3)).map(Served::into_response)
        .unwrap();
    assert!(r.stats.cached_tokens > 0);
}

#[test]
fn bpe_tokenizer_serves_with_documented_boundary_caveat() {
    // With a sub-word (byte-level BPE) tokenizer, the cached path encodes
    // each segment independently while the baseline encodes the rendered
    // prompt as one string — so whitespace/merges at segment boundaries
    // can legitimately differ between the two paths (the paper's HF
    // prototype shares this property; its tokenizers split on whitespace,
    // hiding it). The engine must still serve correctly and account
    // exactly.
    use pc_tokenizer::{BpeTokenizer, Tokenizer};
    let corpus = "the miami coast has warm beaches surf and sun highlight surf spots";
    let tokenizer = BpeTokenizer::train(&[corpus], 340);
    let module_text = "the miami coast has warm beaches";
    let module_tokens = tokenizer.encode(module_text).len();
    let question = "highlight surf spots";
    let question_tokens = tokenizer.encode(question).len();
    let model = Model::new(ModelConfig::llama_tiny(512), 42);
    let engine = PromptCache::new(model, tokenizer, EngineConfig::default());
    engine
        .register_schema(&format!(
            r#"<schema name="bpe"><module name="m">{module_text}</module></schema>"#
        ))
        .unwrap();
    let r = engine
        .serve(&ServeRequest::new(&format!(r#"<prompt schema="bpe"><m/>{question}</prompt>"#)).max_new_tokens(4)).map(Served::into_response)
        .unwrap();
    assert_eq!(r.stats.cached_tokens, module_tokens);
    assert_eq!(r.stats.new_tokens, question_tokens);
    assert_eq!(r.tokens.len(), 4);
    // Baseline path also serves; token streams may differ only through
    // the boundary-whitespace encoding, never through reuse itself.
    let baseline = engine
        .serve(&ServeRequest::new(&format!(r#"<prompt schema="bpe"><m/>{question}</prompt>"#)).options(ServeOptions::default().max_new_tokens(4)).baseline(true)).map(Served::into_response)
        .unwrap();
    assert_eq!(baseline.tokens.len(), 4);
}

#[test]
fn cold_registration_serves_byte_identically() {
    // A cold registration (RegisterOptions::warm(false)) records the
    // layout but encodes nothing; serving re-encodes missing modules
    // through the degrade-on-miss path. The fleet relies on this for
    // non-owner workers, so the output must match a warm engine exactly.
    use prompt_cache::RegisterOptions;
    let warm = engine(Family::Llama);
    warm.register_schema(MULTI_MODULE).unwrap();
    let cold = engine(Family::Llama);
    let info = cold
        .register_schema_with(MULTI_MODULE, &RegisterOptions::new().warm(false))
        .unwrap();
    assert_eq!(info.cached_tokens, 0, "cold registration encodes nothing");
    assert_eq!(cold.cached_bytes(), 0);

    let prompt = r#"<prompt schema="trip"><plan duration="two"/><miami/>please</prompt>"#;
    let opts = ServeOptions::default().max_new_tokens(8);
    let a = warm
        .serve(&ServeRequest::new(prompt).options(opts.clone()))
        .map(Served::into_response)
        .unwrap();
    let b = cold
        .serve(&ServeRequest::new(prompt).options(opts.clone()))
        .map(Served::into_response)
        .unwrap();
    assert_eq!(a.tokens, b.tokens);
    assert_eq!(a.text, b.text);
    assert!(b.stats.degraded_spans > 0, "cold serve re-encoded spans");
    // After the first serve the re-encoded modules are hot: a second
    // serve hits them without degrading.
    let c = cold
        .serve(&ServeRequest::new(prompt).options(opts))
        .map(Served::into_response)
        .unwrap();
    assert_eq!(a.tokens, c.tokens);
    assert_eq!(c.stats.degraded_spans, 0);
}
