//! Scheduler-level guarantees for prefix-aware batched decode: flipping
//! [`BatchConfig::prefix_sharing`] is a pure A/B switch — byte-identical
//! responses either way, matching solo serving — while the shared-row
//! telemetry proves the grouped kernel streams shared KV once per group.

use prompt_cache::{
    BatchConfig, BatchScheduler, EngineConfig, PromptCache, Response, ServeOptions, ServeOutcome,
    ServeRequest, Served, Telemetry,
};
use pc_model::{Model, ModelConfig};
use pc_tokenizer::{Tokenizer, WordTokenizer};

const CORPUS: &str = "the miami coast has warm beaches surf and sun all year \
    tokyo offers temples gardens and remarkable food in every district \
    plan a detailed trip of days for a traveler who loves the water \
    you are a helpful travel assistant highlight surf spots please \
    answer the following question about documents provided above \
    what should i pack for the journey tell me more about it";

const SCHEMA: &str = r#"
  <schema name="trip">
    you are a helpful travel assistant
    <module name="plan">plan a detailed trip of <param name="duration" len="3"/></module>
    <union>
      <module name="miami">the miami coast has warm beaches surf and sun</module>
      <module name="tokyo">tokyo offers temples gardens and remarkable food</module>
    </union>
  </schema>"#;

/// Mix of fully cached, partially cached, parameterised, and uncached
/// prompts — so batches contain both shareable and private-only members.
const PROMPTS: [&str; 7] = [
    r#"<prompt schema="trip"><miami/>highlight surf spots please</prompt>"#,
    r#"<prompt schema="trip"><tokyo/>what should i pack</prompt>"#,
    r#"<prompt schema="trip"><plan duration="days for traveler"/><miami/>tell me more</prompt>"#,
    r#"<prompt schema="trip"><miami/></prompt>"#,
    r#"<prompt schema="trip">answer the following question</prompt>"#,
    r#"<prompt schema="trip"><plan duration="days"/><tokyo/>plan a trip</prompt>"#,
    r#"<prompt schema="trip"><plan duration="days"/>tell me more about it</prompt>"#,
];

fn engine_with(telemetry: Option<Telemetry>) -> PromptCache {
    let tokenizer = WordTokenizer::train(&[CORPUS]);
    let vocab = tokenizer.vocab_size().max(64);
    let mut config = EngineConfig::default();
    if let Some(t) = telemetry {
        config = config.telemetry(t);
    }
    let engine = PromptCache::new(Model::new(ModelConfig::llama_tiny(vocab), 42), tokenizer, config);
    engine.register_schema(SCHEMA).unwrap();
    engine
}

fn solo(engine: &PromptCache, prompt: &str, options: &ServeOptions) -> Response {
    engine
        .serve(&ServeRequest::new(prompt).options(options.clone()))
        .map(Served::into_response)
        .unwrap()
}

fn drain(sched: &mut BatchScheduler<'_>) -> Vec<(u64, Response)> {
    let mut out = Vec::new();
    while !sched.is_idle() {
        for (id, result) in sched.step() {
            out.push((id, result.unwrap()));
        }
    }
    out.sort_by_key(|(id, _)| *id);
    out
}

fn run_batch(engine: &PromptCache, config: BatchConfig, n: usize) -> Vec<(u64, Response)> {
    let options = ServeOptions::default().max_new_tokens(8);
    let mut sched = BatchScheduler::new(engine, config);
    for (i, prompt) in PROMPTS.iter().take(n).enumerate() {
        sched.admit(i as u64, prompt, &options).unwrap();
    }
    drain(&mut sched)
}

#[test]
fn sharing_on_off_and_solo_agree_byte_for_byte() {
    let engine = engine_with(None);
    let options = ServeOptions::default().max_new_tokens(8);
    let references: Vec<Response> = PROMPTS.iter().map(|p| solo(&engine, p, &options)).collect();
    for n in [1usize, 2, 4, 7] {
        let on = run_batch(&engine, BatchConfig::default().max_batch_size(n), n);
        let off = run_batch(
            &engine,
            BatchConfig::default().max_batch_size(n).prefix_sharing(false),
            n,
        );
        assert_eq!(on.len(), n);
        assert_eq!(off.len(), n);
        for ((id, got_on), (_, got_off)) in on.into_iter().zip(off) {
            let reference = &references[id as usize];
            assert_eq!(got_on.tokens, reference.tokens, "sharing on, n={n} id={id}");
            assert_eq!(got_off.tokens, reference.tokens, "sharing off, n={n} id={id}");
            assert_eq!(got_on.text, reference.text);
            assert_eq!(got_on.outcome, ServeOutcome::Complete);
        }
    }
}

#[test]
fn staggered_joins_with_mixed_schemas_preserve_identity() {
    // Admission inserts each sequence next to others sharing its leading
    // segment (keeping prefix groups adjacent); this reordering must be
    // invisible in the results even when miami/tokyo/uncached prompts
    // arrive interleaved and leave at different steps.
    let engine = engine_with(None);
    let budgets = [3usize, 9, 5, 12, 7, 6, 4];
    let references: Vec<Response> = PROMPTS
        .iter()
        .zip(budgets)
        .map(|(p, n)| solo(&engine, p, &ServeOptions::default().max_new_tokens(n)))
        .collect();

    let mut sched = BatchScheduler::new(&engine, BatchConfig::default().max_batch_size(8));
    let mut results = Vec::new();
    sched
        .admit(0, PROMPTS[0], &ServeOptions::default().max_new_tokens(budgets[0]))
        .unwrap();
    sched
        .admit(1, PROMPTS[1], &ServeOptions::default().max_new_tokens(budgets[1]))
        .unwrap();
    for late in 2..budgets.len() {
        for (id, result) in sched.step() {
            results.push((id, result.unwrap()));
        }
        sched
            .admit(
                late as u64,
                PROMPTS[late],
                &ServeOptions::default().max_new_tokens(budgets[late]),
            )
            .unwrap();
    }
    results.extend(drain(&mut sched));
    results.sort_by_key(|(id, _)| *id);

    assert_eq!(results.len(), budgets.len());
    for (id, response) in results {
        let reference = &references[id as usize];
        assert_eq!(response.tokens, reference.tokens, "id={id}");
    }
}

#[test]
fn telemetry_splits_row_traffic_into_shared_and_private() {
    let read = |telemetry: &Telemetry| {
        let snap = telemetry.snapshot();
        let counter = |name: &str| {
            snap.counters
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap_or(0)
        };
        let shared = counter("pc_kv_rows_shared_read_total");
        let private = counter("pc_kv_rows_private_read_total");
        let ratio = snap
            .gauges
            .iter()
            .find(|(n, _)| n == "pc_batch_share_ratio")
            .map(|(_, v)| *v);
        (shared, private, ratio)
    };
    // Two sequences importing the same miami module: with sharing on the
    // module rows are read once per tick and land in the shared counter.
    let run = |sharing: bool| {
        let telemetry = Telemetry::new();
        let engine = engine_with(Some(telemetry.clone()));
        let options = ServeOptions::default().max_new_tokens(6);
        let mut sched = BatchScheduler::new(
            &engine,
            BatchConfig::default().max_batch_size(2).prefix_sharing(sharing),
        );
        sched.admit(0, PROMPTS[0], &options).unwrap();
        sched.admit(1, PROMPTS[3], &options).unwrap();
        drain(&mut sched);
        read(&telemetry)
    };

    let (shared_on, private_on, ratio_on) = run(true);
    assert!(shared_on > 0, "module rows must be counted as shared");
    assert!(private_on > 0, "tails are always private");
    assert!(ratio_on.is_some_and(|r| (1..=100).contains(&r)), "{ratio_on:?}");

    let (shared_off, private_off, _) = run(false);
    assert_eq!(shared_off, 0, "sharing off: every row is a private read");
    assert!(
        private_off > shared_on + private_on,
        "sharing off re-reads shared rows per member: {private_off} vs \
         {shared_on} shared + {private_on} private"
    );
}

#[test]
fn analytics_attributes_shared_rows_and_bytes_to_modules() {
    use pc_cache::StoreConfig;

    let tokenizer = WordTokenizer::train(&[CORPUS]);
    let vocab = tokenizer.vocab_size().max(64);
    let config =
        EngineConfig::default().store(StoreConfig::default().module_analytics(true));
    let engine =
        PromptCache::new(Model::new(ModelConfig::llama_tiny(vocab), 42), tokenizer, config);
    engine.register_schema(SCHEMA).unwrap();

    // Two sequences importing the same miami module form one shared
    // prefix group; the batched kernel streams the module's rows once
    // per tick, and the analytics table must attribute those reads (and
    // the zero-copy bytes from assembly) back to the miami module.
    let options = ServeOptions::default().max_new_tokens(6);
    let mut sched = BatchScheduler::new(&engine, BatchConfig::default().max_batch_size(2));
    sched.admit(0, PROMPTS[0], &options).unwrap();
    sched.admit(1, PROMPTS[3], &options).unwrap();

    let snapshot = sched.debug_snapshot();
    assert_eq!(snapshot.sequences.len(), 2);
    assert_eq!(snapshot.groups.len(), 1, "{snapshot:?}");
    assert!(snapshot.groups[0].shared);
    assert_eq!(snapshot.groups[0].members, vec![0, 1]);
    assert!(snapshot.groups[0].prefix_rows > 0);

    drain(&mut sched);

    // The engine stores spans under `schema:<span>/index` keys; both
    // admissions import the same miami span, so exactly those modules
    // should lead the heat ranking with shared-row and byte attribution.
    let analytics = engine.store().analytics().expect("enabled");
    let heat = analytics.snapshot();
    assert!(!heat.is_empty());
    assert!(heat.iter().all(|m| m.module.starts_with("trip:<span>/")), "{heat:?}");
    let hot = &heat[0];
    assert!(hot.hits >= 2, "both admissions fetched it: {hot:?}");
    assert!(hot.bytes_shared > 0, "zero-copy bytes attributed: {hot:?}");
    assert!(
        hot.shared_rows > 0,
        "batched prefix-group reads attributed: {hot:?}"
    );
    assert!(
        heat.iter().map(|m| m.shared_rows).sum::<u64>() > 0
            && heat.iter().map(|m| m.bytes_copied).sum::<u64>() == 0,
        "zero-copy assembly never copies: {heat:?}"
    );
    let text = analytics.prometheus_text();
    assert!(text.contains("pc_module_shared_rows_total{module="), "{text}");
}
